// Dynamic R-tree over integer rectangles (Guttman, quadratic split).
//
// Used by the Data Store Manager to find cached blobs whose bounding boxes
// intersect a query region without scanning every resident blob, and
// available as a general spatial index for irregularly chunked datasets.
// Values are opaque 64-bit ids; (id, rect) pairs must be unique.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/geometry.hpp"

namespace mqs::index {

class RTree {
 public:
  struct Node;   // opaque; defined in rtree.cpp
  struct Entry;  // opaque; defined in rtree.cpp

  /// maxEntries >= 4; minEntries defaults to maxEntries * 0.4.
  explicit RTree(std::size_t maxEntries = 8);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void insert(const Rect& rect, std::uint64_t value);

  /// Removes the entry with exactly this (rect, value); returns whether an
  /// entry was found.
  bool erase(const Rect& rect, std::uint64_t value);

  /// Invoke `fn` for every entry whose rect intersects `region`.
  void queryIntersecting(
      const Rect& region,
      const std::function<void(const Rect&, std::uint64_t)>& fn) const;

  /// Convenience collecting variant.
  [[nodiscard]] std::vector<std::uint64_t> findIntersecting(
      const Rect& region) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Structural invariants (entry counts, bounding boxes). For tests.
  [[nodiscard]] bool checkInvariants() const;

 private:
  void insertEntry(Entry entry, int targetLevel);
  Node* chooseSubtree(Node* node, const Rect& rect, int targetLevel) const;
  void splitNode(Node* node);
  void adjustUpward(Node* node);
  void condenseTree(Node* leaf);

  std::unique_ptr<Node> root_;
  std::size_t maxEntries_;
  std::size_t minEntries_;
  std::size_t size_ = 0;
};

}  // namespace mqs::index
