# Empty dependencies file for mqs_vm.
# This may be replaced when dependencies are built.
