// Shared reuse planner: the plan/execute split for the Eq. 3–4 reuse model.
//
// Both engines — the threaded QueryServer and the discrete-event SimServer —
// used to select reuse sources inline, each with its own copy of the logic
// and each limited to a *single* best source per query. The planner unifies
// that decision into one pure component: given a query predicate, the Data
// Store contents, and the scheduling graph's EXECUTING set, it produces an
// explicit ReusePlan — an ordered list of steps that together tile the
// query's output:
//
//   ProjectFromCached{blob}            project a resident Data Store blob
//   WaitAndProjectFromExecuting{node}  block on an older executing query's
//                                      completion latch, then project its
//                                      cached result (acyclic by the
//                                      started-earlier rule, which holds for
//                                      every subset of older executions)
//   RestoreFromSpill{spillId}          read a demoted blob back from the
//                                      spill tier into the Data Store, then
//                                      project it — selected only when the
//                                      modeled restore cost beats the blob's
//                                      traced recompute cost (DESIGN.md §13)
//   FoldIntoScan{scanId}               subscribe to another in-flight
//                                      query's still-running shared scan
//                                      (pagespace::ScanRegistry), wait for it
//                                      to publish, then project its bytes —
//                                      the same work is scanned once and
//                                      multicast (DESIGN.md §14)
//   ComputeRemainder{pred}             compute an uncovered sub-query from
//                                      raw data (recursively plannable up to
//                                      maxNestedReuseDepth)
//
// Sources are selected greedily by *marginal* covered-output bytes —
// following Roy et al.'s observation that composing multiple cached
// intermediates captures most of the reuse win — so several cached results
// (and several still-executing queries, à la GraftDB's folding into
// concurrent work) can jointly answer one query. The engines only differ in
// how they *execute* a plan: the threaded server pins blobs and performs
// real projections and I/O; the simulator charges modeled costs for the
// same steps. Keeping planning here keeps them in lockstep by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "datastore/data_store.hpp"
#include "datastore/spill_tier.hpp"
#include "query/fold.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "sched/scheduler.hpp"

namespace mqs::query {

struct PlannerConfig {
  bool dataStoreEnabled = true;      ///< consult the Data Store at all
  bool allowWaitOnExecuting = true;  ///< may wait on executing sources
  /// Projection-step budget per plan. 1 reproduces the historic
  /// single-best-source behaviour; >1 enables multi-source reuse.
  int maxReuseSources = 4;
  /// Candidate pool drawn from the Data Store per plan (lookupTopK's k).
  /// Only candidates with positive marginal coverage are ever selected, so
  /// this bounds planning cost, not correctness.
  int candidatePoolSize = 8;
  /// Depth limit for reuse inside remainder sub-queries: a part at
  /// depth > maxNestedReuseDepth is always computed from raw data.
  int maxNestedReuseDepth = 2;
  /// Greedy stop threshold: a source must cover at least this many
  /// additional output bytes to earn a projection step.
  std::uint64_t minMarginalBytes = 1;
  /// Pin selected blobs (tryPin) so concurrent evictions cannot invalidate
  /// the plan before execution; the plan's PinGuards release on execution
  /// or destruction. The single-threaded simulator leaves this off.
  bool pinSources = false;
};

/// One step of a reuse plan. A tagged struct (not a variant) so tests and
/// diagnostics can iterate steps uniformly.
struct PlanStep {
  enum class Kind {
    ProjectFromCached,
    WaitAndProjectFromExecuting,
    RestoreFromSpill,
    FoldIntoScan,
    ComputeRemainder,
  };
  Kind kind = Kind::ComputeRemainder;

  // --- projection steps ---------------------------------------------------
  datastore::BlobId blob = 0;             ///< ProjectFromCached
  /// WaitAndProjectFromExecuting: the source node. FoldIntoScan: the scan
  /// *owner's* node (for the scheduler's fold edge + trace attribution).
  sched::NodeId node = sched::kInvalidNode;
  std::uint64_t spillId = 0;              ///< RestoreFromSpill
  ScanId scanId = 0;                      ///< FoldIntoScan
  /// RestoreFromSpill: modeled cost of reading the blob back (the sim
  /// charges it as virtual delay; the planner already judged it cheaper
  /// than recomputing).
  double restoreCostSec = 0.0;
  PredicatePtr sourcePred;                ///< the source's predicate
  double overlap = 0.0;                   ///< Eq. 2 overlap vs the full query
  /// Marginal output bytes this source adds to the plan's coverage
  /// (projection steps can overlap each other; later steps only count
  /// bytes not already covered).
  std::uint64_t bytesCovered = 0;
  /// Full covered-output bytes of this source against the whole query —
  /// the work a projection actually performs (the simulator's CPU charge).
  std::uint64_t projectionBytes = 0;
  /// Sub-queries tiling the output region this step newly covers. Used to
  /// recompute the step's share from raw data if the source vanishes
  /// between planning and execution (executing sources only — cached
  /// sources are pinned when pinSources is set).
  std::vector<PredicatePtr> coveredParts;

  // --- remainder steps ----------------------------------------------------
  PredicatePtr pred;  ///< ComputeRemainder: the uncovered sub-query
};

/// An ordered tiling of one query's output: projection steps (in greedy
/// selection order), then remainder steps. Move-only; owns the pins taken
/// on selected blobs when PlannerConfig::pinSources is set.
struct ReusePlan {
  std::vector<PlanStep> steps;
  /// Pins on the ProjectFromCached blobs, parallel to those steps in plan
  /// order. Released by the executing engine as each step completes (or on
  /// plan destruction).
  std::vector<datastore::DataStore::PinGuard> pins;
  /// Sum of the projection steps' marginal bytesCovered.
  std::uint64_t planBytesCovered = 0;
  /// Highest single-source Eq. 2 overlap among the projection steps — the
  /// historic `overlapUsed` metric, the adaptive-policy feedback signal,
  /// and the "exact duplicate, don't re-cache" test (>= 1).
  double primaryOverlap = 0.0;

  [[nodiscard]] int reuseSources() const;
  [[nodiscard]] bool hasReuse() const { return reuseSources() > 0; }
  [[nodiscard]] bool fullyCovered() const;
  /// Compact signature, e.g. "C49152|X4096|S8192|F4096|R" (C cached,
  /// X executing, S restored-from-spill, F folded-into-scan, R remainder;
  /// projection steps carry their marginal bytes). Identical across engines
  /// for identical plans — the equivalence test's currency.
  [[nodiscard]] std::string shape() const;
};

class Planner {
 public:
  Planner(const QuerySemantics* semantics, PlannerConfig cfg);

  [[nodiscard]] const PlannerConfig& config() const { return cfg_; }

  /// Build the reuse plan for `q`.
  ///
  /// `ds` supplies cached candidates (ignored when dataStoreEnabled is
  /// false). `sched`/`node` supply executing candidates for the top-level
  /// query (pass nullptr/kInvalidNode for nested parts — only plans at
  /// depth 0 may wait on executing queries, and only when
  /// allowWaitOnExecuting is set). `depth` is the nesting level of `q`
  /// (0 = top-level query, >= 1 = remainder sub-query); beyond
  /// maxNestedReuseDepth the plan is a single ComputeRemainder step.
  /// `spill` (optional, depth 0 only) supplies demoted blobs as
  /// RestoreFromSpill candidates; one is considered only when its modeled
  /// restore cost undercuts its traced recompute cost, and on equal
  /// marginal bytes loses to both cached and executing sources.
  /// `folds` (optional, depth 0 only) supplies still-running shared scans
  /// as FoldIntoScan candidates (DESIGN.md §14). The caller snapshots them
  /// (ScanRegistry::candidatesFor) and must already have applied the
  /// deadlock rule: every offered scan's owner is strictly older by
  /// execution sequence than the query being planned. On equal marginal
  /// bytes a fold loses to a cached source (no wait at all) but beats
  /// waiting on an execution's *completion* — the scan publishes earlier
  /// and its payload cannot be evicted out from under the plan.
  ///
  /// The plan's steps tile q's output exactly: projecting every projection
  /// step's source and computing every remainder step covers each output
  /// byte at least once, with remainder parts disjoint from covered area.
  [[nodiscard]] ReusePlan plan(const Predicate& q, datastore::DataStore& ds,
                               const sched::QueryScheduler* sched,
                               sched::NodeId node, int depth = 0,
                               datastore::SpillTier* spill = nullptr,
                               std::span<const FoldCandidate> folds = {}) const;

 private:
  const QuerySemantics* sem_;
  PlannerConfig cfg_;
};

}  // namespace mqs::query
