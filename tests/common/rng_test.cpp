#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace mqs {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSinglePoint) {
  Rng rng(7);
  EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, Uniform01InHalfOpenRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  std::array<int, 3> counts{};
  const int n = 90000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weightedIndex({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 1.0 / 9, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 2.0 / 9, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 6.0 / 9, 0.01);
}

TEST(Rng, WeightedIndexSkipsZeroWeights) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.weightedIndex({0.0, 1.0, 0.0}), 1u);
  }
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(17);
  EXPECT_THROW(rng.weightedIndex({0.0, 0.0}), CheckFailure);
  EXPECT_THROW(rng.weightedIndex({-1.0, 2.0}), CheckFailure);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(5);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.next() == childB.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace mqs
