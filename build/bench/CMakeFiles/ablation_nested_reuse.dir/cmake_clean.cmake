file(REMOVE_RECURSE
  "CMakeFiles/ablation_nested_reuse.dir/ablation_nested_reuse.cpp.o"
  "CMakeFiles/ablation_nested_reuse.dir/ablation_nested_reuse.cpp.o.d"
  "ablation_nested_reuse"
  "ablation_nested_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nested_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
