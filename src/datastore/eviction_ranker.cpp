#include "datastore/eviction_ranker.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "common/check.hpp"

namespace mqs::datastore {

namespace {

class LruRanker final : public EvictionRanker {
 public:
  double victimScore(const BlobView&) const override { return 0.0; }
  bool recencyOnly() const override { return true; }
};

class LfuRanker final : public EvictionRanker {
 public:
  double victimScore(const BlobView& blob) const override {
    return static_cast<double>(blob.uses);
  }
};

class LargestRanker final : public EvictionRanker {
 public:
  double victimScore(const BlobView& blob) const override {
    // More bytes -> lower score -> evicted sooner (frees the most budget
    // per eviction, exactly the historical max-bytes victim choice).
    return -static_cast<double>(blob.logicalBytes);
  }
};

class CostAwareRanker final : public EvictionRanker {
 public:
  double victimScore(const BlobView& blob) const override {
    // Benefit per byte: what rebuilding this blob would cost (weighted by
    // how often it has actually been reused) relative to the budget it
    // occupies. Blobs with no attributed cost score 0 and the tie-break
    // degrades to LRU, so the ranker is safe without cost accounting.
    const double bytes =
        static_cast<double>(std::max<std::uint64_t>(blob.logicalBytes, 1));
    return blob.recomputeCostSec * (1.0 + static_cast<double>(blob.uses)) /
           bytes;
  }
};

}  // namespace

EvictionPolicy parseEvictionPolicy(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const EvictionPolicy policy : kAllEvictionPolicies) {
    if (upper == toString(policy)) return policy;
  }
  std::string valid;
  for (const EvictionPolicy policy : kAllEvictionPolicies) {
    if (!valid.empty()) valid += ", ";
    valid += toString(policy);
  }
  MQS_CHECK_MSG(false, "unknown eviction policy: '" + std::string(name) +
                           "' (valid: " + valid + "; case-insensitive)");
  return EvictionPolicy::Lru;  // unreachable
}

std::string_view toString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::Lru: return "LRU";
    case EvictionPolicy::Lfu: return "LFU";
    case EvictionPolicy::Largest: return "LARGEST";
    case EvictionPolicy::CostAware: return "COST";
  }
  return "?";
}

std::unique_ptr<EvictionRanker> makeEvictionRanker(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::Lru: return std::make_unique<LruRanker>();
    case EvictionPolicy::Lfu: return std::make_unique<LfuRanker>();
    case EvictionPolicy::Largest: return std::make_unique<LargestRanker>();
    case EvictionPolicy::CostAware: return std::make_unique<CostAwareRanker>();
  }
  MQS_CHECK_MSG(false, "unhandled eviction policy");
  return nullptr;  // unreachable
}

}  // namespace mqs::datastore
