// Replacement policy core of the Page Space Manager.
//
// Tracks which pages are resident under a byte budget with LRU eviction and
// pin counts, without owning any page data. The threaded PageSpaceManager
// layers real buffers and in-flight request merging on top; the
// discrete-event engine uses the core directly (it needs residency
// decisions, not bytes).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "storage/data_source.hpp"

namespace mqs::pagespace {

class PageCacheCore {
 public:
  explicit PageCacheCore(std::uint64_t capacityBytes);

  /// If resident, refresh LRU position and return true (a hit).
  bool touch(const storage::PageKey& key);

  [[nodiscard]] bool contains(const storage::PageKey& key) const;

  /// Make `key` resident, evicting least-recently-used unpinned pages as
  /// needed. Returns the evicted keys. A page larger than the whole budget
  /// is not cached (returned in the vector is nothing; contains() stays
  /// false). Inserting an already-resident key just touches it.
  std::vector<storage::PageKey> insert(const storage::PageKey& key,
                                       std::size_t bytes);

  /// Pinned pages are never evicted. Pins nest.
  void pin(const storage::PageKey& key);
  void unpin(const storage::PageKey& key);

  /// Drop a page explicitly (must not be pinned). No-op if absent.
  void erase(const storage::PageKey& key);

  /// Adjust the byte budget (sharded managers move budget between shard
  /// cores on the rebalance slow path). Does not evict; the caller brings
  /// residency back under the new budget via evictUpTo() if it shrank.
  void setCapacity(std::uint64_t capacityBytes) { capacity_ = capacityBytes; }

  /// Evict unpinned pages from the LRU tail until at least `want` bytes
  /// have been freed or nothing evictable remains. Returns the evicted
  /// keys (stats count them as evictions); freed bytes are the sum of the
  /// victims' sizes.
  std::vector<storage::PageKey> evictUpTo(std::uint64_t want,
                                          std::uint64_t* freedBytes);

  [[nodiscard]] std::uint64_t capacityBytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t residentBytes() const { return resident_; }
  /// Bytes of currently pinned pages (never evictable). Maintained on the
  /// 0 <-> 1 pin-count transitions; the sharded manager uses it to size
  /// budget borrows under pin pressure.
  [[nodiscard]] std::uint64_t pinnedBytes() const { return pinned_; }
  [[nodiscard]] std::size_t residentPages() const { return pages_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;  ///< inserts that could not fit
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::size_t bytes = 0;
    int pins = 0;
    std::list<storage::PageKey>::iterator lruIt;
  };

  std::uint64_t capacity_;
  std::uint64_t resident_ = 0;
  std::uint64_t pinned_ = 0;  ///< bytes of pages with pins > 0
  std::list<storage::PageKey> lru_;  ///< front = most recent
  std::unordered_map<storage::PageKey, Entry, storage::PageKeyHash> pages_;
  Stats stats_;
};

}  // namespace mqs::pagespace
