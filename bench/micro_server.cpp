// Micro-benchmarks of the *threaded* runtime: end-to-end latency of the
// three fundamental paths a query can take — cold (all disk), page-space
// warm (disk cached, recompute), and data-store hit (pure projection).
//
// `--overhead-guard` runs the tracing-overhead gate instead of the google
// benchmarks: it pins the cost of compiled-in-but-disabled lifecycle
// tracing (every instrumentation site degenerates to one pointer test or
// one relaxed load) to <= 2% of DS-hit throughput. scripts/check.sh and CI
// run it alongside the `trace` test label.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "server/query_server.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/trace.hpp"
#include "vm/vm_executor.hpp"

namespace {

using namespace mqs;

struct Rig {
  vm::VMSemantics semantics;
  std::unique_ptr<storage::SyntheticSlideSource> slide;
  std::unique_ptr<vm::VMExecutor> executor;
  std::unique_ptr<server::QueryServer> server;

  explicit Rig(bool cachingEnabled, std::uint64_t psBytes = 256ULL << 20,
               std::shared_ptr<trace::Tracer> traceSink = nullptr) {
    const auto id = semantics.addDataset(index::ChunkLayout(4096, 4096, 146));
    slide = std::make_unique<storage::SyntheticSlideSource>(
        semantics.layout(id), 7);
    executor = std::make_unique<vm::VMExecutor>(&semantics);
    server::ServerConfig cfg;
    cfg.threads = 2;
    cfg.policy = "CF";
    cfg.dataStoreEnabled = cachingEnabled;
    cfg.dsBytes = 256ULL << 20;
    cfg.psBytes = psBytes;
    cfg.traceSink = std::move(traceSink);
    server = std::make_unique<server::QueryServer>(&semantics, executor.get(),
                                                   cfg);
    server->attach(id, slide.get());
  }
};

vm::VMPredicate probe(std::int64_t x) {
  return vm::VMPredicate(0, Rect::ofSize(x, 0, 512, 512), 4,
                         vm::VMOp::Average);
}

void BM_ServerDataStoreHit(benchmark::State& state) {
  Rig rig(true);
  (void)rig.server->execute(probe(0).clone(), 0);  // prime the DS
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(0).clone(), 0));
  }
  state.SetBytesProcessed(state.iterations() * 128 * 128 * 3);
}
BENCHMARK(BM_ServerDataStoreHit);

void BM_ServerPageSpaceWarm(benchmark::State& state) {
  Rig rig(false);  // no DS: recompute every time, pages stay cached
  (void)rig.server->execute(probe(0).clone(), 0);  // prime the PS
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(0).clone(), 0));
  }
  state.SetBytesProcessed(state.iterations() * 2048 * 2048 * 3);
}
BENCHMARK(BM_ServerPageSpaceWarm);

void BM_ServerColdPath(benchmark::State& state) {
  // No result cache, one-page page space: every execute takes the full
  // index + source-read + compute path.
  Rig rig(false, /*psBytes=*/1);
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(x).clone(), 0));
    x = (x + 512) % 2048;
  }
  state.SetBytesProcessed(state.iterations() * 2048 * 2048 * 3);
}
BENCHMARK(BM_ServerColdPath);

// --- tracing-overhead guard -------------------------------------------------

/// Seconds to run `queries` DS-hit executions against `rig`.
double timedRun(Rig& rig, int queries) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < queries; ++i) {
    benchmark::DoNotOptimize(rig.server->execute(probe(0).clone(), 0));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One interleaved A/B measurement; returns the relative overhead of the
/// attached-but-disabled tracer, estimated from each rig's *fastest* round
/// (the min is the noise-free floor — a systematic per-event cost shifts
/// the floor itself, while scheduler/thermal spikes only add to it).
double measureOverhead(Rig& base, Rig& traced, int rounds,
                       int queriesPerRound) {
  std::vector<double> baseTimes, tracedTimes;
  for (int r = 0; r < rounds; ++r) {
    baseTimes.push_back(timedRun(base, queriesPerRound));
    tracedTimes.push_back(timedRun(traced, queriesPerRound));
  }
  const double baseMin = *std::min_element(baseTimes.begin(), baseTimes.end());
  const double tracedMin =
      *std::min_element(tracedTimes.begin(), tracedTimes.end());
  return tracedMin / baseMin - 1.0;
}

int runOverheadGuard() {
  constexpr int kRounds = 9;
  constexpr int kQueriesPerRound = 600;
  constexpr double kMaxOverhead = 0.02;
  constexpr int kAttempts = 3;

  // Attached-but-*disabled* sink: every span/counter site pays its guarded
  // fast path and nothing is ever buffered.
  auto sink = std::make_shared<trace::Tracer>();
  sink->setEnabled(false);

  Rig base(true);
  Rig traced(true, 256ULL << 20, sink);
  (void)base.server->execute(probe(0).clone(), 0);    // prime the DS
  (void)traced.server->execute(probe(0).clone(), 0);  // prime the DS
  (void)timedRun(base, kQueriesPerRound);             // warm both rigs
  (void)timedRun(traced, kQueriesPerRound);

  // A real regression (a systematic cost at the disabled sites) fails every
  // attempt; a noise spike on a shared machine fails at most one.
  bool pass = false;
  for (int attempt = 1; attempt <= kAttempts && !pass; ++attempt) {
    const double overhead =
        measureOverhead(base, traced, kRounds, kQueriesPerRound);
    pass = overhead <= kMaxOverhead;
    std::printf(
        "tracing-overhead guard (attempt %d/%d): disabled-tracing overhead "
        "%+.2f%% (limit %.0f%%)\n",
        attempt, kAttempts, overhead * 100.0, kMaxOverhead * 100.0);
  }
  if (sink->eventCount() != 0) {
    std::printf("FAIL: disabled tracer buffered %llu events\n",
                static_cast<unsigned long long>(sink->eventCount()));
    return 1;
  }
  if (!pass) {
    std::printf("FAIL: disabled-tracing overhead above limit\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--overhead-guard") {
      return runOverheadGuard();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
