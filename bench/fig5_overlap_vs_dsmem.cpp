// Figure 5 (a, b): average overlap achieved as the Data Store memory is
// varied, up to 4 concurrent queries, interactive clients. CF and CNBF
// should achieve the highest overlap at small cache sizes.
#include "bench_common.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fig5");
  ctx.printHeader();

  const auto dsMb = ctx.options().getIntList("dsmem", {32, 64, 128, 256});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("Figure 5 — average overlap vs DS memory, ") +
                bench::opName(op));
    std::vector<std::string> cols = {"DS(MB)"};
    for (const auto& p : sched::paperPolicyNames()) cols.push_back(p);
    table.setColumns(cols);

    for (const auto mb : dsMb) {
      std::vector<double> row;
      for (const auto& policy : sched::paperPolicyNames()) {
        const auto result = driver::SimExperiment::runInteractive(
            ctx.workload(op),
            ctx.server(policy, 4, static_cast<std::uint64_t>(mb) * MiB,
                       32 * MiB));
        row.push_back(result.summary.avgOverlap);
      }
      table.addRow(std::to_string(mb), row);
    }
    ctx.emit(table);
  }
  return 0;
}
