#!/usr/bin/env python3
"""Render the merged static lock graph (results/lockgraph.json).

mqs-analyze emits the whole-program acquisition graph: one node per
Mutex declaration, one edge per observed "acquire B while holding A"
pair, each edge tagged with its source sites. This script turns that
JSON into:

    --dot FILE     Graphviz DOT (pipe through `dot -Tsvg` where graphviz
                   is installed)
    --svg FILE     a self-contained SVG rendered here (no graphviz
                   needed): one row per mutex, sorted by rank so every
                   legal edge points downward — an upward edge would be
                   exactly the inversion mqs-analyze rejects

CI and scripts/check.sh regenerate results/lockgraph.json on every run;
docs/lockgraph.svg (embedded next to the DESIGN.md §9 rank table) is the
committed rendering:

    python3 scripts/lockgraph_dot.py --svg docs/lockgraph.svg
"""

from __future__ import annotations

import argparse
import html
import json
import pathlib
import sys

ROW_H = 34
NODE_W = 330
NODE_H = 24
MARGIN = 16
CURVE_X = 110  # how far edge curves bow out to the right


def load(path: pathlib.Path) -> tuple[list[dict], list[dict]]:
    data = json.loads(path.read_text())
    mutexes = sorted(data["mutexes"], key=lambda m: (m["rank"], m["path"]))
    return mutexes, data["edges"]


def to_dot(mutexes: list[dict], edges: list[dict]) -> str:
    lines = [
        "digraph lockgraph {",
        "  rankdir=TB;",
        '  node [shape=box, style=rounded, fontname="monospace", fontsize=10];',
        '  edge [fontname="monospace", fontsize=8];',
    ]
    for m in mutexes:
        label = f"{m['rank']:>3}  {m['path']}"
        lines.append(f'  "{m["path"]}" [label="{label}"];')
    for e in edges:
        site = e["sites"][0] if e.get("sites") else ""
        lines.append(
            f'  "{e["from"]}" -> "{e["to"]}" [label="{site}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_svg(mutexes: list[dict], edges: list[dict]) -> str:
    rows = {m["path"]: i for i, m in enumerate(mutexes)}
    width = MARGIN * 2 + NODE_W + CURVE_X + 360
    height = MARGIN * 2 + ROW_H * len(mutexes)

    def node_y(i: int) -> int:
        return MARGIN + i * ROW_H

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        "  <defs>",
        '    <marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">',
        '      <path d="M 0 0 L 10 5 L 0 10 z" fill="#444"/>',
        "    </marker>",
        "  </defs>",
        f'  <rect x="0" y="0" width="{width}" height="{height}" '
        'fill="white"/>',
    ]

    # Edges first (under the nodes): a cubic bowing right of the column.
    # All edges in a clean graph point downward (ascending rank).
    edge_x = MARGIN + NODE_W
    for e in edges:
        if e["from"] not in rows or e["to"] not in rows:
            continue
        y0 = node_y(rows[e["from"]]) + NODE_H // 2
        y1 = node_y(rows[e["to"]]) + NODE_H // 2
        bow = edge_x + CURVE_X
        parts.append(
            f'  <path d="M {edge_x} {y0} C {bow} {y0}, {bow} {y1}, '
            f'{edge_x + 4} {y1}" fill="none" stroke="#444" '
            'stroke-width="1.2" marker-end="url(#arrow)"/>'
        )
        site = e["sites"][0] if e.get("sites") else ""
        site = site.split(" (")[0]  # file:line fits; the function doesn't
        ymid = (y0 + y1) // 2
        parts.append(
            f'  <text x="{bow + 6}" y="{ymid + 4}" fill="#666" '
            f'font-size="9">{html.escape(site)}</text>'
        )

    for m in mutexes:
        y = node_y(rows[m["path"]])
        ranked = m["rank"] > 0
        fill = "#eef4fb" if ranked else "#f6f6f6"
        parts.append(
            f'  <rect x="{MARGIN}" y="{y}" rx="5" width="{NODE_W}" '
            f'height="{NODE_H}" fill="{fill}" stroke="#335" '
            'stroke-width="1"/>'
        )
        label = f"{m['rank']:>3}  {m['path']}" if ranked else m["path"]
        parts.append(
            f'  <text x="{MARGIN + 8}" y="{y + 16}">'
            f"{html.escape(label)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input", type=pathlib.Path,
                        default=pathlib.Path("results/lockgraph.json"))
    parser.add_argument("--dot", type=pathlib.Path)
    parser.add_argument("--svg", type=pathlib.Path)
    args = parser.parse_args()

    if not args.input.is_file():
        print(f"lockgraph_dot.py: {args.input} not found — run "
              "`cmake --build build --target analyze` first", file=sys.stderr)
        return 2
    mutexes, edges = load(args.input)

    if args.dot:
        args.dot.write_text(to_dot(mutexes, edges))
        print(f"wrote {args.dot}")
    if args.svg:
        args.svg.parent.mkdir(parents=True, exist_ok=True)
        args.svg.write_text(to_svg(mutexes, edges))
        print(f"wrote {args.svg}")
    if not args.dot and not args.svg:
        sys.stdout.write(to_dot(mutexes, edges))
    return 0


if __name__ == "__main__":
    sys.exit(main())
