#include "common/options.hpp"

#include <gtest/gtest.h>

namespace mqs {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsSyntax) {
  const Options o = parse({"--threads=8", "--policy=SJF"});
  EXPECT_EQ(o.getInt("threads", 1), 8);
  EXPECT_EQ(o.getString("policy", "FIFO"), "SJF");
}

TEST(Options, SpaceSyntax) {
  const Options o = parse({"--threads", "8"});
  EXPECT_EQ(o.getInt("threads", 1), 8);
}

TEST(Options, BareFlagIsTrue) {
  const Options o = parse({"--full"});
  EXPECT_TRUE(o.getBool("full", false));
  EXPECT_TRUE(o.has("full"));
}

TEST(Options, DefaultsWhenAbsent) {
  const Options o = parse({});
  EXPECT_EQ(o.getInt("threads", 4), 4);
  EXPECT_EQ(o.getString("policy", "CF"), "CF");
  EXPECT_FALSE(o.getBool("full", false));
  EXPECT_DOUBLE_EQ(o.getDouble("alpha", 0.2), 0.2);
}

TEST(Options, BoolParsesCommonSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).getBool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).getBool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).getBool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).getBool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).getBool("a", true));
}

TEST(Options, BytesWithSuffix) {
  const Options o = parse({"--ds=64MB"});
  EXPECT_EQ(o.getBytes("ds", 0), 64ull * 1024 * 1024);
}

TEST(Options, IntList) {
  const Options o = parse({"--threads=1,2,4,8"});
  EXPECT_EQ(o.getIntList("threads", {}),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
  EXPECT_EQ(o.getIntList("missing", {3}), (std::vector<std::int64_t>{3}));
}

TEST(Options, Positional) {
  const Options o = parse({"input.dat", "--k=v", "more"});
  EXPECT_EQ(o.positional(),
            (std::vector<std::string>{"input.dat", "more"}));
}

TEST(Options, DoubleParsing) {
  EXPECT_DOUBLE_EQ(parse({"--alpha=0.8"}).getDouble("alpha", 0.2), 0.8);
}

}  // namespace
}  // namespace mqs
