#!/usr/bin/env bash
# Tier-1 gate: build + full test suite, then a ThreadSanitizer build of the
# concurrency-sensitive suites (page space pipeline + VM executor).
# Usage: scripts/check.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 build =="
cmake -B build -S . -DMQS_WERROR=ON
cmake --build build -j

echo "== tier-1 tests =="
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [ "${1:-}" = "--no-tsan" ]; then
  echo "== skipping TSan pass =="
  exit 0
fi

echo "== TSan build (pagespace + vm) =="
cmake -B build-tsan -S . -DMQS_SANITIZE=thread
cmake --build build-tsan -j --target \
  page_cache_core_test page_space_manager_test prefetch_pipeline_test \
  vm_executor_test

echo "== TSan tests =="
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
for t in page_cache_core_test page_space_manager_test \
         prefetch_pipeline_test vm_executor_test; do
  echo "--- $t ---"
  "build-tsan/tests/$t"
done

echo "== check OK =="
