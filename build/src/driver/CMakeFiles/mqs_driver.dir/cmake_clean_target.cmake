file(REMOVE_RECURSE
  "libmqs_driver.a"
)
