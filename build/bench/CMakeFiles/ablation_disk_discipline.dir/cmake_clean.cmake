file(REMOVE_RECURSE
  "CMakeFiles/ablation_disk_discipline.dir/ablation_disk_discipline.cpp.o"
  "CMakeFiles/ablation_disk_discipline.dir/ablation_disk_discipline.cpp.o.d"
  "ablation_disk_discipline"
  "ablation_disk_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_disk_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
