
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pagespace/page_cache_core.cpp" "src/pagespace/CMakeFiles/mqs_pagespace.dir/page_cache_core.cpp.o" "gcc" "src/pagespace/CMakeFiles/mqs_pagespace.dir/page_cache_core.cpp.o.d"
  "/root/repo/src/pagespace/page_space_manager.cpp" "src/pagespace/CMakeFiles/mqs_pagespace.dir/page_space_manager.cpp.o" "gcc" "src/pagespace/CMakeFiles/mqs_pagespace.dir/page_space_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
