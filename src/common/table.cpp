#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace mqs {

std::string formatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::setColumns(std::vector<std::string> names) {
  columns_ = std::move(names);
}

void Table::addRow(std::vector<std::string> cells) {
  MQS_CHECK_MSG(columns_.empty() || cells.size() == columns_.size(),
                "row width mismatch in table " + title_);
  rows_.push_back(std::move(cells));
}

void Table::addRow(const std::string& x, const std::vector<double>& ys,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(ys.size() + 1);
  cells.push_back(x);
  for (double y : ys) cells.push_back(formatDouble(y, precision));
  addRow(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  if (!columns_.empty()) {
    printRow(columns_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      total += widths[c] + (c == 0 ? 0 : 2);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& os) const {
  auto printRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << '\n';
  };
  if (!columns_.empty()) printRow(columns_);
  for (const auto& row : rows_) printRow(row);
}

bool Table::writeCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  printCsv(out);
  return static_cast<bool>(out);
}

}  // namespace mqs
