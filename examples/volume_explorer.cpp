// 3-D scientific visualization on the multi-query middleware (the paper's
// future-work item 2). A radiologist-style session over a bricked intensity
// volume: one LOD overview, then a sweep of view-plane slices — each slice
// answered *without touching the disk* by projecting the cached overview
// (cross-operator reuse: a slice is one z-layer of a subvolume at the same
// level of detail).
//
//   ./volume_explorer [--policy CF] [--slices 8] [--pgm /tmp/slice.pgm]
#include <fstream>
#include <iostream>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "server/query_server.hpp"
#include "vol/synthetic_volume.hpp"
#include "vol/vol_executor.hpp"

using namespace mqs;

namespace {

bool writePgm(std::span<const std::byte> data, std::int64_t w, std::int64_t h,
              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << w << ' ' << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(data.data()), w * h);
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int slices = static_cast<int>(opts.getInt("slices", 8));

  // A 512 x 512 x 256 intensity volume in 40^3 bricks (~64KB pages).
  vol::VolSemantics semantics;
  const auto ds =
      semantics.addDataset(vol::VolumeLayout(512, 512, 256, 40));
  vol::SyntheticVolumeSource volume(semantics.layout(ds), /*seed=*/31);
  vol::VolExecutor executor(&semantics);

  server::ServerConfig cfg;
  cfg.threads = static_cast<int>(opts.getInt("threads", 2));
  cfg.policy = opts.getString("policy", "CF");
  cfg.dsBytes = opts.getBytes("ds", 32 * MiB);
  cfg.psBytes = opts.getBytes("ps", 32 * MiB);
  server::QueryServer server(&semantics, &executor, cfg);
  server.attach(ds, &volume);

  std::cout << "volume explorer — 512x512x256 voxels, policy " << cfg.policy
            << "\n\n";

  // 1) LOD-4 overview of the whole volume (the expensive scan).
  const vol::VolPredicate overview(ds, Box3::ofSize(0, 0, 0, 512, 512, 256),
                                   4, vol::VolOp::Subvolume);
  const auto ov = server.execute(overview.clone(), 0);
  std::cout << "overview  " << overview.describe() << "\n  -> "
            << formatBytes(ov.record.outputBytes) << ", disk "
            << formatBytes(ov.record.bytesFromDisk) << ", "
            << ov.record.execTime() * 1e3 << " ms\n\n";

  // 2) Sweep view planes through the cached overview.
  std::uint64_t sliceDiskBytes = 0;
  for (int i = 0; i < slices; ++i) {
    const std::int64_t z = (i * 256) / slices / 4 * 4;
    const auto slice = vol::VolPredicate::slice(
        ds, Rect::ofSize(0, 0, 512, 512), z, 4);
    const auto r = server.execute(slice.clone(), 1);
    sliceDiskBytes += r.record.bytesFromDisk;
    std::cout << "slice z=" << z << "  reuse overlap "
              << r.record.overlapUsed << ", disk "
              << formatBytes(r.record.bytesFromDisk) << ", "
              << r.record.execTime() * 1e3 << " ms\n";
    if (i == slices / 2 && opts.has("pgm")) {
      const auto path = opts.getString("pgm", "slice.pgm");
      std::cout << "  wrote " << path << ": "
                << writePgm(r.bytes, slice.outWidth(), slice.outHeight(),
                            path)
                << "\n";
    }
  }

  // 3) Drill into a sub-box at full detail (hits the disk again).
  const vol::VolPredicate detail(ds, Box3::ofSize(128, 128, 64, 64, 64, 32),
                                 1, vol::VolOp::Subvolume);
  const auto dr = server.execute(detail.clone(), 0);
  std::cout << "\ndetail    " << detail.describe() << "\n  -> disk "
            << formatBytes(dr.record.bytesFromDisk) << "\n";

  std::cout << "\nall " << slices
            << " slices served from the cached overview ("
            << formatBytes(sliceDiskBytes) << " of slice disk I/O)\n";
  const auto dsStats = server.dataStore().stats();
  std::cout << "Data Store: " << dsStats.hits << "/" << dsStats.lookups
            << " lookups hit (" << dsStats.fullHits << " full)\n";
  server.shutdown();
  return 0;
}
