// Data-source abstraction (Figure 1: "Data Source ... Disk Farm, Tape
// Storage, Relational Database").
//
// A data source serves fixed-size pages by page id. In the Virtual
// Microscope each page holds one square chunk of a slide; the chunk → page
// mapping lives in the Index Manager (src/index). All raw-data I/O flows
// through the Page Space Manager, never directly to a source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace mqs::storage {

/// Base class for page-read failures raised by data sources.
class ReadError : public std::runtime_error {
 public:
  explicit ReadError(const std::string& what) : std::runtime_error(what) {}
};

/// A read that may succeed if retried (bus hiccup, dropped request, timed-out
/// device). The Page Space Manager retries these with backoff.
class TransientReadError : public ReadError {
 public:
  explicit TransientReadError(const std::string& what) : ReadError(what) {}
};

/// A read that will never succeed (bad sector, detached device). Propagated
/// to the querying client; the query fails, the server keeps running.
class PermanentReadError : public ReadError {
 public:
  explicit PermanentReadError(const std::string& what) : ReadError(what) {}
};

using DatasetId = std::uint32_t;
using PageId = std::uint64_t;

/// Key identifying a page across all datasets attached to the server.
struct PageKey {
  DatasetId dataset = 0;
  PageId page = 0;

  friend bool operator==(const PageKey&, const PageKey&) = default;
  friend auto operator<=>(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& k) const noexcept {
    // splitmix-style combine
    std::uint64_t h = (static_cast<std::uint64_t>(k.dataset) << 48) ^ k.page;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

/// One attached dataset's raw storage. Implementations must be safe for
/// concurrent readPage calls (the threaded page space manager issues I/O
/// from multiple query threads).
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Number of pages in this source.
  [[nodiscard]] virtual PageId pageCount() const = 0;

  /// Size in bytes of page `page` (edge chunks may be short).
  [[nodiscard]] virtual std::size_t pageBytes(PageId page) const = 0;

  /// Read page `page` into `out` (whose size must be >= pageBytes(page)).
  virtual void readPage(PageId page, std::span<std::byte> out) const = 0;
};

}  // namespace mqs::storage
