// Lock-rank checker tests (ctest label `static`).
//
// The checker core (lockorder::onAcquire/onRelease/heldCount) is compiled
// in every build type, so the ordering and reentrancy contracts are tested
// directly against it; the Mutex-hook integration sections additionally
// run where the hooks are live (MQS_LOCK_ORDER builds, i.e. !NDEBUG).
#include "common/lock_order.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread_annotations.hpp"

namespace mqs {
namespace {

using lockorder::Rank;
using lockorder::heldCount;
using lockorder::onAcquire;
using lockorder::onRelease;

int a, b, c;  // distinct addresses standing in for mutexes

// This binary spawns threads; fork-based "fast" death tests would be
// unsafe, so run every EXPECT_DEATH through the threadsafe re-exec style.
class ThreadsafeDeathStyle : public ::testing::Environment {
 public:
  void SetUp() override {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};
const auto* const kDeathStyle =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

TEST(LockOrderCore, InOrderAcquisitionPasses) {
  EXPECT_EQ(heldCount(), 0u);
  onAcquire(&a, "server", Rank::kQueryServer);
  onAcquire(&b, "scheduler", Rank::kScheduler);
  onAcquire(&c, "logging", Rank::kLogging);
  EXPECT_EQ(heldCount(), 3u);
  onRelease(&c);
  onRelease(&b);
  onRelease(&a);
  EXPECT_EQ(heldCount(), 0u);
}

TEST(LockOrderCore, OutOfLifoReleaseIsLegal) {
  onAcquire(&a, "scheduler", Rank::kScheduler);
  onAcquire(&b, "datastore", Rank::kDataStore);
  onRelease(&a);  // release the outer lock first
  EXPECT_EQ(heldCount(), 1u);
  // With only the DataStore lock held, a Scheduler-ranked acquisition is
  // an inversion — but re-acquiring a *fresh* deeper rank is fine.
  onAcquire(&c, "pagespace", Rank::kPageSpace);
  onRelease(&c);
  onRelease(&b);
  EXPECT_EQ(heldCount(), 0u);
}

TEST(LockOrderCore, UnrankedLocksAreOrderExempt) {
  onAcquire(&a, "logging", Rank::kLogging);  // innermost rank
  onAcquire(&b, "scratch", Rank::kUnranked); // still legal under it
  onRelease(&b);
  onRelease(&a);
  EXPECT_EQ(heldCount(), 0u);
}

TEST(LockOrderCore, HeldStackIsPerThread) {
  onAcquire(&a, "scheduler", Rank::kScheduler);
  std::thread other([] {
    EXPECT_EQ(heldCount(), 0u);  // the main thread's stack is invisible
    onAcquire(&b, "server", Rank::kQueryServer);
    onRelease(&b);
  });
  other.join();
  EXPECT_EQ(heldCount(), 1u);
  onRelease(&a);
}

TEST(LockOrderCore, ReleaseOfUntrackedLockIsNoOp) {
  onRelease(&a);
  EXPECT_EQ(heldCount(), 0u);
}

using LockOrderDeathTest = ::testing::Test;

TEST(LockOrderDeathTest, InversionAborts) {
  EXPECT_DEATH(
      {
        onAcquire(&a, "datastore", Rank::kDataStore);
        onAcquire(&b, "scheduler", Rank::kScheduler);  // inner -> outer
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, EqualRankAborts) {
  EXPECT_DEATH(
      {
        onAcquire(&a, "scheduler-1", Rank::kScheduler);
        onAcquire(&b, "scheduler-2", Rank::kScheduler);
      },
      "lock-order violation");
}

TEST(LockOrderDeathTest, ReentrancyAborts) {
  EXPECT_DEATH(
      {
        onAcquire(&a, "scheduler", Rank::kScheduler);
        onAcquire(&a, "scheduler", Rank::kScheduler);
      },
      "reentrant");
}

TEST(LockOrderDeathTest, UnrankedReentrancyAborts) {
  EXPECT_DEATH(
      {
        onAcquire(&a, "scratch", Rank::kUnranked);
        onAcquire(&a, "scratch", Rank::kUnranked);
      },
      "reentrant");
}

// --- Mutex-hook integration (only where the hooks are compiled in) -------

#if MQS_LOCK_ORDER

TEST(LockOrderMutex, AnnotatedMutexDrivesChecker) {
  Mutex outer{Rank::kQueryServer, "test-outer"};
  Mutex inner{Rank::kScheduler, "test-inner"};
  {
    MutexLock l1(outer);
    EXPECT_EQ(heldCount(), 1u);
    MutexLock l2(inner);
    EXPECT_EQ(heldCount(), 2u);
  }
  EXPECT_EQ(heldCount(), 0u);
}

TEST(LockOrderMutex, CondVarWaitKeepsLockTracked) {
  Mutex mu{Rank::kBlockingQueue, "test-queue"};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    // The wait re-acquired mu_; the held stack must still record it.
    EXPECT_EQ(heldCount(), 1u);
  }
  producer.join();
  EXPECT_EQ(heldCount(), 0u);
}

TEST(LockOrderMutexDeathTest, MutexInversionAborts) {
  EXPECT_DEATH(
      {
        Mutex outer{Rank::kQueryServer, "test-outer"};
        Mutex inner{Rank::kScheduler, "test-inner"};
        MutexLock l1(inner);
        MutexLock l2(outer);
      },
      "lock-order violation");
}

#endif  // MQS_LOCK_ORDER

}  // namespace
}  // namespace mqs
