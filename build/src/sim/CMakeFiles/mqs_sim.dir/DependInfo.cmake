
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/disk_server.cpp" "src/sim/CMakeFiles/mqs_sim.dir/disk_server.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/disk_server.cpp.o.d"
  "/root/repo/src/sim/primitives.cpp" "src/sim/CMakeFiles/mqs_sim.dir/primitives.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/primitives.cpp.o.d"
  "/root/repo/src/sim/sim_server.cpp" "src/sim/CMakeFiles/mqs_sim.dir/sim_server.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/sim_server.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/mqs_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/vm_model.cpp" "src/sim/CMakeFiles/mqs_sim.dir/vm_model.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/vm_model.cpp.o.d"
  "/root/repo/src/sim/vol_model.cpp" "src/sim/CMakeFiles/mqs_sim.dir/vol_model.cpp.o" "gcc" "src/sim/CMakeFiles/mqs_sim.dir/vol_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/pagespace/CMakeFiles/mqs_pagespace.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/mqs_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mqs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mqs_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/vol/CMakeFiles/mqs_vol.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mqs_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
