// Predicates for the 3-D scientific-visualization application.
//
// Two query objects:
//   * Subvolume — a level-of-detail 3-D thumbnail: each output voxel is the
//     mean of an lod^3 cube of input voxels (the 3-D generalization of the
//     VM averaging function).
//   * Slice — one axis-aligned view plane at depth z, downsampled by the
//     same rule; defined as the mean over the lod-thick slab [z, z+lod), so
//     a Slice is exactly one z-layer of a Subvolume at the same lod. That
//     identity makes *cross-operator* reuse exact: a cached Subvolume can
//     answer a Slice query, and a cached Slice can fill one slab layer of a
//     Subvolume query.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "query/predicate.hpp"
#include "storage/data_source.hpp"

namespace mqs::vol {

enum class VolOp : std::uint8_t { Subvolume = 0, Slice = 1 };

constexpr std::string_view toString(VolOp op) {
  return op == VolOp::Subvolume ? "subvolume" : "slice";
}

class VolPredicate final : public query::Predicate {
 public:
  /// `box` dims must be divisible by `lod`; a Slice additionally has
  /// depth == lod (one output layer).
  VolPredicate(storage::DatasetId dataset, Box3 box, std::uint32_t lod,
               VolOp op)
      : dataset_(dataset), box_(box), lod_(lod), op_(op) {
    MQS_CHECK(!box.empty());
    MQS_CHECK(lod >= 1 && lod <= 255);  // lod^3 * 255 must fit in uint32
    MQS_CHECK_MSG(box.width() % lod == 0 && box.height() % lod == 0 &&
                      box.depth() % lod == 0,
                  "volume query box must be divisible by its lod");
    MQS_CHECK_MSG(op != VolOp::Slice || box.depth() == lod,
                  "a slice covers exactly one lod-thick slab");
  }

  /// Convenience for slices: (rect, z) instead of a box.
  static VolPredicate slice(storage::DatasetId dataset, Rect rect,
                            std::int64_t z, std::uint32_t lod) {
    return VolPredicate(
        dataset,
        Box3{rect.x0, rect.y0, z, rect.x1, rect.y1,
             z + static_cast<std::int64_t>(lod)},
        lod, VolOp::Slice);
  }

  [[nodiscard]] storage::DatasetId dataset() const { return dataset_; }
  [[nodiscard]] const Box3& box() const { return box_; }
  [[nodiscard]] std::uint32_t lod() const { return lod_; }
  [[nodiscard]] VolOp op() const { return op_; }

  [[nodiscard]] std::int64_t outWidth() const { return box_.width() / lod_; }
  [[nodiscard]] std::int64_t outHeight() const { return box_.height() / lod_; }
  [[nodiscard]] std::int64_t outDepth() const { return box_.depth() / lod_; }
  /// 1-byte voxels.
  [[nodiscard]] std::uint64_t outBytes() const {
    return static_cast<std::uint64_t>(outWidth() * outHeight() * outDepth());
  }

  [[nodiscard]] query::PredicatePtr clone() const override {
    return std::make_unique<VolPredicate>(*this);
  }
  [[nodiscard]] std::string_view kind() const override { return "vol"; }
  [[nodiscard]] Rect boundingBox() const override {
    // Index by xy footprint; z is resolved by the overlap function.
    return box_.footprint().shifted(
        static_cast<std::int64_t>(dataset_) * kDatasetStride, 0);
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "vol{ds=" << dataset_ << ' ' << box_ << " lod=" << lod_ << ' '
       << toString(op_) << '}';
    return os.str();
  }

  friend bool operator==(const VolPredicate& a, const VolPredicate& b) {
    return a.dataset_ == b.dataset_ && a.box_ == b.box_ && a.lod_ == b.lod_ &&
           a.op_ == b.op_;
  }

  static constexpr std::int64_t kDatasetStride = std::int64_t{1} << 40;

 private:
  storage::DatasetId dataset_;
  Box3 box_;
  std::uint32_t lod_;
  VolOp op_;
};

inline const VolPredicate& asVol(const query::Predicate& p) {
  MQS_CHECK_MSG(p.kind() == "vol", "expected a volume predicate");
  return static_cast<const VolPredicate&>(p);
}

}  // namespace mqs::vol
