// Experiment runner for the threaded runtime: real bytes, real threads.
// Used by integration tests and examples (the figure benches use the
// deterministic DES runner instead).
#pragma once

#include <vector>

#include "datastore/data_store.hpp"
#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "server/query_server.hpp"
#include "trace/trace.hpp"

namespace mqs::driver {

struct ServerRunResult {
  metrics::Summary summary;
  std::vector<metrics::QueryRecord> records;
  datastore::DataStore::Stats dsStats;
  pagespace::PageSpaceManager::Stats psStats;
  sched::QueryScheduler::Stats schedStats;
  /// Drained lifecycle trace (empty unless ServerConfig::traceSink is set).
  std::vector<trace::Event> traceEvents;
};

class ServerExperiment {
 public:
  /// Interactive clients: one thread per client, each waits for its result
  /// before issuing the next query. Synthetic slide sources are created
  /// from the workload's dataset specs.
  static ServerRunResult runInteractive(const WorkloadConfig& workload,
                                        const server::ServerConfig& server);

  /// Batch submission of the interleaved workload.
  static ServerRunResult runBatch(const WorkloadConfig& workload,
                                  const server::ServerConfig& server);
};

}  // namespace mqs::driver
