// Page Space Manager (§2): buffer space for input data in fixed-size pages.
//
// All interactions with data sources go through here. Pages are cached in
// memory under a byte budget; concurrent requests for the same page are
// merged so the device sees a single I/O ("duplicate requests are
// eliminated, to minimize I/O overhead").
//
// Beyond the blocking read-through fetch() the manager runs an asynchronous
// fetch pipeline: prefetch() issues a page read on a dedicated I/O thread
// pool without blocking the query thread, and fetchBatch() overlaps the
// device reads of a whole chunk list. Prefetches, batch fetches, and
// blocking fetches all coalesce onto one device read through the same
// in-flight table. A prefetched page carries a *claim* — it is pinned in
// the cache until a fetch consumes it (or the claim is released) so that
// eviction pressure from concurrent queries cannot throw away pages whose
// read was already paid for.
//
// Sharding (DESIGN.md §10): the cache state is split into N power-of-two
// shards keyed by the page-id hash, each with its own lock (rank
// kPageSpaceShard), so fetches of different pages by different query
// threads do not serialize on one mutex. The byte budget is partitioned
// into per-shard slices plus an atomic spare pool; a shard whose slice
// cannot hold an incoming page borrows idle budget (and, under global
// pressure, evicts from other shards' LRU tails) on a slow path that locks
// at most one shard at a time. shards == 1 (the default) reproduces the
// single-lock manager byte for byte.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "pagespace/page_cache_core.hpp"
#include "pagespace/scan_registry.hpp"
#include "storage/data_source.hpp"
#include "trace/trace.hpp"

namespace mqs::pagespace {

/// Immutable page payload shared between the cache and readers. A reader
/// holding a PagePtr keeps the bytes alive even if the cache evicts the
/// page meanwhile.
using PagePtr = std::shared_ptr<const std::vector<std::byte>>;

/// Value delivered through the in-flight table. Read failures travel as
/// plain data, not as a shared exception_ptr: every waiter merged onto one
/// device read builds its own exception from `error`/`message`, so no
/// exception object is ever rethrown concurrently on several threads.
struct ReadResult {
  enum class Error : std::uint8_t { None = 0, Transient, Permanent, Other };
  PagePtr page;
  Error error = Error::None;
  std::string message;
};

/// Device-read retry discipline. Only storage::TransientReadError is
/// retried; permanent faults and programming errors propagate immediately.
/// Attempt k (k >= 1) sleeps backoffSec * multiplier^(k-1) before retrying.
struct RetryPolicy {
  int maxAttempts = 3;
  double backoffSec = 0.0002;
  double multiplier = 2.0;
};

class PageSpaceManager {
 public:
  /// Default size of the asynchronous I/O pool. Matches the default
  /// executor readahead window so a full window can be in flight at once.
  static constexpr int kDefaultIoThreads = 4;
  /// Upper bound on the shard count (rounded up to a power of two).
  static constexpr int kMaxShards = 256;

  /// `shards` is rounded up to the next power of two (1..kMaxShards).
  explicit PageSpaceManager(std::uint64_t capacityBytes,
                            int ioThreads = kDefaultIoThreads,
                            RetryPolicy retry = {}, int shards = 1);
  ~PageSpaceManager();

  PageSpaceManager(const PageSpaceManager&) = delete;
  PageSpaceManager& operator=(const PageSpaceManager&) = delete;

  /// Register the raw storage behind a dataset id. Attach all sources
  /// before serving queries; the registration itself is thread-safe.
  void attach(storage::DatasetId dataset, const storage::DataSource* source)
      EXCLUDES(mu_);

  /// Attach a lifecycle tracer. Residency events emit PS_HIT / PS_MISS /
  /// PS_EVICT / PREFETCH_ISSUED / PREFETCH_WASTED counters, and a query
  /// thread blocked on device I/O emits an IO_STALL span attributed to the
  /// thread's current query (Tracer::QueryScope). While tracing is active
  /// the per-thread stall accounting reuses the span's own begin/end
  /// timestamps, so a query's IO_STALL span total equals its recorded
  /// ioStallTime exactly. The tracer must outlive the manager. Attach
  /// before serving queries (not thread-safe with concurrent fetches).
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Read-through fetch. Blocks the calling query thread on a miss while
  /// the page is read from its data source; concurrent fetches of the same
  /// page wait for the one in-flight I/O instead of duplicating it.
  ///
  /// Failure contract: a fetch that throws still consumes one outstanding
  /// prefetch claim on `key` (settled as unserved), exactly like a
  /// successful fetch — callers balance claims the same way on both paths.
  PagePtr fetch(const storage::PageKey& key);

  /// Asynchronous readahead hint: start reading `key` on the I/O pool and
  /// take out a claim on it. Never blocks. Resident and in-flight pages are
  /// claimed without a new device read. Every claim must be balanced by a
  /// later fetch() of the key or a releaseClaim(); claimed pages are pinned
  /// against eviction until then. No-op when the manager was built with
  /// ioThreads == 0 (synchronous mode).
  void prefetch(const storage::PageKey& key);

  /// Drop one outstanding prefetch claim without consuming the page. A
  /// claim released before any fetch used the page counts as wasted
  /// readahead. Safe to call for keys without a claim (no-op).
  void releaseClaim(const storage::PageKey& key);

  /// Blocking batch fetch: issues all misses to the I/O pool so their
  /// device reads overlap, then waits for each page in order. On failure
  /// the source's exception is rethrown and every claim taken by the batch
  /// is released — pages already fetched (and the failing fetch itself)
  /// consumed their claims, the unreached tail is released explicitly; no
  /// in-flight entries or claims leak, and claims held by other queries on
  /// the same keys are never touched.
  std::vector<PagePtr> fetchBatch(std::span<const storage::PageKey> keys);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< fetches that started a device read
    std::uint64_t merged = 0;        ///< fetches that joined an in-flight read
    std::uint64_t bytesRead = 0;     ///< bytes transferred from sources
    std::uint64_t evictions = 0;
    std::uint64_t prefetchIssued = 0;  ///< prefetches that started a read
    std::uint64_t prefetchHits = 0;    ///< issued reads later consumed
    std::uint64_t prefetchWasted = 0;  ///< issued reads never consumed
    // prefetchHits + prefetchWasted <= prefetchIssued; prefetches that
    // coalesce onto resident pages or in-flight reads count in neither.
    std::uint64_t readRetries = 0;   ///< transient-fault retries performed
    std::uint64_t readFailures = 0;  ///< device reads that failed for good
  };
  /// Lock-free: all counters are relaxed atomics bumped at the event site,
  /// so polling stats never contends with the fetch path.
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const RetryPolicy& retryPolicy() const { return retry_; }

  /// The configured total budget (immutable; no lock).
  [[nodiscard]] std::uint64_t capacityBytes() const { return capacityBytes_; }
  [[nodiscard]] std::uint64_t residentBytes() const;
  /// Number of shards the cache state is split into (a power of two).
  [[nodiscard]] int shardCount() const {
    return static_cast<int>(shards_.size());
  }
  /// Sum of the per-shard budget slices plus the spare pool. Equals
  /// capacityBytes() whenever no budget borrow is mid-flight — the
  /// conservation invariant the shard tests assert at quiescence.
  [[nodiscard]] std::uint64_t budgetAccountedBytes() const;
  /// Number of device reads currently in flight (tests / introspection).
  [[nodiscard]] std::size_t inflightCount() const;
  /// Number of keys with outstanding prefetch claims.
  [[nodiscard]] std::size_t claimCount() const;

  /// Shared-scan registry for dynamic query folding (DESIGN.md §14): the
  /// page-level duplicate-request elimination above generalized to whole
  /// remainder scans. The threaded server registers ComputeRemainder scans
  /// here and later queries fold into them; the registry has its own lock
  /// (rank kScanRegistry) and never touches the page cache state.
  [[nodiscard]] ScanRegistry& scanRegistry() { return scanRegistry_; }

  /// Per-thread I/O accounting for per-query metrics: a query (and its
  /// sub-queries) runs on one query thread, so the server resets the
  /// counters before execution and reads them afterwards. Device bytes are
  /// charged to the thread whose fetch started the read — or, for
  /// prefetched pages, to the first fetch that consumes the claim.
  static void resetThreadCounters();
  [[nodiscard]] static std::uint64_t threadDeviceBytes();
  /// Seconds this thread spent blocked inside fetch()/fetchBatch() waiting
  /// for device I/O since the last resetThreadCounters().
  [[nodiscard]] static double threadStallSeconds();

 private:
  /// Outstanding prefetch claims on one page. While `pinned`, the resident
  /// page cannot be evicted. `creditBytes` carries the device-read size of
  /// a prefetch-issued read to the first consuming fetch (per-query
  /// bytesFromDisk accounting).
  struct Claim {
    int count = 0;
    bool pinned = false;
    bool issued = false;  ///< a prefetch read was started for this claim
    std::uint64_t creditBytes = 0;
  };

  /// One slice of the cache: replacement core plus the payload, in-flight,
  /// and claim tables for the pages that hash here. Every field is guarded
  /// by the shard's own lock; a thread holds at most one shard lock at a
  /// time (equal ranks — the debug checker aborts on nesting).
  struct Shard {
    explicit Shard(std::uint64_t sliceBytes) : core(sliceBytes) {}

    mutable Mutex mu{lockorder::Rank::kPageSpaceShard,
                     "PageSpaceManager::Shard::mu"};
    PageCacheCore core GUARDED_BY(mu);
    std::unordered_map<storage::PageKey, PagePtr, storage::PageKeyHash>
        resident GUARDED_BY(mu);
    std::unordered_map<storage::PageKey, std::shared_future<ReadResult>,
                       storage::PageKeyHash>
        inflight GUARDED_BY(mu);
    std::unordered_map<storage::PageKey, Claim, storage::PageKeyHash> claims
        GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shardFor(const storage::PageKey& key) const {
    return *shards_[storage::PageKeyHash{}(key) & shardMask_];
  }

  const storage::DataSource* sourceFor(storage::DatasetId dataset) const
      EXCLUDES(mu_);
  /// Device read + cache insert + promise delivery. Runs on the caller
  /// thread (demand miss) or an I/O pool thread (prefetch). Exceptions are
  /// delivered through the promise; the in-flight entry never leaks.
  void performRead(const storage::PageKey& key,
                   const storage::DataSource* source,
                   std::promise<ReadResult>& promise, bool viaPrefetch);
  /// Consume one claim after a fetch of `key`. Returns the device bytes to
  /// credit the calling thread. `served` = the page (or its in-flight
  /// read) was still available; false means the prefetched copy was lost
  /// and had to be re-read.
  std::uint64_t consumeClaimLocked(Shard& s, const storage::PageKey& key,
                                   bool served) REQUIRES(s.mu);
  /// Insert a freshly read page into its shard, growing the shard's budget
  /// slice first if the page cannot fit (see borrowBudget). Always settles
  /// the claim/in-flight bookkeeping, even when the page stays uncached.
  void insertWithBudget(Shard& s, const storage::PageKey& key,
                        const PagePtr& page, std::size_t n, bool viaPrefetch);
  /// Cache insert + claim pin + credit + in-flight erase, all under the
  /// shard lock (the commit point of a successful read).
  void finishInsertLocked(Shard& s, const storage::PageKey& key,
                          const PagePtr& page, std::size_t n, bool viaPrefetch)
      REQUIRES(s.mu);
  /// Budget-rebalance slow path: collect up to `want` bytes of budget from
  /// the spare pool, idle headroom on other shards, and — under global
  /// pressure — other shards' unpinned LRU tails. Locks one shard at a
  /// time; `home` must not be locked by the caller. The returned bytes are
  /// owed to `home`'s slice (the caller adds them via setCapacity).
  std::uint64_t borrowBudget(std::uint64_t want, const Shard& home);
  std::uint64_t takeFromSpare(std::uint64_t want);

  /// Set once before any worker thread exists (QueryServer's constructor
  /// installs it before spawning workers); the pointee synchronizes itself.
  trace::Tracer* tracer_ = nullptr;

  const std::uint64_t capacityBytes_;  ///< total budget across all shards
  RetryPolicy retry_;                  ///< immutable after construction

  mutable Mutex mu_{lockorder::Rank::kPageSpace, "PageSpaceManager::mu_"};
  std::unordered_map<storage::DatasetId, const storage::DataSource*> sources_
      GUARDED_BY(mu_);

  /// Immutable after construction (the vector; shard contents are guarded
  /// by their own locks).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shardMask_ = 0;  ///< immutable after construction
  /// Budget bytes not currently assigned to any shard's slice. Invariant:
  /// sum(shard slice capacities) + spare_ == capacityBytes_ except inside
  /// a borrow (bytes in transit between a donor slice and the borrower).
  std::atomic<std::uint64_t> spare_{0};

  // Hot counters: relaxed atomics so stats() and concurrent fetches on
  // other shards never serialize on a stats lock.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> merged_{0};
  std::atomic<std::uint64_t> bytesRead_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> prefetchIssued_{0};
  std::atomic<std::uint64_t> prefetchHits_{0};
  std::atomic<std::uint64_t> prefetchWasted_{0};
  std::atomic<std::uint64_t> readRetries_{0};
  std::atomic<std::uint64_t> readFailures_{0};

  /// Scan-level folding state (own lock; independent of the shards).
  ScanRegistry scanRegistry_;

  /// Declared last: destroyed first, joining the I/O workers while the
  /// shards above are still alive for their final bookkeeping.
  std::unique_ptr<ThreadPool> io_;
};

}  // namespace mqs::pagespace
