file(REMOVE_RECURSE
  "CMakeFiles/ablation_cf_alpha.dir/ablation_cf_alpha.cpp.o"
  "CMakeFiles/ablation_cf_alpha.dir/ablation_cf_alpha.cpp.o.d"
  "ablation_cf_alpha"
  "ablation_cf_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cf_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
