// Failure semantics of the query server: a device fault or deadline kills
// exactly one query — it reaches the terminal FAILED status in the metrics
// record, the scheduler graph, and (over the wire) a Failed frame — while
// the server, its worker threads, and every other query keep working.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "net/codecs.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "server/query_server.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::server {
namespace {

using storage::FaultPlan;
using storage::FaultySource;
using vm::ImageRGB;
using vm::VMOp;
using vm::VMPredicate;

constexpr std::uint64_t kSeed = 77;

class FailureSemanticsTest : public ::testing::Test {
 protected:
  FailureSemanticsTest()
      : layout_(1024, 1024, 96), slide_(layout_, kSeed), exec_(&sem_) {
    dsid_ = sem_.addDataset(layout_);
  }

  ServerConfig config(int threads = 2) {
    ServerConfig cfg;
    cfg.threads = threads;
    cfg.policy = "CF";
    cfg.dsBytes = 16ULL << 20;
    cfg.psBytes = 8ULL << 20;
    return cfg;
  }

  std::unique_ptr<QueryServer> makeServer(ServerConfig cfg,
                                          const storage::DataSource& src) {
    auto server = std::make_unique<QueryServer>(&sem_, &exec_, cfg);
    server->attach(dsid_, &src);
    return server;
  }

  static void expectCorrect(const VMPredicate& q, const QueryResult& result) {
    const ImageRGB got =
        ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
    const ImageRGB expect = renderReference(q, kSeed);
    EXPECT_LE(maxAbsDiff(got, expect), 0) << q.describe();
  }

  /// A chunk id whose rect intersects `region` (to poison it).
  storage::PageId chunkIn(const Rect& region) const {
    const auto chunks = layout_.chunksIntersecting(region);
    EXPECT_FALSE(chunks.empty());
    return chunks.front().id;
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  storage::DatasetId dsid_ = 0;
};

TEST_F(FailureSemanticsTest, PermanentFaultFailsTheQueryNotTheServer) {
  const VMPredicate bad(dsid_, Rect::ofSize(0, 0, 256, 256), 4,
                        VMOp::Subsample);
  const VMPredicate good(dsid_, Rect::ofSize(512, 512, 256, 256), 4,
                         VMOp::Subsample);
  FaultPlan plan;
  plan.permanentPages = {chunkIn(bad.region())};
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(), faulty);

  auto f = server->submit(bad.clone(), 0);
  EXPECT_THROW((void)f.get(), QueryFailure);

  // The graph retired the node; nothing waits or executes.
  EXPECT_EQ(server->scheduler().waitingCount(), 0u);
  EXPECT_EQ(server->scheduler().executingCount(), 0u);
  EXPECT_EQ(server->scheduler().stats().failedCount, 1u);

  // The record carries the FAILED status and the device's reason.
  const auto records = server->collector().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].failed);
  EXPECT_NE(records[0].failureReason.find("permanent"), std::string::npos);
  EXPECT_EQ(metrics::summarize(records).failedQueries, 1u);

  // The same server keeps serving correct results off the healthy region.
  expectCorrect(good, server->execute(good.clone(), 1));
  EXPECT_EQ(metrics::summarize(server->collector().records()).failedQueries,
            1u);
}

TEST_F(FailureSemanticsTest, QueryFailureIsDeliveredExactlyOnce) {
  const VMPredicate bad(dsid_, Rect::ofSize(0, 0, 192, 192), 2,
                        VMOp::Subsample);
  FaultPlan plan;
  plan.permanentPages = {chunkIn(bad.region())};
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(/*threads=*/4), faulty);

  // The same doomed query many times over: each submission is its own
  // query, each must fail, and each failure must be reported exactly once
  // (one record per submission, all FAILED).
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server->submit(bad.clone(), i));
  for (auto& f : futures) EXPECT_THROW((void)f.get(), QueryFailure);

  const auto records = server->collector().records();
  ASSERT_EQ(records.size(), 8u);
  for (const auto& r : records) EXPECT_TRUE(r.failed);
  EXPECT_EQ(server->scheduler().stats().failedCount, 8u);
  EXPECT_EQ(server->scheduler().waitingCount(), 0u);
  EXPECT_EQ(server->scheduler().executingCount(), 0u);
}

TEST_F(FailureSemanticsTest, FailedQueryLeavesNoPartialDataStoreEntry) {
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 384, 384), 2, VMOp::Subsample);
  FaultPlan plan;
  // Poison a chunk in the middle of the region: the executor will have
  // materialized earlier chunks into its output before the read dies.
  const auto chunks = layout_.chunksIntersecting(q.region());
  ASSERT_GT(chunks.size(), 2u);
  plan.permanentPages = {chunks[chunks.size() / 2].id};
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(), faulty);

  auto f = server->submit(q.clone(), 0);
  EXPECT_THROW((void)f.get(), QueryFailure);

  // The half-written output buffer must not have become visible to
  // overlap/projection lookups.
  EXPECT_EQ(server->dataStore().stats().inserts, 0u);
  EXPECT_EQ(server->dataStore().residentBlobs(), 0u);

  // After the device is replaced, the same query computes from raw data
  // and is byte-perfect — nothing stale or partial shadowed it.
  faulty.clearPermanentFaults();
  const auto result = server->execute(q.clone(), 0);
  expectCorrect(q, result);
  EXPECT_GT(result.record.bytesFromDisk, 0u);
}

TEST_F(FailureSemanticsTest, TransientFaultsAreAbsorbedByRetries) {
  FaultPlan plan;
  plan.seed = 21;
  plan.transientRate = 0.3;
  plan.maxConsecutiveTransient = 2;  // < default ioRetryAttempts (3)
  FaultySource faulty(slide_, plan);
  ServerConfig cfg = config();
  cfg.ioRetryBackoffSec = 0.0;  // keep the test fast
  auto server = makeServer(cfg, faulty);

  for (int i = 0; i < 6; ++i) {
    const VMPredicate q(dsid_, Rect::ofSize((i % 3) * 256, (i / 3) * 256,
                                            256, 256),
                        4, VMOp::Subsample);
    expectCorrect(q, server->execute(q.clone(), i));
  }
  EXPECT_GT(faulty.stats().transientInjected, 0u);
  EXPECT_GT(server->pageSpace().stats().readRetries, 0u);
  EXPECT_EQ(server->pageSpace().stats().readFailures, 0u);
  EXPECT_EQ(metrics::summarize(server->collector().records()).failedQueries,
            0u);
}

TEST_F(FailureSemanticsTest, DeadlineExpiredInQueueFailsWithoutExecuting) {
  FaultPlan plan;
  plan.latencySpikeRate = 1.0;  // every device read sleeps
  plan.latencySpikeSec = 0.25;
  FaultySource slow(slide_, plan);
  ServerConfig cfg = config(/*threads=*/1);
  cfg.queryDeadlineSec = 0.05;
  auto server = makeServer(cfg, slow);

  // The first query dispatches immediately (well inside its deadline) and
  // occupies the only worker for >= 250ms; the second expires in the queue.
  const VMPredicate first(dsid_, Rect::ofSize(0, 0, 96, 96), 1,
                          VMOp::Subsample);
  const VMPredicate second(dsid_, Rect::ofSize(512, 0, 96, 96), 1,
                           VMOp::Subsample);
  auto f1 = server->submit(first.clone(), 0);
  auto f2 = server->submit(second.clone(), 1);

  expectCorrect(first, f1.get());
  try {
    (void)f2.get();
    FAIL() << "expired query returned a result";
  } catch (const QueryFailure& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }

  const auto records = server->collector().records();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    if (!r.failed) continue;
    // The expired query never touched the device.
    EXPECT_EQ(r.bytesFromDisk, 0u);
  }
  EXPECT_EQ(server->scheduler().stats().failedCount, 1u);
}

TEST_F(FailureSemanticsTest, DisabledDeadlineNeverFires) {
  FaultPlan plan;
  plan.latencySpikeRate = 1.0;
  plan.latencySpikeSec = 0.02;
  FaultySource slow(slide_, plan);
  ServerConfig cfg = config(/*threads=*/1);
  cfg.queryDeadlineSec = 0.0;  // default: no deadline
  auto server = makeServer(cfg, slow);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server->submit(
        std::make_unique<VMPredicate>(dsid_, Rect::ofSize(i * 96, 0, 96, 96),
                                      1, VMOp::Subsample),
        i));
  }
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
}

TEST_F(FailureSemanticsTest, FailedStatusCrossesTheWire) {
  const VMPredicate bad(dsid_, Rect::ofSize(0, 0, 256, 256), 4,
                        VMOp::Subsample);
  const VMPredicate good(dsid_, Rect::ofSize(512, 512, 256, 256), 4,
                         VMOp::Subsample);
  FaultPlan plan;
  plan.permanentPages = {chunkIn(bad.region())};
  FaultySource faulty(slide_, plan);
  auto server = makeServer(config(), faulty);

  const auto codecs = net::CodecRegistry::standard();
  net::NetServer netServer(*server, &codecs);
  net::NetClient client("127.0.0.1", netServer.port(), &codecs);

  // The remote client sees the same exception type a local caller would,
  // carried by a Failed frame rather than a torn connection.
  EXPECT_THROW((void)client.execute(bad), QueryFailure);

  // Same connection, next query: the stream is still framed correctly.
  const auto bytes = client.execute(good);
  const ImageRGB got =
      ImageRGB::fromBytes(bytes, good.outWidth(), good.outHeight());
  EXPECT_LE(maxAbsDiff(got, renderReference(good, kSeed)), 0);
  netServer.stop();
}

}  // namespace
}  // namespace mqs::server
