// Fixed-size worker pool, mirroring the paper's query-server thread pool
// ("typically the number of threads is the number of processors available
// in the SMP").
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/blocking_queue.hpp"

namespace mqs {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false if the pool is shutting down.
  bool submit(std::function<void()> task);

  /// Enqueue a task and obtain its result as a future.
  template <typename F>
  auto submitWithResult(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Stop accepting work, drain pending tasks, join all workers.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void workerLoop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;
};

}  // namespace mqs
