// True negatives for blocking-under-lock: low-rank locks, released locks,
// and CondVar::wait on the very mutex being held (which the wait releases).
#include "ranks.hpp"

namespace fx {

class NonBlocker {
 public:
  void lowRank() {
    MutexLock lock(lo_);
    fwrite(nullptr, 1, 0, nullptr);  // ok: rank 20 < 44
  }

  void afterUnlock() {
    {
      MutexLock lock(hi_);
    }
    fwrite(nullptr, 1, 0, nullptr);  // ok: lock released at scope exit
  }

  void waiter() {
    MutexLock lock(hi_);
    while (pending_ > 0) cv_.wait(hi_);  // ok: waits on the held mutex
  }

 private:
  Mutex lo_{lockorder::Rank::kMid, "fx.nb.lo"};
  Mutex hi_{lockorder::Rank::kShard, "fx.nb.hi"};
  CondVar cv_;
  int pending_ GUARDED_BY(hi_) = 0;
};

}  // namespace fx
