#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mqs::metrics {
namespace {

QueryRecord rec(double arrival, double start, double finish,
                double overlap = 0.0) {
  QueryRecord r;
  r.arrivalTime = arrival;
  r.startTime = start;
  r.finishTime = finish;
  r.overlapUsed = overlap;
  return r;
}

TEST(QueryRecord, DerivedTimes) {
  const QueryRecord r = rec(1.0, 3.0, 7.5);
  EXPECT_DOUBLE_EQ(r.waitTime(), 2.0);
  EXPECT_DOUBLE_EQ(r.execTime(), 4.5);
  EXPECT_DOUBLE_EQ(r.responseTime(), 6.5);
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.queries, 0u);
  EXPECT_DOUBLE_EQ(s.trimmedResponse, 0.0);
  EXPECT_DOUBLE_EQ(s.makespan, 0.0);
}

TEST(Summarize, BasicAggregates) {
  std::vector<QueryRecord> rs = {rec(0, 1, 2, 0.5), rec(1, 2, 5, 0.0),
                                 rec(2, 4, 6, 1.0)};
  rs[0].bytesFromDisk = 100;
  rs[1].bytesFromDisk = 200;
  rs[2].bytesReused = 300;
  const Summary s = summarize(rs);
  EXPECT_EQ(s.queries, 3u);
  EXPECT_DOUBLE_EQ(s.meanResponse, (2.0 + 4.0 + 4.0) / 3);
  EXPECT_DOUBLE_EQ(s.meanWait, (1.0 + 1.0 + 2.0) / 3);
  EXPECT_DOUBLE_EQ(s.meanExec, (1.0 + 3.0 + 2.0) / 3);
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);  // last finish 6 - first arrival 0
  EXPECT_DOUBLE_EQ(s.avgOverlap, 0.5);
  EXPECT_DOUBLE_EQ(s.reuseRate, 2.0 / 3);
  EXPECT_EQ(s.totalDiskBytes, 300u);
  EXPECT_EQ(s.totalReusedBytes, 300u);
}

TEST(Summarize, TrimmedMeanDiscardsTails) {
  std::vector<QueryRecord> rs;
  for (int i = 0; i < 78; ++i) rs.push_back(rec(0, 0, 10));
  rs.push_back(rec(0, 0, 1e6));
  rs.push_back(rec(0, 0, 1e-6));
  const Summary s = summarize(rs);
  // 80 samples: 2 dropped from each tail.
  EXPECT_NEAR(s.trimmedResponse, 10.0, 1e-9);
  EXPECT_GT(s.meanResponse, 1000.0);
}

TEST(Summarize, ResponsePercentiles) {
  std::vector<QueryRecord> rs;
  for (int i = 1; i <= 100; ++i) {
    rs.push_back(rec(0, 0, static_cast<double>(i)));
  }
  const Summary s = summarize(rs);
  EXPECT_NEAR(s.p50Response, 50.5, 0.01);
  EXPECT_NEAR(s.p95Response, 95.05, 0.01);
  EXPECT_NEAR(s.p99Response, 99.01, 0.01);
  EXPECT_LE(s.p50Response, s.p95Response);
  EXPECT_LE(s.p95Response, s.p99Response);
}

TEST(Summarize, MakespanUsesExtremes) {
  const Summary s = summarize({rec(5, 6, 7), rec(1, 2, 3), rec(2, 3, 9)});
  EXPECT_DOUBLE_EQ(s.makespan, 8.0);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jainFairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jainFairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jainFairness({3.0, 3.0, 3.0}), 1.0);
  // One client gets everything: index -> 1/n.
  EXPECT_DOUBLE_EQ(jainFairness({1.0, 0.0, 0.0, 0.0}), 0.25);
  // Classic example: (1+2+3)^2 / (3 * 14) = 36/42.
  EXPECT_DOUBLE_EQ(jainFairness({1.0, 2.0, 3.0}), 36.0 / 42.0);
  EXPECT_DOUBLE_EQ(jainFairness({0.0, 0.0}), 1.0);
}

TEST(PerClientMeanResponse, GroupsAndAverages) {
  std::vector<QueryRecord> rs;
  auto add = [&](int client, double response) {
    QueryRecord r = rec(0, 0, response);
    r.client = client;
    rs.push_back(r);
  };
  add(0, 2.0);
  add(0, 4.0);
  add(1, 10.0);
  add(-1, 99.0);  // anonymous: excluded
  const auto means = perClientMeanResponse(rs);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_EQ(means[0].first, 0);
  EXPECT_DOUBLE_EQ(means[0].second, 3.0);
  EXPECT_EQ(means[1].first, 1);
  EXPECT_DOUBLE_EQ(means[1].second, 10.0);
}

TEST(Summarize, FairnessIndexInSummary) {
  std::vector<QueryRecord> rs;
  for (int c = 0; c < 4; ++c) {
    QueryRecord r = rec(0, 0, 5.0);
    r.client = c;
    rs.push_back(r);
  }
  EXPECT_DOUBLE_EQ(summarize(rs).clientFairness, 1.0);
  rs[0].finishTime = 50.0;  // one client starves the others... or vice versa
  EXPECT_LT(summarize(rs).clientFairness, 1.0);
}

TEST(Collector, CollectsInOrder) {
  Collector c;
  c.add(rec(0, 1, 2));
  c.add(rec(1, 2, 3));
  EXPECT_EQ(c.count(), 2u);
  const auto rs = c.records();
  EXPECT_DOUBLE_EQ(rs[0].arrivalTime, 0.0);
  EXPECT_DOUBLE_EQ(rs[1].arrivalTime, 1.0);
}

TEST(Collector, ThreadSafeUnderConcurrentAdds) {
  Collector c;
  constexpr int kThreads = 8, kPer = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&c] {
        for (int i = 0; i < kPer; ++i) c.add(QueryRecord{});
      });
    }
  }
  EXPECT_EQ(c.count(), static_cast<std::size_t>(kThreads * kPer));
}

}  // namespace
}  // namespace mqs::metrics
