#include "common/lock_stats.hpp"

#include <atomic>
#include <cstddef>

namespace mqs::lockstats {

namespace {

// One slot per lockorder::Rank value, indexed by the enum's numeric value.
// The table is sized past the largest rank (kLogging = 100); out-of-range
// ranks clamp to the kUnranked slot so a future rank can never write past
// the array before this table is resized.
constexpr std::size_t kSlots =
    static_cast<std::size_t>(lockorder::Rank::kLogging) + 1;

struct Slot {
  std::atomic<std::uint64_t> contended{0};
  std::atomic<std::uint64_t> waitNanos{0};
};

Slot g_slots[kSlots];

std::size_t slotIndex(lockorder::Rank rank) noexcept {
  const auto i = static_cast<std::size_t>(rank);
  return i < kSlots ? i : 0;
}

}  // namespace

void recordContended(lockorder::Rank rank, std::uint64_t waitNanos) noexcept {
  Slot& s = g_slots[slotIndex(rank)];
  s.contended.fetch_add(1, std::memory_order_relaxed);
  s.waitNanos.fetch_add(waitNanos, std::memory_order_relaxed);
}

Counts countsFor(lockorder::Rank rank) noexcept {
  const Slot& s = g_slots[slotIndex(rank)];
  return Counts{s.contended.load(std::memory_order_relaxed),
                s.waitNanos.load(std::memory_order_relaxed)};
}

Counts totalCounts() noexcept {
  Counts total;
  for (const Slot& s : g_slots) {
    total.contended += s.contended.load(std::memory_order_relaxed);
    total.waitNanos += s.waitNanos.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace mqs::lockstats
