// Application cost model for the discrete-event engine.
//
// The DES shares all *decision* logic (scheduler, Data Store, page cache)
// with the threaded runtime; what it needs from an application is only the
// resource demand of computing a query part from raw data: which pages are
// fetched (through the simulated Page Space + disks) and how much CPU each
// chunk's processing burns. One adapter per application (vm_model.hpp,
// vol_model.hpp) derives this from the same layouts the real executors use.
#pragma once

#include <cstddef>
#include <vector>

#include "query/predicate.hpp"
#include "storage/data_source.hpp"

namespace mqs::sim {

struct ChunkDemand {
  storage::PageKey page;     ///< page to fetch (cached in the Page Space)
  std::size_t pageBytes = 0; ///< device transfer size on a miss
  double cpuSeconds = 0.0;   ///< processing burst after the page arrives
};

class AppModel {
 public:
  virtual ~AppModel() = default;

  /// Resource demand to compute `part` from raw data, in execution order.
  [[nodiscard]] virtual std::vector<ChunkDemand> demandFor(
      const query::Predicate& part) const = 0;
};

}  // namespace mqs::sim
