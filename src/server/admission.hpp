// Overload-behavior vocabulary for the query server (DESIGN.md §11).
//
// Under open-loop traffic the server cannot control its offered load, so
// every query meets one of exactly three fates before consuming compute:
//
//   ADMITTED  — entered the bounded admission queue; will execute, fail,
//               or be shed at dispatch.
//   REJECTED  — turned away at submit: the admission queue was at its
//               bound, or the client was over its fairness quota. Costs
//               one predicate decode and nothing else.
//   SHED      — admitted, but dropped at dispatch because its deadline had
//               already passed (or, with predictive shedding, because the
//               observed service rate says it cannot finish in time).
//
// The conservation law the overload test layer asserts:
//
//   offered == admitted + rejectedQueueFull + rejectedQuota
//   admitted == completed + failed + shedDeadline + (still in flight)
//
// All counters are relaxed atomics bumped at the event site: admission
// decisions happen on the submit path under QueryServer::mu_, but readers
// (benches, the load generator, tests) poll without taking any lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace mqs::server {

/// Why the server refused to spend compute on a query. Crosses the wire as
/// the u8 discriminator of the Rejected frame (net/wire.hpp).
enum class RejectReason : std::uint8_t {
  QueueFull = 1,     ///< admission queue at its bound (server saturated)
  ClientQuota = 2,   ///< per-client queued-queries/bytes quota exceeded
  DeadlineShed = 3,  ///< deadline passed (or predicted to pass) pre-compute
};

[[nodiscard]] constexpr std::string_view toString(RejectReason reason) {
  switch (reason) {
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::ClientQuota: return "client_quota";
    case RejectReason::DeadlineShed: return "deadline_shed";
  }
  return "unknown";
}

/// Plain snapshot of the admission counters (one coherent-enough read per
/// field; exact once the server has drained).
struct AdmissionCounts {
  std::uint64_t offered = 0;    ///< submit() calls (excluding shutdown races)
  std::uint64_t admitted = 0;   ///< entered the admission queue
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedQuota = 0;  ///< per-client fairness quota hits
  std::uint64_t shedDeadline = 0;   ///< dropped at dispatch, pre-compute
  std::uint64_t completed = 0;      ///< delivered result bytes
  std::uint64_t failed = 0;         ///< terminal FAILED (consumed compute)
  /// Queries that consumed compute and still finished (or failed) past
  /// their deadline — the misses shedding did not prevent.
  std::uint64_t deadlineMissed = 0;
  std::uint64_t queueDepth = 0;      ///< current admission-queue depth
  std::uint64_t peakQueueDepth = 0;  ///< high-water mark of queueDepth

  [[nodiscard]] std::uint64_t rejected() const {
    return rejectedQueueFull + rejectedQuota;
  }
  /// Queries with a known terminal fate (the rest are queued/executing).
  [[nodiscard]] std::uint64_t settled() const {
    return rejected() + shedDeadline + completed + failed;
  }
};

/// Lock-free admission accounting; owned by QueryServer, readable anytime.
class AdmissionStats {
 public:
  void onOffered() { bump(offered_); }
  void onAdmitted(std::uint64_t depth) {
    bump(admitted_);
    queueDepth_.store(depth, std::memory_order_relaxed);
    // Racy max update is fine: a lost race loses a near-identical peak.
    std::uint64_t peak = peakQueueDepth_.load(std::memory_order_relaxed);
    while (depth > peak &&
           !peakQueueDepth_.compare_exchange_weak(
               peak, depth, std::memory_order_relaxed)) {
    }
  }
  void onDispatched(std::uint64_t depth) {
    queueDepth_.store(depth, std::memory_order_relaxed);
  }
  void onRejected(RejectReason reason) {
    bump(reason == RejectReason::ClientQuota ? rejectedQuota_
                                             : rejectedQueueFull_);
  }
  void onShed() { bump(shedDeadline_); }
  void onCompleted() { bump(completed_); }
  void onFailed() { bump(failed_); }
  void onDeadlineMissed() { bump(deadlineMissed_); }

  [[nodiscard]] AdmissionCounts snapshot() const {
    AdmissionCounts c;
    c.offered = offered_.load(std::memory_order_relaxed);
    c.admitted = admitted_.load(std::memory_order_relaxed);
    c.rejectedQueueFull = rejectedQueueFull_.load(std::memory_order_relaxed);
    c.rejectedQuota = rejectedQuota_.load(std::memory_order_relaxed);
    c.shedDeadline = shedDeadline_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    c.deadlineMissed = deadlineMissed_.load(std::memory_order_relaxed);
    c.queueDepth = queueDepth_.load(std::memory_order_relaxed);
    c.peakQueueDepth = peakQueueDepth_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> offered_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejectedQueueFull_{0};
  std::atomic<std::uint64_t> rejectedQuota_{0};
  std::atomic<std::uint64_t> shedDeadline_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> deadlineMissed_{0};
  std::atomic<std::uint64_t> queueDepth_{0};
  std::atomic<std::uint64_t> peakQueueDepth_{0};
};

}  // namespace mqs::server
