// Blocking TCP client for the query server: the role the paper's emulated
// clients play from their PC cluster. Supports both interactive use
// (execute = send + receive) and pipelined batches (send everything, then
// drain responses in order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/codecs.hpp"

namespace mqs::net {

class NetClient {
 public:
  NetClient(const std::string& host, std::uint16_t port,
            const CodecRegistry* codecs);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Send a query frame; returns its request id.
  std::uint64_t send(const query::Predicate& pred);

  struct Response {
    std::uint64_t requestId = 0;
    std::vector<std::byte> bytes;
  };
  /// Block for the next response. Throws std::runtime_error carrying the
  /// server's message for Error frames or on disconnect.
  Response receive();

  /// Interactive convenience: send + receive.
  std::vector<std::byte> execute(const query::Predicate& pred);

  void close();

 private:
  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  const CodecRegistry* codecs_;
};

}  // namespace mqs::net
