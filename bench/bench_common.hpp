// Shared harness utilities for the figure benches.
//
// Every bench runs at a scale-reduced default so the whole suite finishes
// in seconds, and accepts --full to run the paper-scale configuration
// (3 x 30000^2 slides, 16 clients x 16 queries, 1024^2 outputs). In reduced
// mode outputs are 256^2 (1/16 of the paper's bytes), so all Data Store /
// Page Space budgets are scaled by the same 1/16 — the x-axis labels keep
// the paper's MB values to stay comparable with the original figures.
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "driver/sim_experiment.hpp"
#include "driver/workload.hpp"
#include "sim/sim_server.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace mqs::bench {

class Context {
 public:
  Context(int argc, const char* const* argv, const std::string& benchName)
      : opts_(argc, argv), name_(benchName) {
    full_ = opts_.getBool("full", false);
    seed_ = static_cast<std::uint64_t>(opts_.getInt("seed", 20020415));
  }

  /// Flushes the machine-readable summary (--json-dir) on the way out.
  ~Context() { writeJsonSummary(); }

  [[nodiscard]] bool full() const { return full_; }
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Paper-labelled bytes -> actual simulated bytes at this scale.
  [[nodiscard]] std::uint64_t scaleBytes(std::uint64_t paperBytes) const {
    return full_ ? paperBytes : paperBytes / 16;
  }

  /// The paper's client workload (§5): 16 clients split 8/6/2 over three
  /// slides, 16 queries each, 1024^2 outputs at various magnifications.
  [[nodiscard]] driver::WorkloadConfig workload(vm::VMOp op) const {
    driver::WorkloadConfig cfg;
    if (full_) {
      cfg.datasets = {driver::DatasetSpec{30000, 30000, 146, 11},
                      driver::DatasetSpec{30000, 30000, 146, 22},
                      driver::DatasetSpec{30000, 30000, 146, 33}};
      cfg.outputSide = 1024;
    } else {
      cfg.datasets = {driver::DatasetSpec{8192, 8192, 146, 11},
                      driver::DatasetSpec{8192, 8192, 146, 22},
                      driver::DatasetSpec{8192, 8192, 146, 33}};
      cfg.outputSide = 256;
    }
    cfg.clientsPerDataset = {8, 6, 2};
    cfg.queriesPerClient = static_cast<int>(
        opts_.getInt("queries", full_ ? 16 : 16));
    cfg.zoomLevels = {2, 4, 8, 16};
    cfg.zoomWeights = {2.0, 3.0, 2.0, 1.0};
    cfg.alignGrid = 32;
    cfg.op = op;
    cfg.seed = seed_;
    return cfg;
  }

  /// The paper's machine: 24-processor SMP, local disk farm, DS/PS budgets
  /// given in paper-label bytes.
  [[nodiscard]] sim::SimConfig server(const std::string& policy, int threads,
                                      std::uint64_t dsPaperBytes,
                                      std::uint64_t psPaperBytes) const {
    sim::SimConfig cfg;
    cfg.policy = policy;
    cfg.threads = threads;
    cfg.cpus = 24;
    cfg.diskFarm.disks = static_cast<int>(opts_.getInt("disks", 1));
    cfg.dsBytes = scaleBytes(dsPaperBytes);
    cfg.psBytes = scaleBytes(psPaperBytes);
    cfg.alpha = opts_.getDouble("alpha", 0.2);
    // Readahead depth, sweepable on every figure bench (--prefetch N);
    // default 0 keeps the paper's synchronous-fetch baseline figures.
    cfg.prefetchPages = static_cast<int>(opts_.getInt("prefetch", 0));
    return cfg;
  }

  void printHeader() const {
    std::cout << "# " << name_ << " — "
              << (full_ ? "PAPER scale (--full)" : "reduced scale (default; pass --full for paper scale)")
              << ", seed " << seed_ << "\n"
              << "# memory labels are paper-scale values"
              << (full_ ? "" : "; actual budgets scaled by 1/16 with the 1/16-size outputs")
              << "\n\n";
  }

  void emit(const Table& table) {
    table.print(std::cout);
    std::cout << '\n';
    if (opts_.has("csv-dir")) {
      const std::string path = opts_.getString("csv-dir", ".") + "/" + name_ +
                               "_" + sanitize(table.title()) + ".csv";
      if (table.writeCsv(path)) {
        std::cout << "# wrote " << path << "\n\n";
      }
    }
    if (opts_.has("json-dir")) emitted_.push_back(table);
  }

  /// With --trace-out, hand a fresh tracer to the *first* caller (one
  /// traced run keeps file sizes sane); returns whether the config now
  /// carries the sink. The caller exports the drained events from the run
  /// result via writeTraceEvents().
  [[nodiscard]] bool attachTraceSink(sim::SimConfig& cfg) {
    if (!opts_.has("trace-out") || traceTaken_) return false;
    traceTaken_ = true;
    cfg.traceSink = std::make_shared<trace::Tracer>();
    return true;
  }

  void writeTraceEvents(const std::vector<trace::Event>& events) const {
    const std::string path =
        opts_.getString("trace-out", name_ + ".trace.json");
    std::cout << (trace::writeChromeTrace(path, events) ? "# wrote "
                                                        : "# FAILED to write ")
              << path << " (" << events.size() << " events)\n\n";
  }

 private:
  /// BENCH_<name>.json: every emitted table plus the run's provenance, so
  /// scripts/reproduce.sh leaves a machine-readable record per figure.
  void writeJsonSummary() const {
    if (!opts_.has("json-dir") || emitted_.empty()) return;
    const std::string path =
        opts_.getString("json-dir", ".") + "/BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "# FAILED to write " << path << "\n";
      return;
    }
    os << "{\n  \"bench\": " << trace::jsonQuote(name_)
       << ",\n  \"seed\": " << seed_
       << ",\n  \"full\": " << (full_ ? "true" : "false")
       << ",\n  \"tables\": [";
    for (std::size_t t = 0; t < emitted_.size(); ++t) {
      const Table& table = emitted_[t];
      os << (t == 0 ? "" : ",") << "\n    {\n      \"title\": "
         << trace::jsonQuote(table.title()) << ",\n      \"columns\": [";
      for (std::size_t c = 0; c < table.columns().size(); ++c) {
        os << (c == 0 ? "" : ", ") << trace::jsonQuote(table.columns()[c]);
      }
      os << "],\n      \"rows\": [";
      for (std::size_t r = 0; r < table.rows().size(); ++r) {
        os << (r == 0 ? "" : ", ") << "[";
        for (std::size_t c = 0; c < table.rows()[r].size(); ++c) {
          os << (c == 0 ? "" : ", ") << trace::jsonQuote(table.rows()[r][c]);
        }
        os << "]";
      }
      os << "]\n    }";
    }
    os << "\n  ]\n}\n";
    std::cout << "# wrote " << path << "\n";
  }

  static std::string sanitize(std::string s) {
    for (char& c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return s;
  }

  Options opts_;
  std::string name_;
  bool full_ = false;
  std::uint64_t seed_ = 0;
  bool traceTaken_ = false;
  std::vector<Table> emitted_;
};

inline const char* opName(vm::VMOp op) {
  return op == vm::VMOp::Subsample ? "subsampling" : "pixel averaging";
}

}  // namespace mqs::bench
