#include "vm/image.hpp"

#include <cstdlib>
#include <fstream>

#include "common/check.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::vm {

ImageRGB ImageRGB::fromBytes(std::span<const std::byte> bytes,
                             std::int64_t width, std::int64_t height) {
  MQS_CHECK(bytes.size() >= static_cast<std::size_t>(width * height * 3));
  ImageRGB img(width, height);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    img.pixels[i] = static_cast<std::uint8_t>(bytes[i]);
  }
  return img;
}

bool writePpm(const ImageRGB& img, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << img.width << ' ' << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size()));
  return static_cast<bool>(out);
}

ImageRGB renderReference(const VMPredicate& q, std::uint64_t seed) {
  const auto z = static_cast<std::int64_t>(q.zoom());
  ImageRGB img(q.outWidth(), q.outHeight());
  for (std::int64_t py = 0; py < img.height; ++py) {
    for (std::int64_t px = 0; px < img.width; ++px) {
      const std::int64_t x = q.region().x0 + px * z;
      const std::int64_t y = q.region().y0 + py * z;
      for (int c = 0; c < 3; ++c) {
        if (q.op() == VMOp::Subsample) {
          img.at(px, py, c) = storage::syntheticPixel(seed, x, y, c);
        } else {
          std::uint32_t sum = 0;
          for (std::int64_t dy = 0; dy < z; ++dy) {
            for (std::int64_t dx = 0; dx < z; ++dx) {
              sum += storage::syntheticPixel(seed, x + dx, y + dy, c);
            }
          }
          const auto window = static_cast<std::uint32_t>(z * z);
          img.at(px, py, c) =
              static_cast<std::uint8_t>((sum + window / 2) / window);
        }
      }
    }
  }
  return img;
}

int maxAbsDiff(const ImageRGB& a, const ImageRGB& b) {
  MQS_CHECK(a.width == b.width && a.height == b.height);
  int worst = 0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<int>(a.pixels[i]) -
                                     static_cast<int>(b.pixels[i])));
  }
  return worst;
}

}  // namespace mqs::vm
