file(REMOVE_RECURSE
  "CMakeFiles/mqs_storage.dir/disk_model.cpp.o"
  "CMakeFiles/mqs_storage.dir/disk_model.cpp.o.d"
  "CMakeFiles/mqs_storage.dir/file_source.cpp.o"
  "CMakeFiles/mqs_storage.dir/file_source.cpp.o.d"
  "CMakeFiles/mqs_storage.dir/synthetic_source.cpp.o"
  "CMakeFiles/mqs_storage.dir/synthetic_source.cpp.o.d"
  "libmqs_storage.a"
  "libmqs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
