# Empty dependencies file for remote_viewer.
# This may be replaced when dependencies are built.
