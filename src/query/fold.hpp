// Dynamic query folding (DESIGN.md §14): merging the overlapping
// ComputeRemainder work of concurrently in-flight queries into one shared
// scan. The scan's owner registers its remainder region with the
// pagespace::ScanRegistry before computing it from raw data; later queries
// that are planned while the scan is still running receive it as a
// FoldCandidate and may emit a FoldIntoScan plan step ('F' in plan shapes)
// instead of re-scanning the same pages.
//
// This header is deliberately tiny: it is the only fold vocabulary shared
// between the planner (src/query) and the scan registry (src/pagespace), so
// neither layer needs the other's headers.
#pragma once

#include <cstdint>

#include "query/predicate.hpp"

namespace mqs::query {

/// Unique id of one registered shared scan (pagespace::ScanRegistry).
using ScanId = std::uint64_t;

/// One still-running shared scan offered to the planner as a fold target.
/// The engine snapshots these (ScanRegistry::candidatesFor) immediately
/// before planning and is responsible for the deadlock rule: only scans
/// whose owner has a *strictly smaller* execution sequence number than the
/// subscribing query are offered, so fold waits — like executing-source
/// waits — always point at strictly older executions and stay acyclic.
struct FoldCandidate {
  ScanId scanId = 0;
  PredicatePtr pred;            ///< the scan's region/zoom/op predicate
  std::uint64_t ownerNode = 0;  ///< scheduling-graph node of the scan owner
  std::uint64_t ownerSeq = 0;   ///< owner's execution sequence number
};

}  // namespace mqs::query
