// mqs — command-line front door to the middleware.
//
//   mqs serve  [--port 0] [--policy CF] [--threads 4] [--datasets 3]
//              [--side 8192] [--ds 64MB] [--ps 32MB] [--prefetch 4]
//              [--io-threads 4] [--reuse-sources 4]
//              [--ds-shards 1] [--ps-shards 1]
//              [--ds-eviction LRU] [--spill-bytes 0] [--spill-dir DIR]
//              [--queue-limit 0] [--client-quota 0]
//              [--client-byte-quota 0] [--deadline 0] [--shed]
//              [--predictive-shed] [--trace-out serve.trace.json]
//       Start a query server on synthetic slides and print the port;
//       runs until stdin closes (pipe `sleep inf |` for a daemon).
//       --queue-limit/--client-quota bound admission, --deadline + --shed
//       drop doomed queries (DESIGN.md §11). --ds-eviction picks the Data
//       Store victim ranker (LRU|LFU|LARGEST|COST) and --spill-bytes > 0
//       enables the disk spill tier (DESIGN.md §13; --spill-dir places the
//       payload files, default in-memory). --trace-out dumps the
//       lifecycle trace on shutdown.
//
//   mqs query  --port P [--dataset 0] [--x 0 --y 0] [--side 1024]
//              [--zoom 4] [--op subsample|average] [--out img.ppm]
//       Execute one remote query; optionally save the image.
//
//   mqs experiment [--policy CF] [--threads 4] [--op subsample]
//                  [--batch] [--ds 64MB] [--ps 32MB] [--full]
//                  [--ds-eviction LRU] [--spill-bytes 0]
//                  [--reuse-sources 4] [--trace-out run.trace.json]
//                  [--query-csv queries.csv]
//       Run the paper's client workload on the deterministic DES and
//       print the summary row. --trace-out writes the query-lifecycle
//       trace as Chrome trace_event JSON (load in ui.perfetto.dev);
//       --query-csv writes one row of lifecycle accounting per query.
//
//   mqs trace-gen --out trace.txt [--seed 42]
//       Generate the paper workload and save it as a replayable trace.
//
//   mqs loadgen --port P [--host 127.0.0.1] [--rate 50] [--duration 10]
//               [--connections 4] [--arrival poisson|bursty|diurnal]
//               [--dataset 0] [--side 8192] [--region 256] [--zipf-s 1.1]
//               [--seed 1] [--json]
//       Open-loop wire-protocol load against a running `mqs serve`
//       (DESIGN.md §11): Poisson/bursty/diurnal arrivals, zipfian region
//       popularity, latency percentiles measured from the *scheduled*
//       arrival (no coordinated omission). Prints a summary table, or the
//       full report as JSON with --json. Pair with the serve overload
//       flags (--queue-limit, --client-quota, --deadline, --shed) to
//       watch admission control and load shedding engage.
#include <iostream>
#include <string>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "driver/sim_experiment.hpp"
#include "driver/trace.hpp"
#include "loadgen/loadgen.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/export.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

using namespace mqs;

namespace {

int usage() {
  std::cerr << "usage: mqs <serve|query|experiment|trace-gen|loadgen>"
               " [options]\n"
               "see the header of tools/mqs_cli.cpp for the full list\n";
  return 2;
}

driver::WorkloadConfig paperWorkload(const Options& opts) {
  driver::WorkloadConfig wl;
  const bool full = opts.getBool("full", false);
  const std::int64_t side = full ? 30000 : 8192;
  wl.datasets = {driver::DatasetSpec{side, side, 146, 11},
                 driver::DatasetSpec{side, side, 146, 22},
                 driver::DatasetSpec{side, side, 146, 33}};
  wl.outputSide = full ? 1024 : 256;
  wl.zoomLevels = {2, 4, 8, 16};
  wl.zoomWeights = {2, 3, 2, 1};
  wl.alignGrid = 32;
  wl.op = opts.getString("op", "subsample") == "average"
              ? vm::VMOp::Average
              : vm::VMOp::Subsample;
  wl.seed = opts.getInt("seed", 20020415);
  return wl;
}

int cmdServe(const Options& opts) {
  vm::VMSemantics semantics;
  std::vector<std::unique_ptr<storage::SyntheticSlideSource>> sources;
  const auto datasets = opts.getInt("datasets", 3);
  const auto side = opts.getInt("side", 8192);
  for (std::int64_t d = 0; d < datasets; ++d) {
    const auto id =
        semantics.addDataset(index::ChunkLayout(side, side, 146));
    sources.push_back(std::make_unique<storage::SyntheticSlideSource>(
        semantics.layout(id), static_cast<std::uint64_t>(11 * (d + 1))));
  }
  server::ServerConfig cfg;
  cfg.threads = static_cast<int>(opts.getInt("threads", 4));
  cfg.policy = opts.getString("policy", "CF");
  cfg.dsBytes = opts.getBytes("ds", 64 * MiB);
  cfg.psBytes = opts.getBytes("ps", 32 * MiB);
  cfg.prefetchPages = static_cast<int>(opts.getInt("prefetch", 4));
  cfg.psIoThreads = static_cast<int>(opts.getInt("io-threads", 4));
  cfg.maxReuseSources =
      static_cast<int>(opts.getInt("reuse-sources", cfg.maxReuseSources));
  cfg.dsShards = static_cast<int>(opts.getInt("ds-shards", cfg.dsShards));
  cfg.psShards = static_cast<int>(opts.getInt("ps-shards", cfg.psShards));
  // Cost-aware caching and the spill tier (DESIGN.md §13).
  cfg.dsEviction = opts.getString("ds-eviction", cfg.dsEviction);
  cfg.spillBytes = opts.has("spill-bytes") ? opts.getBytes("spill-bytes", 0)
                                           : cfg.spillBytes;
  cfg.spillDir = opts.getString("spill-dir", cfg.spillDir);
  // Overload defenses (DESIGN.md §11) — all off by default.
  cfg.admissionQueueLimit =
      static_cast<std::size_t>(opts.getInt("queue-limit", 0));
  cfg.maxQueuedPerClient = static_cast<int>(opts.getInt("client-quota", 0));
  cfg.maxQueuedBytesPerClient =
      opts.has("client-byte-quota") ? opts.getBytes("client-byte-quota", 0)
                                    : 0;
  cfg.queryDeadlineSec = opts.getDouble("deadline", cfg.queryDeadlineSec);
  cfg.shedDeadlineMisses = opts.getBool("shed", false);
  cfg.predictiveShedding = opts.getBool("predictive-shed", false);
  if (opts.has("trace-out")) {
    cfg.traceSink = std::make_shared<trace::Tracer>();
  }
  vm::VMExecutor executor(&semantics, /*intraQueryThreads=*/1,
                          cfg.prefetchPages);
  server::QueryServer queryServer(&semantics, &executor, cfg);
  for (std::size_t d = 0; d < sources.size(); ++d) {
    queryServer.attach(static_cast<storage::DatasetId>(d), sources[d].get());
  }

  const auto codecs = net::CodecRegistry::standard();
  net::NetServer netServer(queryServer, &codecs,
                           static_cast<std::uint16_t>(opts.getInt("port", 0)));
  std::cout << "mqs server on 127.0.0.1:" << netServer.port() << " — "
            << datasets << " datasets of " << side << "^2, policy "
            << cfg.policy << "; close stdin to stop\n"
            << std::flush;

  // Serve until stdin closes.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  const auto summary = metrics::summarize(queryServer.collector().records());
  std::cout << "served " << summary.queries << " queries, reuse rate "
            << summary.reuseRate << "\n";
  netServer.stop();
  queryServer.shutdown();
  if (cfg.traceSink != nullptr) {
    const auto path = opts.getString("trace-out", "serve.trace.json");
    std::cout << (trace::writeChromeTrace(path, cfg.traceSink->drain())
                      ? "wrote "
                      : "FAILED to write ")
              << path << "\n";
  }
  return 0;
}

int cmdQuery(const Options& opts) {
  if (!opts.has("port")) {
    std::cerr << "query requires --port\n";
    return 2;
  }
  const auto codecs = net::CodecRegistry::standard();
  net::NetClient client("127.0.0.1",
                        static_cast<std::uint16_t>(opts.getInt("port", 0)),
                        &codecs);
  const auto zoom = static_cast<std::uint32_t>(opts.getInt("zoom", 4));
  const std::int64_t side = opts.getInt("side", 1024) *
                            static_cast<std::int64_t>(zoom);
  const vm::VMPredicate q(
      static_cast<storage::DatasetId>(opts.getInt("dataset", 0)),
      Rect::ofSize(opts.getInt("x", 0), opts.getInt("y", 0), side, side),
      zoom,
      opts.getString("op", "subsample") == "average" ? vm::VMOp::Average
                                                     : vm::VMOp::Subsample);
  std::cout << "query " << q.describe() << "\n";
  const auto bytes = client.execute(q);
  std::cout << "received " << formatBytes(bytes.size()) << "\n";
  if (opts.has("out")) {
    const auto img =
        vm::ImageRGB::fromBytes(bytes, q.outWidth(), q.outHeight());
    const auto path = opts.getString("out", "query.ppm");
    std::cout << "wrote " << path << ": " << vm::writePpm(img, path) << "\n";
  }
  return 0;
}

int cmdExperiment(const Options& opts) {
  sim::SimConfig cfg;
  cfg.policy = opts.getString("policy", "CF");
  cfg.threads = static_cast<int>(opts.getInt("threads", 4));
  const bool full = opts.getBool("full", false);
  cfg.dsBytes = opts.getBytes("ds", full ? 64 * MiB : 4 * MiB);
  cfg.psBytes = opts.getBytes("ps", full ? 32 * MiB : 2 * MiB);
  cfg.ioModel = opts.getString("io", "kstream");
  cfg.prefetchPages = static_cast<int>(opts.getInt("prefetch", 0));
  cfg.dsEviction = opts.getString("ds-eviction", cfg.dsEviction);
  cfg.spillBytes = opts.has("spill-bytes") ? opts.getBytes("spill-bytes", 0)
                                           : cfg.spillBytes;
  cfg.maxReuseSources =
      static_cast<int>(opts.getInt("reuse-sources", cfg.maxReuseSources));
  if (opts.has("trace-out")) {
    cfg.traceSink = std::make_shared<trace::Tracer>();
  }

  const auto wl = paperWorkload(opts);
  const bool batch = opts.getBool("batch", false);
  const auto result = batch
                          ? driver::SimExperiment::runBatch(wl, cfg)
                          : driver::SimExperiment::runInteractive(wl, cfg);

  if (opts.has("trace-out")) {
    const auto path = opts.getString("trace-out", "experiment.trace.json");
    if (trace::writeChromeTrace(path, result.traceEvents)) {
      std::cout << "wrote " << path << " (" << result.traceEvents.size()
                << " events)\n";
    } else {
      std::cerr << "FAILED to write " << path << "\n";
      return 1;
    }
  }
  if (opts.has("query-csv")) {
    const auto path = opts.getString("query-csv", "queries.csv");
    if (trace::writeQueryCsv(path, result.records)) {
      std::cout << "wrote " << path << " (" << result.records.size()
                << " queries)\n";
    } else {
      std::cerr << "FAILED to write " << path << "\n";
      return 1;
    }
  }

  Table table(std::string("experiment — ") + cfg.policy + ", " +
              (batch ? "batch" : "interactive") + ", " +
              (wl.op == vm::VMOp::Average ? "averaging" : "subsampling"));
  table.setColumns({"metric", "value"});
  table.addRow({"queries", std::to_string(result.summary.queries)});
  table.addRow({"trimmed response (s)",
                formatDouble(result.summary.trimmedResponse, 3)});
  table.addRow({"makespan (s)", formatDouble(result.summary.makespan, 2)});
  table.addRow({"avg overlap", formatDouble(result.summary.avgOverlap, 3)});
  table.addRow({"fairness", formatDouble(result.summary.clientFairness, 3)});
  table.addRow({"device bytes", formatBytes(result.io.bytesRead)});
  table.addRow({"DES events", std::to_string(result.events)});
  if (cfg.spillBytes > 0) {
    table.addRow({"spill demoted / restored",
                  std::to_string(result.spillStats.demoted) + " / " +
                      std::to_string(result.spillStats.restored)});
  }
  table.print(std::cout);
  return 0;
}

int cmdTraceGen(const Options& opts) {
  vm::VMSemantics semantics;
  const auto wl = paperWorkload(opts);
  const auto workloads = driver::WorkloadGenerator::generate(wl, semantics);
  const auto path = opts.getString("out", "trace.txt");
  const bool ok = driver::saveTrace(path, workloads);
  std::cout << (ok ? "wrote " : "FAILED to write ") << path << " ("
            << workloads.size() << " clients)\n";
  return ok ? 0 : 1;
}

int cmdLoadgen(const Options& opts) {
  if (!opts.has("port")) {
    std::cerr << "loadgen requires --port\n";
    return 2;
  }
  loadgen::LoadGenConfig cfg;
  cfg.host = opts.getString("host", "127.0.0.1");
  cfg.port = static_cast<std::uint16_t>(opts.getInt("port", 0));
  cfg.connections = static_cast<int>(opts.getInt("connections", 4));
  cfg.durationSec = opts.getDouble("duration", 10.0);
  cfg.arrival.kind =
      loadgen::parseArrivalKind(opts.getString("arrival", "poisson"));
  cfg.arrival.ratePerSec = opts.getDouble("rate", 50.0);
  cfg.workload.dataset =
      static_cast<storage::DatasetId>(opts.getInt("dataset", 0));
  const auto side = opts.getInt("side", 8192);
  cfg.workload.slideWidth = side;
  cfg.workload.slideHeight = side;
  cfg.workload.regionSide = opts.getInt("region", 256);
  cfg.workload.zipfS = opts.getDouble("zipf-s", 1.1);
  cfg.seed = static_cast<std::uint64_t>(opts.getInt("seed", 1));

  const auto codecs = net::CodecRegistry::standard();
  std::cout << "loadgen: " << loadgen::toString(cfg.arrival.kind)
            << " arrivals at " << cfg.arrival.ratePerSec << " q/s over "
            << cfg.connections << " connections for " << cfg.durationSec
            << "s\n"
            << std::flush;
  const loadgen::LoadGenReport rep = loadgen::runLoad(cfg, &codecs);

  if (opts.getBool("json", false)) {
    std::cout << rep.toJson() << "\n";
    return 0;
  }
  const auto pctMs = [&rep](double p) {
    return formatDouble(
        static_cast<double>(rep.latency.percentileNanos(p)) / 1e6, 1);
  };
  Table table("loadgen — open-loop, measured from scheduled arrival");
  table.setColumns({"metric", "value"});
  table.addRow({"offered", std::to_string(rep.offered)});
  table.addRow({"completed", std::to_string(rep.completed)});
  table.addRow({"failed", std::to_string(rep.failed)});
  table.addRow({"rejected (queue full)",
                std::to_string(rep.rejectedQueueFull)});
  table.addRow({"rejected (client quota)",
                std::to_string(rep.rejectedQuota)});
  table.addRow({"shed (deadline)", std::to_string(rep.shedDeadline)});
  table.addRow({"errors / timeouts / send failures",
                std::to_string(rep.errors) + " / " +
                    std::to_string(rep.timeouts) + " / " +
                    std::to_string(rep.sendFailures)});
  table.addRow({"goodput (q/s)", formatDouble(rep.goodputPerSec(), 1)});
  table.addRow({"shed+reject rate", formatDouble(rep.shedRate(), 3)});
  table.addRow({"p50 / p95 / p99 / p99.9 (ms)",
                pctMs(50) + " / " + pctMs(95) + " / " + pctMs(99) + " / " +
                    pctMs(99.9)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  if (opts.positional().empty()) return usage();
  const std::string& cmd = opts.positional()[0];
  try {
    if (cmd == "serve") return cmdServe(opts);
    if (cmd == "query") return cmdQuery(opts);
    if (cmd == "experiment") return cmdExperiment(opts);
    if (cmd == "trace-gen") return cmdTraceGen(opts);
    if (cmd == "loadgen") return cmdLoadgen(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
