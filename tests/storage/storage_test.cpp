#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include <chrono>

#include "common/check.hpp"
#include "storage/delayed_source.hpp"
#include "storage/disk_model.hpp"
#include "storage/file_source.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::storage {
namespace {

TEST(SyntheticPixel, DeterministicAndStable) {
  // The function is part of the repository's test contract: these golden
  // values must never change (reference renders depend on them).
  EXPECT_EQ(syntheticPixel(0, 0, 0, 0), syntheticPixel(0, 0, 0, 0));
  const auto a = syntheticPixel(42, 17, 23, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(syntheticPixel(42, 17, 23, 1), a);
  }
}

TEST(SyntheticPixel, VariesAcrossInputs) {
  std::set<int> values;
  for (int x = 0; x < 32; ++x) {
    for (int y = 0; y < 32; ++y) {
      values.insert(syntheticPixel(7, x, y, 0));
    }
  }
  // 1024 draws over 256 possible values: expect near-full coverage.
  EXPECT_GT(values.size(), 200u);
}

TEST(SyntheticPixel, ChannelsAndSeedsIndependent) {
  int diffChannel = 0, diffSeed = 0;
  for (int x = 0; x < 64; ++x) {
    if (syntheticPixel(7, x, 0, 0) != syntheticPixel(7, x, 0, 1)) ++diffChannel;
    if (syntheticPixel(7, x, 0, 0) != syntheticPixel(8, x, 0, 0)) ++diffSeed;
  }
  EXPECT_GT(diffChannel, 48);
  EXPECT_GT(diffSeed, 48);
}

TEST(SyntheticSlideSource, PageContentMatchesPixelFunction) {
  const index::ChunkLayout layout(300, 200, 96);
  const SyntheticSlideSource src(layout, 5);
  EXPECT_EQ(src.pageCount(), layout.chunkCount());

  for (PageId p = 0; p < src.pageCount(); ++p) {
    std::vector<std::byte> buf(src.pageBytes(p));
    src.readPage(p, buf);
    const Rect r = layout.chunkRect(p);
    // Spot-check corners of each chunk.
    auto at = [&](std::int64_t x, std::int64_t y, int c) {
      const auto idx =
          ((y - r.y0) * r.width() + (x - r.x0)) * 3 + c;
      return static_cast<std::uint8_t>(buf[static_cast<std::size_t>(idx)]);
    };
    EXPECT_EQ(at(r.x0, r.y0, 0), syntheticPixel(5, r.x0, r.y0, 0));
    EXPECT_EQ(at(r.x1 - 1, r.y1 - 1, 2),
              syntheticPixel(5, r.x1 - 1, r.y1 - 1, 2));
  }
}

TEST(SyntheticSlideSource, EdgePagesAreShort) {
  const index::ChunkLayout layout(250, 130, 100);
  const SyntheticSlideSource src(layout, 1);
  EXPECT_EQ(src.pageBytes(0), 100u * 100 * 3);
  EXPECT_EQ(src.pageBytes(5), 50u * 30 * 3);  // bottom-right corner
}

TEST(SyntheticSlideSource, BufferTooSmallThrows) {
  const index::ChunkLayout layout(100, 100, 50);
  const SyntheticSlideSource src(layout, 1);
  std::vector<std::byte> tiny(10);
  EXPECT_THROW(src.readPage(0, tiny), CheckFailure);
}

class FileSourceTest : public ::testing::Test {
 protected:
  FileSourceTest()
      : layout_(260, 140, 96),
        slide_(layout_, 9),
        path_(std::filesystem::temp_directory_path() / "mqs_slide.bin") {}
  ~FileSourceTest() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }

  index::ChunkLayout layout_;
  SyntheticSlideSource slide_;
  std::filesystem::path path_;
};

TEST_F(FileSourceTest, MaterializeAndReadBackEveryPage) {
  const std::uint64_t written = FileSource::materialize(slide_, path_);
  EXPECT_EQ(written, 260u * 140 * 3);
  EXPECT_EQ(std::filesystem::file_size(path_), written);

  FileSource file(path_, layout_);
  EXPECT_EQ(file.pageCount(), slide_.pageCount());
  for (PageId p = 0; p < file.pageCount(); ++p) {
    ASSERT_EQ(file.pageBytes(p), slide_.pageBytes(p));
    std::vector<std::byte> fromFile(file.pageBytes(p));
    std::vector<std::byte> fromSynthetic(slide_.pageBytes(p));
    file.readPage(p, fromFile);
    slide_.readPage(p, fromSynthetic);
    EXPECT_EQ(fromFile, fromSynthetic) << "page " << p;
  }
}

TEST_F(FileSourceTest, SizeMismatchDetected) {
  (void)FileSource::materialize(slide_, path_);
  // A layout implying a different total size must be rejected.
  const index::ChunkLayout wrong(261, 140, 96);
  EXPECT_THROW(FileSource(path_, wrong), CheckFailure);
}

TEST_F(FileSourceTest, MissingFileThrows) {
  EXPECT_THROW(FileSource("/nonexistent/mqs.bin", layout_), CheckFailure);
}

TEST(DiskModel, ServiceTimeComposition) {
  DiskModel m;
  m.seekOverheadSec = 0.004;
  m.sequentialOverheadSec = 0.001;
  m.bytesPerSecond = 1'000'000;
  // Single stream: sequential overhead only.
  EXPECT_DOUBLE_EQ(m.serviceTime(500'000, 1), 0.5 + 0.001);
  // Two streams: half the requests break the run.
  EXPECT_DOUBLE_EQ(m.serviceTime(500'000, 2), 0.5 + 0.001 + 0.003 / 2);
  // Many streams: approaches the full seek.
  EXPECT_NEAR(m.serviceTime(0, 1000), 0.004, 1e-5);
  // streams < 1 clamps.
  EXPECT_DOUBLE_EQ(m.serviceTime(100, 0), m.serviceTime(100, 1));
}

TEST(DiskModel, ServiceTimeMonotoneInStreams) {
  DiskModel m;
  double prev = 0.0;
  for (int k = 1; k <= 32; ++k) {
    const double t = m.serviceTime(64 * 1024, k);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(DiskFarmModel, RoundRobinStriping) {
  DiskFarmModel farm;
  farm.disks = 3;
  EXPECT_EQ(farm.diskFor(0), 0);
  EXPECT_EQ(farm.diskFor(1), 1);
  EXPECT_EQ(farm.diskFor(2), 2);
  EXPECT_EQ(farm.diskFor(3), 0);
}

TEST(DelayedSource, AddsModeledLatencyAndPreservesBytes) {
  const index::ChunkLayout layout(128, 128, 64);
  const SyntheticSlideSource inner(layout, 3);
  DiskModel model;
  model.seekOverheadSec = 0.0;
  model.sequentialOverheadSec = 0.02;
  model.bytesPerSecond = 1e12;  // latency-dominated
  const DelayedSource delayed(inner, model);

  EXPECT_EQ(delayed.pageCount(), inner.pageCount());
  EXPECT_EQ(delayed.pageBytes(0), inner.pageBytes(0));

  std::vector<std::byte> a(inner.pageBytes(0)), b(inner.pageBytes(0));
  const auto t0 = std::chrono::steady_clock::now();
  delayed.readPage(0, a);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  inner.readPage(0, b);
  EXPECT_EQ(a, b);
  EXPECT_GE(elapsed, 0.018);  // ~20ms modeled latency (scheduler slack)
}

TEST(PageKey, HashSpreadsAndEqualityWorks) {
  PageKeyHash h;
  std::set<std::size_t> hashes;
  for (std::uint32_t d = 0; d < 4; ++d) {
    for (std::uint64_t p = 0; p < 64; ++p) {
      hashes.insert(h(PageKey{d, p}));
    }
  }
  EXPECT_EQ(hashes.size(), 256u);  // no collisions in this small set
  EXPECT_EQ((PageKey{1, 2}), (PageKey{1, 2}));
  EXPECT_NE((PageKey{1, 2}), (PageKey{2, 1}));
}

}  // namespace
}  // namespace mqs::storage
