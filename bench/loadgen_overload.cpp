// Overload curves: open-loop wire-protocol load vs the server's overload
// defenses (DESIGN.md §11).
//
// Self-hosting: a real QueryServer behind a real NetServer on loopback,
// driven by src/loadgen over TCP. The bench first calibrates the host's
// service capacity (goodput under heavy offered load with a bounded
// admission queue), then sweeps offered-rate multiples of that capacity
// across three server policies:
//
//   open   — no defenses: unbounded admission queue, no deadline. The
//            baseline whose latency blows up past saturation.
//   admit  — bounded admission queue + per-client quotas: excess load is
//            rejected at the door, keeping queue wait (hence completed-
//            query latency) bounded.
//   shed   — admit plus deadline-based shedding (observed + predictive):
//            queries that cannot meet queryDeadlineSec are dropped at
//            dispatch before consuming compute.
//
// Output: one overload-curve table per policy (goodput, shed rate, and
// latency percentiles vs offered rate) plus a provenance table recording
// the host width and calibrated capacity — tail latencies on a 1-core CI
// runner are not comparable with a wide host, so the record travels with
// the numbers. --smoke shrinks the sweep and turns the key §11 claims
// into exit-status assertions: exact client- and server-side conservation,
// the queue bound holding under 4x overload, rejection/shedding actually
// engaging, and completed-query p99 staying bounded for defended policies.
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "loadgen/loadgen.hpp"
#include "net/net_server.hpp"
#include "server/admission.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

using namespace mqs;

namespace {

struct Policy {
  std::string name;
  bool bounded = false;   ///< admission queue bound + per-client quotas
  bool shedding = false;  ///< deadline + observed/predictive shedding
};

constexpr std::size_t kQueueLimit = 16;
constexpr int kPerClientLimit = 8;
constexpr double kDeadlineSec = 0.5;

struct Cell {
  loadgen::LoadGenReport rep;
  server::AdmissionCounts counts;
};

Cell runCell(const Policy& policy, double ratePerSec, double durationSec,
             int connections, std::uint64_t seed) {
  index::ChunkLayout layout(4096, 4096, 96);
  storage::SyntheticSlideSource slide(layout, seed);
  vm::VMSemantics sem;
  const storage::DatasetId dsid = sem.addDataset(layout);
  vm::VMExecutor exec(&sem);
  const net::CodecRegistry codecs = net::CodecRegistry::standard();

  server::ServerConfig cfg;
  cfg.threads = 3;
  cfg.policy = "CF";
  // Small caches on purpose: with room for the whole (zipf-concentrated)
  // working set, every query is a result-cache hit and the "overloaded"
  // server never saturates.
  cfg.dsBytes = 2ULL << 20;
  cfg.psBytes = 2ULL << 20;
  if (policy.bounded) {
    cfg.admissionQueueLimit = kQueueLimit;
    cfg.maxQueuedPerClient = kPerClientLimit;
  }
  if (policy.shedding) {
    cfg.queryDeadlineSec = kDeadlineSec;
    cfg.shedDeadlineMisses = true;
    cfg.predictiveShedding = true;
  }
  server::QueryServer qs(&sem, &exec, cfg);
  qs.attach(dsid, &slide);
  net::NetServer net(qs, &codecs);

  loadgen::LoadGenConfig lg;
  lg.port = net.port();
  lg.connections = connections;
  lg.durationSec = durationSec;
  lg.arrival.ratePerSec = ratePerSec;
  lg.workload.dataset = dsid;
  lg.workload.slideWidth = 4096;
  lg.workload.slideHeight = 4096;
  // Heavy on purpose: 512^2 averaging reads ~0.8 MB of pixels per query
  // across a 128-predicate keyspace that dwarfs the result cache, so a
  // 1-core CI host saturates at an offered rate the open-loop sender can
  // comfortably exceed — otherwise 4x "overload" never overloads.
  lg.workload.regionSide = 512;
  lg.workload.zooms = {2, 4};
  lg.workload.averageOpFraction = 1.0;
  lg.seed = seed;

  Cell cell;
  cell.rep = loadgen::runLoad(lg, &codecs);
  net.stop();
  qs.shutdown();
  cell.counts = qs.admission().snapshot();
  return cell;
}

bool clientConservationHolds(const loadgen::LoadGenReport& r) {
  return r.offered == r.completed + r.failed + r.rejected() +
                          r.shedDeadline + r.errors + r.timeouts +
                          r.sendFailures;
}

double ms(std::uint64_t nanos) { return static_cast<double>(nanos) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "overload");
  const Options& opts = ctx.options();
  const bool smoke = opts.getBool("smoke", false);

  const int connections = static_cast<int>(opts.getInt("connections", 4));
  const double duration = opts.getDouble("duration", smoke ? 0.8 : 3.0);
  const auto seed = static_cast<std::uint64_t>(opts.getInt("seed", 20020415));
  const auto multsX10 = opts.getIntList(
      "multsx10", smoke ? std::vector<std::int64_t>{5, 40}
                        : std::vector<std::int64_t>{5, 10, 20, 40});

  std::cout << "# loadgen_overload — offered load vs overload defenses\n"
            << "# host hardware threads: "
            << std::thread::hardware_concurrency() << "\n";

  // --- calibrate: goodput under saturating load with a bounded queue ----
  // Escalate the probe rate until goodput falls clearly below the offered
  // rate — only then is the measured goodput the service capacity rather
  // than an echo of the (insufficient) offered load. The bounded queue
  // keeps the post-run drain tiny, so goodput is not a backlog artifact.
  double capacity = opts.getDouble("rate", 0.0);
  if (capacity <= 0.0) {
    const double probeDuration = smoke ? 0.8 : 1.5;
    double probeRate = 50.0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const Cell probe = runCell(Policy{"admit", true, false}, probeRate,
                                 probeDuration, connections, seed);
      capacity = std::max(probe.rep.goodputPerSec(), 2.0);
      const double offeredRate =
          static_cast<double>(probe.rep.offered) / probeDuration;
      std::cout << "# calibration probe: offered "
                << formatDouble(offeredRate, 1) << " q/s, goodput "
                << formatDouble(capacity, 1) << " q/s\n";
      if (capacity < 0.7 * offeredRate) break;  // saturated
      probeRate *= 2.0;
    }
  }
  std::cout << "# calibrated capacity: " << formatDouble(capacity, 1)
            << " q/s\n\n";

  const std::vector<Policy> policies = {
      {"open", false, false},
      {"admit", true, false},
      {"shed", true, true},
  };

  bool ok = true;
  for (const Policy& policy : policies) {
    Table table("overload_curve_" + policy.name);
    table.setColumns({"xcapacity", "rate_qps", "offered", "completed",
                      "goodput_qps", "shed_rate", "p50_ms", "p99_ms",
                      "p999_ms", "timeouts"});
    for (const std::int64_t mx10 : multsX10) {
      const double mult = static_cast<double>(mx10) / 10.0;
      const double rate = mult * capacity;
      const Cell cell = runCell(policy, rate, duration, connections, seed);
      const loadgen::LoadGenReport& r = cell.rep;
      table.addRow({formatDouble(mult, 1), formatDouble(rate, 1),
                    std::to_string(r.offered), std::to_string(r.completed),
                    formatDouble(r.goodputPerSec(), 1),
                    formatDouble(r.shedRate(), 3),
                    formatDouble(ms(r.latency.percentileNanos(50)), 1),
                    formatDouble(ms(r.latency.percentileNanos(99)), 1),
                    formatDouble(ms(r.latency.percentileNanos(99.9)), 1),
                    std::to_string(r.timeouts)});

      // --- §11 claims as exit-status assertions -------------------------
      if (!clientConservationHolds(r)) {
        std::cout << "# FAIL [" << policy.name << " x" << mult
                  << "]: client-side conservation violated: " << r.toJson()
                  << "\n";
        ok = false;
      }
      const server::AdmissionCounts& c = cell.counts;
      if (c.offered != c.settled()) {
        std::cout << "# FAIL [" << policy.name << " x" << mult
                  << "]: server-side conservation violated: offered="
                  << c.offered << " settled=" << c.settled() << "\n";
        ok = false;
      }
      if (policy.bounded && c.peakQueueDepth > kQueueLimit) {
        std::cout << "# FAIL [" << policy.name << " x" << mult
                  << "]: admission queue exceeded its bound: peak="
                  << c.peakQueueDepth << " limit=" << kQueueLimit << "\n";
        ok = false;
      }
      const bool overloaded = mult >= 2.0;
      if (policy.bounded && overloaded &&
          c.rejected() + c.shedDeadline == 0) {
        std::cout << "# FAIL [" << policy.name << " x" << mult
                  << "]: no load rejected/shed at " << mult
                  << "x capacity\n";
        ok = false;
      }
      // Generous on purpose: a 1-core CI host serializes everything, so
      // the gate only catches runaway (unbounded-queue-like) tails.
      if (policy.bounded && r.completed > 0 &&
          ms(r.latency.percentileNanos(99)) > 15000.0) {
        std::cout << "# FAIL [" << policy.name << " x" << mult
                  << "]: completed p99 unbounded: "
                  << ms(r.latency.percentileNanos(99)) << " ms\n";
        ok = false;
      }
    }
    ctx.emit(table);
  }

  Table prov("provenance");
  prov.setColumns({"host_threads", "capacity_qps", "duration_sec",
                   "connections", "queue_limit", "deadline_sec"});
  prov.addRow({std::to_string(std::thread::hardware_concurrency()),
               formatDouble(capacity, 1), formatDouble(duration, 2),
               std::to_string(connections), std::to_string(kQueueLimit),
               formatDouble(kDeadlineSec, 2)});
  ctx.emit(prov);

  if (!ok) {
    std::cout << "# overload invariants FAILED\n";
    return 1;
  }
  std::cout << "# overload invariants held\n";
  return 0;
}
