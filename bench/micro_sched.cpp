// A3 micro-benchmarks: cost of scheduling-graph maintenance, and the
// incremental vs full-recomputation ranking ablation the paper motivates
// ("updates to the query scheduling graph and topological sort are done in
// an incremental fashion to avoid performance degradation").
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sched/scheduler.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace {

using namespace mqs;

vm::VMSemantics& semantics() {
  static vm::VMSemantics sem = [] {
    vm::VMSemantics s;
    (void)s.addDataset(index::ChunkLayout(30000, 30000, 146));
    return s;
  }();
  return sem;
}

query::PredicatePtr randomPred(Rng& rng) {
  const std::uint32_t zoom = 1u << rng.uniformInt(1, 4);
  const std::int64_t side = static_cast<std::int64_t>(zoom) * 256;
  auto snap = [&](std::int64_t v) { return (v / 32) * 32; };
  return std::make_unique<vm::VMPredicate>(
      0,
      Rect::ofSize(snap(rng.uniformInt(0, 20000)),
                   snap(rng.uniformInt(0, 20000)), side, side),
      zoom, vm::VMOp::Subsample);
}

void BM_GraphInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sched::SchedulingGraph g(&semantics());
    Rng rng(42);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(g.insert(randomPred(rng)));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GraphInsert)->Arg(64)->Arg(256)->Arg(1024);

void runSchedulerCycle(bool incremental, const std::string& policy,
                       benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sched::QueryScheduler s(&semantics(), sched::makePolicy(policy, 0.2),
                            incremental);
    Rng rng(42);
    std::vector<sched::NodeId> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(s.submit(randomPred(rng)));
    }
    state.ResumeTiming();
    // Drain: dequeue, complete, occasionally swap out — the steady-state
    // event mix a busy server generates.
    std::size_t completedCount = 0;
    while (auto node = s.dequeue()) {
      s.completed(*node);
      if (++completedCount % 3 == 0) s.swappedOut(*node);
    }
    benchmark::DoNotOptimize(completedCount);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_SchedulerDrain_CF_Incremental(benchmark::State& state) {
  runSchedulerCycle(true, "CF", state);
}
void BM_SchedulerDrain_CF_FullRecompute(benchmark::State& state) {
  runSchedulerCycle(false, "CF", state);
}
void BM_SchedulerDrain_MUF_Incremental(benchmark::State& state) {
  runSchedulerCycle(true, "MUF", state);
}
void BM_SchedulerDrain_MUF_FullRecompute(benchmark::State& state) {
  runSchedulerCycle(false, "MUF", state);
}
BENCHMARK(BM_SchedulerDrain_CF_Incremental)->Arg(128)->Arg(512);
BENCHMARK(BM_SchedulerDrain_CF_FullRecompute)->Arg(128)->Arg(512);
BENCHMARK(BM_SchedulerDrain_MUF_Incremental)->Arg(128)->Arg(512);
BENCHMARK(BM_SchedulerDrain_MUF_FullRecompute)->Arg(128)->Arg(512);

void BM_BestReuseSource(benchmark::State& state) {
  sched::QueryScheduler s(&semantics(), sched::makePolicy("CF", 0.2));
  Rng rng(42);
  std::vector<sched::NodeId> nodes;
  for (int i = 0; i < 256; ++i) nodes.push_back(s.submit(randomPred(rng)));
  // Mark half cached so there is something to find.
  for (int i = 0; i < 128; ++i) {
    if (auto n = s.dequeue()) s.completed(*n);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.bestReuseSource(nodes[i++ % nodes.size()], true));
  }
}
BENCHMARK(BM_BestReuseSource);

}  // namespace
