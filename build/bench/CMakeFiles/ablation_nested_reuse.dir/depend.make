# Empty dependencies file for ablation_nested_reuse.
# This may be replaced when dependencies are built.
