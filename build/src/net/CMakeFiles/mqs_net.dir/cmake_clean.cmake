file(REMOVE_RECURSE
  "CMakeFiles/mqs_net.dir/codecs.cpp.o"
  "CMakeFiles/mqs_net.dir/codecs.cpp.o.d"
  "CMakeFiles/mqs_net.dir/net_client.cpp.o"
  "CMakeFiles/mqs_net.dir/net_client.cpp.o.d"
  "CMakeFiles/mqs_net.dir/net_server.cpp.o"
  "CMakeFiles/mqs_net.dir/net_server.cpp.o.d"
  "CMakeFiles/mqs_net.dir/wire.cpp.o"
  "CMakeFiles/mqs_net.dir/wire.cpp.o.d"
  "libmqs_net.a"
  "libmqs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
