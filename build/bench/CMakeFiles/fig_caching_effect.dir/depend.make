# Empty dependencies file for fig_caching_effect.
# This may be replaced when dependencies are built.
