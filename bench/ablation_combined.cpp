// Ablation A2: the COMBINED strategy (shortest *effective* job first —
// SJF discounted by reuse coverage), the paper's future-work item 1
// ("a combination of SJF and the other ranking strategies would provide a
// viable solution"), against all six paper strategies on both the
// interactive and batch scenarios.
#include "bench_common.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_combined");
  ctx.printHeader();

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("COMBINED vs paper strategies, ") +
                bench::opName(op));
    table.setColumns({"policy", "trimmed-response(s)", "avg-overlap",
                      "batch-total(s)"});
    for (const auto& policy : sched::allPolicyNames()) {
      const auto inter = driver::SimExperiment::runInteractive(
          ctx.workload(op), ctx.server(policy, 4, 64 * MiB, 32 * MiB));
      const auto batch = driver::SimExperiment::runBatch(
          ctx.workload(op), ctx.server(policy, 4, 64 * MiB, 32 * MiB));
      table.addRow({policy, formatDouble(inter.summary.trimmedResponse, 3),
                    formatDouble(inter.summary.avgOverlap, 3),
                    formatDouble(batch.summary.makespan, 2)});
    }
    ctx.emit(table);
  }
  return 0;
}
