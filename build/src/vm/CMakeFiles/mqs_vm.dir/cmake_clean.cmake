file(REMOVE_RECURSE
  "CMakeFiles/mqs_vm.dir/image.cpp.o"
  "CMakeFiles/mqs_vm.dir/image.cpp.o.d"
  "CMakeFiles/mqs_vm.dir/vm_executor.cpp.o"
  "CMakeFiles/mqs_vm.dir/vm_executor.cpp.o.d"
  "CMakeFiles/mqs_vm.dir/vm_semantics.cpp.o"
  "CMakeFiles/mqs_vm.dir/vm_semantics.cpp.o.d"
  "libmqs_vm.a"
  "libmqs_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
