
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vol/synthetic_volume.cpp" "src/vol/CMakeFiles/mqs_vol.dir/synthetic_volume.cpp.o" "gcc" "src/vol/CMakeFiles/mqs_vol.dir/synthetic_volume.cpp.o.d"
  "/root/repo/src/vol/vol_executor.cpp" "src/vol/CMakeFiles/mqs_vol.dir/vol_executor.cpp.o" "gcc" "src/vol/CMakeFiles/mqs_vol.dir/vol_executor.cpp.o.d"
  "/root/repo/src/vol/vol_semantics.cpp" "src/vol/CMakeFiles/mqs_vol.dir/vol_semantics.cpp.o" "gcc" "src/vol/CMakeFiles/mqs_vol.dir/vol_semantics.cpp.o.d"
  "/root/repo/src/vol/volume_layout.cpp" "src/vol/CMakeFiles/mqs_vol.dir/volume_layout.cpp.o" "gcc" "src/vol/CMakeFiles/mqs_vol.dir/volume_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/pagespace/CMakeFiles/mqs_pagespace.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
