file(REMOVE_RECURSE
  "libmqs_sim.a"
)
