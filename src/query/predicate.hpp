// Query predicate meta-information (the "M" objects of §2).
//
// A predicate fully describes what a query computes: for the Virtual
// Microscope it is (dataset, region, magnification, processing function).
// The runtime treats predicates as opaque; applications define the
// user-defined functions over them via QuerySemantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/geometry.hpp"

namespace mqs::query {

class Predicate {
 public:
  virtual ~Predicate() = default;

  [[nodiscard]] virtual std::unique_ptr<Predicate> clone() const = 0;

  /// Application discriminator; predicates of different kinds never match.
  [[nodiscard]] virtual std::string_view kind() const = 0;

  /// Spatial bounding box used to index cached results (Data Store R-tree).
  /// Predicates of non-spatial applications may return a degenerate box.
  [[nodiscard]] virtual Rect boundingBox() const = 0;

  /// Human-readable form for logs and test diagnostics.
  [[nodiscard]] virtual std::string describe() const = 0;
};

using PredicatePtr = std::unique_ptr<Predicate>;

}  // namespace mqs::query
