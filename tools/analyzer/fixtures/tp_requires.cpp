// True positive: the inversion is only visible because REQUIRES(hi_)
// seeds the helper's entry hold set — exactly the *Locked-helper idiom the
// hold-set propagation exists for.
#include "ranks.hpp"

namespace fx {

class ReqOwner {
 public:
  void entry() {
    MutexLock lock(hi_);
    helperLocked();
  }

 private:
  void helperLocked() REQUIRES(hi_) {
    MutexLock inner(lo_);  // FINDING: rank 10 with rank 50 held via REQUIRES
  }

  Mutex lo_{lockorder::Rank::kLow, "fx.req.lo"};
  Mutex hi_{lockorder::Rank::kHigh, "fx.req.hi"};
};

}  // namespace fx
