// Volume-visualization cost adapter for the DES: brick I/O from the volume
// layouts, CPU proportional to the clipped voxels scanned (the LOD mean is
// an averaging-class operator, so its default constant matches the VM
// averaging calibration).
#pragma once

#include "sim/app_model.hpp"
#include "vol/vol_semantics.hpp"

namespace mqs::sim {

class VolModel final : public AppModel {
 public:
  VolModel(const vol::VolSemantics* semantics, double cpuPerVoxel = 4.6e-8);

  [[nodiscard]] std::vector<ChunkDemand> demandFor(
      const query::Predicate& part) const override;

 private:
  const vol::VolSemantics* sem_;
  double cpuPerVoxel_;
};

}  // namespace mqs::sim
