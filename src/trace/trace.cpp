#include "trace/trace.hpp"

#include <array>
#include <chrono>

namespace mqs::trace {

namespace {

double processClock(void* /*ctx*/) {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

std::uint64_t nextTracerGen() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local buffer cache: maps a tracer generation to this thread's
/// buffer. Generations are process-unique, so a stale entry for a
/// destroyed tracer can never alias a new one. A tiny direct-mapped cache
/// is enough — a thread talks to one or two tracers at a time.
struct TlsBufferCache {
  struct Entry {
    std::uint64_t gen = 0;
    void* buffer = nullptr;
  };
  std::array<Entry, 4> entries{};
  std::size_t nextSlot = 0;
};
thread_local TlsBufferCache tlsBuffers;

/// Thread-local current query (Tracer::QueryScope). One slot: query scopes
/// do not nest across tracers on one thread (a query thread belongs to one
/// server).
struct TlsCurrentQuery {
  std::uint64_t gen = 0;  ///< tracer generation; 0 = none
  std::uint64_t queryId = 0;
};
thread_local TlsCurrentQuery tlsCurrentQuery;

/// Per-thread recompute-cost ledger (Tracer cost accounting). Entries are
/// keyed by (tracer generation, query id): the simulator interleaves many
/// queries' COMPUTE/IO_STALL spans on one OS thread, and generations keep
/// entries from destroyed tracers from aliasing new ones. The vector stays
/// tiny — one entry per query concurrently accruing on this thread — and
/// entries are erased when consumed at insert time or when the query's
/// scope retires.
struct TlsCostEntry {
  std::uint64_t gen = 0;
  std::uint64_t queryId = 0;
  int openDepth = 0;     ///< open COMPUTE/IO_STALL spans (shared counter)
  double beginTs = 0.0;  ///< outermost open span's start
  double accrued = 0.0;  ///< closed-span union wall time, seconds
};
thread_local std::vector<TlsCostEntry> tlsCost;

TlsCostEntry& costEntry(std::uint64_t gen, std::uint64_t queryId) {
  for (auto& e : tlsCost) {
    if (e.gen == gen && e.queryId == queryId) return e;
  }
  tlsCost.push_back(TlsCostEntry{gen, queryId, 0, 0.0, 0.0});
  return tlsCost.back();
}

}  // namespace

std::string_view toString(SpanKind kind) {
  switch (kind) {
    case SpanKind::Queued: return "QUEUED";
    case SpanKind::Plan: return "PLAN";
    case SpanKind::WaitSource: return "WAIT_SOURCE";
    case SpanKind::Project: return "PROJECT";
    case SpanKind::Compute: return "COMPUTE";
    case SpanKind::IoStall: return "IO_STALL";
    case SpanKind::Deliver: return "DELIVER";
  }
  return "UNKNOWN";
}

std::string_view toString(CounterKind kind) {
  switch (kind) {
    case CounterKind::DsHit: return "ds_hit";
    case CounterKind::DsMiss: return "ds_miss";
    case CounterKind::DsEvict: return "ds_evict";
    case CounterKind::PsHit: return "ps_hit";
    case CounterKind::PsMiss: return "ps_miss";
    case CounterKind::PsEvict: return "ps_evict";
    case CounterKind::PrefetchIssued: return "prefetch_issued";
    case CounterKind::PrefetchWasted: return "prefetch_wasted";
    case CounterKind::LockWaitSched: return "lock_wait_sched";
    case CounterKind::LockWaitDs: return "lock_wait_ds";
    case CounterKind::LockWaitPs: return "lock_wait_ps";
    case CounterKind::AdmissionAdmitted: return "admitted";
    case CounterKind::AdmissionRejected: return "rejected";
    case CounterKind::AdmissionShed: return "shed";
    case CounterKind::AdmissionQuotaHit: return "quota_hit";
    case CounterKind::DeadlineMissed: return "deadline_missed";
    case CounterKind::AdmissionQueueDepth: return "queue_depth";
    case CounterKind::DsSpill: return "ds_spill";
    case CounterKind::DsRestore: return "ds_restore";
    case CounterKind::DsSpillBytes: return "ds_spill_bytes";
    case CounterKind::FoldHit: return "fold_hit";
    case CounterKind::FoldSubscribers: return "fold_subscribers";
    case CounterKind::ScanBytesShared: return "scan_bytes_shared";
  }
  return "unknown";
}

Tracer::Tracer()
    : clock_(&processClock), clockCtx_(nullptr), gen_(nextTracerGen()) {}

Tracer::~Tracer() = default;

void Tracer::setClock(ClockFn fn, void* ctx) {
  clock_ = fn != nullptr ? fn : &processClock;
  clockCtx_ = ctx;
}

Tracer::Buffer* Tracer::registerThread() {
  MutexLock lock(registryMu_);
  auto buffer =
      std::make_unique<Buffer>(static_cast<std::uint32_t>(buffers_.size()));
  Buffer* raw = buffer.get();
  raw->readChunk = raw->head.get();
  buffers_.push_back(std::move(buffer));
  // Cache for subsequent events from this thread.
  auto& cache = tlsBuffers;
  cache.entries[cache.nextSlot] = {gen_, raw};
  cache.nextSlot = (cache.nextSlot + 1) % cache.entries.size();
  return raw;
}

Tracer::Buffer* Tracer::threadBuffer() {
  for (const auto& entry : tlsBuffers.entries) {
    if (entry.gen == gen_) return static_cast<Buffer*>(entry.buffer);
  }
  return registerThread();
}

double Tracer::emit(EventType type, std::uint8_t kind, std::uint64_t queryId,
                    std::uint64_t value, std::uint8_t depth,
                    std::uint8_t flags) {
  Buffer* buf = threadBuffer();
  const double ts = clock_(clockCtx_);
  if (buf->tailUsed == kChunkCapacity) {
    auto chunk = std::make_unique<Chunk>();
    Chunk* raw = chunk.get();
    {
      // ownedChunks is writer-and-reader visible metadata; the link that
      // the reader follows is the acquire/release `next` pointer, but the
      // ownership vector itself needs the registry lock.
      MutexLock lock(registryMu_);
      buf->ownedChunks.push_back(std::move(chunk));
    }
    buf->tail->next.store(raw, std::memory_order_release);
    buf->tail = raw;
    buf->tailUsed = 0;
  }
  Event& ev = buf->tail->events[buf->tailUsed++];
  ev.ts = ts;
  ev.queryId = queryId;
  ev.value = value;
  ev.tid = buf->tid;
  ev.type = type;
  ev.kind = kind;
  ev.depth = depth;
  ev.flags = flags;
  buf->published.store(buf->published.load(std::memory_order_relaxed) + 1,
                       std::memory_order_release);
  return ts;
}

std::vector<Event> Tracer::drain() {
  MutexLock lock(registryMu_);
  std::vector<Event> out;
  for (const auto& buf : buffers_) {
    const std::uint64_t published =
        buf->published.load(std::memory_order_acquire);
    while (buf->consumed < published) {
      if (buf->readIdx == kChunkCapacity) {
        Chunk* next = buf->readChunk->next.load(std::memory_order_acquire);
        if (next == nullptr) break;  // publication raced ahead of the link
        buf->readChunk = next;
        buf->readIdx = 0;
      }
      out.push_back(buf->readChunk->events[buf->readIdx++]);
      ++buf->consumed;
    }
  }
  return out;
}

std::uint64_t Tracer::eventCount() const {
  MutexLock lock(registryMu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    n += buf->published.load(std::memory_order_acquire);
  }
  return n;
}

Tracer::QueryScope::QueryScope(Tracer* tracer, std::uint64_t queryId) {
  if (tracer == nullptr) return;
  tracer_ = tracer;
  queryId_ = queryId;
  savedGen_ = tlsCurrentQuery.gen;
  savedId_ = tlsCurrentQuery.queryId;
  tlsCurrentQuery = {tracer->gen_, queryId};
  active_ = true;
}

Tracer::QueryScope::~QueryScope() {
  if (!active_) return;
  tlsCurrentQuery = {savedGen_, savedId_};
  if (tracer_->costAccounting()) tracer_->dropThreadQueryCost(queryId_);
}

std::optional<std::uint64_t> Tracer::currentThreadQuery() const {
  if (tlsCurrentQuery.gen != gen_) return std::nullopt;
  return tlsCurrentQuery.queryId;
}

void Tracer::costBegin(std::uint64_t queryId) {
  costBeginAt(queryId, clock_(clockCtx_));
}

void Tracer::costBeginAt(std::uint64_t queryId, double ts) {
  TlsCostEntry& e = costEntry(gen_, queryId);
  if (e.openDepth == 0) e.beginTs = ts;
  ++e.openDepth;
}

void Tracer::costEnd(std::uint64_t queryId) {
  costEndAt(queryId, clock_(clockCtx_));
}

void Tracer::costEndAt(std::uint64_t queryId, double ts) {
  for (auto& e : tlsCost) {
    if (e.gen != gen_ || e.queryId != queryId) continue;
    if (e.openDepth > 0 && --e.openDepth == 0) e.accrued += ts - e.beginTs;
    return;
  }
}

double Tracer::takeThreadQueryCost() {
  if (tlsCurrentQuery.gen != gen_) return 0.0;
  const std::uint64_t queryId = tlsCurrentQuery.queryId;
  for (auto& e : tlsCost) {
    if (e.gen != gen_ || e.queryId != queryId) continue;
    double cost = e.accrued;
    e.accrued = 0.0;
    if (e.openDepth > 0) {
      const double now = clock_(clockCtx_);
      cost += now - e.beginTs;
      e.beginTs = now;
    }
    return cost;
  }
  return 0.0;
}

void Tracer::dropThreadQueryCost(std::uint64_t queryId) {
  for (std::size_t i = 0; i < tlsCost.size(); ++i) {
    if (tlsCost[i].gen == gen_ && tlsCost[i].queryId == queryId) {
      tlsCost[i] = tlsCost.back();
      tlsCost.pop_back();
      return;
    }
  }
}

}  // namespace mqs::trace
