// Synthetic Virtual-Microscope workload for the load generator: zipfian
// popularity over (region tile, magnification) pairs.
//
// Real visualization sessions concentrate on hot regions — everyone looks
// at the same lesion at the same few zoom levels — which is exactly what
// makes the Data Store's reuse path matter under load. The factory tiles
// the slide into regionSide² cells, crosses them with the zoom set, and
// draws from a Zipf(s) distribution over a seeded permutation of those
// pairs: rank 1 is some arbitrary-but-fixed (cell, zoom), so two runs with
// one seed replay the same popularity field while different seeds move the
// hot spots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "query/predicate.hpp"
#include "storage/data_source.hpp"
#include "vm/vm_predicate.hpp"

namespace mqs::loadgen {

/// Zipf(s) over ranks 0..n-1: P(rank k) ∝ 1/(k+1)^s, sampled in O(log n)
/// from a precomputed CDF. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// P(rank k) — exposed for the distribution tests.
  [[nodiscard]] double probability(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

struct WorkloadConfig {
  storage::DatasetId dataset = 0;
  std::int64_t slideWidth = 4096;
  std::int64_t slideHeight = 4096;
  /// Query region side in base-resolution pixels; must divide the slide
  /// dimensions and be divisible by every zoom level.
  std::int64_t regionSide = 256;
  /// Zipf exponent over (tile, zoom) popularity ranks; 0 = uniform.
  double zipfS = 1.1;
  /// Magnification levels queries draw from.
  std::vector<std::uint32_t> zooms = {1, 2, 4, 8};
  /// Fraction of queries using the Average op (CPU-heavier); the rest
  /// Subsample (I/O-heavier).
  double averageOpFraction = 0.5;
  /// Seed for the rank → (tile, zoom) permutation — NOT for the draw
  /// stream, which uses the caller's Rng; one workload seed with many
  /// client Rngs gives clients the same hot spots.
  std::uint64_t seed = 0x776f726b6c6f6164ULL;
};

class QueryFactory {
 public:
  explicit QueryFactory(WorkloadConfig cfg);

  /// Draw one query according to the popularity field.
  [[nodiscard]] vm::VMPredicate make(Rng& rng) const;
  [[nodiscard]] query::PredicatePtr makePtr(Rng& rng) const {
    return make(rng).clone();
  }

  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t universeSize() const { return perm_.size(); }

 private:
  WorkloadConfig cfg_;
  std::int64_t tileCols_ = 0;
  std::int64_t tileRows_ = 0;
  ZipfSampler zipf_;
  /// rank -> (tile, zoom) index permutation (seeded Fisher–Yates).
  std::vector<std::uint32_t> perm_;
};

}  // namespace mqs::loadgen
