// Deterministic synthetic 3-D intensity data (the volume analogue of the
// synthetic slide: no real CT/simulation output is needed because
// scheduling behaviour depends on byte volumes and overlap structure, and
// tests need reproducible voxels).
#pragma once

#include <cstdint>

#include "storage/data_source.hpp"
#include "vol/volume_layout.hpp"

namespace mqs::vol {

/// Intensity of voxel (x, y, z). Pure and stable across releases.
std::uint8_t syntheticVoxel(std::uint64_t seed, std::int64_t x,
                            std::int64_t y, std::int64_t z);

class SyntheticVolumeSource final : public storage::DataSource {
 public:
  SyntheticVolumeSource(VolumeLayout layout, std::uint64_t seed);

  [[nodiscard]] storage::PageId pageCount() const override;
  [[nodiscard]] std::size_t pageBytes(storage::PageId page) const override;
  void readPage(storage::PageId page, std::span<std::byte> out) const override;

  [[nodiscard]] const VolumeLayout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  VolumeLayout layout_;
  std::uint64_t seed_;
};

}  // namespace mqs::vol
