// SWAPPED_OUT as a *retained* state (DESIGN.md §13): a swapped-out node
// keeps its vertex and overlap edges so a later restore can flip it back to
// CACHED without rebuilding anything. These tests pin down the two
// contracts the spill tier leans on, across every paper policy:
//   * edge preservation — swappedOut()/restored() never change the graph's
//     structure, only the state bit (and the waiting neighbors' ranks);
//   * restore equivalence — a scheduler that swapped a node out and
//     restored it ranks all subsequent work identically to one that never
//     swapped it at all, under both incremental and full re-ranking.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sched/policy.hpp"
#include "sched/scheduler.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sched {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class SwapRestoreTest : public ::testing::TestWithParam<std::string> {
 protected:
  SwapRestoreTest() {
    (void)sem_.addDataset(index::ChunkLayout(16384, 16384, 128));
  }

  query::PredicatePtr pred(Rect region, std::uint32_t zoom = 4) {
    return std::make_unique<VMPredicate>(0, region, zoom, VMOp::Subsample);
  }

  query::PredicatePtr randomPred(Rng& rng) {
    const std::uint32_t zoom = 1u << rng.uniformInt(1, 3);
    const std::int64_t grid = 32;
    const std::int64_t x = rng.uniformInt(0, 64) * grid;
    const std::int64_t y = rng.uniformInt(0, 64) * grid;
    const std::int64_t w = rng.uniformInt(2, 24) * grid;
    const std::int64_t h = rng.uniformInt(2, 24) * grid;
    return std::make_unique<VMPredicate>(0, Rect::ofSize(x, y, w, h), zoom,
                                         VMOp::Subsample);
  }

  vm::VMSemantics sem_;
};

/// Snapshot of a node's adjacency for structural comparison.
std::vector<Edge> edgesOf(const SchedulingGraph& g, NodeId n) {
  std::vector<Edge> out;
  for (const Edge& e : g.outEdges(n)) out.push_back(e);
  return out;
}

TEST_P(SwapRestoreTest, EdgesSurviveSwapOutAndRestore) {
  QueryScheduler s(&sem_, makePolicy(GetParam(), 0.2));

  const NodeId a = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024)));
  const auto first = s.dequeue();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(*first, a);
  s.completed(a);
  ASSERT_EQ(s.stateOf(a), QueryState::Cached);

  // A waiting neighbor that overlaps the cached result.
  const NodeId b = s.submit(pred(Rect::ofSize(512, 512, 1024, 1024)));
  const auto before = edgesOf(s.graphUnsafe(), a);
  ASSERT_FALSE(before.empty());
  ASSERT_TRUE(s.graphUnsafe().checkInvariants());

  s.swappedOut(a);
  EXPECT_EQ(s.stateOf(a), QueryState::SwappedOut);
  EXPECT_EQ(s.stateOf(b), QueryState::Waiting);
  {
    const auto during = edgesOf(s.graphUnsafe(), a);
    ASSERT_EQ(during.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(during[i].peer, before[i].peer);
      EXPECT_DOUBLE_EQ(during[i].overlap, before[i].overlap);
      EXPECT_DOUBLE_EQ(during[i].weight, before[i].weight);
    }
  }
  EXPECT_TRUE(s.graphUnsafe().checkInvariants());

  s.restored(a);
  EXPECT_EQ(s.stateOf(a), QueryState::Cached);
  {
    const auto after = edgesOf(s.graphUnsafe(), a);
    ASSERT_EQ(after.size(), before.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(after[i].peer, before[i].peer);
      EXPECT_DOUBLE_EQ(after[i].overlap, before[i].overlap);
      EXPECT_DOUBLE_EQ(after[i].weight, before[i].weight);
    }
  }
  EXPECT_TRUE(s.graphUnsafe().checkInvariants());
  EXPECT_EQ(s.stats().swappedOutCount, 1u);
  EXPECT_EQ(s.stats().restoredCount, 1u);

  // retired() from CACHED is the historical terminal swap-out: node gone,
  // one more swappedOutCount tick.
  s.retired(a);
  EXPECT_FALSE(s.stateOf(a).has_value());
  EXPECT_EQ(s.stats().swappedOutCount, 2u);
  EXPECT_EQ(s.stats().retiredCount, 1u);
  EXPECT_TRUE(s.graphUnsafe().checkInvariants());
}

TEST_P(SwapRestoreTest, RestoreRanksIdenticallyToNeverSwapped) {
  for (const bool incremental : {true, false}) {
    QueryScheduler swp(&sem_, makePolicy(GetParam(), 0.2), incremental);
    QueryScheduler ref(&sem_, makePolicy(GetParam(), 0.2), incremental);

    Rng rng(0x5e510ULL);
    // A cached result both schedulers share...
    auto seedPred = randomPred(rng);
    const NodeId a = swp.submit(seedPred->clone());
    ASSERT_EQ(ref.submit(std::move(seedPred)), a);
    ASSERT_EQ(swp.dequeue(), ref.dequeue());
    swp.completed(a);
    ref.completed(a);

    // ...that only one of them swaps out and restores.
    swp.swappedOut(a);
    swp.restored(a);

    // Every subsequent ranking decision must be indistinguishable.
    std::vector<NodeId> executing;
    for (int step = 0; step < 200; ++step) {
      const double dice = rng.uniform01();
      if (dice < 0.5) {
        auto p = randomPred(rng);
        const NodeId x = swp.submit(p->clone());
        ASSERT_EQ(ref.submit(std::move(p)), x);
      } else if (dice < 0.8) {
        const auto x = swp.dequeue();
        const auto y = ref.dequeue();
        ASSERT_EQ(x, y) << "policy " << GetParam() << " incremental "
                        << incremental << " diverged at step " << step;
        if (x) executing.push_back(*x);
      } else if (!executing.empty()) {
        const std::size_t i = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(executing.size()) - 1));
        const NodeId n = executing[i];
        executing.erase(executing.begin() + static_cast<std::ptrdiff_t>(i));
        swp.completed(n);
        ref.completed(n);
      }
    }
    for (;;) {
      const auto x = swp.dequeue();
      const auto y = ref.dequeue();
      ASSERT_EQ(x, y);
      if (!x) break;
      swp.failed(*x);
      ref.failed(*y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperPolicies, SwapRestoreTest,
                         ::testing::ValuesIn(paperPolicyNames()),
                         [](const auto& paramInfo) { return paramInfo.param; });

}  // namespace
}  // namespace mqs::sched
