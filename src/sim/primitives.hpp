// Simulation primitives: one-shot triggers, counting resources, FCFS
// servers. These model the SMP's processors (Semaphore with P permits) and
// the disk farm (one FcfsServer per disk).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mqs::sim {

/// One-shot broadcast event (e.g. "query q finished"; "page p arrived").
/// After fire(), waits complete immediately.
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(&sim) {}

  [[nodiscard]] bool fired() const { return fired_; }

  /// Fire once; resumes every waiter (as events at the current time).
  void fire();

  struct Awaiter {
    Trigger* trigger;
    bool await_ready() const noexcept { return trigger->fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter wait() { return Awaiter{this}; }

 private:
  Simulator* sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// FIFO counting semaphore with busy-time accounting. Models a pool of
/// identical resources (CPUs). A permit released while someone queues is
/// handed to the head waiter directly, preserving FIFO order.
class Semaphore {
 public:
  Semaphore(Simulator& sim, int permits);

  struct Awaiter {
    Semaphore* sem;
    bool await_ready() {
      if (sem->permits_ > 0 && sem->waiters_.empty()) {
        sem->take();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] Awaiter acquire() { return Awaiter{this}; }
  void release();

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int available() const { return permits_; }
  [[nodiscard]] std::size_t queued() const { return waiters_.size(); }

  /// Integral of (busy permits) dt since construction; divide by
  /// (capacity * elapsed) for utilization.
  [[nodiscard]] double busyIntegral() const;

 private:
  void take();
  void accrue();

  Simulator* sim_;
  int capacity_;
  int permits_;
  std::deque<std::coroutine_handle<>> waiters_;
  double busyIntegral_ = 0.0;
  Time lastChange_ = 0.0;
};

/// A single FCFS service station (one disk). `service(d)` queues the caller
/// and occupies the station for `d` seconds of virtual time.
class FcfsServer {
 public:
  explicit FcfsServer(Simulator& sim) : sim_(&sim), gate_(sim, 1) {}

  [[nodiscard]] Task<void> service(Time duration);

  [[nodiscard]] double busyIntegral() const { return gate_.busyIntegral(); }
  [[nodiscard]] std::size_t queueLength() const { return gate_.queued(); }
  [[nodiscard]] std::uint64_t requestsServed() const { return served_; }

 private:
  Simulator* sim_;
  Semaphore gate_;
  std::uint64_t served_ = 0;
};

}  // namespace mqs::sim
