// Fairness analysis (ours): §4 says "FIFO targets fairness; queries are
// scheduled in the order they arrive". This harness makes that claim
// measurable — Jain's fairness index over per-client mean response times,
// side by side with the response times each policy delivers. The expected
// trade-off: reuse-aware policies buy throughput by serving cache-friendly
// clients sooner, at some fairness cost.
#include "bench_common.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fig_fairness");
  ctx.printHeader();

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("per-client fairness by policy (interactive, 4 threads), ") +
                bench::opName(op));
    table.setColumns({"policy", "jain-fairness", "trimmed-response(s)",
                      "worst-client(s)", "best-client(s)"});
    for (const auto& policy : sched::allPolicyNames()) {
      const auto result = driver::SimExperiment::runInteractive(
          ctx.workload(op), ctx.server(policy, 4, 64 * MiB, 32 * MiB));
      const auto perClient = metrics::perClientMeanResponse(result.records);
      double worst = 0.0, best = 1e300;
      for (const auto& [client, mean] : perClient) {
        worst = std::max(worst, mean);
        best = std::min(best, mean);
      }
      table.addRow({policy, formatDouble(result.summary.clientFairness, 4),
                    formatDouble(result.summary.trimmedResponse, 3),
                    formatDouble(worst, 3), formatDouble(best, 3)});
    }
    ctx.emit(table);
  }
  return 0;
}
