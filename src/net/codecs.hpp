// Predicate serialization for the wire: applications register a codec per
// predicate kind; the registry dispatches on the kind string that travels
// in each Query frame.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "net/wire.hpp"
#include "query/predicate.hpp"

namespace mqs::net {

class PredicateCodec {
 public:
  virtual ~PredicateCodec() = default;
  [[nodiscard]] virtual std::string_view kind() const = 0;
  virtual void encode(const query::Predicate& pred, Writer& out) const = 0;
  [[nodiscard]] virtual query::PredicatePtr decode(Reader& in) const = 0;
};

class CodecRegistry {
 public:
  void add(std::unique_ptr<PredicateCodec> codec);

  /// Kind + body, for a Query frame. Throws on unregistered kinds.
  void encode(const query::Predicate& pred, Writer& out) const;
  /// Inverse of encode().
  [[nodiscard]] query::PredicatePtr decode(Reader& in) const;

  /// Registry with the built-in applications (vm, vol).
  static CodecRegistry standard();

 private:
  std::map<std::string, std::unique_ptr<PredicateCodec>, std::less<>> codecs_;
};

/// Built-in codecs.
std::unique_ptr<PredicateCodec> makeVmCodec();
std::unique_ptr<PredicateCodec> makeVolCodec();

}  // namespace mqs::net
