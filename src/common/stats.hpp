// Statistical summaries used by the experiment harness.
//
// The paper reports the 95%-trimmed mean of query response times: the mean
// of the sample after discarding the lowest and highest 2.5% of scores.
#pragma once

#include <cstddef>
#include <vector>

namespace mqs {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation.
/// Requires a non-empty sample.
double percentile(std::vector<double> xs, double p);

/// Trimmed mean keeping the central `keepFraction` of the sorted sample
/// (keepFraction = 0.95 discards the lowest and highest 2.5%).
/// Requires a non-empty sample and 0 < keepFraction <= 1.
double trimmedMean(std::vector<double> xs, double keepFraction);

/// The paper's summary statistic: trimmedMean(xs, 0.95).
inline double trimmedMean95(std::vector<double> xs) {
  return trimmedMean(std::move(xs), 0.95);
}

/// Streaming mean/variance (Welford). Suitable for long runs where storing
/// every sample is unnecessary.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mqs
