// The query scheduling graph G(V, E) of §4.
//
// Vertices are queries; a directed edge e(i,j) with weight
//   w(i,j) = overlap(q_i, q_j) * qoutsize(q_i)
// means the results of q_j can be (partially) computed from the results of
// q_i; the weight measures the number of bytes reusable through the best
// available transformation. Because transformations need not be invertible
// (a low-magnification image cannot recreate a high-magnification one),
// edges exist independently per direction.
//
// The graph is not thread-safe; QueryScheduler serializes access.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "index/rtree.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "sched/state.hpp"

namespace mqs::sched {

/// One directed edge endpoint. For out-edges `peer` is the destination j of
/// e(i,j); for in-edges it is the source. `overlap` is the raw Eq. 2 value;
/// `weight` is overlap * qoutsize(source).
struct Edge {
  NodeId peer = kInvalidNode;
  double overlap = 0.0;
  double weight = 0.0;
};

class SchedulingGraph {
 public:
  explicit SchedulingGraph(const query::QuerySemantics* semantics);

  /// Add a query in WAITING state; connects it to every node it overlaps
  /// with (in both directions where a transformation exists). Returns the
  /// new node id.
  NodeId insert(query::PredicatePtr predicate);

  /// Update a node's state (does not touch edges).
  void setState(NodeId n, QueryState s);

  /// Remove a node and all incident edges (swap-out, §4: "the scheduler
  /// removes the node q_i and all edges whose source or destination is
  /// q_i"). Invalid on EXECUTING nodes.
  void remove(NodeId n);

  [[nodiscard]] bool contains(NodeId n) const;
  [[nodiscard]] QueryState state(NodeId n) const;
  [[nodiscard]] const query::Predicate& predicate(NodeId n) const;
  [[nodiscard]] std::uint64_t qoutsize(NodeId n) const;
  [[nodiscard]] std::uint64_t qinputsize(NodeId n) const;
  /// Monotone arrival sequence number (1, 2, ...) — FIFO order.
  [[nodiscard]] std::uint64_t arrivalSeq(NodeId n) const;

  /// Edges e(n, k): queries computable from n's result.
  [[nodiscard]] const std::vector<Edge>& outEdges(NodeId n) const;
  /// Edges e(k, n): queries whose results n can reuse.
  [[nodiscard]] const std::vector<Edge>& inEdges(NodeId n) const;

  /// Record a fold edge owner → subscriber (DESIGN.md §14): while both
  /// queries were in flight, `subscriber` folded into a shared scan owned
  /// by `owner`, so the scanned region's work exists once even though two
  /// queries deliver it. Fold edges annotate the reuse edges (they carry no
  /// weight and never feed Eq. 4 ranks directly); the scheduler uses them
  /// so rank feedback attributes the shared scan to the owner exactly once,
  /// with each subscriber reporting only its achieved reuse. Returns false
  /// for a duplicate (owner, subscriber) pair — edges are deduplicated;
  /// self-edges and unknown nodes are the caller's bug (checked).
  bool addFoldEdge(NodeId owner, NodeId subscriber);
  /// Subscribers folded into scans `owner` owns (insertion order).
  [[nodiscard]] const std::vector<NodeId>& foldSubscribers(NodeId owner) const;
  /// Owners of scans `subscriber` folded into (insertion order).
  [[nodiscard]] const std::vector<NodeId>& foldOwners(NodeId subscriber) const;
  [[nodiscard]] std::size_t foldEdgeCount() const;

  /// All nodes adjacent to n in either direction (deduplicated).
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId n) const;

  void forEachNode(const std::function<void(NodeId)>& fn) const;
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edgeCount() const;

  /// Structural invariants (edge symmetry of storage, weights >= 0,
  /// spatial-index consistency). For tests.
  [[nodiscard]] bool checkInvariants() const;

  /// Graphviz DOT rendering of the current graph — nodes labelled with
  /// state and predicate, edges with their reuse weights (Figure 3's
  /// diagram, generated live). Deterministic node order.
  void writeDot(std::ostream& os) const;

 private:
  struct Node {
    query::PredicatePtr predicate;
    QueryState state = QueryState::Waiting;
    std::uint64_t outBytes = 0;
    std::uint64_t inBytes = 0;
    std::uint64_t arrival = 0;
    std::vector<Edge> out;  ///< e(n, k)
    std::vector<Edge> in;   ///< e(k, n)
    std::vector<NodeId> foldOut;  ///< subscribers of scans this node owns
    std::vector<NodeId> foldIn;   ///< owners of scans this node folded into
  };

  const Node& node(NodeId n) const;
  Node& node(NodeId n);

  const query::QuerySemantics* semantics_;
  std::unordered_map<NodeId, Node> nodes_;
  index::RTree spatial_;
  NodeId nextId_ = 1;
  std::uint64_t nextArrival_ = 1;
};

}  // namespace mqs::sched
