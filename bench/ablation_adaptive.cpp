// Ablation: the self-tuning ADAPTIVE strategy (future-work items 1 and 3)
// against its static ingredients (SJF, CF) and the hand-blended COMBINED,
// across Data Store sizes. ADAPTIVE learns how much to trust reuse from
// the achieved-overlap stream and the disk-congestion signal, so it should
// track the best static strategy on each configuration without tuning.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_adaptive");
  ctx.printHeader();

  const auto dsMb = ctx.options().getIntList("dsmem", {32, 64, 256});
  const std::vector<std::string> policies = {"SJF", "CF", "COMBINED",
                                             "ADAPTIVE"};

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("ADAPTIVE vs static strategies, ") +
                bench::opName(op));
    table.setColumns({"policy", "DS(MB)", "trimmed-response(s)",
                      "avg-overlap", "batch-total(s)"});
    for (const auto& policy : policies) {
      for (const auto mb : dsMb) {
        const auto cfg = ctx.server(
            policy, 4, static_cast<std::uint64_t>(mb) * MiB, 32 * MiB);
        const auto inter =
            driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
        const auto batch =
            driver::SimExperiment::runBatch(ctx.workload(op), cfg);
        table.addRow({policy, std::to_string(mb),
                      formatDouble(inter.summary.trimmedResponse, 3),
                      formatDouble(inter.summary.avgOverlap, 3),
                      formatDouble(batch.summary.makespan, 2)});
      }
    }
    ctx.emit(table);
  }
  return 0;
}
