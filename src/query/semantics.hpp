// The user-defined functions an application developer implements (§2):
//
//   cmp(M_i, M_j)              -> bool          (Eq. 1)
//   overlap_project(M_i, M_j)  -> k in [0, 1]   (Eq. 2)
//   project(M_i, M_j, I)       -> J             (Eq. 3, see QueryExecutor)
//   qoutsize(M_i)              -> bytes         (scheduler)
//   qinputsize(M_i)            -> bytes         (SJF rank)
//
// plus remainder(): the sub-query predicates covering the part of a query
// that a cached result cannot answer (S_{j,1..4} in Figure 1b).
#pragma once

#include <cstdint>
#include <vector>

#include "query/predicate.hpp"

namespace mqs::query {

class QuerySemantics {
 public:
  virtual ~QuerySemantics() = default;

  /// Eq. 1 — true iff a result for `a` completely answers `b` as-is
  /// (common-subexpression elimination). Default: overlap == 1 and the
  /// result needs no transformation is application-specific, so the default
  /// simply tests overlap(a, b) >= 1.
  [[nodiscard]] virtual bool cmp(const Predicate& a, const Predicate& b) const {
    return overlap(a, b) >= 1.0;
  }

  /// Eq. 2 — fraction in [0, 1] of query `q` answerable by projecting the
  /// cached result described by `cached`. 0 when no transformation exists
  /// (wrong dataset/operator, non-multiple zoom, misalignment, ...).
  [[nodiscard]] virtual double overlap(const Predicate& cached,
                                       const Predicate& q) const = 0;

  /// Output size in bytes of the query result (estimate allowed — §2).
  [[nodiscard]] virtual std::uint64_t qoutsize(const Predicate& p) const = 0;

  /// Input size in bytes: total size of data chunks the query must read.
  /// Used by SJF as a relative execution-time estimate.
  [[nodiscard]] virtual std::uint64_t qinputsize(const Predicate& p) const = 0;

  /// Region of `q` that projecting `cached` answers (used for remainder
  /// decomposition and reuse accounting). Empty when overlap is 0.
  [[nodiscard]] virtual Rect coveredRegion(const Predicate& cached,
                                           const Predicate& q) const = 0;

  /// Sub-query predicates for the portion of `q` not answerable from
  /// `cached`; at most four for rectangular predicates. Together with
  /// coveredRegion they must tile q's region exactly.
  [[nodiscard]] virtual std::vector<PredicatePtr> remainder(
      const Predicate& cached, const Predicate& q) const = 0;

  /// The complement of remainder(): sub-query predicates exactly tiling the
  /// portion of `q` that projecting `cached` answers. Together with
  /// remainder() the returned parts must tile `q`. Used by the reuse
  /// planner for multi-source coverage accounting and for recovering when a
  /// planned source vanishes before execution (its covered parts are then
  /// computed like ordinary remainder sub-queries).
  ///
  /// The default only recognizes full coverage ({q} when overlap >= 1,
  /// empty otherwise); applications that want multi-source reuse should
  /// override it with their native geometry (see VMSemantics/VolSemantics).
  [[nodiscard]] virtual std::vector<PredicatePtr> coveredParts(
      const Predicate& cached, const Predicate& q) const {
    std::vector<PredicatePtr> out;
    if (overlap(cached, q) >= 1.0) out.push_back(q.clone());
    return out;
  }

  /// Output bytes of `q` that projecting `cached` produces (metric
  /// accounting). Default estimates overlap * qoutsize; applications can
  /// compute it exactly.
  [[nodiscard]] virtual std::uint64_t reusedOutputBytes(
      const Predicate& cached, const Predicate& q) const {
    return static_cast<std::uint64_t>(overlap(cached, q) *
                                      static_cast<double>(qoutsize(q)));
  }
};

}  // namespace mqs::query
