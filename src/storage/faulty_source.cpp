#include "storage/faulty_source.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "common/check.hpp"

namespace mqs::storage {

namespace {

/// SplitMix64-style mix of (seed, page, sequence, salt) -> u64. All
/// injection decisions flow through this so a plan replays exactly.
std::uint64_t mix(std::uint64_t seed, std::uint64_t page, std::uint64_t seq,
                  std::uint64_t salt) {
  std::uint64_t z = seed ^ (page * 0x9e3779b97f4a7c15ULL) ^
                    (seq * 0xbf58476d1ce4e5b9ULL) ^ (salt << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double mix01(std::uint64_t seed, std::uint64_t page, std::uint64_t seq,
             std::uint64_t salt) {
  return static_cast<double>(mix(seed, page, seq, salt) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultySource::FaultySource(const DataSource& inner, FaultPlan plan)
    : inner_(inner), plan_(std::move(plan)) {
  MQS_CHECK(plan_.transientRate >= 0.0 && plan_.transientRate <= 1.0);
  MQS_CHECK(plan_.maxConsecutiveTransient >= 1);
  MQS_CHECK(plan_.latencySpikeRate >= 0.0 && plan_.latencySpikeRate <= 1.0);
  permanent_.insert(plan_.permanentPages.begin(), plan_.permanentPages.end());
}

PageId FaultySource::pageCount() const { return inner_.pageCount(); }

std::size_t FaultySource::pageBytes(PageId page) const {
  return inner_.pageBytes(page);
}

void FaultySource::readPage(PageId page, std::span<std::byte> out) const {
  double spikeSec = 0.0;
  {
    MutexLock lock(mu_);
    ++stats_.reads;
    const std::uint64_t gseq = globalSeq_++;

    if (permanent_.contains(page)) {
      ++stats_.permanentInjected;
      throw PermanentReadError("injected permanent fault on page " +
                               std::to_string(page));
    }

    PageState& st = pages_[page];
    if (st.pendingTransient > 0) {
      --st.pendingTransient;
      ++stats_.transientInjected;
      throw TransientReadError("injected transient fault on page " +
                               std::to_string(page));
    }

    const std::uint64_t seq = ++st.readSeq;
    if (st.cooldown) {
      // The read after a failure run always succeeds; without this, back-
      // to-back fresh draws could chain runs and break the bound that
      // makes retry loops with > maxConsecutiveTransient attempts safe.
      st.cooldown = false;
    } else {
      double rate = plan_.transientRate;
      if (plan_.burstPeriod > 0 && gseq % plan_.burstPeriod < plan_.burstLen) {
        rate = plan_.burstTransientRate;
      }
      if (rate > 0.0 && mix01(plan_.seed, page, seq, /*salt=*/1) < rate) {
        // Start a failure run: this read fails, plus 0..max-1 more.
        st.pendingTransient = static_cast<int>(
            mix(plan_.seed, page, seq, /*salt=*/2) %
            static_cast<std::uint64_t>(plan_.maxConsecutiveTransient));
        st.cooldown = true;
        ++stats_.transientInjected;
        throw TransientReadError("injected transient fault on page " +
                                 std::to_string(page));
      }
    }

    if (plan_.latencySpikeRate > 0.0 &&
        mix01(plan_.seed, page, seq, /*salt=*/3) < plan_.latencySpikeRate) {
      ++stats_.spikesInjected;
      spikeSec = plan_.latencySpikeSec;
    }
  }
  // Sleep outside the lock so a spiking page never serializes other reads.
  if (spikeSec > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(spikeSec));
  }
  inner_.readPage(page, out);
}

void FaultySource::clearPermanentFaults() {
  MutexLock lock(mu_);
  permanent_.clear();
}

FaultySource::Stats FaultySource::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace mqs::storage
