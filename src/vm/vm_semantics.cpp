#include "vm/vm_semantics.hpp"

#include "common/check.hpp"

namespace mqs::vm {

storage::DatasetId VMSemantics::addDataset(index::ChunkLayout layout) {
  layouts_.push_back(std::move(layout));
  return static_cast<storage::DatasetId>(layouts_.size() - 1);
}

const index::ChunkLayout& VMSemantics::layout(
    storage::DatasetId dataset) const {
  MQS_CHECK_MSG(dataset < layouts_.size(), "unknown VM dataset");
  return layouts_[dataset];
}

bool VMSemantics::projectable(const VMPredicate& cached, const VMPredicate& q) {
  if (cached.dataset() != q.dataset() || cached.op() != q.op()) return false;
  if (q.zoom() % cached.zoom() != 0) return false;
  const auto is = static_cast<std::int64_t>(cached.zoom());
  // Origins must agree modulo I_S so sample positions/averaging windows of
  // the query land on the cached result's grid.
  auto congruent = [is](std::int64_t a, std::int64_t b) {
    return ((a - b) % is) == 0;
  };
  return congruent(q.region().x0, cached.region().x0) &&
         congruent(q.region().y0, cached.region().y0);
}

Rect VMSemantics::coveredRegion(const query::Predicate& cachedP,
                                const query::Predicate& qP) const {
  const VMPredicate& cached = asVM(cachedP);
  const VMPredicate& q = asVM(qP);
  if (!projectable(cached, q)) return Rect{};
  const Rect inter = Rect::intersection(cached.region(), q.region());
  if (inter.empty()) return Rect{};
  // Shrink to whole output pixels of q (grid anchored at q's origin with
  // pitch O_S) so the remainder decomposes into valid sub-queries.
  const auto os = static_cast<std::int64_t>(q.zoom());
  auto alignUp = [os](std::int64_t v, std::int64_t origin) {
    const std::int64_t d = v - origin;
    return origin + (d + os - 1) / os * os;
  };
  auto alignDown = [os](std::int64_t v, std::int64_t origin) {
    const std::int64_t d = v - origin;
    return origin + d / os * os;
  };
  Rect covered{alignUp(inter.x0, q.region().x0),
               alignUp(inter.y0, q.region().y0),
               alignDown(inter.x1, q.region().x0),
               alignDown(inter.y1, q.region().y0)};
  if (covered.empty()) return Rect{};
  return covered;
}

double VMSemantics::overlap(const query::Predicate& cachedP,
                            const query::Predicate& qP) const {
  if (cachedP.kind() != "vm" || qP.kind() != "vm") return 0.0;
  const VMPredicate& cached = asVM(cachedP);
  const VMPredicate& q = asVM(qP);
  const Rect covered = coveredRegion(cached, q);
  if (covered.empty()) return 0.0;
  // Eq. 4: overlap index = (I_A * I_S) / (O_A * O_S).
  const double ia = static_cast<double>(covered.area());
  const double oa = static_cast<double>(q.region().area());
  const double is = static_cast<double>(cached.zoom());
  const double os = static_cast<double>(q.zoom());
  return (ia * is) / (oa * os);
}

std::uint64_t VMSemantics::qoutsize(const query::Predicate& p) const {
  return asVM(p).outBytes();
}

std::uint64_t VMSemantics::qinputsize(const query::Predicate& p) const {
  const VMPredicate& q = asVM(p);
  // "the total size of the data chunks that intersect the query window",
  // computed in the index-lookup step.
  return layout(q.dataset()).inputBytes(q.region());
}

std::vector<VMPredicate> VMSemantics::pyramidLevel(
    storage::DatasetId dataset, std::uint32_t zoom,
    std::int64_t tileOutPixels, VMOp op) const {
  MQS_CHECK(zoom >= 1 && tileOutPixels >= 1);
  const index::ChunkLayout& l = layout(dataset);
  const auto z = static_cast<std::int64_t>(zoom);
  const std::int64_t tileIn = tileOutPixels * z;
  std::vector<VMPredicate> tiles;
  for (std::int64_t y = 0; y + tileIn <= l.height(); y += tileIn) {
    for (std::int64_t x = 0; x + tileIn <= l.width(); x += tileIn) {
      tiles.emplace_back(dataset, Rect::ofSize(x, y, tileIn, tileIn), zoom,
                         op);
    }
  }
  return tiles;
}

std::uint64_t VMSemantics::reusedOutputBytes(const query::Predicate& cachedP,
                                             const query::Predicate& qP) const {
  const VMPredicate& q = asVM(qP);
  const Rect covered = coveredRegion(cachedP, qP);
  const auto z = static_cast<std::int64_t>(q.zoom());
  return static_cast<std::uint64_t>(covered.area() / (z * z)) * 3;
}

std::vector<query::PredicatePtr> VMSemantics::coveredParts(
    const query::Predicate& cachedP, const query::Predicate& qP) const {
  const VMPredicate& q = asVM(qP);
  const Rect covered = coveredRegion(cachedP, qP);
  std::vector<query::PredicatePtr> out;
  if (covered.empty()) return out;
  // The covered region sits on q's output grid (coveredRegion shrinks to
  // whole output pixels), so it is itself a valid sub-query of q.
  out.push_back(
      std::make_unique<VMPredicate>(q.dataset(), covered, q.zoom(), q.op()));
  return out;
}

std::vector<query::PredicatePtr> VMSemantics::remainder(
    const query::Predicate& cachedP, const query::Predicate& qP) const {
  const VMPredicate& q = asVM(qP);
  const Rect covered = coveredRegion(cachedP, qP);
  std::vector<query::PredicatePtr> out;
  if (covered.empty()) {
    out.push_back(q.clone());
    return out;
  }
  for (const Rect& r : q.region().subtract(covered)) {
    // Sub-rectangles inherit q's output grid, so dims divide by the zoom.
    out.push_back(
        std::make_unique<VMPredicate>(q.dataset(), r, q.zoom(), q.op()));
  }
  return out;
}

}  // namespace mqs::vm
