file(REMOVE_RECURSE
  "CMakeFiles/data_store_property_test.dir/datastore/data_store_property_test.cpp.o"
  "CMakeFiles/data_store_property_test.dir/datastore/data_store_property_test.cpp.o.d"
  "data_store_property_test"
  "data_store_property_test.pdb"
  "data_store_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_store_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
