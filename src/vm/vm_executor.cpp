#include "vm/vm_executor.hpp"

#include <cstdint>
#include <cstring>
#include <thread>

#include "common/check.hpp"

namespace mqs::vm {

VMExecutor::VMExecutor(const VMSemantics* semantics, int intraQueryThreads,
                       int readaheadPages)
    : semantics_(semantics),
      intraQueryThreads_(intraQueryThreads),
      readaheadPages_(readaheadPages) {
  MQS_CHECK(semantics_ != nullptr);
  MQS_CHECK(intraQueryThreads_ >= 1);
  MQS_CHECK(readaheadPages_ >= 0);
}

std::vector<std::byte> VMExecutor::execute(
    const query::Predicate& pred, pagespace::PageSpaceManager& ps) const {
  const VMPredicate& q = asVM(pred);
  std::vector<std::byte> out(q.outBytes());
  if (intraQueryThreads_ <= 1 || q.outHeight() < intraQueryThreads_) {
    executeInto(q, ps, out);
    return out;
  }

  // Split the query into horizontal bands on the output-pixel grid; each
  // band is an ordinary (smaller) VM query whose rows are a contiguous
  // block of the final buffer, so every worker renders directly into its
  // row slice and assembly needs no copy.
  const auto z = static_cast<std::int64_t>(q.zoom());
  const std::int64_t outH = q.outHeight();
  const std::int64_t rowBytes = q.outWidth() * 3;
  const auto bands = static_cast<std::int64_t>(intraQueryThreads_);
  std::vector<VMPredicate> parts;
  std::vector<std::span<std::byte>> slices;
  for (std::int64_t b = 0; b < bands; ++b) {
    const std::int64_t row0 = outH * b / bands;
    const std::int64_t row1 = outH * (b + 1) / bands;
    parts.emplace_back(q.dataset(),
                       Rect{q.region().x0, q.region().y0 + row0 * z,
                            q.region().x1, q.region().y0 + row1 * z},
                       q.zoom(), q.op());
    slices.push_back(std::span<std::byte>(out)
                         .subspan(static_cast<std::size_t>(row0 * rowBytes),
                                  static_cast<std::size_t>((row1 - row0) *
                                                           rowBytes)));
  }
  std::vector<std::exception_ptr> errors(parts.size());
  {
    std::vector<std::jthread> workers;
    workers.reserve(parts.size());
    for (std::size_t b = 0; b < parts.size(); ++b) {
      workers.emplace_back([this, &ps, &parts, &slices, &errors, b] {
        try {
          executeInto(parts[b], ps, slices[b]);
        } catch (...) {
          errors[b] = std::current_exception();
        }
      });
    }
  }  // join
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  return out;
}

void VMExecutor::executeInto(const VMPredicate& q,
                             pagespace::PageSpaceManager& ps,
                             std::span<std::byte> out) const {
  const index::ChunkLayout& layout = semantics_->layout(q.dataset());
  MQS_CHECK_MSG(layout.extent().contains(q.region()),
                "query region outside dataset extent");
  MQS_CHECK(out.size() == q.outBytes());

  const auto z = static_cast<std::int64_t>(q.zoom());
  const std::int64_t outW = q.outWidth();
  const Rect region = q.region();

  // Averaging accumulates window sums across chunk boundaries.
  std::vector<std::uint32_t> sums;
  if (q.op() == VMOp::Average) {
    sums.assign(out.size(), 0);
  }

  // Enumerate every chunk up front and pipeline the fetches: decode chunk
  // i while chunks i+1..i+k are in flight on the I/O pool.
  const std::vector<index::ChunkRef> chunks =
      layout.chunksIntersecting(region);
  std::vector<storage::PageKey> keys;
  keys.reserve(chunks.size());
  for (const index::ChunkRef& chunk : chunks) {
    keys.push_back({q.dataset(), chunk.id});
  }
  pagespace::ReadaheadStream stream(ps, std::move(keys), readaheadPages_);

  for (const index::ChunkRef& chunk : chunks) {
    const pagespace::PagePtr page = stream.next();
    const std::byte* data = page->data();
    const std::int64_t chunkW = chunk.rect.width();
    const Rect clip = Rect::intersection(chunk.rect, region);
    MQS_DCHECK(!clip.empty());

    auto chunkPixel = [&](std::int64_t x, std::int64_t y) {
      return data + ((y - chunk.rect.y0) * chunkW + (x - chunk.rect.x0)) * 3;
    };

    if (q.op() == VMOp::Subsample) {
      // First sample position >= clip edge on the query's sampling grid
      // (anchored at the region origin with pitch z).
      auto firstSample = [z](std::int64_t lo, std::int64_t origin) {
        return origin + (lo - origin + z - 1) / z * z;
      };
      for (std::int64_t y = firstSample(clip.y0, region.y0); y < clip.y1;
           y += z) {
        const std::int64_t py = (y - region.y0) / z;
        for (std::int64_t x = firstSample(clip.x0, region.x0); x < clip.x1;
             x += z) {
          const std::int64_t px = (x - region.x0) / z;
          const std::byte* in = chunkPixel(x, y);
          std::byte* o = out.data() + (py * outW + px) * 3;
          o[0] = in[0];
          o[1] = in[1];
          o[2] = in[2];
        }
      }
    } else {
      for (std::int64_t y = clip.y0; y < clip.y1; ++y) {
        const std::int64_t py = (y - region.y0) / z;
        for (std::int64_t x = clip.x0; x < clip.x1; ++x) {
          const std::int64_t px = (x - region.x0) / z;
          const std::byte* in = chunkPixel(x, y);
          std::uint32_t* s = sums.data() + (py * outW + px) * 3;
          s[0] += static_cast<std::uint32_t>(in[0]);
          s[1] += static_cast<std::uint32_t>(in[1]);
          s[2] += static_cast<std::uint32_t>(in[2]);
        }
      }
    }
  }

  if (q.op() == VMOp::Average) {
    const auto window = static_cast<std::uint32_t>(z * z);
    const std::uint32_t half = window / 2;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::byte>((sums[i] + half) / window);
    }
  }
}

void VMExecutor::project(const query::Predicate& cachedP,
                         std::span<const std::byte> cachedPayload,
                         const query::Predicate& outP,
                         std::span<std::byte> outBuffer) const {
  const VMPredicate& c = asVM(cachedP);
  const VMPredicate& q = asVM(outP);
  const Rect covered = semantics_->coveredRegion(c, q);
  MQS_CHECK_MSG(!covered.empty(), "project with zero overlap");
  MQS_CHECK(outBuffer.size() >= q.outBytes());
  MQS_CHECK(cachedPayload.size() >= c.outBytes());

  const auto is = static_cast<std::int64_t>(c.zoom());
  const auto os = static_cast<std::int64_t>(q.zoom());
  const std::int64_t ratio = os / is;
  const std::int64_t cw = c.outWidth();
  const std::int64_t outW = q.outWidth();

  const std::int64_t px0 = (covered.x0 - q.region().x0) / os;
  const std::int64_t px1 = (covered.x1 - q.region().x0) / os;
  const std::int64_t py0 = (covered.y0 - q.region().y0) / os;
  const std::int64_t py1 = (covered.y1 - q.region().y0) / os;

  const auto rsq = static_cast<std::uint32_t>(ratio * ratio);
  const std::uint32_t half = rsq / 2;

  for (std::int64_t py = py0; py < py1; ++py) {
    const std::int64_t y = q.region().y0 + py * os;
    const std::int64_t cy0 = (y - c.region().y0) / is;
    for (std::int64_t px = px0; px < px1; ++px) {
      const std::int64_t x = q.region().x0 + px * os;
      const std::int64_t cx0 = (x - c.region().x0) / is;
      std::byte* o = outBuffer.data() + (py * outW + px) * 3;
      if (q.op() == VMOp::Subsample || ratio == 1) {
        // The query's sample position coincides with cached pixel
        // (cx0, cy0); at equal zoom this is a straight copy for both ops.
        const std::byte* in = cachedPayload.data() + (cy0 * cw + cx0) * 3;
        o[0] = in[0];
        o[1] = in[1];
        o[2] = in[2];
      } else {
        // Averaging: the O_S window is exactly ratio x ratio cached pixels.
        std::uint32_t s0 = 0, s1 = 0, s2 = 0;
        for (std::int64_t dy = 0; dy < ratio; ++dy) {
          const std::byte* row =
              cachedPayload.data() + ((cy0 + dy) * cw + cx0) * 3;
          for (std::int64_t dx = 0; dx < ratio; ++dx) {
            s0 += static_cast<std::uint32_t>(row[dx * 3 + 0]);
            s1 += static_cast<std::uint32_t>(row[dx * 3 + 1]);
            s2 += static_cast<std::uint32_t>(row[dx * 3 + 2]);
          }
        }
        o[0] = static_cast<std::byte>((s0 + half) / rsq);
        o[1] = static_cast<std::byte>((s1 + half) / rsq);
        o[2] = static_cast<std::byte>((s2 + half) / rsq);
      }
    }
  }
}

}  // namespace mqs::vm
