// Differential testing: the full threaded middleware (scheduler + reuse +
// projection + sub-queries + caching + concurrency) against the
// independent reference renderer, on generator-produced random workloads,
// parameterized across every ranking policy and both VM operators. If any
// reuse/projection/assembly path produced wrong bytes under any schedule,
// this is where it would surface.
#include <gtest/gtest.h>

#include <future>
#include <tuple>

#include "driver/workload.hpp"
#include "server/query_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

using Param = std::tuple<std::string, vm::VMOp>;

class RandomDifferentialTest : public ::testing::TestWithParam<Param> {};

TEST_P(RandomDifferentialTest, EveryResultMatchesTheReference) {
  const auto& [policy, op] = GetParam();
  constexpr std::uint64_t kSeed = 31337;

  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{1024, 1024, 96, kSeed}};
  wl.clientsPerDataset = {4};
  wl.queriesPerClient = 6;
  wl.outputSide = 64;
  wl.zoomLevels = {1, 2, 4};
  wl.zoomWeights = {1, 2, 1};
  wl.alignGrid = 4;
  wl.browseProbability = 0.5;
  wl.op = op;
  wl.seed = 0xD1FF ^ static_cast<std::uint64_t>(op);

  vm::VMSemantics sem;
  const auto workloads = driver::WorkloadGenerator::generate(wl, sem);
  storage::SyntheticSlideSource slide(sem.layout(0), kSeed);
  vm::VMExecutor exec(&sem);

  server::ServerConfig cfg;
  cfg.threads = 4;
  cfg.policy = policy;
  cfg.dsBytes = 2ULL << 20;  // small: keep eviction churn in the mix
  cfg.psBytes = 1ULL << 20;
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(0, &slide);

  std::vector<std::future<server::QueryResult>> futures;
  std::vector<const vm::VMPredicate*> queries;
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      queries.push_back(&q);
      futures.push_back(server.submit(q.clone(), client.client));
    }
  }
  ASSERT_EQ(futures.size(), 24u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    const auto& q = *queries[i];
    const auto got =
        vm::ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
    const int tol = op == vm::VMOp::Average ? 3 : 0;  // projection chains
    EXPECT_LE(maxAbsDiff(got, renderReference(q, kSeed)), tol)
        << policy << " query " << i << ": " << q.describe();
  }
  server.shutdown();

  // Metrics consistency over the same random workload: the reuse
  // accounting must agree with itself on every record, under every policy
  // and schedule. `bytesReusedPerSource` holds the top-level plan's
  // marginal bytes per projection step, so it must sum to
  // `planBytesCovered`. Realized reuse (`bytesReused`, which also counts
  // nested sub-plan projections) can exceed the top-level plan but never
  // the query's output size — every output byte is produced exactly once.
  const auto records = server.collector().records();
  ASSERT_EQ(records.size(), futures.size());
  for (const auto& r : records) {
    SCOPED_TRACE(policy + " query " + std::to_string(r.queryId) + " " +
                 r.predicate);
    std::uint64_t perSourceSum = 0;
    for (const std::uint64_t b : r.bytesReusedPerSource) perSourceSum += b;
    EXPECT_EQ(perSourceSum, r.planBytesCovered);
    EXPECT_EQ(r.bytesReusedPerSource.size(),
              static_cast<std::size_t>(r.reuseSources));
    EXPECT_LE(r.bytesReused, r.outputBytes);
    EXPECT_LE(r.planBytesCovered, r.outputBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesOps, RandomDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(sched::allPolicyNames()),
                       ::testing::Values(vm::VMOp::Subsample,
                                         vm::VMOp::Average)),
    [](const ::testing::TestParamInfo<Param>& paramInfo) {
      return std::get<0>(paramInfo.param) +
             std::string(std::get<1>(paramInfo.param) == vm::VMOp::Subsample
                             ? "_sub"
                             : "_avg");
    });

}  // namespace
}  // namespace mqs
