// Page Space Manager (§2): buffer space for input data in fixed-size pages.
//
// All interactions with data sources go through here. Pages are cached in
// memory under a byte budget; concurrent requests for the same page are
// merged so the device sees a single I/O ("duplicate requests are
// eliminated, to minimize I/O overhead").
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "pagespace/page_cache_core.hpp"
#include "storage/data_source.hpp"

namespace mqs::pagespace {

/// Immutable page payload shared between the cache and readers. A reader
/// holding a PagePtr keeps the bytes alive even if the cache evicts the
/// page meanwhile.
using PagePtr = std::shared_ptr<const std::vector<std::byte>>;

class PageSpaceManager {
 public:
  explicit PageSpaceManager(std::uint64_t capacityBytes);

  /// Register the raw storage behind a dataset id. Not thread-safe with
  /// concurrent fetches; attach all sources before serving queries.
  void attach(storage::DatasetId dataset, const storage::DataSource* source);

  /// Read-through fetch. Blocks the calling query thread on a miss while
  /// the page is read from its data source; concurrent fetches of the same
  /// page wait for the one in-flight I/O instead of duplicating it.
  PagePtr fetch(const storage::PageKey& key);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< fetches that started a device read
    std::uint64_t merged = 0;        ///< fetches that joined an in-flight read
    std::uint64_t bytesRead = 0;     ///< bytes transferred from sources
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint64_t capacityBytes() const;
  [[nodiscard]] std::uint64_t residentBytes() const;

  /// Per-thread device-read accounting for per-query metrics: a query (and
  /// its sub-queries) runs on one query thread, so the server resets the
  /// counter before execution and reads it afterwards.
  static void resetThreadCounters();
  [[nodiscard]] static std::uint64_t threadDeviceBytes();

 private:
  const storage::DataSource* sourceFor(storage::DatasetId dataset) const;

  mutable std::mutex mu_;
  PageCacheCore core_;
  std::unordered_map<storage::DatasetId, const storage::DataSource*> sources_;
  std::unordered_map<storage::PageKey, PagePtr, storage::PageKeyHash> resident_;
  std::unordered_map<storage::PageKey, std::shared_future<PagePtr>,
                     storage::PageKeyHash>
      inflight_;
  std::uint64_t merged_ = 0;
  std::uint64_t bytesRead_ = 0;
};

}  // namespace mqs::pagespace
