// Positional disk queue for the DES.
//
// The default engine charges seeks with the analytic k-stream
// approximation (DiskModel::serviceTime(bytes, streams)). This server
// instead models the device head explicitly: each request carries a
// position (page number within the device's layout), service cost depends
// on the actual gap from the previous request, and the queue discipline is
// selectable:
//
//   * Fifo     — serve in arrival order (interleaved streams thrash);
//   * Elevator — C-SCAN: sweep upward through pending positions, wrapping
//     to the lowest when the top is reached. This is what an OS I/O
//     scheduler + drive firmware do, and it is the mechanism behind the
//     Page Space Manager's "overlapping I/O requests are reordered and
//     merged" (§2).
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "storage/disk_model.hpp"

namespace mqs::sim {

enum class DiskDiscipline { Fifo, Elevator };

class DiskServer {
 public:
  DiskServer(Simulator& sim, storage::DiskModel model,
             DiskDiscipline discipline,
             std::uint64_t contiguityWindow = 8);

  /// Awaitable: enqueue a request at `pos` for `bytes` and suspend until
  /// the head has served it.
  struct ServiceAwaiter {
    DiskServer* disk;
    std::uint64_t pos;
    std::size_t bytes;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      disk->enqueue(pos, bytes, h);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] ServiceAwaiter service(std::uint64_t pos, std::size_t bytes) {
    return ServiceAwaiter{this, pos, bytes};
  }

  [[nodiscard]] std::size_t queueLength() const { return queue_.size(); }
  [[nodiscard]] double busyIntegral() const { return busyIntegral_; }
  [[nodiscard]] std::uint64_t requestsServed() const { return served_; }
  [[nodiscard]] std::uint64_t sequentialServed() const { return sequential_; }
  [[nodiscard]] std::uint64_t seeksServed() const {
    return served_ - sequential_;
  }

 private:
  struct Request {
    std::uint64_t pos = 0;
    std::size_t bytes = 0;
    std::uint64_t arrival = 0;  ///< FIFO tie-break / age
    std::coroutine_handle<> handle;
  };

  void enqueue(std::uint64_t pos, std::size_t bytes,
               std::coroutine_handle<> h);
  void startNext();
  std::size_t pickNext() const;

  Simulator* sim_;
  storage::DiskModel model_;
  DiskDiscipline discipline_;
  std::uint64_t window_;
  std::vector<Request> queue_;
  bool busy_ = false;
  bool headValid_ = false;
  std::uint64_t headPos_ = 0;
  std::uint64_t nextArrival_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t sequential_ = 0;
  double busyIntegral_ = 0.0;
};

}  // namespace mqs::sim
