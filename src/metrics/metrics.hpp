// Experiment measurement: per-query records and run-level summaries.
//
// The paper reports (a) the 95%-trimmed mean of query response time (wait in
// queue + execution), (b) the average overlap achieved, and (c) total batch
// execution time. QueryRecord captures everything needed for all three plus
// the reuse/I/O accounting used by the caching-effect experiment (E1).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace mqs::metrics {

struct QueryRecord {
  std::uint64_t queryId = 0;
  int client = -1;
  std::string predicate;

  double arrivalTime = 0.0;  ///< submitted to the scheduler
  double startTime = 0.0;    ///< dequeued (begins executing)
  double finishTime = 0.0;   ///< result delivered

  double overlapUsed = 0.0;      ///< Eq. 4 value of the reuse source (0 = none)
  bool reusedExecuting = false;  ///< blocked on a still-executing source
  double blockedTime = 0.0;      ///< time spent waiting on that source

  /// Seconds the query thread was blocked on device I/O inside the Page
  /// Space Manager (stall not hidden by the prefetch pipeline).
  double ioStallTime = 0.0;

  std::uint64_t inputBytes = 0;    ///< qinputsize
  std::uint64_t outputBytes = 0;   ///< qoutsize
  std::uint64_t bytesFromDisk = 0; ///< raw bytes actually read for this query
  std::uint64_t bytesReused = 0;   ///< output bytes satisfied via projection

  /// Reuse-plan accounting (query::Planner). `reuseSources` counts the
  /// projection steps of the top-level plan; `bytesReusedPerSource` holds
  /// each step's *marginal* covered-output bytes in plan order;
  /// `planBytesCovered` is their sum as planned (actual reuse can fall
  /// short when a still-executing source's result vanishes before use).
  int reuseSources = 0;
  std::vector<std::uint64_t> bytesReusedPerSource;
  std::uint64_t planBytesCovered = 0;
  /// Compact plan signature ("C49152|X4096|R|R"): C = project from cached,
  /// X = wait on executing then project, R = compute remainder. Stable
  /// across engines — the sim-vs-real equivalence test compares it.
  std::string planShape;

  /// Terminal FAILED status: the query raised an error (unreadable page,
  /// deadline exceeded mid-execution) and delivered an exception instead
  /// of bytes.
  bool failed = false;
  /// Terminal SHED status (DESIGN.md §11): the query was admitted but
  /// dropped at dispatch — its deadline had already passed (or was
  /// predicted to pass) before it consumed any compute. Disjoint from
  /// `failed`; a query is never both completed and shed.
  bool shed = false;
  std::string failureReason;

  [[nodiscard]] double waitTime() const { return startTime - arrivalTime; }
  [[nodiscard]] double execTime() const { return finishTime - startTime; }
  [[nodiscard]] double responseTime() const { return finishTime - arrivalTime; }
};

/// Thread-safe collector; one per experiment run.
///
/// Sharded (DESIGN.md §10): records spread across a small fixed set of
/// slots by an atomic admission ticket, so concurrent query threads
/// recording results almost never meet on the same lock. The ticket also
/// preserves global add order — records() merges the slots and sorts by
/// ticket, so snapshots read exactly like the single-vector collector.
class Collector {
 public:
  void add(QueryRecord record);

  [[nodiscard]] std::vector<QueryRecord> records() const;
  [[nodiscard]] std::size_t count() const;

 private:
  static constexpr std::size_t kSlots = 8;  // power of two

  struct Slot {
    mutable Mutex mu{lockorder::Rank::kMetrics, "Collector::Slot::mu"};
    std::vector<std::pair<std::uint64_t, QueryRecord>> records GUARDED_BY(mu);
  };

  std::atomic<std::uint64_t> ticket_{0};  ///< global add-order sequence
  Slot slots_[kSlots];
};

/// Run-level summary over a set of query records.
struct Summary {
  std::size_t queries = 0;
  std::size_t failedQueries = 0;  ///< records with the FAILED status
  std::size_t shedQueries = 0;    ///< records with the SHED status
  double trimmedResponse = 0.0;  ///< 95%-trimmed mean response time
  double meanResponse = 0.0;
  double meanWait = 0.0;
  double meanExec = 0.0;
  double meanIoStall = 0.0;      ///< mean per-query I/O-stall seconds
  double makespan = 0.0;         ///< last finish - first arrival
  double avgOverlap = 0.0;       ///< mean overlapUsed across queries
  double reuseRate = 0.0;        ///< fraction of queries with overlap > 0
  std::uint64_t totalDiskBytes = 0;
  std::uint64_t totalReusedBytes = 0;
  /// Mean projection-step count of the top-level reuse plans, and how many
  /// queries composed more than one reuse source (the multi-source win).
  double avgReuseSources = 0.0;
  std::size_t multiSourceQueries = 0;
  /// Jain fairness index over per-client mean response times, in
  /// (0, 1]; 1 = every client experienced the same mean response. FIFO
  /// "targets fairness" (§4) — this makes the claim measurable. 0 when no
  /// client ids were recorded.
  double clientFairness = 0.0;
  /// Response-time tail: median / 95th / 99th / 99.9th percentiles.
  double p50Response = 0.0;
  double p95Response = 0.0;
  double p99Response = 0.0;
  double p999Response = 0.0;
};

Summary summarize(const std::vector<QueryRecord>& records);

/// Per-client mean response times (clients with id >= 0), keyed by id.
std::vector<std::pair<int, double>> perClientMeanResponse(
    const std::vector<QueryRecord>& records);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2) for positive samples.
double jainFairness(const std::vector<double>& xs);

}  // namespace mqs::metrics
