// QueryScheduler: the priority queue of §4, implemented over the scheduling
// graph with incremental rank maintenance.
//
// Ranks live in a lazy max-heap: every (re)ranking pushes a fresh entry
// stamped with the node's current version; dequeue pops entries until it
// finds one whose stamp is still valid. Graph events re-rank only the
// affected node's waiting neighborhood ("updates to the query scheduling
// graph and topological sort are done in an incremental fashion"); a
// full-recompute mode exists for the A3 ablation and for property tests.
//
// Thread-safe: the threaded query server calls into one instance from many
// query threads.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "sched/feedback_ring.hpp"
#include "sched/graph.hpp"
#include "sched/policy.hpp"
#include "sched/state.hpp"
#include "trace/trace.hpp"

namespace mqs::sched {

class QueryScheduler {
 public:
  QueryScheduler(const query::QuerySemantics* semantics, PolicyPtr policy,
                 bool incremental = true);

  /// Enqueue a new query (WAITING). Returns its graph node id.
  NodeId submit(query::PredicatePtr predicate);

  /// Highest-ranked waiting query, moved to EXECUTING; std::nullopt when no
  /// query is waiting. Assigns the node's execution sequence number.
  std::optional<NodeId> dequeue();

  /// EXECUTING -> CACHED (results now reusable).
  void completed(NodeId n);

  /// CACHED -> SWAPPED_OUT: the result left memory but survives in the
  /// spill tier, so the node *and its edges stay in the graph* (§4's
  /// retained vertex state) awaiting restored() or retired(). Waiting
  /// neighbors are re-ranked; reuse-source selection skips SWAPPED_OUT
  /// nodes until they come back.
  void swappedOut(NodeId n);

  /// SWAPPED_OUT -> CACHED: the spilled result was restored into the Data
  /// Store and is reusable again. Waiting neighbors are re-ranked.
  void restored(NodeId n);

  /// Terminal drop of a CACHED or SWAPPED_OUT node: the result is gone for
  /// good (evicted with no spill tier, or dropped from the spill tier), so
  /// the node and its edges leave the graph and waiting neighbors are
  /// re-ranked. Dropping a CACHED node also counts one swap-out — exactly
  /// the historical terminal swappedOut() semantics, which engines with
  /// spill disabled reproduce by calling retired() where they used to call
  /// swappedOut().
  void retired(NodeId n);

  /// EXECUTING -> FAILED: the query's execution raised an error. The node
  /// and its edges leave the graph at once (a failed query has no reusable
  /// result) and waiting neighbors are re-ranked, exactly as for swap-out.
  void failed(NodeId n);

  /// Record that executing query `subscriber` folded into a shared scan
  /// owned by executing query `owner` (a FoldIntoScan plan step,
  /// DESIGN.md §14): a fold edge owner → subscriber is added to the graph
  /// and the subscriber's waiting neighborhood is re-ranked (incremental
  /// mode) or the waiting set recomputed (full mode) — the fold-edge
  /// transition the scheduler property test drives in lockstep. Tolerant
  /// by design: by the time a subscriber's fold step runs, the owner may
  /// already have completed, failed, or been retired out of the graph —
  /// the scan itself lives at the registry, so a missing endpoint is
  /// simply not recorded. Rank feedback therefore sees shared work once:
  /// the owner alone reports the scan's compute outcome; each subscriber
  /// reports only its own achieved reuse.
  void noteFold(NodeId subscriber, NodeId owner);

  /// Runtime feedback for self-tuning policies: the achieved Eq.-2 overlap
  /// of a finished query, and a normalized I/O-congestion signal. No-ops
  /// for the static policies.
  ///
  /// Batched (DESIGN.md §10): the event is staged on a lock-free ring and
  /// applied — together with everything else staged since — at the next
  /// scheduling event (submit/dequeue/completed/swappedOut/failed), which
  /// reranks the waiting set once per batch instead of once per report.
  /// Only when the ring is full does a report fall back to applying the
  /// batch inline under the lock; feedback is never dropped.
  void reportQueryOutcome(double achievedOverlap);
  void reportResourceSignal(double ioCongestion);

  struct ReuseSource {
    NodeId node = kInvalidNode;
    double overlap = 0.0;
    QueryState state = QueryState::Cached;
  };

  /// Best reuse source for executing query `n` among CACHED neighbors and —
  /// when `allowExecuting` — EXECUTING neighbors that began executing
  /// before `n` (the deadlock-avoidance rule: wait-for edges always point
  /// to older executions, so the wait graph is acyclic).
  [[nodiscard]] std::optional<ReuseSource> bestReuseSource(
      NodeId n, bool allowExecuting) const;

  /// Best reuse source among EXECUTING neighbors only (subject to the same
  /// deadlock-avoidance rule). The runtime combines this with a Data Store
  /// lookup, which also sees cached sub-query results that have no graph
  /// node.
  [[nodiscard]] std::optional<ReuseSource> bestExecutingSource(NodeId n) const;

  /// ALL eligible EXECUTING reuse sources for `n` (every in-edge peer that
  /// began executing before `n`, so waiting on any subset keeps the wait
  /// graph acyclic), sorted by overlap descending with ties toward the
  /// older execution. Candidate generation for the multi-source planner.
  [[nodiscard]] std::vector<ReuseSource> executingSources(NodeId n) const;

  /// Snapshot of a node's current state (nullopt if no longer in graph).
  [[nodiscard]] std::optional<QueryState> stateOf(NodeId n) const;

  /// Clone of a node's predicate, taken under the scheduler lock (safe
  /// against concurrent graph mutation).
  [[nodiscard]] query::PredicatePtr predicateOf(NodeId n) const;

  /// Current policy rank of a waiting node (test/diagnostic hook).
  [[nodiscard]] double rankOf(NodeId n) const;

  [[nodiscard]] std::size_t waitingCount() const;
  [[nodiscard]] std::size_t executingCount() const;

  /// Order in which the query started executing (1, 2, ...); 0 if it has
  /// not been dequeued yet.
  [[nodiscard]] std::uint64_t execSeq(NodeId n) const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t completedCount = 0;
    std::uint64_t swappedOutCount = 0;  ///< CACHED left memory (demote/drop)
    std::uint64_t restoredCount = 0;    ///< SWAPPED_OUT -> CACHED revivals
    std::uint64_t retiredCount = 0;     ///< terminal drops (retired())
    std::uint64_t failedCount = 0;
    std::uint64_t foldEdges = 0;        ///< fold edges recorded (noteFold)
    std::uint64_t rankEvaluations = 0;  ///< policy->rank() calls
    std::uint64_t staleHeapPops = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Access to the underlying graph for tests and diagnostics. The caller
  /// must not use this concurrently with mutating scheduler calls (hence
  /// the analysis opt-out: it returns a guarded member by reference).
  [[nodiscard]] const SchedulingGraph& graphUnsafe() const
      NO_THREAD_SAFETY_ANALYSIS {
    return graph_;
  }

  [[nodiscard]] const RankingPolicy& policy() const { return *policy_; }

  /// Attach a lifecycle tracer: submit() opens a QUEUED span for the node
  /// and dequeue() closes it (queue-wait becomes a first-class span). The
  /// tracer must outlive the scheduler; node ids double as trace query ids.
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct HeapEntry {
    double rank = 0.0;
    std::uint64_t arrival = 0;
    std::uint64_t version = 0;
    NodeId node = kInvalidNode;
  };
  struct HeapCmp {
    // std::priority_queue keeps the *largest* on top under this "less".
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.arrival > b.arrival;  // older queries win ties
    }
  };
  struct NodeRt {
    std::uint64_t version = 0;
    std::uint64_t execSeq = 0;
  };
  /// One staged reportQueryOutcome / reportResourceSignal call.
  struct FeedbackEvent {
    enum class Kind : std::uint8_t { Outcome, Resource } kind = Kind::Outcome;
    double value = 0.0;
  };

  void rerankLocked(NodeId n) REQUIRES(mu_);
  void rerankNeighborsLocked(NodeId n) REQUIRES(mu_);
  void rerankAllWaitingLocked() REQUIRES(mu_);
  void afterEventLocked(NodeId n) REQUIRES(mu_);
  /// Apply every staged feedback event (plus `extra`, the overflow
  /// fallback), then rerank the waiting set once if any event arrived and
  /// the policy is adaptive.
  void drainFeedbackLocked(const FeedbackEvent* extra = nullptr)
      REQUIRES(mu_);

  /// Set once before any worker thread exists (QueryServer's constructor
  /// installs it before spawning workers); the pointee synchronizes itself.
  trace::Tracer* tracer_ = nullptr;

  mutable Mutex mu_{lockorder::Rank::kScheduler, "QueryScheduler::mu_"};
  SchedulingGraph graph_ GUARDED_BY(mu_);
  PolicyPtr policy_;        ///< immutable after construction; rank() is const
  bool incremental_;        ///< immutable after construction
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap_
      GUARDED_BY(mu_);
  std::unordered_map<NodeId, NodeRt> rt_ GUARDED_BY(mu_);
  std::uint64_t nextExecSeq_ GUARDED_BY(mu_) = 1;
  std::size_t waiting_ GUARDED_BY(mu_) = 0;
  std::size_t executing_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
  /// Staged feedback reports (producers: query threads, lock-free;
  /// consumer: drainFeedbackLocked under mu_).
  MpscRing<FeedbackEvent, 256> feedback_;
};

}  // namespace mqs::sched
