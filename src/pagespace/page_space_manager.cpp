#include "pagespace/page_space_manager.hpp"

#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace mqs::pagespace {

namespace {
thread_local std::uint64_t tlsDeviceBytes = 0;
thread_local double tlsStallSeconds = 0.0;

/// Adds wall time spent in a blocking wait to the thread's stall counter.
/// With a tracer active and a current query on this thread, the wait is
/// also emitted as an IO_STALL span — and the stall is measured from the
/// span's own begin/end timestamps (the same two clock reads), so a
/// query's IO_STALL span durations sum to exactly its ioStallTime.
class StallTimer {
 public:
  explicit StallTimer(trace::Tracer* tracer) {
    if (tracer != nullptr && tracer->enabled()) {
      if (const auto qid = tracer->currentThreadQuery()) {
        const double t0 = tracer->beginSpan(*qid, trace::SpanKind::IoStall);
        if (t0 != trace::Tracer::kDisabledTs) {
          tracer_ = tracer;
          queryId_ = *qid;
          traceT0_ = t0;
          return;
        }
      }
    }
    t0_ = std::chrono::steady_clock::now();
  }
  ~StallTimer() {
    if (tracer_ != nullptr) {
      const double t1 = tracer_->endSpan(queryId_, trace::SpanKind::IoStall);
      if (t1 != trace::Tracer::kDisabledTs) {
        tlsStallSeconds += t1 - traceT0_;
      }
      return;
    }
    tlsStallSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
  }

 private:
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t queryId_ = 0;
  double traceT0_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
};

/// Rebuild a failed read's exception on the calling thread. Each waiter
/// gets a fresh object; the original exception died on the reading thread.
[[noreturn]] void throwReadError(const ReadResult& r) {
  switch (r.error) {
    case ReadResult::Error::Transient:
      throw storage::TransientReadError(r.message);
    case ReadResult::Error::Permanent:
      throw storage::PermanentReadError(r.message);
    default:
      throw std::runtime_error(r.message);
  }
}
}  // namespace

void PageSpaceManager::resetThreadCounters() {
  tlsDeviceBytes = 0;
  tlsStallSeconds = 0.0;
}
std::uint64_t PageSpaceManager::threadDeviceBytes() { return tlsDeviceBytes; }
double PageSpaceManager::threadStallSeconds() { return tlsStallSeconds; }

PageSpaceManager::PageSpaceManager(std::uint64_t capacityBytes, int ioThreads,
                                   RetryPolicy retry)
    : core_(capacityBytes), retry_(retry) {
  MQS_CHECK(ioThreads >= 0);
  MQS_CHECK(retry_.maxAttempts >= 1);
  MQS_CHECK(retry_.backoffSec >= 0.0 && retry_.multiplier >= 1.0);
  if (ioThreads > 0) {
    io_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(ioThreads));
  }
}

PageSpaceManager::~PageSpaceManager() {
  // Drain queued prefetches before members are torn down; the pool is the
  // last-declared member but the explicit shutdown keeps the ordering
  // obvious (and safe if members are ever reordered).
  if (io_) io_->shutdown();
}

void PageSpaceManager::attach(storage::DatasetId dataset,
                              const storage::DataSource* source) {
  MQS_CHECK(source != nullptr);
  MutexLock lock(mu_);
  sources_[dataset] = source;
}

const storage::DataSource* PageSpaceManager::sourceFor(
    storage::DatasetId dataset) const {
  auto it = sources_.find(dataset);
  MQS_CHECK_MSG(it != sources_.end(), "fetch from unattached dataset");
  return it->second;
}

std::uint64_t PageSpaceManager::consumeClaimLocked(const storage::PageKey& key,
                                                   bool served) {
  auto it = claims_.find(key);
  if (it == claims_.end()) return 0;
  Claim& c = it->second;
  const std::uint64_t credit = served ? c.creditBytes : 0;
  c.creditBytes = 0;
  if (c.issued) {
    // Attribute the issued read once: to a hit if a fetch consumed the
    // page, to waste if the prefetched copy was lost before use.
    if (served) {
      ++prefetchHits_;
    } else {
      ++prefetchWasted_;
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::PrefetchWasted);
      }
    }
    c.issued = false;
  }
  if (--c.count <= 0) {
    if (c.pinned) core_.unpin(key);
    claims_.erase(it);
  }
  return credit;
}

void PageSpaceManager::performRead(const storage::PageKey& key,
                                   const storage::DataSource* source,
                                   std::promise<ReadResult>& promise,
                                   bool viaPrefetch) {
  PagePtr page;
  try {
    const std::size_t n = source->pageBytes(key.page);
    auto buffer = std::make_shared<std::vector<std::byte>>(n);
    // Retry transient device faults with exponential backoff; anything else
    // (permanent faults, programming errors) propagates on first throw.
    for (int attempt = 1;; ++attempt) {
      try {
        source->readPage(key.page, *buffer);
        break;
      } catch (const storage::TransientReadError&) {
        if (attempt >= retry_.maxAttempts) throw;
        double backoff = retry_.backoffSec;
        for (int k = 1; k < attempt; ++k) backoff *= retry_.multiplier;
        if (backoff > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        }
        MutexLock lock(mu_);
        ++readRetries_;
      }
    }
    page = std::move(buffer);

    MutexLock lock(mu_);
    bytesRead_ += n;
    for (const auto& victim : core_.insert(key, n)) {
      resident_.erase(victim);
      if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsEvict);
    }
    if (core_.contains(key)) {
      resident_[key] = page;
      // An outstanding claim pins the page so eviction pressure from other
      // queries cannot drop it before its claimant consumes it.
      if (auto it = claims_.find(key); it != claims_.end() && !it->second.pinned) {
        core_.pin(key);
        it->second.pinned = true;
      }
    }
    if (viaPrefetch) {
      // Charge the device bytes to whichever query consumes the page.
      if (auto it = claims_.find(key); it != claims_.end()) {
        it->second.creditBytes = n;
      }
    }
    inflight_.erase(key);
  } catch (...) {
    {
      MutexLock lock(mu_);
      ++readFailures_;
      inflight_.erase(key);
    }
    // Flatten the failure to (kind, message): waiters rebuild their own
    // exception objects, so none is shared across threads.
    ReadResult r;
    try {
      throw;
    } catch (const storage::TransientReadError& e) {
      r.error = ReadResult::Error::Transient;
      r.message = e.what();
    } catch (const storage::PermanentReadError& e) {
      r.error = ReadResult::Error::Permanent;
      r.message = e.what();
    } catch (const std::exception& e) {
      r.error = ReadResult::Error::Other;
      r.message = e.what();
    } catch (...) {
      r.error = ReadResult::Error::Other;
      r.message = "unknown read error";
    }
    promise.set_value(std::move(r));
    return;
  }
  ReadResult ok;
  ok.page = std::move(page);
  promise.set_value(std::move(ok));
}

PagePtr PageSpaceManager::fetch(const storage::PageKey& key) {
  std::shared_ptr<std::promise<ReadResult>> promise;
  std::shared_future<ReadResult> future;
  const storage::DataSource* source = nullptr;
  {
    MutexLock lock(mu_);
    if (core_.touch(key)) {
      auto it = resident_.find(key);
      MQS_DCHECK(it != resident_.end());
      tlsDeviceBytes += consumeClaimLocked(key, /*served=*/true);
      if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsHit);
      return it->second;
    }
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::PsMiss);
    auto inIt = inflight_.find(key);
    if (inIt != inflight_.end()) {
      // Another thread (query or I/O pool) is already reading this page:
      // merge onto the one device read.
      ++merged_;
      future = inIt->second;
    } else {
      source = sourceFor(key.dataset);
      // A claim whose page is neither resident nor in flight is stale: the
      // prefetched copy was lost (uncacheable insert under pin pressure).
      // Settle one claim as wasted here, under the same lock, so claims
      // taken by prefetches racing with this read are left to their owners.
      (void)consumeClaimLocked(key, /*served=*/false);
      promise = std::make_shared<std::promise<ReadResult>>();
      future = promise->get_future().share();
      inflight_.emplace(key, future);
    }
  }

  if (source != nullptr) {
    // Demand miss: read on the calling thread (no context switch). The
    // caller's claim (if any) was already settled above, so a failing read
    // keeps the always-consume-one-claim contract.
    const std::size_t n = source->pageBytes(key.page);
    {
      StallTimer stall(tracer_);
      performRead(key, source, *promise, /*viaPrefetch=*/false);
    }
    const ReadResult& r = future.get();
    if (r.error != ReadResult::Error::None) throwReadError(r);
    tlsDeviceBytes += n;
    return r.page;
  }

  ReadResult r;
  {
    StallTimer stall(tracer_);
    r = future.get();
  }
  if (r.error != ReadResult::Error::None) {
    // The merged read failed: settle the caller's claim as unserved so
    // the failure path consumes exactly one claim, like success does.
    {
      MutexLock lock(mu_);
      (void)consumeClaimLocked(key, /*served=*/false);
    }
    throwReadError(r);
  }
  std::uint64_t credit = 0;
  {
    MutexLock lock(mu_);
    credit = consumeClaimLocked(key, /*served=*/true);
  }
  tlsDeviceBytes += credit;
  return r.page;
}

void PageSpaceManager::prefetch(const storage::PageKey& key) {
  if (!io_) return;  // synchronous mode: readahead hints are ignored
  std::shared_ptr<std::promise<ReadResult>> promise;
  const storage::DataSource* source = nullptr;
  {
    MutexLock lock(mu_);
    Claim& c = claims_[key];
    ++c.count;
    // contains() instead of touch(): a hint must not distort hit/miss
    // stats, and the pin below protects the page regardless of LRU order.
    if (core_.contains(key)) {
      if (!c.pinned) {
        core_.pin(key);
        c.pinned = true;
      }
      return;
    }
    if (inflight_.contains(key)) {
      return;  // coalesce: the claim is pinned when the read lands
    }
    source = sourceFor(key.dataset);
    promise = std::make_shared<std::promise<ReadResult>>();
    inflight_.emplace(key, promise->get_future().share());
    ++prefetchIssued_;
    if (tracer_ != nullptr) {
      tracer_->counter(trace::CounterKind::PrefetchIssued);
    }
    c.issued = true;
  }
  const bool queued = io_->submit([this, key, source, promise] {
    performRead(key, source, *promise, /*viaPrefetch=*/true);
  });
  if (!queued) {
    // Pool is shutting down: fail the read so no waiter hangs.
    {
      MutexLock lock(mu_);
      inflight_.erase(key);
    }
    promise->set_value(ReadResult{.page = nullptr,
                                  .error = ReadResult::Error::Other,
                                  .message =
                                      "page space manager is shutting down"});
  }
}

void PageSpaceManager::releaseClaim(const storage::PageKey& key) {
  MutexLock lock(mu_);
  auto it = claims_.find(key);
  if (it == claims_.end()) return;
  Claim& c = it->second;
  if (--c.count <= 0) {
    if (c.issued) {
      ++prefetchWasted_;  // issued read never consumed
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::PrefetchWasted);
      }
    }
    if (c.pinned) core_.unpin(key);
    claims_.erase(it);
  }
}

std::vector<PagePtr> PageSpaceManager::fetchBatch(
    std::span<const storage::PageKey> keys) {
  for (const auto& key : keys) prefetch(key);
  std::vector<PagePtr> out;
  out.reserve(keys.size());
  std::size_t done = 0;
  try {
    for (; done < keys.size(); ++done) {
      out.push_back(fetch(keys[done]));
    }
  } catch (...) {
    // The failing fetch consumed its own claim (fetch's failure contract),
    // as did every fetch before it; release only the claims taken for keys
    // the batch never reached. Releasing the failing key here as well would
    // over-release: with no batch claim left it would steal — and unpin —
    // a claim held by a concurrent query on the same page.
    for (std::size_t j = done + 1; j < keys.size(); ++j) {
      releaseClaim(keys[j]);
    }
    throw;
  }
  return out;
}

PageSpaceManager::Stats PageSpaceManager::stats() const {
  MutexLock lock(mu_);
  const auto& c = core_.stats();
  Stats s;
  s.hits = c.hits;
  // Core counts a merged fetch as a miss too; report device reads and
  // merges separately so hits + misses + merged == fetches. Prefetch-
  // issued reads never touch() the core, so they are not in c.misses.
  s.misses = c.misses - merged_;
  s.merged = merged_;
  s.bytesRead = bytesRead_;
  s.evictions = c.evictions;
  s.prefetchIssued = prefetchIssued_;
  s.prefetchHits = prefetchHits_;
  s.prefetchWasted = prefetchWasted_;
  s.readRetries = readRetries_;
  s.readFailures = readFailures_;
  return s;
}

std::uint64_t PageSpaceManager::capacityBytes() const {
  MutexLock lock(mu_);
  return core_.capacityBytes();
}

std::uint64_t PageSpaceManager::residentBytes() const {
  MutexLock lock(mu_);
  return core_.residentBytes();
}

std::size_t PageSpaceManager::inflightCount() const {
  MutexLock lock(mu_);
  return inflight_.size();
}

std::size_t PageSpaceManager::claimCount() const {
  MutexLock lock(mu_);
  return claims_.size();
}

}  // namespace mqs::pagespace
