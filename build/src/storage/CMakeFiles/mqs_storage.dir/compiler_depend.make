# Empty compiler generated dependencies file for mqs_storage.
# This may be replaced when dependencies are built.
