
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/graph.cpp" "src/sched/CMakeFiles/mqs_sched.dir/graph.cpp.o" "gcc" "src/sched/CMakeFiles/mqs_sched.dir/graph.cpp.o.d"
  "/root/repo/src/sched/policies.cpp" "src/sched/CMakeFiles/mqs_sched.dir/policies.cpp.o" "gcc" "src/sched/CMakeFiles/mqs_sched.dir/policies.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/mqs_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/mqs_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
