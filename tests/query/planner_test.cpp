// Unit + property tests for the shared reuse planner: greedy multi-source
// selection by marginal covered-output bytes, the tiling invariant
// (projection coverage + remainder parts account for every output byte),
// pinning, depth limits, and executing-source eligibility.
#include "query/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "datastore/data_store.hpp"
#include "sched/scheduler.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::query {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() {
    dataset_ = sem_.addDataset(index::ChunkLayout(4096, 4096, 64));
  }

  PredicatePtr pred(Rect region, std::uint32_t zoom = 4,
                    VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(dataset_, region, zoom, op);
  }

  std::uint64_t outBytes(const Predicate& p) { return sem_.qoutsize(p); }

  datastore::BlobId insert(datastore::DataStore& ds, PredicatePtr p) {
    const std::uint64_t bytes = sem_.qoutsize(*p);
    const auto id = ds.insert(std::move(p), {}, bytes);
    EXPECT_TRUE(id.has_value());
    return *id;
  }

  Planner makePlanner(int maxSources, PlannerConfig base = {}) {
    base.maxReuseSources = maxSources;
    return Planner(&sem_, base);
  }

  /// Sum of qoutsize over the plan's ComputeRemainder steps.
  std::uint64_t remainderBytes(const ReusePlan& plan) {
    std::uint64_t sum = 0;
    for (const PlanStep& s : plan.steps) {
      if (s.kind == PlanStep::Kind::ComputeRemainder) {
        sum += sem_.qoutsize(*s.pred);
      }
    }
    return sum;
  }

  vm::VMSemantics sem_;
  storage::DatasetId dataset_ = 0;
};

TEST_F(PlannerTest, EmptyStoreYieldsSingleRemainderStep) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 256, 256));
  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, PlanStep::Kind::ComputeRemainder);
  EXPECT_FALSE(plan.hasReuse());
  EXPECT_FALSE(plan.fullyCovered());
  EXPECT_EQ(plan.planBytesCovered, 0u);
  EXPECT_EQ(plan.shape(), "R");
  // The remainder is the whole query.
  EXPECT_EQ(sem_.overlap(*plan.steps[0].pred, *q), 1.0);
}

TEST_F(PlannerTest, ExactDuplicateFullyCoversWithOneSource) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 256, 256));
  const auto blob = insert(ds, q->clone());
  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].kind, PlanStep::Kind::ProjectFromCached);
  EXPECT_EQ(plan.steps[0].blob, blob);
  EXPECT_TRUE(plan.fullyCovered());
  EXPECT_DOUBLE_EQ(plan.primaryOverlap, 1.0);
  EXPECT_EQ(plan.planBytesCovered, outBytes(*q));
  EXPECT_EQ(plan.shape(), "C" + std::to_string(outBytes(*q)));
}

TEST_F(PlannerTest, TwoDisjointSourcesComposeToFullCoverage) {
  datastore::DataStore ds(1 << 24, &sem_);
  // Query spans two cached halves, neither of which covers it alone.
  const auto q = pred(Rect::ofSize(0, 0, 512, 256));
  insert(ds, pred(Rect::ofSize(0, 0, 256, 256)));
  insert(ds, pred(Rect::ofSize(256, 0, 256, 256)));

  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  EXPECT_EQ(plan.reuseSources(), 2);
  EXPECT_TRUE(plan.fullyCovered());
  EXPECT_EQ(plan.planBytesCovered, outBytes(*q));
  EXPECT_DOUBLE_EQ(plan.primaryOverlap, 0.5);
}

TEST_F(PlannerTest, MultiSourceStrictlyBeatsSingleSource) {
  datastore::DataStore dsA(1 << 24, &sem_);
  datastore::DataStore dsB(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 512));
  for (auto* ds : {&dsA, &dsB}) {
    insert(*ds, pred(Rect::ofSize(0, 0, 512, 256)));
    insert(*ds, pred(Rect::ofSize(0, 256, 512, 256)));
  }
  const ReusePlan single =
      makePlanner(1).plan(*q, dsA, nullptr, sched::kInvalidNode);
  const ReusePlan multi =
      makePlanner(4).plan(*q, dsB, nullptr, sched::kInvalidNode);
  EXPECT_EQ(single.reuseSources(), 1);
  EXPECT_EQ(multi.reuseSources(), 2);
  EXPECT_GT(multi.planBytesCovered, single.planBytesCovered);
  EXPECT_FALSE(single.fullyCovered());
  EXPECT_TRUE(multi.fullyCovered());
}

TEST_F(PlannerTest, GreedyPicksLargestMarginalFirst) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 256));
  const auto small = insert(ds, pred(Rect::ofSize(384, 0, 128, 256)));
  const auto big = insert(ds, pred(Rect::ofSize(0, 0, 384, 256)));
  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  ASSERT_GE(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].blob, big);
  EXPECT_EQ(plan.steps[1].blob, small);
  EXPECT_GT(plan.steps[0].bytesCovered, plan.steps[1].bytesCovered);
  EXPECT_TRUE(plan.fullyCovered());
}

TEST_F(PlannerTest, RedundantSourceContributesNothingAndIsSkipped) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 256));
  const auto whole = insert(ds, pred(Rect::ofSize(0, 0, 512, 256)));
  const auto inner = insert(ds, pred(Rect::ofSize(128, 0, 128, 256)));
  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  ASSERT_EQ(plan.reuseSources(), 1);
  EXPECT_EQ(plan.steps[0].blob, whole);
  for (const PlanStep& s : plan.steps) EXPECT_NE(s.blob, inner);
}

TEST_F(PlannerTest, SourceBudgetLeavesRemainders) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 512));
  insert(ds, pred(Rect::ofSize(0, 0, 512, 256)));
  insert(ds, pred(Rect::ofSize(0, 256, 512, 256)));
  const ReusePlan plan =
      makePlanner(1).plan(*q, ds, nullptr, sched::kInvalidNode);
  EXPECT_EQ(plan.reuseSources(), 1);
  EXPECT_FALSE(plan.fullyCovered());
  // Covered + remainder bytes account for the whole output exactly.
  EXPECT_EQ(plan.planBytesCovered + remainderBytes(plan), outBytes(*q));
}

TEST_F(PlannerTest, DepthPastLimitForcesRawCompute) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 256, 256));
  insert(ds, q->clone());
  PlannerConfig cfg;
  cfg.maxNestedReuseDepth = 2;
  const Planner planner(&sem_, cfg);
  EXPECT_TRUE(planner.plan(*q, ds, nullptr, sched::kInvalidNode, 2).hasReuse());
  EXPECT_FALSE(
      planner.plan(*q, ds, nullptr, sched::kInvalidNode, 3).hasReuse());
}

TEST_F(PlannerTest, DataStoreDisabledForcesRawCompute) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 256, 256));
  insert(ds, q->clone());
  PlannerConfig cfg;
  cfg.dataStoreEnabled = false;
  const ReusePlan plan =
      Planner(&sem_, cfg).plan(*q, ds, nullptr, sched::kInvalidNode);
  EXPECT_FALSE(plan.hasReuse());
  EXPECT_EQ(plan.shape(), "R");
}

TEST_F(PlannerTest, PinSourcesHoldsPinsUntilPlanDies) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 256));
  insert(ds, pred(Rect::ofSize(0, 0, 256, 256)));
  insert(ds, pred(Rect::ofSize(256, 0, 256, 256)));
  PlannerConfig cfg;
  cfg.pinSources = true;
  const Planner planner(&sem_, cfg);
  {
    const ReusePlan plan = planner.plan(*q, ds, nullptr, sched::kInvalidNode);
    EXPECT_EQ(plan.reuseSources(), 2);
    ASSERT_EQ(plan.pins.size(), 2u);
    // Selected blobs stay pinned (unselected candidates were released).
    EXPECT_EQ(ds.pinnedBlobs(), 2u);
  }
  EXPECT_EQ(ds.pinnedBlobs(), 0u);
}

TEST_F(PlannerTest, SelectedSourcesAreReportedAsHits) {
  datastore::DataStore ds(1 << 24, &sem_);
  const auto q = pred(Rect::ofSize(0, 0, 512, 256));
  insert(ds, pred(Rect::ofSize(0, 0, 256, 256)));
  insert(ds, pred(Rect::ofSize(256, 0, 256, 256)));
  const ReusePlan plan =
      makePlanner(4).plan(*q, ds, nullptr, sched::kInvalidNode);
  EXPECT_EQ(plan.reuseSources(), 2);
  const auto stats = ds.stats();
  EXPECT_EQ(stats.lookups, 1u);  // one lookupTopK per plan
  EXPECT_EQ(stats.hits, 2u);     // one noteReuse per selected source
}

TEST_F(PlannerTest, ExecutingSourceRequiresOlderExecution) {
  datastore::DataStore ds(1 << 24, &sem_);
  sched::QueryScheduler sched(&sem_, sched::makePolicy("FIFO"));
  // q1 starts executing first; q2 overlaps it and starts later.
  const auto n1 = sched.submit(pred(Rect::ofSize(0, 0, 256, 256)));
  const auto q2 = pred(Rect::ofSize(0, 0, 512, 256));
  const auto n2 = sched.submit(q2->clone());
  ASSERT_EQ(sched.dequeue(), n1);
  ASSERT_EQ(sched.dequeue(), n2);

  const ReusePlan plan = makePlanner(4).plan(*q2, ds, &sched, n2);
  ASSERT_EQ(plan.reuseSources(), 1);
  EXPECT_EQ(plan.steps[0].kind, PlanStep::Kind::WaitAndProjectFromExecuting);
  EXPECT_EQ(plan.steps[0].node, n1);
  // The older execution must never wait on the newer one (acyclicity).
  const auto q1 = sched.predicateOf(n1);
  const ReusePlan older = makePlanner(4).plan(*q1, ds, &sched, n1);
  for (const PlanStep& s : older.steps) {
    EXPECT_NE(s.kind, PlanStep::Kind::WaitAndProjectFromExecuting);
  }
}

TEST_F(PlannerTest, CachedSourceWinsTiesOverExecuting) {
  datastore::DataStore ds(1 << 24, &sem_);
  sched::QueryScheduler sched(&sem_, sched::makePolicy("FIFO"));
  const auto src = pred(Rect::ofSize(0, 0, 256, 256));
  const auto n1 = sched.submit(src->clone());
  const auto q2 = pred(Rect::ofSize(0, 0, 256, 256));
  const auto n2 = sched.submit(q2->clone());
  ASSERT_EQ(sched.dequeue(), n1);
  ASSERT_EQ(sched.dequeue(), n2);
  insert(ds, src->clone());  // identical coverage also available cached

  const ReusePlan plan = makePlanner(4).plan(*q2, ds, &sched, n2);
  ASSERT_EQ(plan.reuseSources(), 1);
  EXPECT_EQ(plan.steps[0].kind, PlanStep::Kind::ProjectFromCached);
}

TEST_F(PlannerTest, NestedDepthNeverWaitsOnExecuting) {
  datastore::DataStore ds(1 << 24, &sem_);
  sched::QueryScheduler sched(&sem_, sched::makePolicy("FIFO"));
  const auto n1 = sched.submit(pred(Rect::ofSize(0, 0, 256, 256)));
  const auto q2 = pred(Rect::ofSize(0, 0, 256, 256));
  const auto n2 = sched.submit(q2->clone());
  ASSERT_EQ(sched.dequeue(), n1);
  ASSERT_EQ(sched.dequeue(), n2);
  const ReusePlan plan = makePlanner(4).plan(*q2, ds, &sched, n2, /*depth=*/1);
  for (const PlanStep& s : plan.steps) {
    EXPECT_NE(s.kind, PlanStep::Kind::WaitAndProjectFromExecuting);
  }
}

// Property: for random cached contents and queries, the plan's marginal
// coverage plus its remainder parts account for every output byte exactly
// (VM semantics compute reusedOutputBytes exactly), projection steps carry
// per-source marginals that sum to planBytesCovered, and a larger source
// budget never covers fewer bytes.
TEST_F(PlannerTest, PropertyCoverageAccountingIsExact) {
  Rng rng(20260806);
  constexpr std::int64_t kGrid = 64;   // pixels; all rects on this grid
  constexpr std::int64_t kWorld = 16;  // grid cells per side
  const auto randomPred = [&] {
    const std::int64_t w = rng.uniformInt(1, kWorld / 2) * kGrid;
    const std::int64_t h = rng.uniformInt(1, kWorld / 2) * kGrid;
    const std::int64_t x = rng.uniformInt(0, kWorld / 2) * kGrid;
    const std::int64_t y = rng.uniformInt(0, kWorld / 2) * kGrid;
    return pred(Rect::ofSize(x, y, w, h), 4);
  };
  for (int trial = 0; trial < 60; ++trial) {
    datastore::DataStore ds(1ULL << 30, &sem_);
    const int blobs = static_cast<int>(rng.uniformInt(0, 8));
    for (int b = 0; b < blobs; ++b) insert(ds, randomPred());
    const auto q = randomPred();

    std::uint64_t prevCovered = 0;
    for (int budget : {1, 2, 4, 8}) {
      const ReusePlan plan =
          makePlanner(budget).plan(*q, ds, nullptr, sched::kInvalidNode);
      std::uint64_t perSource = 0;
      std::set<datastore::BlobId> seen;
      for (const PlanStep& s : plan.steps) {
        if (s.kind == PlanStep::Kind::ComputeRemainder) continue;
        perSource += s.bytesCovered;
        EXPECT_GT(s.bytesCovered, 0u);
        EXPECT_GE(s.projectionBytes, s.bytesCovered);
        EXPECT_TRUE(seen.insert(s.blob).second) << "source selected twice";
        EXPECT_FALSE(s.coveredParts.empty());
      }
      EXPECT_EQ(perSource, plan.planBytesCovered);
      EXPECT_EQ(plan.planBytesCovered + remainderBytes(plan), outBytes(*q))
          << "trial " << trial << " budget " << budget << " q "
          << q->describe();
      EXPECT_LE(static_cast<int>(plan.reuseSources()), budget);
      EXPECT_GE(plan.planBytesCovered, prevCovered)
          << "larger budget covered fewer bytes";
      prevCovered = plan.planBytesCovered;
    }
  }
}

}  // namespace
}  // namespace mqs::query
