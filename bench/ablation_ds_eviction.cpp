// Ablation: Data Store replacement policy. The paper reclaims DS memory
// without specifying the victim-selection rule; this sweep compares LRU
// (our default) against LFU and largest-first under cache pressure, for
// both client modes.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_ds_eviction");
  ctx.printHeader();

  const auto dsMb = ctx.options().getIntList("dsmem", {32, 64});
  const std::vector<std::string> policies = {"LRU", "LFU", "LARGEST"};

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("DS eviction policy sweep (CF scheduling), ") +
                bench::opName(op));
    table.setColumns({"eviction", "DS(MB)", "trimmed-response(s)",
                      "avg-overlap", "batch-total(s)", "evictions"});
    for (const auto& eviction : policies) {
      for (const auto mb : dsMb) {
        auto cfg = ctx.server("CF", 4,
                              static_cast<std::uint64_t>(mb) * MiB, 32 * MiB);
        cfg.dsEviction = eviction;
        const auto inter =
            driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
        const auto batch =
            driver::SimExperiment::runBatch(ctx.workload(op), cfg);
        table.addRow({eviction, std::to_string(mb),
                      formatDouble(inter.summary.trimmedResponse, 3),
                      formatDouble(inter.summary.avgOverlap, 3),
                      formatDouble(batch.summary.makespan, 2),
                      std::to_string(batch.dsStats.evictions)});
      }
    }
    ctx.emit(table);
  }
  return 0;
}
