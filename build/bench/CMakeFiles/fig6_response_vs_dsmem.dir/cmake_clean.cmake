file(REMOVE_RECURSE
  "CMakeFiles/fig6_response_vs_dsmem.dir/fig6_response_vs_dsmem.cpp.o"
  "CMakeFiles/fig6_response_vs_dsmem.dir/fig6_response_vs_dsmem.cpp.o.d"
  "fig6_response_vs_dsmem"
  "fig6_response_vs_dsmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_response_vs_dsmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
