// Virtual Microscope query execution: clip, subsample / average, project.
//
// execute() walks the chunks intersecting the query region (retrieved via
// the Page Space Manager), clips each to the query window, and computes the
// output image at the requested magnification — the pipeline of §3.
// project() re-renders a cached lower-zoom result into a higher-zoom query
// (or copies at equal zoom), used both for Data Store reuse and for
// assembling sub-query results into their parent's output.
#pragma once

#include "query/executor.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::vm {

class VMExecutor final : public query::QueryExecutor {
 public:
  /// `intraQueryThreads` > 1 renders a query's horizontal bands in
  /// parallel (the bands share boundary chunks, which the Page Space
  /// Manager deduplicates). Effective thread count is
  /// queryServerThreads * intraQueryThreads; the paper's system is purely
  /// inter-query parallel, so the default is 1.
  explicit VMExecutor(const VMSemantics* semantics, int intraQueryThreads = 1);

  [[nodiscard]] std::vector<std::byte> execute(
      const query::Predicate& pred,
      pagespace::PageSpaceManager& ps) const override;

  void project(const query::Predicate& cached,
               std::span<const std::byte> cachedPayload,
               const query::Predicate& out,
               std::span<std::byte> outBuffer) const override;

 private:
  [[nodiscard]] std::vector<std::byte> executeSerial(
      const VMPredicate& q, pagespace::PageSpaceManager& ps) const;

  const VMSemantics* semantics_;
  int intraQueryThreads_;
};

}  // namespace mqs::vm
