// The Virtual Microscope's user-defined functions: Eq. 4 overlap, qoutsize,
// qinputsize, and remainder decomposition.
//
// Reuse rules (a zoom-I_S result projected into a zoom-O_S query):
//   * same dataset and same processing function;
//   * O_S must be a multiple of I_S (§3: "O_S should be a multiple of I_S
//     so that the query can use the intermediate result");
//   * grid alignment: the two regions' origins must agree modulo I_S in
//     both axes — otherwise the query's sample positions (subsampling) or
//     averaging windows do not coincide with the cached result's;
//   * the usable area is the intersection shrunk to the query's output
//     pixel grid, so remainder sub-queries keep whole output pixels.
//
// Overlap index (Eq. 4):  (I_A * I_S) / (O_A * O_S).
#pragma once

#include <vector>

#include "index/chunk_layout.hpp"
#include "query/semantics.hpp"
#include "vm/vm_predicate.hpp"

namespace mqs::vm {

class VMSemantics final : public query::QuerySemantics {
 public:
  /// Register a dataset's chunk layout; returns its DatasetId (0, 1, ...).
  storage::DatasetId addDataset(index::ChunkLayout layout);

  [[nodiscard]] const index::ChunkLayout& layout(
      storage::DatasetId dataset) const;
  [[nodiscard]] std::size_t datasetCount() const { return layouts_.size(); }

  [[nodiscard]] double overlap(const query::Predicate& cached,
                               const query::Predicate& q) const override;
  [[nodiscard]] std::uint64_t qoutsize(
      const query::Predicate& p) const override;
  [[nodiscard]] std::uint64_t qinputsize(
      const query::Predicate& p) const override;
  [[nodiscard]] Rect coveredRegion(const query::Predicate& cached,
                                   const query::Predicate& q) const override;
  [[nodiscard]] std::vector<query::PredicatePtr> remainder(
      const query::Predicate& cached,
      const query::Predicate& q) const override;
  /// Remainder-of-region-set support: the covered region as a sub-query
  /// (a single rectangle on q's output grid), so multi-source plans can
  /// account coverage and recompute a vanished source's share exactly.
  [[nodiscard]] std::vector<query::PredicatePtr> coveredParts(
      const query::Predicate& cached,
      const query::Predicate& q) const override;
  [[nodiscard]] std::uint64_t reusedOutputBytes(
      const query::Predicate& cached,
      const query::Predicate& q) const override;

  /// True when a zoom-`cached` result is alignable into query `q` at all
  /// (dataset/op/zoom-multiple/origin-alignment), ignoring area.
  [[nodiscard]] static bool projectable(const VMPredicate& cached,
                                        const VMPredicate& q);

  /// Materialized-view helper (the intro's "use of materialized views (or
  /// intermediate results)"): a tiling of the whole dataset at `zoom` with
  /// `tileOutPixels`-square outputs. Executing these once pre-warms the
  /// Data Store so every later query at zoom >= `zoom` over this dataset
  /// projects instead of reading raw data.
  [[nodiscard]] std::vector<VMPredicate> pyramidLevel(
      storage::DatasetId dataset, std::uint32_t zoom,
      std::int64_t tileOutPixels, VMOp op) const;

 private:
  std::vector<index::ChunkLayout> layouts_;
};

}  // namespace mqs::vm
