// Figure 7 (a, b): total execution time of the whole 256-query workload
// submitted as a single batch, as Data Store memory is varied, up to 4
// concurrent queries. CF and CNBF should win, especially with a small DS.
#include "bench_common.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fig7");
  ctx.printHeader();

  const auto dsMb = ctx.options().getIntList("dsmem", {32, 64, 128, 256});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("Figure 7 — batch total execution time (s) vs DS memory, ") +
                bench::opName(op));
    std::vector<std::string> cols = {"DS(MB)"};
    for (const auto& p : sched::paperPolicyNames()) cols.push_back(p);
    table.setColumns(cols);

    for (const auto mb : dsMb) {
      std::vector<double> row;
      for (const auto& policy : sched::paperPolicyNames()) {
        const auto result = driver::SimExperiment::runBatch(
            ctx.workload(op),
            ctx.server(policy, 4, static_cast<std::uint64_t>(mb) * MiB,
                       32 * MiB));
        row.push_back(result.summary.makespan);
      }
      table.addRow(std::to_string(mb), row);
    }
    ctx.emit(table);
  }
  return 0;
}
