#include "query/planner.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace mqs::query {

namespace {

/// A reuse-source candidate under greedy consideration. Cached candidates
/// may hold a pin (pinSources mode) so eviction cannot invalidate them
/// between candidate generation and plan execution.
struct Candidate {
  bool executing = false;
  bool spilled = false;
  bool fold = false;
  datastore::BlobId blob = 0;
  sched::NodeId node = sched::kInvalidNode;
  datastore::SpillId spillId = 0;
  ScanId scanId = 0;
  double restoreCostSec = 0.0;  ///< spilled candidates only
  PredicatePtr pred;
  double overlap = 0.0;  ///< vs the full query
  datastore::DataStore::PinGuard pin;
  bool used = false;
};

/// Marginal contribution of `cand` against one uncovered part: its covered
/// output bytes, but only when the semantics can geometrically decompose
/// the part (coveredParts non-empty) — otherwise remainder() and
/// coveredParts() could not tile the part and the greedy accounting would
/// drift from what execution delivers.
std::uint64_t marginalForPart(const QuerySemantics& sem, const Predicate& cand,
                              const Predicate& part) {
  if (sem.coveredParts(cand, part).empty()) return 0;
  return sem.reusedOutputBytes(cand, part);
}

}  // namespace

int ReusePlan::reuseSources() const {
  int n = 0;
  for (const PlanStep& s : steps) {
    if (s.kind != PlanStep::Kind::ComputeRemainder) ++n;
  }
  return n;
}

bool ReusePlan::fullyCovered() const {
  return std::none_of(steps.begin(), steps.end(), [](const PlanStep& s) {
    return s.kind == PlanStep::Kind::ComputeRemainder;
  });
}

std::string ReusePlan::shape() const {
  std::string out;
  for (const PlanStep& s : steps) {
    if (!out.empty()) out += '|';
    switch (s.kind) {
      case PlanStep::Kind::ProjectFromCached:
        out += 'C';
        out += std::to_string(s.bytesCovered);
        break;
      case PlanStep::Kind::WaitAndProjectFromExecuting:
        out += 'X';
        out += std::to_string(s.bytesCovered);
        break;
      case PlanStep::Kind::RestoreFromSpill:
        out += 'S';
        out += std::to_string(s.bytesCovered);
        break;
      case PlanStep::Kind::FoldIntoScan:
        out += 'F';
        out += std::to_string(s.bytesCovered);
        break;
      case PlanStep::Kind::ComputeRemainder:
        out += 'R';
        break;
    }
  }
  return out;
}

Planner::Planner(const QuerySemantics* semantics, PlannerConfig cfg)
    : sem_(semantics), cfg_(cfg) {
  MQS_CHECK_MSG(sem_ != nullptr, "Planner requires query semantics");
  MQS_CHECK_MSG(cfg_.maxReuseSources >= 0, "maxReuseSources must be >= 0");
  MQS_CHECK_MSG(cfg_.maxNestedReuseDepth >= 0,
                "maxNestedReuseDepth must be >= 0");
}

ReusePlan Planner::plan(const Predicate& q, datastore::DataStore& ds,
                        const sched::QueryScheduler* sched,
                        sched::NodeId node, int depth,
                        datastore::SpillTier* spill,
                        std::span<const FoldCandidate> folds) const {
  ReusePlan plan;

  // Raw-compute fast path: reuse disabled, or the remainder recursion has
  // bottomed out. A single ComputeRemainder step covering q keeps the
  // "steps tile the output" contract trivially.
  if (!cfg_.dataStoreEnabled || cfg_.maxReuseSources == 0 ||
      depth > cfg_.maxNestedReuseDepth) {
    PlanStep raw;
    raw.kind = PlanStep::Kind::ComputeRemainder;
    raw.pred = q.clone();
    plan.steps.push_back(std::move(raw));
    return plan;
  }

  // --- candidate generation ----------------------------------------------
  // Cached candidates first (lookupTopK order: overlap desc, newer blob
  // first), then fold candidates (caller's registration order), then
  // executing candidates (overlap desc, older execution first), then
  // spilled candidates. The greedy tie-break below prefers earlier
  // candidates, so on equal marginal bytes a cached source beats joining a
  // scan (no wait at all), a scan beats waiting on an execution's
  // completion (the scan publishes earlier and is eviction-immune), and
  // any of them beats paying a disk restore.
  std::vector<Candidate> cands;
  const auto pool = static_cast<std::size_t>(
      std::max(cfg_.candidatePoolSize, cfg_.maxReuseSources));
  for (const datastore::DataStore::Match& m : ds.lookupTopK(q, pool)) {
    Candidate c;
    c.blob = m.id;
    if (cfg_.pinSources) {
      // Pin before reading the predicate: a concurrent eviction between
      // lookupTopK and here would otherwise leave a dangling reference.
      if (!ds.tryPin(m.id)) continue;
      c.pin = datastore::DataStore::PinGuard(ds, m.id);
    } else if (!ds.contains(m.id)) {
      continue;
    }
    c.pred = ds.predicate(m.id).clone();
    c.overlap = m.overlap;
    cands.push_back(std::move(c));
  }
  if (depth == 0 && cfg_.allowWaitOnExecuting) {
    for (const FoldCandidate& f : folds) {
      if (!f.pred) continue;
      Candidate c;
      c.fold = true;
      c.scanId = f.scanId;
      c.node = static_cast<sched::NodeId>(f.ownerNode);
      c.pred = f.pred->clone();
      // Eq. 4 via the semantics: zero unless same dataset+op and the scan's
      // zoom projects cleanly onto the query, exactly like any other source.
      c.overlap = sem_->overlap(*c.pred, q);
      if (c.overlap <= 0.0) continue;
      cands.push_back(std::move(c));
    }
  }
  if (depth == 0 && cfg_.allowWaitOnExecuting && sched != nullptr &&
      node != sched::kInvalidNode) {
    for (const sched::QueryScheduler::ReuseSource& src :
         sched->executingSources(node)) {
      Candidate c;
      c.executing = true;
      c.node = src.node;
      c.pred = sched->predicateOf(src.node);
      if (!c.pred) continue;  // node left the graph since the snapshot
      // Recompute via the semantics rather than trusting the edge weight:
      // both engines then agree on the value bit-for-bit.
      c.overlap = sem_->overlap(*c.pred, q);
      if (c.overlap <= 0.0) continue;
      cands.push_back(std::move(c));
    }
  }
  if (depth == 0 && spill != nullptr) {
    for (const datastore::SpillTier::Match& m : spill->lookupTopK(q, pool)) {
      auto snap = spill->candidate(m.id);
      if (!snap) continue;  // dropped since the lookup
      // The economics gate: restoring only earns a step when it undercuts
      // recomputing the blob (traced cost attributed at insert). Blobs with
      // no recorded cost get the benefit of the doubt — restore is then at
      // worst the cheap in-memory path.
      if (snap->recomputeCostSec > 0.0 &&
          snap->restoreCostSec >= snap->recomputeCostSec) {
        continue;
      }
      Candidate c;
      c.spilled = true;
      c.spillId = m.id;
      c.restoreCostSec = snap->restoreCostSec;
      c.pred = std::move(snap->predicate);
      c.overlap = m.overlap;
      cands.push_back(std::move(c));
    }
  }

  // --- greedy selection by marginal covered-output bytes ------------------
  std::vector<PredicatePtr> uncovered;
  uncovered.push_back(q.clone());
  int selected = 0;
  while (selected < cfg_.maxReuseSources && !uncovered.empty()) {
    std::size_t bestIdx = cands.size();
    std::uint64_t bestMarginal = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (cands[i].used) continue;
      std::uint64_t marginal = 0;
      for (const PredicatePtr& part : uncovered) {
        marginal += marginalForPart(*sem_, *cands[i].pred, *part);
      }
      if (marginal > bestMarginal) {  // strict: ties keep the earlier candidate
        bestMarginal = marginal;
        bestIdx = i;
      }
    }
    if (bestIdx == cands.size() || bestMarginal < cfg_.minMarginalBytes) break;

    Candidate& cand = cands[bestIdx];
    cand.used = true;
    PlanStep step;
    step.kind = cand.fold      ? PlanStep::Kind::FoldIntoScan
                : cand.spilled ? PlanStep::Kind::RestoreFromSpill
                : cand.executing
                    ? PlanStep::Kind::WaitAndProjectFromExecuting
                    : PlanStep::Kind::ProjectFromCached;
    step.blob = cand.blob;
    step.node = cand.node;
    step.spillId = cand.spillId;
    step.scanId = cand.scanId;
    step.restoreCostSec = cand.restoreCostSec;
    step.sourcePred = cand.pred->clone();
    step.overlap = cand.overlap;
    step.bytesCovered = bestMarginal;
    step.projectionBytes = sem_->reusedOutputBytes(*cand.pred, q);

    // Commit: decompose every part this source helps with into covered
    // sub-queries (kept on the step for vanished-source recovery) and
    // remainder sub-queries (still uncovered).
    std::vector<PredicatePtr> stillUncovered;
    for (PredicatePtr& part : uncovered) {
      std::vector<PredicatePtr> covered = sem_->coveredParts(*cand.pred, *part);
      if (covered.empty() || sem_->reusedOutputBytes(*cand.pred, *part) == 0) {
        stillUncovered.push_back(std::move(part));
        continue;
      }
      for (PredicatePtr& cp : covered) {
        step.coveredParts.push_back(std::move(cp));
      }
      for (PredicatePtr& rp : sem_->remainder(*cand.pred, *part)) {
        stillUncovered.push_back(std::move(rp));
      }
    }
    uncovered = std::move(stillUncovered);

    plan.planBytesCovered += step.bytesCovered;
    plan.primaryOverlap = std::max(plan.primaryOverlap, step.overlap);
    plan.steps.push_back(std::move(step));
    if (!cand.executing && !cand.spilled && !cand.fold) {
      ds.noteReuse(cand.blob, cand.overlap);
      if (cfg_.pinSources) plan.pins.push_back(std::move(cand.pin));
    }
    ++selected;
  }

  // Whatever is left is computed from raw data (possibly recursively
  // re-planned by the engine at depth + 1).
  for (PredicatePtr& part : uncovered) {
    PlanStep rem;
    rem.kind = PlanStep::Kind::ComputeRemainder;
    rem.pred = std::move(part);
    plan.steps.push_back(std::move(rem));
  }
  return plan;
}

}  // namespace mqs::query
