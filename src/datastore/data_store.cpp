#include "datastore/data_store.hpp"

#include <algorithm>
#include <cctype>

#include "common/check.hpp"

namespace mqs::datastore {

EvictionPolicy parseEvictionPolicy(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "LRU") return EvictionPolicy::Lru;
  if (upper == "LFU") return EvictionPolicy::Lfu;
  if (upper == "LARGEST") return EvictionPolicy::Largest;
  MQS_CHECK_MSG(false, "unknown eviction policy: '" + std::string(name) +
                           "' (valid: LRU, LFU, LARGEST; case-insensitive)");
  return EvictionPolicy::Lru;  // unreachable
}

std::string_view toString(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::Lru: return "LRU";
    case EvictionPolicy::Lfu: return "LFU";
    case EvictionPolicy::Largest: return "LARGEST";
  }
  return "?";
}

DataStore::DataStore(std::uint64_t capacityBytes,
                     const query::QuerySemantics* semantics,
                     EvictionPolicy eviction)
    : capacity_(capacityBytes), eviction_(eviction), semantics_(semantics) {
  MQS_CHECK(semantics_ != nullptr);
}

void DataStore::setEvictionListener(
    std::function<void(BlobId, const query::Predicate&)> listener) {
  MutexLock lock(mu_);
  evictionListener_ = std::move(listener);
}

std::optional<BlobId> DataStore::insert(query::PredicatePtr predicate,
                                        std::vector<std::byte> payload,
                                        std::uint64_t logicalBytes) {
  MQS_CHECK(predicate != nullptr);
  // (id, predicate) pairs evicted to make room; listener runs unlocked.
  std::vector<std::pair<BlobId, query::PredicatePtr>> evicted;
  std::function<void(BlobId, const query::Predicate&)> listener;
  std::optional<BlobId> result;
  {
    MutexLock lock(mu_);
    ++stats_.inserts;
    if (logicalBytes > capacity_ || !makeRoomLocked(logicalBytes)) {
      ++stats_.uncacheable;
    } else {
      const BlobId id = nextId_++;
      Blob blob;
      blob.predicate = std::move(predicate);
      blob.payload = std::move(payload);
      blob.logicalBytes = logicalBytes;
      lru_.push_front(id);
      blob.lruIt = lru_.begin();
      spatial_.insert(blob.predicate->boundingBox(), id);
      blobs_.emplace(id, std::move(blob));
      resident_ += logicalBytes;
      result = id;
    }
    evicted.swap(pendingEvictions_);
    if (!evicted.empty()) listener = evictionListener_;
  }
  for (auto& [id, pred] : evicted) {
    if (listener) listener(id, *pred);
  }
  return result;
}

BlobId DataStore::pickVictimLocked() const {
  constexpr BlobId kNone = 0;
  if (eviction_ == EvictionPolicy::Lru) {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const auto bit = blobs_.find(*it);
      MQS_DCHECK(bit != blobs_.end());
      if (bit->second.pins == 0) return *it;
    }
    return kNone;
  }
  // LFU / LARGEST: scan candidates, breaking ties toward the LRU end by
  // walking the recency list from least recent to most recent.
  BlobId best = kNone;
  std::uint64_t bestKey = 0;
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const auto bit = blobs_.find(*it);
    MQS_DCHECK(bit != blobs_.end());
    const Blob& blob = bit->second;
    if (blob.pins > 0) continue;
    const std::uint64_t key = eviction_ == EvictionPolicy::Lfu
                                  ? blob.uses
                                  : ~blob.logicalBytes;  // max bytes = min key
    if (best == kNone || key < bestKey) {
      best = *it;
      bestKey = key;
    }
  }
  return best;
}

bool DataStore::makeRoomLocked(std::uint64_t need) {
  if (need > capacity_) return false;
  while (resident_ + need > capacity_) {
    const BlobId victim = pickVictimLocked();
    if (victim == 0) return false;  // everything pinned
    eraseLocked(victim, /*countEviction=*/true);
  }
  return true;
}

void DataStore::eraseLocked(BlobId id, bool countEviction) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return;
  MQS_CHECK_MSG(it->second.pins == 0, "evicting a pinned blob");
  resident_ -= it->second.logicalBytes;
  lru_.erase(it->second.lruIt);
  const bool erased =
      spatial_.erase(it->second.predicate->boundingBox(), id);
  MQS_DCHECK(erased);
  (void)erased;
  if (countEviction) {
    ++stats_.evictions;
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsEvict);
  }
  pendingEvictions_.emplace_back(id, std::move(it->second.predicate));
  blobs_.erase(it);
}

std::optional<DataStore::Match> DataStore::lookup(const query::Predicate& q,
                                                  double minOverlap) {
  return lookupImpl(q, minOverlap, /*pin=*/false);
}

std::optional<DataStore::Match> DataStore::lookupAndPin(
    const query::Predicate& q, double minOverlap) {
  return lookupImpl(q, minOverlap, /*pin=*/true);
}

double DataStore::bestOverlapLinearLocked(const query::Predicate& q,
                                          double minOverlap) const {
  double best = minOverlap;
  for (const auto& [id, blob] : blobs_) {
    best = std::max(best, semantics_->overlap(*blob.predicate, q));
  }
  return best;
}

std::optional<DataStore::Match> DataStore::lookupImpl(
    const query::Predicate& q, double minOverlap, bool pinMatch) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  BlobId bestId = 0;
  double bestOverlap = minOverlap;
  bool found = false;
  // Candidate generation goes through the R-tree: overlap needs
  // intersecting bounding boxes, so only spatial matches are scored.
  spatial_.queryIntersecting(
      q.boundingBox(), [&](const Rect&, std::uint64_t id) {
        const auto it = blobs_.find(id);
        MQS_DCHECK(it != blobs_.end());
        const double ov = semantics_->overlap(*it->second.predicate, q);
        if (ov > bestOverlap) {
          bestOverlap = ov;
          bestId = id;
          found = true;
        }
      });
#ifndef NDEBUG
  // Debug cross-check: the linear scan over every resident blob must agree
  // with the R-tree candidate path (an overlap > 0 implies intersecting
  // bounding boxes, so the spatial pre-filter may never lose a match).
  MQS_DCHECK(bestOverlapLinearLocked(q, minOverlap) == bestOverlap);
#endif
  if (!found) {
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsMiss);
    return std::nullopt;
  }
  auto it = blobs_.find(bestId);
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  ++it->second.uses;
  if (pinMatch) ++it->second.pins;
  ++stats_.hits;
  if (bestOverlap >= 1.0) ++stats_.fullHits;
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsHit);
  return Match{bestId, bestOverlap};
}

std::vector<DataStore::Match> DataStore::lookupTopK(const query::Predicate& q,
                                                    std::size_t k,
                                                    double minOverlap) {
  MutexLock lock(mu_);
  ++stats_.lookups;
  if (k == 0) return {};
  std::vector<Match> matches;
  spatial_.queryIntersecting(
      q.boundingBox(), [&](const Rect&, std::uint64_t id) {
        const auto it = blobs_.find(id);
        MQS_DCHECK(it != blobs_.end());
        const double ov = semantics_->overlap(*it->second.predicate, q);
        if (ov > minOverlap) matches.push_back(Match{id, ov});
      });
#ifndef NDEBUG
  const double linearBest = bestOverlapLinearLocked(q, minOverlap);
  const double rtreeBest =
      matches.empty()
          ? minOverlap
          : std::max_element(matches.begin(), matches.end(),
                             [](const Match& a, const Match& b) {
                               return a.overlap < b.overlap;
                             })
                ->overlap;
  MQS_DCHECK(linearBest == rtreeBest);
#endif
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.overlap != b.overlap) return a.overlap > b.overlap;
    return a.id > b.id;  // ties toward the newer blob
  });
  if (matches.size() > k) matches.resize(k);
  if (matches.empty() && tracer_ != nullptr) {
    tracer_->counter(trace::CounterKind::DsMiss);
  }
  return matches;
}

void DataStore::noteReuse(BlobId id, double overlap) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  ++it->second.uses;
  ++stats_.hits;
  if (overlap >= 1.0) ++stats_.fullHits;
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsHit);
}

bool DataStore::contains(BlobId id) const {
  MutexLock lock(mu_);
  return blobs_.contains(id);
}

const query::Predicate& DataStore::predicate(BlobId id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  MQS_CHECK_MSG(it != blobs_.end(), "predicate() of absent blob");
  return *it->second.predicate;
}

std::span<const std::byte> DataStore::payload(BlobId id) const {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  MQS_CHECK_MSG(it != blobs_.end(), "payload() of absent blob");
  return it->second.payload;
}

void DataStore::pin(BlobId id) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  MQS_CHECK_MSG(it != blobs_.end(), "pin() of absent blob");
  ++it->second.pins;
}

bool DataStore::tryPin(BlobId id) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return false;
  ++it->second.pins;
  return true;
}

void DataStore::unpin(BlobId id) {
  MutexLock lock(mu_);
  auto it = blobs_.find(id);
  MQS_CHECK_MSG(it != blobs_.end(), "unpin() of absent blob");
  MQS_CHECK_MSG(it->second.pins > 0, "unbalanced unpin");
  --it->second.pins;
}

void DataStore::erase(BlobId id) {
  std::vector<std::pair<BlobId, query::PredicatePtr>> evicted;
  std::function<void(BlobId, const query::Predicate&)> listener;
  {
    MutexLock lock(mu_);
    eraseLocked(id, /*countEviction=*/false);
    evicted.swap(pendingEvictions_);
    if (!evicted.empty()) listener = evictionListener_;
  }
  for (auto& [bid, pred] : evicted) {
    if (listener) listener(bid, *pred);
  }
}

DataStore::Stats DataStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::uint64_t DataStore::residentBytes() const {
  MutexLock lock(mu_);
  return resident_;
}

std::size_t DataStore::residentBlobs() const {
  MutexLock lock(mu_);
  return blobs_.size();
}

std::size_t DataStore::pinnedBlobs() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, blob] : blobs_) {
    if (blob.pins > 0) ++n;
  }
  return n;
}

}  // namespace mqs::datastore
