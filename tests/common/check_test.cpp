#include "common/check.hpp"

#include <gtest/gtest.h>

namespace mqs {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(MQS_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MQS_CHECK_MSG(true, "never seen"));
}

TEST(Check, FailureThrowsWithLocation) {
  try {
    MQS_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsAppended) {
  try {
    MQS_CHECK_MSG(false, "the cache is haunted");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("the cache is haunted"),
              std::string::npos);
  }
}

TEST(Check, CheckFailureIsALogicError) {
  EXPECT_THROW(MQS_CHECK(false), std::logic_error);
}

TEST(Check, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto once = [&] {
    ++calls;
    return true;
  };
  MQS_CHECK(once());
  EXPECT_EQ(calls, 1);
}

TEST(Check, DcheckActiveMatchesBuildMode) {
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
  MQS_DCHECK(probe());
  (void)probe;  // otherwise unused in NDEBUG builds (MQS_DCHECK compiles out)
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);  // compiled out in release builds
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

}  // namespace
}  // namespace mqs
