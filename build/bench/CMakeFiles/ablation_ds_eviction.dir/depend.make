# Empty dependencies file for ablation_ds_eviction.
# This may be replaced when dependencies are built.
