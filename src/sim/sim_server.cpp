#include "sim/sim_server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "sim/vm_model.hpp"

namespace mqs::sim {

SimServer::SimServer(Simulator& sim, const vm::VMSemantics* semantics,
                     SimConfig cfg)
    : SimServer(sim, static_cast<const query::QuerySemantics*>(semantics),
                nullptr, std::move(cfg)) {
  ownedModel_ = std::make_unique<VMModel>(semantics, cfg_.cpuPerByteSubsample,
                                          cfg_.cpuPerByteAverage);
  model_ = ownedModel_.get();
}

SimServer::SimServer(Simulator& sim, const query::QuerySemantics* semantics,
                     const AppModel* model, SimConfig cfg)
    : sim_(&sim),
      sem_(semantics),
      model_(model),
      cfg_(std::move(cfg)),
      scheduler_(semantics, sched::makePolicy(cfg_.policy, cfg_.alpha),
                 cfg_.incrementalRanking),
      ds_(cfg_.dsBytes, semantics,
          datastore::parseEvictionPolicy(cfg_.dsEviction)),
      psCore_(cfg_.psBytes),
      cpus_(sim, cfg_.cpus) {
  MQS_CHECK(sem_ != nullptr);
  MQS_CHECK(cfg_.threads >= 1);
  MQS_CHECK(cfg_.diskFarm.disks >= 1);
  if (cfg_.ioModel == "kstream") {
    disks_.reserve(static_cast<std::size_t>(cfg_.diskFarm.disks));
    for (int i = 0; i < cfg_.diskFarm.disks; ++i) {
      disks_.push_back(std::make_unique<FcfsServer>(sim));
    }
  } else {
    MQS_CHECK_MSG(cfg_.ioModel == "fifo" || cfg_.ioModel == "elevator",
                  "ioModel must be kstream, fifo, or elevator");
    const DiskDiscipline disc = cfg_.ioModel == "fifo"
                                    ? DiskDiscipline::Fifo
                                    : DiskDiscipline::Elevator;
    posDisks_.reserve(static_cast<std::size_t>(cfg_.diskFarm.disks));
    for (int i = 0; i < cfg_.diskFarm.disks; ++i) {
      posDisks_.push_back(
          std::make_unique<DiskServer>(sim, cfg_.diskFarm.disk, disc));
    }
  }
  ds_.setEvictionListener(
      [this](datastore::BlobId id, const query::Predicate&) {
        onBlobEvicted(id);
      });
}

sched::NodeId SimServer::submit(query::PredicatePtr pred, int client) {
  MQS_CHECK(pred != nullptr);
  MQS_CHECK_MSG(model_ != nullptr, "SimServer needs an application model");
  metrics::QueryRecord rec;
  rec.client = client;
  rec.predicate = pred->describe();
  rec.arrivalTime = sim_->now();
  rec.inputBytes = sem_->qinputsize(*pred);
  rec.outputBytes = sem_->qoutsize(*pred);

  const sched::NodeId node = scheduler_.submit(std::move(pred));
  rec.queryId = node;
  pending_.emplace(node, std::move(rec));
  completion_.emplace(node, std::make_unique<Trigger>(*sim_));
  pump();
  return node;
}

Trigger& SimServer::completionOf(sched::NodeId node) {
  auto it = completion_.find(node);
  MQS_CHECK_MSG(it != completion_.end(), "completionOf unknown query");
  return *it->second;
}

Task<void> SimServer::executeAndWait(query::PredicatePtr pred, int client) {
  const sched::NodeId node = submit(std::move(pred), client);
  co_await completionOf(node).wait();
}

void SimServer::pump() {
  while (active_ < cfg_.threads) {
    auto node = scheduler_.dequeue();
    if (!node) break;
    auto it = pending_.find(*node);
    MQS_DCHECK(it != pending_.end());
    metrics::QueryRecord rec = std::move(it->second);
    pending_.erase(it);
    rec.startTime = sim_->now();
    ++active_;
    sim_->spawn(queryTask(*node, std::move(rec)));
  }
}

Task<void> SimServer::cpuRun(double seconds) {
  if (seconds <= 0.0) co_return;
  co_await cpus_.acquire();
  co_await sim_->delay(seconds);
  cpus_.release();
}

std::optional<SimServer::ReuseChoice> SimServer::chooseReuse(
    sched::NodeId node, const query::Predicate& pred) {
  if (!cfg_.dataStoreEnabled) return std::nullopt;
  std::optional<ReuseChoice> best;
  if (auto m = ds_.lookup(pred)) {
    best = ReuseChoice{ds_.predicate(m->id).clone(), m->overlap, std::nullopt};
  }
  if (cfg_.allowWaitOnExecuting) {
    if (auto e = scheduler_.bestExecutingSource(node)) {
      if (!best || e->overlap > best->overlap) {
        best = ReuseChoice{scheduler_.graphUnsafe().predicate(e->node).clone(),
                           e->overlap, e->node};
      }
    }
  }
  return best;
}

Task<void> SimServer::fetchChunk(storage::PageKey key, std::size_t bytes,
                                 metrics::QueryRecord* rec) {
  if (psCore_.touch(key)) co_return;  // page space hit
  if (auto it = inflight_.find(key); it != inflight_.end()) {
    ++pageMerges_;
    co_await it->second->wait();
    co_return;
  }
  auto trig = std::make_unique<Trigger>(*sim_);
  Trigger* t = trig.get();
  inflight_.emplace(key, std::move(trig));
  // Host-side request path (doesn't occupy the device).
  co_await sim_->delay(cfg_.hostOverheadPerPageSec);
  const int disk = cfg_.diskFarm.diskFor(key.page);
  if (!posDisks_.empty()) {
    // Positional head model: datasets laid out back-to-back on the device.
    const std::uint64_t pos =
        (static_cast<std::uint64_t>(key.dataset) << 32) | key.page;
    co_await posDisks_[static_cast<std::size_t>(disk)]->service(pos, bytes);
  } else {
    // Seek amortization degrades with the number of interleaved streams.
    const int streams = (std::max(1, ioStreams_) + cfg_.diskFarm.disks - 1) /
                        cfg_.diskFarm.disks;
    co_await disks_[static_cast<std::size_t>(disk)]->service(
        cfg_.diskFarm.disk.serviceTime(bytes, streams));
  }
  bytesRead_ += bytes;
  if (rec != nullptr) rec->bytesFromDisk += bytes;
  psCore_.insert(key, bytes);
  t->fire();
  inflight_.erase(key);
}

Task<void> SimServer::computePart(query::PredicatePtr part, int depth,
                                  metrics::QueryRecord* rec) {
  const std::uint64_t partOutBytes = sem_->qoutsize(*part);
  // Nested reuse: sub-queries are "processed just like any other query"
  // (§2), so they consult the Data Store as well, up to a depth limit.
  if (cfg_.dataStoreEnabled && depth <= cfg_.maxNestedReuseDepth) {
    if (auto m = ds_.lookup(*part)) {
      const query::PredicatePtr cachedPred = ds_.predicate(m->id).clone();
      const std::uint64_t projBytes =
          sem_->reusedOutputBytes(*cachedPred, *part);
      rec->bytesReused += projBytes;
      co_await cpuRun(static_cast<double>(projBytes) *
                      cfg_.cpuPerOutByteProject);
      for (auto& rem : sem_->remainder(*cachedPred, *part)) {
        co_await computePart(std::move(rem), depth + 1, rec);
      }
      if (cfg_.cacheSubqueryResults) {
        (void)ds_.insert(std::move(part), {}, partOutBytes);
      }
      co_return;
    }
  }

  // Compute from raw data: fetch each chunk through the page space, then
  // process it (demand comes from the application's cost adapter).
  const std::vector<ChunkDemand> demand = model_->demandFor(*part);
  ++ioStreams_;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    // Readahead: issue upcoming chunks asynchronously so the device queue
    // sees the query's future (prefetches never block this query).
    for (std::size_t j = i + 1;
         j < demand.size() &&
         j <= i + static_cast<std::size_t>(std::max(0, cfg_.prefetchPages));
         ++j) {
      if (!psCore_.contains(demand[j].page) &&
          !inflight_.contains(demand[j].page)) {
        sim_->spawn(fetchChunk(demand[j].page, demand[j].pageBytes, nullptr));
      }
    }
    co_await fetchChunk(demand[i].page, demand[i].pageBytes, rec);
    co_await cpuRun(demand[i].cpuSeconds);
  }
  --ioStreams_;
  if (cfg_.dataStoreEnabled && cfg_.cacheSubqueryResults && depth >= 1) {
    (void)ds_.insert(std::move(part), {}, partOutBytes);
  }
}

Task<void> SimServer::queryTask(sched::NodeId node, metrics::QueryRecord rec) {
  const query::PredicatePtr predPtr = scheduler_.predicateOf(node);
  const query::Predicate& pred = *predPtr;

  co_await cpuRun(cfg_.planningOverheadSec);

  std::optional<ReuseChoice> choice = chooseReuse(node, pred);
  if (choice && choice->executingNode) {
    // Block on the still-executing reuse source. The slot stays occupied —
    // exactly the CPU waste the FF/CNBF rankings try to avoid (§4).
    const Time t0 = sim_->now();
    co_await completionOf(*choice->executingNode).wait();
    rec.blockedTime += sim_->now() - t0;
    rec.reusedExecuting = true;
    const auto it = nodeBlob_.find(*choice->executingNode);
    if (it != nodeBlob_.end() && ds_.contains(it->second)) {
      choice->executingNode.reset();  // now an ordinary cached reuse
    } else {
      // Result vanished (evicted or never cached); retry once, cached only.
      choice = chooseReuse(node, pred);
      if (choice && choice->executingNode) choice.reset();
    }
  }

  if (choice) {
    rec.overlapUsed = choice->overlap;
    const std::uint64_t projBytes =
        sem_->reusedOutputBytes(*choice->cachedPred, pred);
    rec.bytesReused += projBytes;
    co_await cpuRun(static_cast<double>(projBytes) *
                    cfg_.cpuPerOutByteProject);
    for (auto& part : sem_->remainder(*choice->cachedPred, pred)) {
      co_await computePart(std::move(part), /*depth=*/1, &rec);
    }
  } else {
    co_await computePart(pred.clone(), /*depth=*/0, &rec);
  }

  // Cache the result (skip exact duplicates of an existing blob).
  std::optional<datastore::BlobId> blob;
  if (cfg_.dataStoreEnabled && rec.overlapUsed < 1.0) {
    blob = ds_.insert(pred.clone(), {}, sem_->qoutsize(pred));
  }
  finishNode(node, blob);

  // Feedback for self-tuning policies: achieved reuse, plus the current
  // disk-queue pressure normalized by the thread pool size.
  scheduler_.reportQueryOutcome(rec.overlapUsed);
  std::size_t queued = 0;
  for (const auto& d : disks_) queued += d->queueLength();
  for (const auto& d : posDisks_) queued += d->queueLength();
  scheduler_.reportResourceSignal(
      std::min(1.0, static_cast<double>(queued) /
                        static_cast<double>(cfg_.threads)));

  rec.finishTime = sim_->now();
  collector_.add(rec);
  --active_;
  completionOf(node).fire();
  pump();
}

void SimServer::finishNode(sched::NodeId node,
                           std::optional<datastore::BlobId> blob) {
  if (blob) {
    nodeBlob_[node] = *blob;
    blobNode_[*blob] = node;
  }
  scheduler_.completed(node);
  if (!blob) {
    // Nothing cached for this node: it cannot serve as a reuse source, so
    // it leaves the graph immediately (as if swapped out).
    scheduler_.swappedOut(node);
    return;
  }
  if (evictedWhileExecuting_.erase(node) > 0) {
    // Our blob was reclaimed before we even finished (tiny Data Store).
    nodeBlob_.erase(node);
    blobNode_.erase(*blob);
    scheduler_.swappedOut(node);
  }
}

void SimServer::onBlobEvicted(datastore::BlobId blob) {
  const auto it = blobNode_.find(blob);
  if (it == blobNode_.end()) return;  // sub-query blob without a graph node
  const sched::NodeId node = it->second;
  blobNode_.erase(it);
  nodeBlob_.erase(node);
  const auto state = scheduler_.stateOf(node);
  if (state == sched::QueryState::Cached) {
    scheduler_.swappedOut(node);
  } else {
    evictedWhileExecuting_.insert(node);
  }
}

SimServer::IoStats SimServer::ioStats() const {
  IoStats s;
  const auto& c = psCore_.stats();
  s.pageHits = c.hits;
  s.pageMerges = pageMerges_;
  s.pageReads = c.misses - pageMerges_;
  s.bytesRead = bytesRead_;
  for (const auto& d : disks_) s.diskBusyIntegral += d->busyIntegral();
  for (const auto& d : posDisks_) {
    s.diskBusyIntegral += d->busyIntegral();
    s.sequentialReads += d->sequentialServed();
  }
  return s;
}

}  // namespace mqs::sim
