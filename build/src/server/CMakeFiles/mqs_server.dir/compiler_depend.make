# Empty compiler generated dependencies file for mqs_server.
# This may be replaced when dependencies are built.
