
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/vm_executor_test.cpp" "tests/CMakeFiles/vm_executor_test.dir/vm/vm_executor_test.cpp.o" "gcc" "tests/CMakeFiles/vm_executor_test.dir/vm/vm_executor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mqs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mqs_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mqs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vol/CMakeFiles/mqs_vol.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/mqs_server.dir/DependInfo.cmake"
  "/root/repo/build/src/datastore/CMakeFiles/mqs_datastore.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mqs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/mqs_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/pagespace/CMakeFiles/mqs_pagespace.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mqs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mqs_index.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mqs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
