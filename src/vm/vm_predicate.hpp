// Virtual Microscope query predicates (§3).
//
// A VM query asks for a rectangular region of a slide rendered at a
// magnification `zoom` (an output pixel covers zoom x zoom input pixels)
// using one of two processing functions: subsampling (every zoom-th pixel;
// I/O-intensive) or pixel averaging (mean over the zoom x zoom window;
// CPU/I/O balanced). The predicate metadata stored with cached results is
// exactly this: processing function, magnification, and bounding box.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "query/predicate.hpp"
#include "storage/data_source.hpp"

namespace mqs::vm {

enum class VMOp : std::uint8_t { Subsample = 0, Average = 1 };

constexpr std::string_view toString(VMOp op) {
  return op == VMOp::Subsample ? "subsample" : "average";
}

class VMPredicate final : public query::Predicate {
 public:
  /// `region` is in base-resolution pixel coordinates and must have both
  /// dimensions divisible by `zoom` (output pixels are whole).
  VMPredicate(storage::DatasetId dataset, Rect region, std::uint32_t zoom,
              VMOp op)
      : dataset_(dataset), region_(region), zoom_(zoom), op_(op) {
    MQS_CHECK(!region.empty());
    MQS_CHECK(zoom >= 1);
    MQS_CHECK_MSG(region.width() % zoom == 0 && region.height() % zoom == 0,
                  "VM query region must be divisible by its zoom");
  }

  [[nodiscard]] storage::DatasetId dataset() const { return dataset_; }
  [[nodiscard]] const Rect& region() const { return region_; }
  [[nodiscard]] std::uint32_t zoom() const { return zoom_; }
  [[nodiscard]] VMOp op() const { return op_; }

  [[nodiscard]] std::int64_t outWidth() const {
    return region_.width() / zoom_;
  }
  [[nodiscard]] std::int64_t outHeight() const {
    return region_.height() / zoom_;
  }
  /// RGB output size in bytes.
  [[nodiscard]] std::uint64_t outBytes() const {
    return static_cast<std::uint64_t>(outWidth()) *
           static_cast<std::uint64_t>(outHeight()) * 3;
  }

  [[nodiscard]] query::PredicatePtr clone() const override {
    return std::make_unique<VMPredicate>(*this);
  }

  [[nodiscard]] std::string_view kind() const override { return "vm"; }

  [[nodiscard]] Rect boundingBox() const override {
    // Different slides share pixel coordinates; spread datasets out along x
    // so spatial indexes never confuse regions of different slides.
    return region_.shifted(static_cast<std::int64_t>(dataset_) *
                               kDatasetStride,
                           0);
  }

  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "vm{ds=" << dataset_ << ' ' << region_ << " zoom=" << zoom_ << ' '
       << toString(op_) << '}';
    return os.str();
  }

  friend bool operator==(const VMPredicate& a, const VMPredicate& b) {
    return a.dataset_ == b.dataset_ && a.region_ == b.region_ &&
           a.zoom_ == b.zoom_ && a.op_ == b.op_;
  }

  /// Coordinate offset separating datasets in shared spatial indexes.
  static constexpr std::int64_t kDatasetStride = std::int64_t{1} << 40;

 private:
  storage::DatasetId dataset_;
  Rect region_;
  std::uint32_t zoom_;
  VMOp op_;
};

/// Downcast with a kind check; throws CheckFailure on foreign predicates.
inline const VMPredicate& asVM(const query::Predicate& p) {
  MQS_CHECK_MSG(p.kind() == "vm", "expected a VM predicate");
  return static_cast<const VMPredicate&>(p);
}

}  // namespace mqs::vm
