// Lightweight runtime-invariant checks.
//
// MQS_CHECK is always on (these guard API contracts, not hot loops);
// MQS_DCHECK compiles out in NDEBUG builds and may be used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mqs {

/// Thrown when a checked invariant or API precondition is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void checkFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace mqs

#define MQS_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::mqs::detail::checkFail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MQS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::mqs::detail::checkFail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define MQS_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define MQS_DCHECK(expr) MQS_CHECK(expr)
#endif
