#include "loadgen/arrival.hpp"

#include <cmath>
#include <numbers>
#include <string>

#include "common/check.hpp"

namespace mqs::loadgen {

const char* toString(ArrivalConfig::Kind kind) {
  switch (kind) {
    case ArrivalConfig::Kind::Poisson: return "poisson";
    case ArrivalConfig::Kind::Bursty: return "bursty";
    case ArrivalConfig::Kind::Diurnal: return "diurnal";
  }
  return "unknown";
}

ArrivalConfig::Kind parseArrivalKind(const std::string& name) {
  if (name == "poisson") return ArrivalConfig::Kind::Poisson;
  if (name == "bursty") return ArrivalConfig::Kind::Bursty;
  if (name == "diurnal") return ArrivalConfig::Kind::Diurnal;
  MQS_CHECK_MSG(false, "unknown arrival process: " + name);
}

ArrivalProcess::ArrivalProcess(ArrivalConfig cfg, Rng rng)
    : cfg_(cfg), rng_(rng) {
  MQS_CHECK(cfg_.ratePerSec > 0.0);
  switch (cfg_.kind) {
    case ArrivalConfig::Kind::Poisson:
      maxRate_ = cfg_.ratePerSec;
      break;
    case ArrivalConfig::Kind::Bursty: {
      MQS_CHECK(cfg_.burstOnSec > 0.0 && cfg_.burstOffSec >= 0.0);
      const double period = cfg_.burstOnSec + cfg_.burstOffSec;
      maxRate_ = cfg_.ratePerSec * period / cfg_.burstOnSec;
      break;
    }
    case ArrivalConfig::Kind::Diurnal:
      MQS_CHECK(cfg_.diurnalPeriodSec > 0.0);
      MQS_CHECK(cfg_.diurnalDepth >= 0.0 && cfg_.diurnalDepth < 1.0);
      maxRate_ = cfg_.ratePerSec * (1.0 + cfg_.diurnalDepth);
      break;
  }
}

double ArrivalProcess::rateAt(double t) const {
  switch (cfg_.kind) {
    case ArrivalConfig::Kind::Poisson:
      return cfg_.ratePerSec;
    case ArrivalConfig::Kind::Bursty: {
      const double period = cfg_.burstOnSec + cfg_.burstOffSec;
      const double phase = t - std::floor(t / period) * period;
      return phase < cfg_.burstOnSec ? maxRate_ : 0.0;
    }
    case ArrivalConfig::Kind::Diurnal:
      return cfg_.ratePerSec *
             (1.0 -
              cfg_.diurnalDepth *
                  std::cos(2.0 * std::numbers::pi * t /
                           cfg_.diurnalPeriodSec));
  }
  return cfg_.ratePerSec;
}

double ArrivalProcess::next() {
  // Lewis–Shedler thinning: exponential candidate gaps at maxRate_, each
  // candidate kept with probability λ(t)/λ_max.
  for (;;) {
    // uniform01() is in [0, 1); flip to (0, 1] so the log is finite.
    const double u = 1.0 - rng_.uniform01();
    t_ += -std::log(u) / maxRate_;
    if (rng_.uniform01() * maxRate_ <= rateAt(t_)) return t_;
  }
}

}  // namespace mqs::loadgen
