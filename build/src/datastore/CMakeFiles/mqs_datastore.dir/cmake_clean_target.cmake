file(REMOVE_RECURSE
  "libmqs_datastore.a"
)
