// Byte-size parsing and formatting ("64MB", "1.5GiB", ...).
//
// Suffixes KB/MB/GB are treated as binary multiples (as the paper does when
// it speaks of 64KB pages and 64MB caches); KiB/MiB/GiB are accepted too.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mqs {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Parse a byte count: plain integer or number with [KMGT](i)?B suffix.
/// Throws CheckFailure on malformed input.
std::uint64_t parseBytes(std::string_view text);

/// Human-readable rendering, e.g. "64.0MB". Exact integers of a unit render
/// without a fractional part ("64MB").
std::string formatBytes(std::uint64_t bytes);

}  // namespace mqs
