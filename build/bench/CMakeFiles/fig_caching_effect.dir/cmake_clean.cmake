file(REMOVE_RECURSE
  "CMakeFiles/fig_caching_effect.dir/fig_caching_effect.cpp.o"
  "CMakeFiles/fig_caching_effect.dir/fig_caching_effect.cpp.o.d"
  "fig_caching_effect"
  "fig_caching_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_caching_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
