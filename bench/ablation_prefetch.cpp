// Ablation: per-query readahead depth under the positional elevator disk.
// Prefetching deepens the device queue with the query's own future pages,
// letting C-SCAN rebuild the sequential runs that synchronous interleaved
// streams destroy — the "data prefetching and caching" optimization the
// paper's introduction groups with scheduling.
#include "bench_common.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "ablation_prefetch");
  ctx.printHeader();

  const auto depths = ctx.options().getIntList("prefetch", {0, 2, 8, 32});
  const int threads = static_cast<int>(ctx.options().getInt("threads", 8));

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("readahead depth under the elevator disk (SJF, ") +
                std::to_string(threads) + " threads), " + bench::opName(op));
    table.setColumns({"prefetch", "trimmed-response(s)", "seq-frac",
                      "device-bytes"});
    for (const auto depth : depths) {
      auto cfg = ctx.server("SJF", threads, 64 * MiB, 32 * MiB);
      cfg.ioModel = "elevator";
      cfg.prefetchPages = static_cast<int>(depth);
      const auto result =
          driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
      const double seqFrac =
          result.io.pageReads > 0
              ? static_cast<double>(result.io.sequentialReads) /
                    static_cast<double>(result.io.pageReads)
              : 0.0;
      table.addRow({std::to_string(depth),
                    formatDouble(result.summary.trimmedResponse, 3),
                    formatDouble(seqFrac, 2),
                    formatBytes(result.io.bytesRead)});
    }
    ctx.emit(table);
  }
  return 0;
}
