# Empty dependencies file for mqs_pagespace.
# This may be replaced when dependencies are built.
