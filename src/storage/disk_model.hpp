// Disk cost model for the discrete-event engine.
//
// The paper's experiments read 64KB pages from the local disk of the SMP
// with the Solaris file cache disabled (directio), so every page miss pays
// a real device access. A single sequential stream amortizes positioning
// costs over long runs; interleaved streams from many concurrent queries
// break the runs and pay near-full seeks. We use the standard k-stream
// approximation: with k active streams on a device, a fraction 1/k of
// requests continue a sequential run (elevator/track-buffer behaviour),
// the rest pay a seek:
//
//   service(bytes, k) = bytes/bandwidth + seq + (seek - seq) * (1 - 1/k)
//
// This is the mechanism behind Figure 4's "for many threads the I/O
// subsystem cannot keep up": per-request efficiency falls as concurrency
// rises, so throughput peaks at a moderate thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace mqs::storage {

struct DiskModel {
  /// Positioning cost when a request breaks the current run, s.
  double seekOverheadSec = 0.0025;
  /// Residual positioning cost when continuing a sequential run, s.
  double sequentialOverheadSec = 0.0002;
  /// Streaming transfer bandwidth, bytes/s.
  double bytesPerSecond = 50.0 * 1024 * 1024;

  [[nodiscard]] double transferTime(std::size_t bytes) const {
    return static_cast<double>(bytes) / bytesPerSecond;
  }

  /// Expected service time for one request of `bytes` bytes when `streams`
  /// sequential streams are interleaved on this device (streams >= 1).
  [[nodiscard]] double serviceTime(std::size_t bytes, int streams) const {
    const int k = std::max(1, streams);
    const double mix = 1.0 - 1.0 / static_cast<double>(k);
    return transferTime(bytes) + sequentialOverheadSec +
           (seekOverheadSec - sequentialOverheadSec) * mix;
  }

  /// Single-stream (fully sequential) service time.
  [[nodiscard]] double serviceTime(std::size_t bytes) const {
    return serviceTime(bytes, 1);
  }
};

struct DiskFarmModel {
  DiskModel disk;
  /// Number of independent devices; pages stripe round-robin by page id.
  /// The paper stores each slide on the machine's local disk (one device).
  int disks = 1;

  [[nodiscard]] int diskFor(std::uint64_t pageId) const {
    return static_cast<int>(pageId % static_cast<std::uint64_t>(disks));
  }
};

}  // namespace mqs::storage
