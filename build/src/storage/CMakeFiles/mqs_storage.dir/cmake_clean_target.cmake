file(REMOVE_RECURSE
  "libmqs_storage.a"
)
