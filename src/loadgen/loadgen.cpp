#include "loadgen/loadgen.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/thread_annotations.hpp"
#include "net/net_client.hpp"
#include "server/admission.hpp"

namespace mqs::loadgen {

void LoadGenReport::merge(const LoadGenReport& other) {
  offered += other.offered;
  completed += other.completed;
  failed += other.failed;
  rejectedQueueFull += other.rejectedQueueFull;
  rejectedQuota += other.rejectedQuota;
  shedDeadline += other.shedDeadline;
  errors += other.errors;
  timeouts += other.timeouts;
  sendFailures += other.sendFailures;
  if (other.elapsedSec > elapsedSec) elapsedSec = other.elapsedSec;
  latency.merge(other.latency);
  latencySettled.merge(other.latencySettled);
}

std::string LoadGenReport::toJson() const {
  const auto num = [](double v) {
    std::array<char, 64> buf{};
    std::snprintf(buf.data(), buf.size(), "%.6f", v);
    return std::string(buf.data());
  };
  const auto pctMs = [this, &num](double p) {
    return num(static_cast<double>(latency.percentileNanos(p)) / 1e6);
  };
  std::string out = "{";
  out += "\"offered\":" + std::to_string(offered);
  out += ",\"completed\":" + std::to_string(completed);
  out += ",\"failed\":" + std::to_string(failed);
  out += ",\"rejectedQueueFull\":" + std::to_string(rejectedQueueFull);
  out += ",\"rejectedQuota\":" + std::to_string(rejectedQuota);
  out += ",\"shedDeadline\":" + std::to_string(shedDeadline);
  out += ",\"errors\":" + std::to_string(errors);
  out += ",\"timeouts\":" + std::to_string(timeouts);
  out += ",\"sendFailures\":" + std::to_string(sendFailures);
  out += ",\"elapsedSec\":" + num(elapsedSec);
  out += ",\"goodputPerSec\":" + num(goodputPerSec());
  out += ",\"shedRate\":" + num(shedRate());
  out += ",\"latencyMs\":{\"p50\":" + pctMs(50) + ",\"p95\":" + pctMs(95) +
         ",\"p99\":" + pctMs(99) + ",\"p999\":" + pctMs(99.9) +
         ",\"mean\":" + num(latency.meanNanos() / 1e6) + "}";
  out += ",\"latencyHistogram\":" + latency.toJson();
  out += "}";
  return out;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Reader/writer rendezvous for one connection: the scheduled-arrival
/// timestamps of in-flight requests.
struct ConnState {
  Mutex mu{lockorder::Rank::kLoadgen, "loadgen::ConnState::mu"};
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding
      GUARDED_BY(mu);  ///< requestId -> scheduled arrival, ns from epoch
  bool senderDone GUARDED_BY(mu) = false;
};

std::uint64_t nanosSince(Clock::time_point epoch) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

/// One connection's session; returns its shard of the report.
LoadGenReport runConnection(const LoadGenConfig& cfg,
                            const net::CodecRegistry* codecs,
                            const QueryFactory& factory, Rng arrivalRng,
                            Rng drawRng, Clock::time_point epoch) {
  LoadGenReport rep;
  net::NetClient client(
      cfg.host, cfg.port, codecs,
      net::NetClientConfig{cfg.connectTimeoutSec, cfg.ioTimeoutSec});

  ArrivalConfig arrival = cfg.arrival;
  arrival.ratePerSec = cfg.arrival.ratePerSec /
                       static_cast<double>(std::max(1, cfg.connections));
  ArrivalProcess process(arrival, arrivalRng);

  ConnState state;
  // Written only by the receiver, read after join() — the join is the
  // synchronization. Goodput divides by this, so it must mark the last
  // *settled* response, not the tail of an idle receive tick.
  std::uint64_t lastSettledNs = 0;

  std::jthread receiver([&] {
    // Drain until every in-flight request settles, the drain budget after
    // sender completion runs out, or the transport dies.
    std::uint64_t drainDeadlineNs = 0;
    for (;;) {
      {
        MutexLock lock(state.mu);
        if (state.senderDone && state.outstanding.empty()) return;
        if (state.senderDone && drainDeadlineNs == 0) {
          drainDeadlineNs =
              nanosSince(epoch) +
              static_cast<std::uint64_t>(cfg.drainTimeoutSec * 1e9);
        }
      }
      net::NetClient::Outcome out;
      try {
        out = client.receiveAny();
      } catch (const net::TimeoutError&) {
        MutexLock lock(state.mu);
        if (state.senderDone && drainDeadlineNs != 0 &&
            nanosSince(epoch) >= drainDeadlineNs) {
          rep.timeouts += state.outstanding.size();
          state.outstanding.clear();
          return;
        }
        continue;  // idle tick (e.g. a bursty OFF phase); keep listening
      } catch (const std::exception&) {
        // Transport gone: every in-flight request is lost.
        MutexLock lock(state.mu);
        rep.timeouts += state.outstanding.size();
        state.outstanding.clear();
        return;
      }
      std::uint64_t scheduledNs = 0;
      bool known = false;
      {
        MutexLock lock(state.mu);
        if (const auto it = state.outstanding.find(out.requestId);
            it != state.outstanding.end()) {
          scheduledNs = it->second;
          known = true;
          state.outstanding.erase(it);
        }
      }
      if (!known) continue;  // stray id; never counted as offered
      const std::uint64_t nowNs = nanosSince(epoch);
      lastSettledNs = nowNs;
      const std::uint64_t latencyNs =
          nowNs > scheduledNs ? nowNs - scheduledNs : 0;
      rep.latencySettled.record(latencyNs);
      using Status = net::NetClient::Outcome::Status;
      switch (out.status) {
        case Status::Result:
          ++rep.completed;
          rep.latency.record(latencyNs);
          break;
        case Status::Failed:
          ++rep.failed;
          break;
        case Status::Rejected:
          switch (static_cast<server::RejectReason>(out.rejectReason)) {
            case server::RejectReason::QueueFull:
              ++rep.rejectedQueueFull;
              break;
            case server::RejectReason::ClientQuota:
              ++rep.rejectedQuota;
              break;
            case server::RejectReason::DeadlineShed:
              ++rep.shedDeadline;
              break;
            default:
              ++rep.errors;
          }
          break;
        case Status::Error:
          ++rep.errors;
          break;
      }
    }
  });

  // Sender: fire at the scheduled instants, server progress be damned.
  for (;;) {
    const double arrivalSec = process.next();
    if (arrivalSec >= cfg.durationSec) break;
    const auto scheduledNs = static_cast<std::uint64_t>(arrivalSec * 1e9);
    std::this_thread::sleep_until(
        epoch + std::chrono::nanoseconds(scheduledNs));
    const vm::VMPredicate pred = factory.make(drawRng);
    ++rep.offered;
    // Registered before the frame is on the wire: a fast response must
    // find its scheduled timestamp already in the map.
    const std::uint64_t id = client.nextRequestId();
    {
      MutexLock lock(state.mu);
      state.outstanding.emplace(id, scheduledNs);
    }
    try {
      const std::uint64_t sentId = client.send(pred);
      MQS_CHECK(sentId == id);
    } catch (const std::exception&) {
      ++rep.sendFailures;
      MutexLock lock(state.mu);
      state.outstanding.erase(id);
      break;  // connection is gone; stop offering on it
    }
  }
  {
    MutexLock lock(state.mu);
    state.senderDone = true;
  }
  receiver.join();
  rep.elapsedSec = std::max(
      cfg.durationSec, static_cast<double>(lastSettledNs) / 1e9);
  return rep;
}

}  // namespace

LoadGenReport runLoad(const LoadGenConfig& cfg,
                      const net::CodecRegistry* codecs) {
  MQS_CHECK(codecs != nullptr);
  MQS_CHECK(cfg.connections >= 1);
  MQS_CHECK(cfg.durationSec > 0.0);
  const QueryFactory factory(cfg.workload);
  Rng root(cfg.seed);

  std::vector<LoadGenReport> shards(
      static_cast<std::size_t>(cfg.connections));
  {
    const Clock::time_point epoch = Clock::now();
    std::vector<std::jthread> threads;
    threads.reserve(shards.size());
    for (std::size_t c = 0; c < shards.size(); ++c) {
      Rng arrivalRng = root.fork();
      Rng drawRng = root.fork();
      threads.emplace_back([&, c, arrivalRng, drawRng] {
        shards[c] =
            runConnection(cfg, codecs, factory, arrivalRng, drawRng, epoch);
      });
    }
  }  // join

  LoadGenReport total;
  for (const LoadGenReport& shard : shards) total.merge(shard);
  return total;
}

}  // namespace mqs::loadgen
