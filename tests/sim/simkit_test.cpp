#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/primitives.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace mqs::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.processedEvents(), 3u);
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(1.0, [] {}), CheckFailure);
}

TEST(Simulator, DelayAdvancesVirtualTime) {
  Simulator sim;
  double seen = -1.0;
  sim.spawn([](Simulator& s, double& out) -> Task<void> {
    co_await s.delay(2.5);
    out = s.now();
    co_await s.delay(1.5);
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 4.0);
}

TEST(Simulator, NestedTaskAwaitPropagatesValues) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator& s) -> Task<int> {
    co_await s.delay(1.0);
    co_return 21;
  };
  sim.spawn([](Simulator& s, auto childFn, int& out) -> Task<void> {
    const int a = co_await childFn(s);
    const int b = co_await childFn(s);
    out = a + b;
  }(sim, child, result));
  sim.run();
  EXPECT_EQ(result, 42);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RootTaskExceptionSurfacesFromRun) {
  Simulator sim;
  sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1.0);
    throw std::runtime_error("boom");
  }(sim));
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Trigger, WaitersResumeAfterFire) {
  Simulator sim;
  std::vector<double> wakeTimes;
  Trigger trig(sim);
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, Trigger& t, std::vector<double>& out) -> Task<void> {
      co_await t.wait();
      out.push_back(s.now());
    }(sim, trig, wakeTimes));
  }
  sim.schedule(5.0, [&] { trig.fire(); });
  sim.run();
  ASSERT_EQ(wakeTimes.size(), 3u);
  for (double t : wakeTimes) EXPECT_DOUBLE_EQ(t, 5.0);
}

TEST(Trigger, WaitAfterFireIsImmediate) {
  Simulator sim;
  Trigger trig(sim);
  trig.fire();
  EXPECT_TRUE(trig.fired());
  bool resumed = false;
  sim.spawn([](Trigger& t, bool& out) -> Task<void> {
    co_await t.wait();
    out = true;
  }(trig, resumed));
  EXPECT_TRUE(resumed);  // ready path, no suspension
}

TEST(Trigger, DoubleFireIsIdempotent) {
  Simulator sim;
  Trigger trig(sim);
  trig.fire();
  trig.fire();
  EXPECT_TRUE(trig.fired());
  sim.run();
}

TEST(Semaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int concurrent = 0, peak = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulator& s, Semaphore& sm, int& cur, int& pk) -> Task<void> {
      co_await sm.acquire();
      cur++;
      pk = std::max(pk, cur);
      co_await s.delay(1.0);
      cur--;
      sm.release();
    }(sim, sem, concurrent, peak));
  }
  sim.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(concurrent, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);  // 6 tasks / 2 permits * 1s
}

TEST(Semaphore, FifoHandoff) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](Simulator& s, Semaphore& sm, std::vector<int>& out,
                 int id) -> Task<void> {
      co_await sm.acquire();
      out.push_back(id);
      co_await s.delay(1.0);
      sm.release();
    }(sim, sem, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Semaphore, BusyIntegralTracksUtilization) {
  Simulator sim;
  Semaphore sem(sim, 2);
  sim.spawn([](Simulator& s, Semaphore& sm) -> Task<void> {
    co_await sm.acquire();
    co_await s.delay(4.0);
    sm.release();
  }(sim, sem));
  sim.run();
  // One permit busy for 4 seconds.
  EXPECT_DOUBLE_EQ(sem.busyIntegral(), 4.0);
}

TEST(Semaphore, OverReleaseThrows) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_THROW(sem.release(), CheckFailure);
}

TEST(FcfsServer, SerializesRequests) {
  Simulator sim;
  FcfsServer disk(sim);
  std::vector<double> finishTimes;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, FcfsServer& d, std::vector<double>& out)
                  -> Task<void> {
      co_await d.service(2.0);
      out.push_back(s.now());
    }(sim, disk, finishTimes));
  }
  sim.run();
  ASSERT_EQ(finishTimes.size(), 3u);
  EXPECT_DOUBLE_EQ(finishTimes[0], 2.0);
  EXPECT_DOUBLE_EQ(finishTimes[1], 4.0);
  EXPECT_DOUBLE_EQ(finishTimes[2], 6.0);
  EXPECT_EQ(disk.requestsServed(), 3u);
  EXPECT_DOUBLE_EQ(disk.busyIntegral(), 6.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto runOnce = [] {
    Simulator sim;
    Semaphore sem(sim, 2);
    FcfsServer disk(sim);
    std::vector<double> trace;
    for (int i = 0; i < 10; ++i) {
      sim.spawn([](Simulator& s, Semaphore& sm, FcfsServer& d,
                   std::vector<double>& out, int id) -> Task<void> {
        co_await sm.acquire();
        co_await d.service(0.5 + 0.1 * id);
        sm.release();
        out.push_back(s.now());
      }(sim, sem, disk, trace, i));
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

}  // namespace
}  // namespace mqs::sim
