// Sharded-state consistency suite (DESIGN.md §10).
//
// Two families of guarantees:
//  (1) Differential: shards = 1 is the historical single-lock behaviour —
//      sequential blob ids, global LRU eviction order — and a deterministic
//      single-threaded op trace produces identical observable results on a
//      single-lock and a sharded store / page space.
//  (2) Consistency: randomized multi-threaded traffic against sharded
//      instances leaves every invariant intact (budget conservation,
//      resident <= capacity, settled claims). These tests are the TSan
//      targets for the `shard` label.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "datastore/data_store.hpp"
#include "index/chunk_layout.hpp"
#include "pagespace/page_space_manager.hpp"
#include "sched/scheduler.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class ShardConsistencyTest : public ::testing::Test {
 protected:
  ShardConsistencyTest() {
    dataset_ = sem_.addDataset(index::ChunkLayout(16384, 16384, 64));
  }

  query::PredicatePtr pred(Rect region, std::uint32_t zoom = 4) {
    return std::make_unique<VMPredicate>(dataset_, region, zoom,
                                         VMOp::Subsample);
  }

  std::uint64_t outBytes(const query::Predicate& p) {
    return vm::asVM(p).outBytes();
  }

  vm::VMSemantics sem_;
  storage::DatasetId dataset_ = 0;
};

// ---------------------------------------------------------------------------
// Differential: shards = 1 is the pre-shard store.

TEST_F(ShardConsistencyTest, SingleShardKeepsSequentialBlobIds) {
  datastore::DataStore ds(1ULL << 24, &sem_);
  ASSERT_EQ(ds.shardCount(), 1);
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto p = pred(Rect::ofSize(static_cast<std::int64_t>(i) * 256, 0, 64, 64));
    const auto bytes = outBytes(*p);
    const auto id = ds.insert(std::move(p), {}, bytes);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, i + 1);  // the historical allocator: 1, 2, 3, ...
  }
}

TEST_F(ShardConsistencyTest, SingleShardEvictsInGlobalLruOrder) {
  // Capacity for exactly four 64x64 zoom-4 blobs; refresh #1, insert a
  // fifth: the global LRU must evict #2 (the pre-shard discipline).
  auto probe = pred(Rect::ofSize(0, 0, 64, 64));
  const std::uint64_t one = outBytes(*probe);
  datastore::DataStore ds(4 * one, &sem_);
  std::vector<datastore::BlobId> evicted;
  ds.setEvictionListener(
      [&](datastore::EvictedBlob blob) { evicted.push_back(blob.id); });
  std::vector<datastore::BlobId> ids;
  for (int i = 0; i < 4; ++i) {
    auto p = pred(Rect::ofSize(i * 256, 0, 64, 64));
    ids.push_back(*ds.insert(std::move(p), {}, one));
  }
  ASSERT_TRUE(ds.lookup(*pred(Rect::ofSize(0, 0, 64, 64))).has_value());
  auto p = pred(Rect::ofSize(4 * 256, 0, 64, 64));
  ASSERT_TRUE(ds.insert(std::move(p), {}, one).has_value());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted.front(), ids[1]);  // #1 was refreshed; #2 is LRU tail
  EXPECT_EQ(ds.stats().evictions, 1u);
}

TEST_F(ShardConsistencyTest, DataStoreTraceMatchesAcrossShardCounts) {
  // One deterministic op trace, no evictions: every observable — hit
  // pattern, overlaps, stats, resident accounting — must be identical on
  // the single-lock and the 8-shard store.
  auto run = [&](int shards) {
    datastore::DataStore ds(1ULL << 28, &sem_,
                            datastore::EvictionPolicy::Lru, shards);
    std::vector<datastore::BlobId> ids;
    for (int i = 0; i < 24; ++i) {
      auto p = pred(Rect::ofSize((i % 6) * 512, (i / 6) * 512, 128, 128));
      const auto bytes = outBytes(*p);
      const auto id = ds.insert(std::move(p), {}, bytes);
      EXPECT_TRUE(id.has_value());
      if (id.has_value()) ids.push_back(*id);
    }
    std::vector<double> overlaps;
    for (int i = 0; i < 24; ++i) {
      // Alternate exact repeats (full hits) and disjoint regions (misses).
      const Rect r = (i % 2 == 0)
                         ? Rect::ofSize((i % 6) * 512, (i / 6) * 512, 128, 128)
                         : Rect::ofSize(9000 + i * 64, 9000, 64, 64);
      const auto m = ds.lookup(*pred(r));
      overlaps.push_back(m.has_value() ? m->overlap : -1.0);
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) ds.noteReuse(ids[i], 1.0);
    ds.erase(ids[5]);
    const auto st = ds.stats();
    return std::tuple{overlaps, st.lookups, st.hits, st.fullHits, st.inserts,
                      st.evictions, st.uncacheable, ds.residentBytes(),
                      ds.residentBlobs()};
  };
  EXPECT_EQ(run(1), run(8));
}

TEST_F(ShardConsistencyTest, PageSpaceTraceMatchesAcrossShardCounts) {
  // Deterministic fetch trace below capacity: hit/miss stats and bytes
  // read must not depend on the shard count.
  const index::ChunkLayout layout(64 * 32, 64, 64);
  const storage::SyntheticSlideSource slide(layout, /*seed=*/3);
  auto run = [&](int shards) {
    pagespace::PageSpaceManager ps(1ULL << 26, /*ioThreads=*/0,
                                   pagespace::RetryPolicy{}, shards);
    ps.attach(0, &slide);
    std::uint64_t bytes = 0;
    for (std::uint64_t p = 0; p < layout.chunkCount(); ++p) {
      bytes += ps.fetch({0, p})->size();
    }
    for (std::uint64_t p = 0; p < layout.chunkCount(); p += 2) {
      bytes += ps.fetch({0, p})->size();
    }
    const auto st = ps.stats();
    return std::tuple{bytes, st.hits, st.misses, st.merged, st.bytesRead,
                      st.evictions, ps.residentBytes()};
  };
  EXPECT_EQ(run(1), run(8));
}

TEST_F(ShardConsistencyTest, BudgetStaysConservedUnderEvictionPressure) {
  // Eviction-heavy single-threaded traffic on both shard counts: the
  // sharded byte budget (slices + spare) must always re-account to the
  // configured capacity, and residency must respect it.
  auto probe = pred(Rect::ofSize(0, 0, 128, 128));
  const std::uint64_t one = outBytes(*probe);
  for (int shards : {1, 4, 8}) {
    datastore::DataStore ds(6 * one, &sem_, datastore::EvictionPolicy::Lru,
                            shards);
    for (int i = 0; i < 64; ++i) {
      auto p = pred(Rect::ofSize((i % 16) * 256, (i / 16) * 256, 128, 128));
      (void)ds.insert(std::move(p), {}, one);
      EXPECT_EQ(ds.budgetAccountedBytes(), ds.capacityBytes());
      EXPECT_LE(ds.residentBytes(), ds.capacityBytes());
    }
    EXPECT_GT(ds.stats().evictions, 0u);
  }
}

// ---------------------------------------------------------------------------
// Randomized multi-threaded consistency (TSan targets).

TEST_F(ShardConsistencyTest, DataStoreSurvivesConcurrentMixedTraffic) {
  constexpr int kThreads = 4, kOpsPerThread = 400;
  auto probe = pred(Rect::ofSize(0, 0, 128, 128));
  const std::uint64_t one = outBytes(*probe);
  datastore::DataStore ds(24 * one, &sem_, datastore::EvictionPolicy::Lru,
                          /*shards=*/8);
  std::mutex idsMu;
  std::vector<datastore::BlobId> ids;
  std::atomic<std::uint64_t> pinnedReads{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 17);
        for (int i = 0; i < kOpsPerThread; ++i) {
          const int op = static_cast<int>(rng.uniformInt(0, 9));
          const auto cell = [&] {
            return Rect::ofSize(rng.uniformInt(0, 31) * 256,
                                rng.uniformInt(0, 31) * 256, 128, 128);
          };
          if (op < 4) {
            (void)ds.insert(pred(cell()), {}, one);
          } else if (op < 7) {
            const auto m = ds.lookupAndPin(*pred(cell()));
            if (m.has_value()) {
              pinnedReads.fetch_add(ds.payload(m->id).size() + 1,
                                    std::memory_order_relaxed);
              ds.unpin(m->id);
            }
          } else {
            std::scoped_lock lock(idsMu);
            if (!ids.empty()) {
              const auto id = ids[rng.uniformInt(
                  0, static_cast<std::int64_t>(ids.size()) - 1)];
              if (op == 7) {
                ds.noteReuse(id, 0.5);
              } else if (op == 8) {
                if (ds.tryPin(id)) ds.unpin(id);
              } else {
                ds.erase(id);
              }
            }
          }
          if (op < 4) {
            const auto m = ds.lookup(*pred(cell()));
            if (m.has_value()) {
              std::scoped_lock lock(idsMu);
              ids.push_back(m->id);
            }
          }
        }
      });
    }
  }
  EXPECT_EQ(ds.budgetAccountedBytes(), ds.capacityBytes());
  EXPECT_LE(ds.residentBytes(), ds.capacityBytes());
  const auto st = ds.stats();
  EXPECT_LE(st.hits, st.lookups);
  EXPECT_GT(pinnedReads.load(), 0u);
}

TEST_F(ShardConsistencyTest, PageSpaceSurvivesConcurrentFetchTraffic) {
  constexpr int kThreads = 4, kOpsPerThread = 300;
  const index::ChunkLayout layout(64 * 64, 64, 64);
  const storage::SyntheticSlideSource slide(layout, /*seed=*/11);
  // Capacity for ~1/4 of the working set: constant eviction + budget
  // borrowing across shards while four threads fetch and prefetch.
  pagespace::PageSpaceManager ps(16 * layout.fullChunkBytes(),
                                 /*ioThreads=*/2, pagespace::RetryPolicy{},
                                 /*shards=*/8);
  ps.attach(0, &slide);
  std::atomic<std::uint64_t> bytes{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(t) + 29);
        const auto n = static_cast<std::int64_t>(layout.chunkCount());
        for (int i = 0; i < kOpsPerThread; ++i) {
          const storage::PageKey key{
              0, static_cast<std::uint64_t>(rng.uniformInt(0, n - 1))};
          if (rng.uniformInt(0, 3) == 0) ps.prefetch(key);
          bytes.fetch_add(ps.fetch(key)->size(), std::memory_order_relaxed);
        }
      });
    }
  }
  EXPECT_GT(bytes.load(), 0u);
  EXPECT_EQ(ps.inflightCount(), 0u);
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_EQ(ps.budgetAccountedBytes(), ps.capacityBytes());
  EXPECT_LE(ps.residentBytes(), ps.capacityBytes());
  const auto st = ps.stats();
  EXPECT_EQ(st.hits + st.misses + st.merged,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

// ---------------------------------------------------------------------------
// Scheduler feedback batching.

TEST_F(ShardConsistencyTest, BatchedFeedbackOverflowStillReachesPolicy) {
  // 300 staged outcomes overflow the 256-entry ring, exercising the
  // inline-drain fallback; the adaptive policy must still see all of them
  // (coverage dominates once the reuse EWMA converges to 1).
  sched::QueryScheduler s(&sem_, sched::makePolicy("ADAPTIVE", 0.2), true);
  const auto src = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048)));
  ASSERT_EQ(s.dequeue(), src);
  s.completed(src);
  for (int i = 0; i < 300; ++i) s.reportQueryOutcome(1.0);
  s.reportResourceSignal(1.0);
  const auto covered = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048)));
  const auto smaller = s.submit(pred(Rect::ofSize(8192, 8192, 1024, 1024)));
  EXPECT_EQ(s.dequeue(), covered);
  EXPECT_EQ(s.dequeue(), smaller);
}

TEST_F(ShardConsistencyTest, ConcurrentFeedbackReportersNeverBlockDequeue) {
  sched::QueryScheduler s(&sem_, sched::makePolicy("CF", 0.2), true);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> reporters;
  for (int t = 0; t < 3; ++t) {
    reporters.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        s.reportQueryOutcome(0.5);
        s.reportResourceSignal(0.25);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const auto id = s.submit(pred(Rect::ofSize((i % 8) * 512, 0, 256, 256)));
    const auto got = s.dequeue();
    ASSERT_TRUE(got.has_value());
    s.completed(*got);
    s.swappedOut(*got);
    (void)id;
  }
  stop.store(true, std::memory_order_relaxed);
  reporters.clear();
  EXPECT_EQ(s.stats().completedCount, 50u);
}

}  // namespace
}  // namespace mqs
