# Empty compiler generated dependencies file for fig5_overlap_vs_dsmem.
# This may be replaced when dependencies are built.
