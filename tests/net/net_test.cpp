// Wire protocol, predicate codecs, and the TCP client/server front-end
// (loopback integration with real queries).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <future>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/net_client.hpp"
#include "net/net_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"
#include "vol/vol_predicate.hpp"

namespace mqs::net {
namespace {

TEST(Wire, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.str("hello");
  const std::vector<std::byte> payload = {std::byte{1}, std::byte{2}};
  w.blob(payload);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), payload);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, ReaderUnderrunThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  (void)r.u8();
  EXPECT_THROW((void)r.u32(), CheckFailure);
}

TEST(Wire, FrameHeaderLayout) {
  const std::vector<std::byte> payload = {std::byte{9}};
  const auto frame = packFrame(FrameType::Result, payload);
  ASSERT_EQ(frame.size(), 5u + 1u);
  Reader r(frame);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(FrameType::Result));
}

TEST(Codecs, VmPredicateRoundTrip) {
  const auto reg = CodecRegistry::standard();
  const vm::VMPredicate p(3, Rect::ofSize(128, 256, 512, 1024), 4,
                          vm::VMOp::Average);
  Writer w;
  reg.encode(p, w);
  Reader r(w.bytes());
  const auto decoded = reg.decode(r);
  EXPECT_TRUE(vm::asVM(*decoded) == p);
}

TEST(Codecs, VolPredicateRoundTrip) {
  const auto reg = CodecRegistry::standard();
  const vol::VolPredicate p(1, Box3::ofSize(8, 16, 24, 64, 64, 32), 4,
                            vol::VolOp::Subvolume);
  Writer w;
  reg.encode(p, w);
  Reader r(w.bytes());
  const auto decoded = reg.decode(r);
  EXPECT_TRUE(vol::asVol(*decoded) == p);
}

TEST(Codecs, FuzzedBytesNeverCrashTheDecoder) {
  const auto reg = CodecRegistry::standard();
  Rng rng(0xF022);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniformInt(0, 64)));
    for (auto& b : junk) {
      b = static_cast<std::byte>(rng.uniformInt(0, 255));
    }
    Reader r(junk);
    try {
      const auto decoded = reg.decode(r);
      // If it decoded, it must be a structurally valid predicate.
      ASSERT_NE(decoded, nullptr);
      (void)decoded->describe();
    } catch (const CheckFailure&) {
      // Expected for malformed input: rejected, not crashed.
    }
  }
}

TEST(Codecs, UnknownKindRejected) {
  CodecRegistry reg;  // empty
  const vm::VMPredicate p(0, Rect::ofSize(0, 0, 64, 64), 1,
                          vm::VMOp::Subsample);
  Writer w;
  EXPECT_THROW(reg.encode(p, w), CheckFailure);
}

// ---------------------------------------------------------------- loopback

class NetLoopbackTest : public ::testing::Test {
 protected:
  NetLoopbackTest()
      : layout_(1024, 1024, 96),
        slide_(layout_, kSeed),
        exec_(&sem_),
        codecs_(CodecRegistry::standard()) {
    dsid_ = sem_.addDataset(layout_);
    server::ServerConfig cfg;
    cfg.threads = 3;
    cfg.policy = "CF";
    queryServer_ = std::make_unique<server::QueryServer>(&sem_, &exec_, cfg);
    queryServer_->attach(dsid_, &slide_);
    netServer_ = std::make_unique<NetServer>(*queryServer_, &codecs_);
  }

  static constexpr std::uint64_t kSeed = 2002;

  void expectCorrect(const vm::VMPredicate& q,
                     std::span<const std::byte> bytes) {
    const auto got =
        vm::ImageRGB::fromBytes(bytes, q.outWidth(), q.outHeight());
    EXPECT_LE(maxAbsDiff(got, renderReference(q, kSeed)),
              q.op() == vm::VMOp::Average ? 2 : 0);
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  CodecRegistry codecs_;
  storage::DatasetId dsid_ = 0;
  std::unique_ptr<server::QueryServer> queryServer_;
  std::unique_ptr<NetServer> netServer_;
};

TEST_F(NetLoopbackTest, SingleQueryOverTcp) {
  NetClient client("127.0.0.1", netServer_->port(), &codecs_);
  const vm::VMPredicate q(dsid_, Rect::ofSize(0, 0, 256, 256), 4,
                          vm::VMOp::Subsample);
  const auto bytes = client.execute(q);
  ASSERT_EQ(bytes.size(), q.outBytes());
  expectCorrect(q, bytes);
  EXPECT_EQ(netServer_->connectionsAccepted(), 1u);
}

TEST_F(NetLoopbackTest, PipelinedBatchComesBackInOrder) {
  NetClient client("127.0.0.1", netServer_->port(), &codecs_);
  std::vector<vm::VMPredicate> queries;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    queries.emplace_back(dsid_, Rect::ofSize((i % 3) * 128, (i % 2) * 128,
                                             128, 128),
                         2, vm::VMOp::Average);
    ids.push_back(client.send(queries.back()));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto resp = client.receive();
    EXPECT_EQ(resp.requestId, ids[i]);
    expectCorrect(queries[i], resp.bytes);
  }
}

TEST_F(NetLoopbackTest, ManyConcurrentClients) {
  constexpr int kClients = 6;
  std::vector<std::jthread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        NetClient client("127.0.0.1", netServer_->port(), &codecs_);
        for (int i = 0; i < 4; ++i) {
          const vm::VMPredicate q(dsid_,
                                  Rect::ofSize(((c + i) % 4) * 128, 0, 256,
                                               256),
                                  2, vm::VMOp::Subsample);
          const auto bytes = client.execute(q);
          const auto got = vm::ImageRGB::fromBytes(bytes, q.outWidth(),
                                                   q.outHeight());
          if (maxAbsDiff(got, renderReference(q, kSeed)) != 0) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  clients.clear();  // join
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(netServer_->connectionsAccepted(),
            static_cast<std::uint64_t>(kClients));
}

TEST_F(NetLoopbackTest, RemoteErrorsArriveAsExceptions) {
  NetClient client("127.0.0.1", netServer_->port(), &codecs_);
  // Region outside the dataset extent: the executor throws server-side.
  const vm::VMPredicate bad(dsid_, Rect::ofSize(4096, 4096, 256, 256), 4,
                            vm::VMOp::Subsample);
  EXPECT_THROW((void)client.execute(bad), std::runtime_error);
  // The connection stays usable afterwards.
  const vm::VMPredicate ok(dsid_, Rect::ofSize(0, 0, 128, 128), 2,
                           vm::VMOp::Subsample);
  expectCorrect(ok, client.execute(ok));
}

TEST_F(NetLoopbackTest, MalformedQueryFrameGetsErrorNotCrash) {
  NetClient client("127.0.0.1", netServer_->port(), &codecs_);
  // Hand-craft a Query frame whose predicate body is garbage.
  Writer w;
  w.u64(77);              // request id
  w.str("vm");            // valid kind...
  w.u32(0);               // ...then a truncated predicate body
  // (Use a second raw client socket so the helper API stays clean.)
  const vm::VMPredicate ok(dsid_, Rect::ofSize(0, 0, 128, 128), 2,
                           vm::VMOp::Subsample);
  (void)client.execute(ok);  // connection warmed up

  // Send the malformed frame directly, then a valid query behind it.
  // The server must answer the bad one with an Error frame and keep going.
  NetClient raw("127.0.0.1", netServer_->port(), &codecs_);
  {
    // Reach the socket through the public API: send() encodes correctly,
    // so emit the broken frame via a throwaway derived use of wire only.
    // NetClient has no raw-write hook; open a plain socket instead.
    struct RawSock {
      int fd;
      explicit RawSock(std::uint16_t port) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr),
                  0);
      }
      ~RawSock() { ::close(fd); }
    } sock(netServer_->port());
    ASSERT_TRUE(writeAll(sock.fd, packFrame(FrameType::Query, w.bytes())));
    Frame resp;
    ASSERT_TRUE(readFrame(sock.fd, resp));
    EXPECT_EQ(resp.type, FrameType::Error);
    Reader r(resp.payload);
    EXPECT_EQ(r.u64(), 77u);
  }
  // Server still healthy for other connections.
  expectCorrect(ok, client.execute(ok));
}

TEST_F(NetLoopbackTest, ServerStopUnblocksClients) {
  NetClient client("127.0.0.1", netServer_->port(), &codecs_);
  const vm::VMPredicate q(dsid_, Rect::ofSize(0, 0, 128, 128), 2,
                          vm::VMOp::Subsample);
  (void)client.execute(q);  // connection established and working
  netServer_->stop();
  EXPECT_THROW(
      {
        // Either the send or the receive must fail promptly.
        (void)client.send(q);
        (void)client.receive();
        (void)client.receive();
      },
      std::runtime_error);
}

}  // namespace
}  // namespace mqs::net
