# Empty compiler generated dependencies file for vol_workload.
# This may be replaced when dependencies are built.
