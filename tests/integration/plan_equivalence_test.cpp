// Sim-vs-real plan equivalence: the discrete-event engine and the threaded
// server share one reuse planner, so on the same workload (same seed, one
// thread, FIFO — a fully deterministic schedule in both engines) every
// query must produce the *identical* ReusePlan: same shape string, same
// source count, same per-source marginal bytes. Any inline source-selection
// logic creeping back into either engine breaks this. The threaded server's
// bytes are additionally checked against the independent reference
// renderer, so "same plan" can never mean "same wrong answer".
//
// Both engines run traced, and the per-query plan shape reconstructed from
// each engine's span stream (trace::planShapeOf, depth-0 PROJECT/COMPUTE
// spans in the planShape vocabulary) must equal the recorded planShape AND
// match across engines — the trace is a third, independent witness of the
// shared planner's decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>

#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "server/query_server.hpp"
#include "sim/sim_server.hpp"
#include "sim/simulator.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

constexpr std::uint64_t kSeed = 4242;

driver::WorkloadConfig overlapWorkload() {
  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{1024, 1024, 96, kSeed}};
  wl.clientsPerDataset = {4};
  wl.queriesPerClient = 8;
  wl.outputSide = 64;
  wl.zoomLevels = {2, 4};
  wl.zoomWeights = {1, 1};
  wl.alignGrid = 8;             // aligned rects → partial overlaps compose
  wl.browseProbability = 0.7;   // panning clients revisit neighborhoods
  wl.op = vm::VMOp::Subsample;
  wl.seed = 0xE0;
  return wl;
}

class PlanEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanEquivalenceTest, SimAndRealProduceIdenticalPlans) {
  const int maxReuseSources = GetParam();
  const auto wl = overlapWorkload();

  // --- threaded server, one worker (deterministic FIFO schedule) ---------
  std::vector<metrics::QueryRecord> realRecords;
  std::vector<trace::Event> realEvents;
  {
    vm::VMSemantics sem;
    const auto workloads = driver::WorkloadGenerator::generate(wl, sem);
    storage::SyntheticSlideSource slide(sem.layout(0), kSeed);
    vm::VMExecutor exec(&sem);
    server::ServerConfig cfg;
    cfg.threads = 1;
    cfg.policy = "FIFO";
    cfg.dsBytes = 2ULL << 20;  // small: eviction churn must match too
    cfg.psBytes = 1ULL << 20;
    cfg.maxReuseSources = maxReuseSources;
    cfg.traceSink = std::make_shared<trace::Tracer>();
    server::QueryServer server(&sem, &exec, cfg);
    server.attach(0, &slide);

    std::vector<std::future<server::QueryResult>> futures;
    std::vector<const vm::VMPredicate*> queries;
    for (const auto& client : workloads) {
      for (const auto& q : client.queries) {
        queries.push_back(&q);
        futures.push_back(server.submit(q.clone(), client.client));
      }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const auto result = futures[i].get();
      const auto& q = *queries[i];
      const auto got =
          vm::ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
      EXPECT_EQ(maxAbsDiff(got, renderReference(q, kSeed)), 0)
          << "query " << i << ": " << q.describe();
    }
    server.shutdown();
    realRecords = server.collector().records();
    realEvents = cfg.traceSink->drain();
  }

  // --- simulated server, same workload, same knobs ------------------------
  std::vector<metrics::QueryRecord> simRecords;
  std::vector<trace::Event> simEvents;
  {
    vm::VMSemantics sem;
    const auto workloads = driver::WorkloadGenerator::generate(wl, sem);
    sim::Simulator sim;
    sim::SimConfig cfg;
    cfg.threads = 1;
    cfg.policy = "FIFO";
    cfg.dsBytes = 2ULL << 20;
    cfg.psBytes = 1ULL << 20;
    cfg.maxReuseSources = maxReuseSources;
    cfg.traceSink = std::make_shared<trace::Tracer>();
    sim::SimServer server(sim, &sem, cfg);
    for (const auto& client : workloads) {
      for (const auto& q : client.queries) {
        server.submit(q.clone(), client.client);
      }
    }
    sim.run();
    simRecords = server.collector().records();
    simEvents = cfg.traceSink->drain();
  }

  // --- identical plans, query by query ------------------------------------
  ASSERT_EQ(realRecords.size(), simRecords.size());
  const auto byId = [](const metrics::QueryRecord& a,
                       const metrics::QueryRecord& b) {
    return a.queryId < b.queryId;
  };
  std::sort(realRecords.begin(), realRecords.end(), byId);
  std::sort(simRecords.begin(), simRecords.end(), byId);
  bool sawReuse = false;
  for (std::size_t i = 0; i < realRecords.size(); ++i) {
    const auto& r = realRecords[i];
    const auto& s = simRecords[i];
    ASSERT_EQ(r.queryId, s.queryId);
    EXPECT_EQ(r.predicate, s.predicate);
    EXPECT_EQ(r.planShape, s.planShape) << "query " << r.predicate;
    EXPECT_EQ(r.reuseSources, s.reuseSources) << "query " << r.predicate;
    EXPECT_EQ(r.planBytesCovered, s.planBytesCovered);
    EXPECT_EQ(r.bytesReusedPerSource, s.bytesReusedPerSource);
    EXPECT_DOUBLE_EQ(r.overlapUsed, s.overlapUsed);
    EXPECT_EQ(r.bytesReused, s.bytesReused);
    sawReuse = sawReuse || r.reuseSources > 0;

    // Trace equivalence: both engines emit the same span vocabulary, so
    // the plan shape reconstructed from each span stream must equal the
    // record's planShape and agree across engines.
    const std::string realTraceShape =
        trace::planShapeOf(trace::eventsForQuery(realEvents, r.queryId));
    const std::string simTraceShape =
        trace::planShapeOf(trace::eventsForQuery(simEvents, s.queryId));
    EXPECT_EQ(realTraceShape, r.planShape) << "real trace disagrees";
    EXPECT_EQ(simTraceShape, s.planShape) << "sim trace disagrees";
    EXPECT_EQ(realTraceShape, simTraceShape);
  }
  // The workload is overlap-rich by construction; a run where no query
  // reused anything would make this test vacuous.
  EXPECT_TRUE(sawReuse);
  if (maxReuseSources > 1) {
    const auto multi = [](const metrics::QueryRecord& r) {
      return r.reuseSources > 1;
    };
    EXPECT_TRUE(std::any_of(realRecords.begin(), realRecords.end(), multi))
        << "no query composed multiple sources on the overlap workload";
  }
}

INSTANTIATE_TEST_SUITE_P(SourceBudgets, PlanEquivalenceTest,
                         ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& paramInfo) {
                           return "maxSources" +
                                  std::to_string(paramInfo.param);
                         });

}  // namespace
}  // namespace mqs
