#include "storage/synthetic_source.hpp"

#include "common/check.hpp"

namespace mqs::storage {

std::uint8_t syntheticPixel(std::uint64_t seed, std::int64_t x, std::int64_t y,
                            int c) {
  // Mix the coordinates into the seed (stafford mix 13 variant). The result
  // must be stable forever: tests hard-code expectations derived from it.
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL;
  h ^= static_cast<std::uint64_t>(c) * 0x165667b19e3779f9ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<std::uint8_t>(h & 0xff);
}

SyntheticSlideSource::SyntheticSlideSource(index::ChunkLayout layout,
                                           std::uint64_t seed)
    : layout_(std::move(layout)), seed_(seed) {}

PageId SyntheticSlideSource::pageCount() const { return layout_.chunkCount(); }

std::size_t SyntheticSlideSource::pageBytes(PageId page) const {
  return layout_.chunkBytes(page);
}

void SyntheticSlideSource::readPage(PageId page,
                                    std::span<std::byte> out) const {
  const Rect r = layout_.chunkRect(page);
  const int bpp = layout_.bytesPerPixel();
  const std::size_t need = static_cast<std::size_t>(r.area()) *
                           static_cast<std::size_t>(bpp);
  MQS_CHECK_MSG(out.size() >= need, "readPage buffer too small");
  std::size_t i = 0;
  for (std::int64_t y = r.y0; y < r.y1; ++y) {
    for (std::int64_t x = r.x0; x < r.x1; ++x) {
      for (int c = 0; c < bpp; ++c) {
        out[i++] = static_cast<std::byte>(syntheticPixel(seed_, x, y, c));
      }
    }
  }
}

}  // namespace mqs::storage
