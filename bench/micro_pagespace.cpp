// Microbenchmark for the Page Space fetch pipeline: cold sequential
// multi-chunk scans against a DelayedSource (modeled device latency),
// comparing blocking fetch (readahead 0), the bounded readahead window,
// and fetchBatch. Emits one line of JSON for the bench trajectory.
//
//   micro_pagespace [--pages 48] [--window 4] [--io-threads 4]
//                   [--delay-ms 2.0] [--chunk 64] [--repeat 3]
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "common/options.hpp"
#include "index/chunk_layout.hpp"
#include "pagespace/page_space_manager.hpp"
#include "pagespace/readahead.hpp"
#include "storage/delayed_source.hpp"
#include "storage/synthetic_source.hpp"

using namespace mqs;

namespace {

double seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double wallSeconds = 0.0;
  double stallSeconds = 0.0;
  std::uint64_t bytes = 0;
  pagespace::PageSpaceManager::Stats stats;
};

enum class Mode { Stream, Batch };

/// One cold scan of all pages through a fresh PageSpaceManager.
RunResult scan(const storage::DataSource& source,
               const std::vector<storage::PageKey>& keys, int window,
               int ioThreads, Mode mode) {
  pagespace::PageSpaceManager ps(1ULL << 30, ioThreads);
  ps.attach(0, &source);
  pagespace::PageSpaceManager::resetThreadCounters();
  RunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  if (mode == Mode::Batch) {
    for (const auto& page : ps.fetchBatch(keys)) r.bytes += page->size();
  } else {
    pagespace::ReadaheadStream stream(ps, keys, window);
    while (!stream.done()) r.bytes += stream.next()->size();
  }
  r.wallSeconds = seconds(t0);
  r.stallSeconds = pagespace::PageSpaceManager::threadStallSeconds();
  r.stats = ps.stats();
  return r;
}

RunResult best(const storage::DataSource& source,
               const std::vector<storage::PageKey>& keys, int window,
               int ioThreads, Mode mode, int repeat) {
  RunResult bestRun = scan(source, keys, window, ioThreads, mode);
  for (int i = 1; i < repeat; ++i) {
    RunResult r = scan(source, keys, window, ioThreads, mode);
    if (r.wallSeconds < bestRun.wallSeconds) bestRun = r;
  }
  return bestRun;
}

double mbps(const RunResult& r) {
  return static_cast<double>(r.bytes) / (1024.0 * 1024.0) / r.wallSeconds;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto pages = opts.getInt("pages", 48);
  const int window = static_cast<int>(opts.getInt("window", 4));
  const int ioThreads = static_cast<int>(opts.getInt("io-threads", 4));
  const double delayMs = opts.getDouble("delay-ms", 2.0);
  const auto chunkSide = opts.getInt("chunk", 64);
  const int repeat = static_cast<int>(opts.getInt("repeat", 3));

  // A slide wide enough to hold `pages` chunks in one row: the scan is the
  // cold sequential chunk walk of a worst-case subsampling query.
  const index::ChunkLayout layout(chunkSide * pages, chunkSide, chunkSide);
  const storage::SyntheticSlideSource slide(layout, /*seed=*/7);
  storage::DiskModel model;
  model.sequentialOverheadSec = delayMs / 1000.0;  // per-read device latency
  const storage::DelayedSource source(slide, model);

  std::vector<storage::PageKey> keys;
  for (std::uint64_t p = 0; p < layout.chunkCount(); ++p) {
    keys.push_back({0, p});
  }

  const RunResult serial =
      best(source, keys, /*window=*/0, ioThreads, Mode::Stream, repeat);
  const RunResult pipelined =
      best(source, keys, window, ioThreads, Mode::Stream, repeat);
  const RunResult batch =
      best(source, keys, window, ioThreads, Mode::Batch, repeat);

  std::ostringstream js;
  js.precision(6);
  js << std::fixed << "{\"bench\":\"micro_pagespace\""
     << ",\"pages\":" << keys.size()
     << ",\"page_bytes\":" << layout.fullChunkBytes()
     << ",\"delay_ms\":" << delayMs << ",\"window\":" << window
     << ",\"io_threads\":" << ioThreads
     << ",\"serial_s\":" << serial.wallSeconds
     << ",\"serial_mbps\":" << mbps(serial)
     << ",\"serial_stall_s\":" << serial.stallSeconds
     << ",\"pipelined_s\":" << pipelined.wallSeconds
     << ",\"pipelined_mbps\":" << mbps(pipelined)
     << ",\"pipelined_stall_s\":" << pipelined.stallSeconds
     << ",\"batch_s\":" << batch.wallSeconds
     << ",\"batch_mbps\":" << mbps(batch)
     << ",\"speedup\":" << serial.wallSeconds / pipelined.wallSeconds
     << ",\"batch_speedup\":" << serial.wallSeconds / batch.wallSeconds
     << ",\"prefetch_issued\":" << pipelined.stats.prefetchIssued
     << ",\"prefetch_hits\":" << pipelined.stats.prefetchHits
     << ",\"prefetch_wasted\":" << pipelined.stats.prefetchWasted << "}";
  std::cout << js.str() << std::endl;
  return 0;
}
