// Zipfian workload factory: the popularity field must be a proper
// distribution with the configured skew, every drawn query must be a valid
// in-bounds predicate, and one workload seed must pin the same hot spots
// across independent client draw streams (that sharing is what makes the
// Data Store reuse path light up under load).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "loadgen/workload.hpp"
#include "vm/vm_predicate.hpp"

namespace mqs::loadgen {
namespace {

TEST(ZipfSampler, ProbabilitiesFormADecreasingDistribution) {
  const ZipfSampler zipf(100, 1.1);
  double sum = 0.0;
  for (std::size_t k = 0; k < 100; ++k) {
    sum += zipf.probability(k);
    if (k > 0) {
      EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchTheDistribution) {
  const ZipfSampler zipf(64, 1.2);
  Rng rng(5);
  std::map<std::size_t, std::size_t> counts;
  constexpr std::size_t kDraws = 200000;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (const std::size_t rank : {0UL, 1UL, 5UL, 20UL}) {
    const double expected = zipf.probability(rank) * kDraws;
    EXPECT_NEAR(static_cast<double>(counts[rank]), expected,
                0.05 * expected + 30.0)
        << "rank " << rank;
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-12);
  }
}

TEST(QueryFactory, UniverseCrossesTilesWithZooms) {
  WorkloadConfig cfg;
  cfg.slideWidth = 4096;
  cfg.slideHeight = 2048;
  cfg.regionSide = 512;
  cfg.zooms = {2, 4};
  const QueryFactory factory(cfg);
  // (4096/512) * (2048/512) tiles x 2 zooms.
  EXPECT_EQ(factory.universeSize(), 8u * 4u * 2u);
}

TEST(QueryFactory, DrawsAreValidInBoundsPredicates) {
  WorkloadConfig cfg;
  cfg.dataset = 3;
  cfg.slideWidth = 4096;
  cfg.slideHeight = 4096;
  cfg.regionSide = 256;
  cfg.zooms = {1, 2, 4, 8};
  const QueryFactory factory(cfg);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const vm::VMPredicate q = factory.make(rng);
    EXPECT_EQ(q.dataset(), cfg.dataset);
    const Rect r = q.region();
    EXPECT_EQ(r.width(), cfg.regionSide);
    EXPECT_EQ(r.height(), cfg.regionSide);
    EXPECT_GE(r.x0, 0);
    EXPECT_GE(r.y0, 0);
    EXPECT_LE(r.x0 + r.width(), cfg.slideWidth);
    EXPECT_LE(r.y0 + r.height(), cfg.slideHeight);
    // Tile-aligned so the popularity field is well defined.
    EXPECT_EQ(r.x0 % cfg.regionSide, 0);
    EXPECT_EQ(r.y0 % cfg.regionSide, 0);
    EXPECT_TRUE(std::find(cfg.zooms.begin(), cfg.zooms.end(), q.zoom()) !=
                cfg.zooms.end());
  }
}

TEST(QueryFactory, SharedWorkloadSeedSharesHotSpotsAcrossClients) {
  WorkloadConfig cfg;
  cfg.zipfS = 1.3;
  cfg.averageOpFraction = 0.0;  // fix the op: popularity is over (tile,
                                // zoom), not the per-draw op coin flip
  const QueryFactory factory(cfg);

  // Two independent client streams against one factory: the most popular
  // predicate must be the same, and roughly as popular as Zipf rank 1.
  const auto topDraw = [&factory](std::uint64_t seed) {
    Rng rng(seed);
    std::map<std::string, std::size_t> freq;
    for (int i = 0; i < 20000; ++i) ++freq[factory.make(rng).describe()];
    std::string best;
    std::size_t bestCount = 0;
    for (const auto& [desc, count] : freq) {
      if (count > bestCount) {
        best = desc;
        bestCount = count;
      }
    }
    return std::pair{best, bestCount};
  };
  const auto [topA, countA] = topDraw(1);
  const auto [topB, countB] = topDraw(2);
  EXPECT_EQ(topA, topB) << "hot spot moved between client streams";

  const ZipfSampler zipf(factory.universeSize(), cfg.zipfS);
  const double expected = zipf.probability(0) * 20000;
  EXPECT_NEAR(static_cast<double>(countA), expected, 0.1 * expected);
  EXPECT_NEAR(static_cast<double>(countB), expected, 0.1 * expected);

  // A different workload seed relocates the hot spot (the permutation is
  // the seed's job). One collision is astronomically unlikely across a
  // 1024-slot universe.
  WorkloadConfig moved = cfg;
  moved.seed = cfg.seed + 1;
  const QueryFactory movedFactory(moved);
  Rng rng(1);
  std::map<std::string, std::size_t> freq;
  for (int i = 0; i < 20000; ++i) ++freq[movedFactory.make(rng).describe()];
  std::string movedTop;
  std::size_t movedCount = 0;
  for (const auto& [desc, count] : freq) {
    if (count > movedCount) {
      movedTop = desc;
      movedCount = count;
    }
  }
  EXPECT_NE(movedTop, topA);
}

TEST(QueryFactory, RejectsGeometryTheSlideCannotTile) {
  WorkloadConfig cfg;
  cfg.slideWidth = 1000;  // not divisible by regionSide 256
  EXPECT_ANY_THROW((void)QueryFactory(cfg));
  WorkloadConfig bad;
  bad.regionSide = 96;
  bad.slideWidth = 960;
  bad.slideHeight = 960;
  bad.zooms = {64};  // 96 is not divisible by 64
  EXPECT_ANY_THROW((void)QueryFactory(bad));
}

}  // namespace
}  // namespace mqs::loadgen
