#include "server/query_server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace mqs::server {

namespace {
/// Combined contention counts for a subsystem spanning two lock ranks
/// (its coarse lock plus the sharded variant).
lockstats::Counts sumCounts(lockorder::Rank a, lockorder::Rank b) {
  const auto ca = lockstats::countsFor(a);
  const auto cb = lockstats::countsFor(b);
  return lockstats::Counts{ca.contended + cb.contended,
                           ca.waitNanos + cb.waitNanos};
}
}  // namespace

QueryServer::QueryServer(const query::QuerySemantics* semantics,
                         const query::QueryExecutor* executor,
                         ServerConfig cfg)
    : sem_(semantics),
      exec_(executor),
      cfg_(std::move(cfg)),
      scheduler_(semantics, sched::makePolicy(cfg_.policy, cfg_.alpha),
                 cfg_.incrementalRanking),
      ds_(cfg_.dsBytes, semantics,
          datastore::parseEvictionPolicy(cfg_.dsEviction), cfg_.dsShards),
      ps_(cfg_.psBytes, cfg_.psIoThreads,
          pagespace::RetryPolicy{cfg_.ioRetryAttempts,
                                 cfg_.ioRetryBackoffSec},
          cfg_.psShards),
      planner_(semantics,
               query::PlannerConfig{
                   .dataStoreEnabled = cfg_.dataStoreEnabled,
                   .allowWaitOnExecuting = cfg_.allowWaitOnExecuting,
                   .maxReuseSources = cfg_.maxReuseSources,
                   .candidatePoolSize = std::max(8, 2 * cfg_.maxReuseSources),
                   .maxNestedReuseDepth = cfg_.maxNestedReuseDepth,
                   .minMarginalBytes = 1,
                   // Worker threads race with evictions: the planner pins
                   // the blobs it selects until their steps execute.
                   .pinSources = true,
               }),
      epoch_(std::chrono::steady_clock::now()) {
  MQS_CHECK(sem_ != nullptr && exec_ != nullptr);
  MQS_CHECK(cfg_.threads >= 1);
  MQS_CHECK(cfg_.queryDeadlineSec >= 0.0);
  if (cfg_.traceSink != nullptr) {
    tracer_ = cfg_.traceSink.get();
    // All components stamp events with the server's experiment clock, the
    // same clock behind every QueryRecord timestamp.
    tracer_->setClock(
        [](void* ctx) {
          return static_cast<const QueryServer*>(ctx)->nowSeconds();
        },
        this);
    scheduler_.setTracer(tracer_);
    ds_.setTracer(tracer_);
    ps_.setTracer(tracer_);
    lockWaitBaseSched_ = lockstats::countsFor(lockorder::Rank::kScheduler);
    lockWaitBaseDs_ = sumCounts(lockorder::Rank::kDataStore,
                                lockorder::Rank::kDataStoreShard);
    lockWaitBasePs_ = sumCounts(lockorder::Rank::kPageSpace,
                                lockorder::Rank::kPageSpaceShard);
  }
  ds_.setEvictionListener(
      [this](datastore::BlobId id, const query::Predicate&) {
        onBlobEvicted(id);
      });
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int i = 0; i < cfg_.threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

QueryServer::~QueryServer() { shutdown(); }

double QueryServer::nowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void QueryServer::attach(storage::DatasetId dataset,
                         const storage::DataSource* source) {
  ps_.attach(dataset, source);
}

std::future<QueryResult> QueryServer::submit(query::PredicatePtr pred,
                                             int client) {
  MQS_CHECK(pred != nullptr);
  PendingQuery pq;
  pq.record.client = client;
  pq.record.predicate = pred->describe();
  pq.record.arrivalTime = nowSeconds();
  pq.record.inputBytes = sem_->qinputsize(*pred);
  pq.record.outputBytes = sem_->qoutsize(*pred);
  auto future = pq.promise.get_future();

  {
    MutexLock lock(mu_);
    if (stopping_) {
      pq.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("query server is shutting down")));
      return future;
    }
    const sched::NodeId node = scheduler_.submit(std::move(pred));
    pq.record.queryId = node;
    latches_.emplace(node, std::make_shared<DoneLatch>());
    pending_.emplace(node, std::move(pq));
  }
  workAvailable_.notifyOne();
  return future;
}

QueryResult QueryServer::execute(query::PredicatePtr pred, int client) {
  return submit(std::move(pred), client).get();
}

void QueryServer::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  workAvailable_.notifyAll();
  workers_.clear();  // jthread joins
  if (tracer_ != nullptr) {
    // Per-subsystem lock-contention exposure for this run: value = blocked
    // acquisitions since construction (workers are joined, so the deltas
    // are final).
    const auto emit = [this](trace::CounterKind kind,
                             const lockstats::Counts& base,
                             const lockstats::Counts& now) {
      if (now.contended > base.contended) {
        tracer_->counter(kind, now.contended - base.contended);
      }
    };
    emit(trace::CounterKind::LockWaitSched, lockWaitBaseSched_,
         lockstats::countsFor(lockorder::Rank::kScheduler));
    emit(trace::CounterKind::LockWaitDs, lockWaitBaseDs_,
         sumCounts(lockorder::Rank::kDataStore,
                   lockorder::Rank::kDataStoreShard));
    emit(trace::CounterKind::LockWaitPs, lockWaitBasePs_,
         sumCounts(lockorder::Rank::kPageSpace,
                   lockorder::Rank::kPageSpaceShard));
  }
}

void QueryServer::workerLoop() {
  for (;;) {
    sched::NodeId node = sched::kInvalidNode;
    PendingQuery pq;
    {
      MutexLock lock(mu_);
      // Explicit while-loop (not a predicate lambda): the thread-safety
      // analysis cannot see lock state inside a lambda body.
      while (!stopping_ && scheduler_.waitingCount() == 0) {
        workAvailable_.wait(mu_);
      }
      if (scheduler_.waitingCount() == 0) {
        if (stopping_) return;
        continue;
      }
      auto n = scheduler_.dequeue();
      if (!n) continue;  // raced with another worker
      node = *n;
      auto it = pending_.find(node);
      MQS_CHECK_MSG(it != pending_.end(), "dequeued query without record");
      pq = std::move(it->second);
      pending_.erase(it);
    }
    runQuery(node, std::move(pq));
  }
}

void QueryServer::checkDeadline(const metrics::QueryRecord& rec) const {
  if (cfg_.queryDeadlineSec <= 0.0) return;
  const double elapsed = nowSeconds() - rec.arrivalTime;
  if (elapsed > cfg_.queryDeadlineSec) {
    throw QueryFailure("query deadline exceeded (" + std::to_string(elapsed) +
                       "s > " + std::to_string(cfg_.queryDeadlineSec) + "s)");
  }
}

std::shared_future<void> QueryServer::doneFutureOf(sched::NodeId node) {
  MutexLock lock(mu_);
  auto it = latches_.find(node);
  MQS_CHECK_MSG(it != latches_.end(), "no completion latch for node");
  return it->second->future;
}

std::vector<std::byte> QueryServer::executePlan(query::ReusePlan plan,
                                                const query::Predicate& pred,
                                                int depth,
                                                metrics::QueryRecord& rec) {
  const auto d8 = static_cast<std::uint8_t>(depth);
  // Raw fast path: a plan without projection steps is a single
  // ComputeRemainder step covering `pred` — run the executor directly.
  if (!plan.hasReuse()) {
    trace::SpanScope compute(tracer_, rec.queryId, trace::SpanKind::Compute,
                             d8);
    return exec_->execute(pred, ps_);
  }

  std::vector<std::byte> out(sem_->qoutsize(pred));
  std::size_t pinIdx = 0;  // plan.pins parallels the ProjectFromCached steps
  for (query::PlanStep& step : plan.steps) {
    switch (step.kind) {
      case query::PlanStep::Kind::ProjectFromCached: {
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagCachedSource);
        // The planner pinned the blob (pinSources), so it is still
        // resident; release the pin as soon as the projection is done.
        exec_->project(*step.sourcePred, ds_.payload(step.blob), pred, out);
        MQS_DCHECK(pinIdx < plan.pins.size());
        plan.pins[pinIdx++].release();
        rec.bytesReused += step.bytesCovered;
        break;
      }
      case query::PlanStep::Kind::WaitAndProjectFromExecuting: {
        // The PROJECT span covers the whole step — including the fallback
        // compute below — so a query's depth-0 PROJECT count always equals
        // its recorded reuseSources, even when a source vanished.
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagExecutingSource);
        // Block on the older executing query's completion latch; the
        // thread-pool slot stays occupied while we wait (§4).
        rec.reusedExecuting = true;
        const double t0 = nowSeconds();
        {
          trace::SpanScope wait(tracer_, rec.queryId,
                                trace::SpanKind::WaitSource, d8);
          doneFutureOf(step.node).wait();
        }
        rec.blockedTime += nowSeconds() - t0;
        checkDeadline(rec);

        datastore::BlobId blob = 0;
        bool haveBlob = false;
        {
          MutexLock lock(mu_);
          if (auto it = nodeBlob_.find(step.node); it != nodeBlob_.end()) {
            blob = it->second;
            haveBlob = true;
          }
        }
        if (haveBlob && ds_.tryPin(blob)) {
          datastore::DataStore::PinGuard pin(ds_, blob);
          exec_->project(*step.sourcePred, ds_.payload(blob), pred, out);
          pin.release();
          ds_.noteReuse(blob, step.overlap);
          rec.bytesReused += step.bytesCovered;
        } else {
          // The source failed, produced an uncacheable result, or was
          // evicted before we could read it: compute this step's share of
          // the output from raw data instead (its coveredParts tile it).
          for (const query::PredicatePtr& cp : step.coveredParts) {
            const std::vector<std::byte> sub =
                computePart(*cp, depth + 1, rec);
            exec_->project(*cp, sub, pred, out);
          }
        }
        break;
      }
      case query::PlanStep::Kind::ComputeRemainder: {
        trace::SpanScope compute(tracer_, rec.queryId,
                                 trace::SpanKind::Compute, d8,
                                 step.bytesCovered);
        const std::vector<std::byte> sub =
            computePart(*step.pred, depth + 1, rec);
        exec_->project(*step.pred, sub, pred, out);
        break;
      }
    }
  }
  return out;
}

std::vector<std::byte> QueryServer::computePart(const query::Predicate& part,
                                                int depth,
                                                metrics::QueryRecord& rec) {
  // Remainder parts never wait on executing queries (no graph node, and
  // blocking inside a nested computation would stack latch waits).
  query::ReusePlan plan = [&] {
    trace::SpanScope planSpan(tracer_, rec.queryId, trace::SpanKind::Plan,
                              static_cast<std::uint8_t>(depth));
    return planner_.plan(part, ds_, nullptr, sched::kInvalidNode, depth);
  }();
  std::vector<std::byte> out = executePlan(std::move(plan), part, depth, rec);
  if (cfg_.dataStoreEnabled && cfg_.cacheSubqueryResults) {
    (void)ds_.insert(part.clone(), std::vector<std::byte>(out),
                     sem_->qoutsize(part));
  }
  return out;
}

std::optional<datastore::BlobId> QueryServer::cacheResult(
    const query::Predicate& pred, std::span<const std::byte> out) {
  if (!cfg_.dataStoreEnabled) return std::nullopt;
  return ds_.insert(pred.clone(),
                    std::vector<std::byte>(out.begin(), out.end()),
                    sem_->qoutsize(pred));
}

std::vector<std::byte> QueryServer::computeQuery(sched::NodeId node,
                                                 const query::Predicate& pred,
                                                 metrics::QueryRecord& rec) {
  // All source selection happens in the shared planner; record the plan's
  // accounting, then execute its steps.
  query::ReusePlan plan = [&] {
    trace::SpanScope planSpan(tracer_, rec.queryId, trace::SpanKind::Plan);
    return planner_.plan(pred, ds_, &scheduler_, node, /*depth=*/0);
  }();
  rec.overlapUsed = plan.primaryOverlap;
  rec.reuseSources = plan.reuseSources();
  rec.planBytesCovered = plan.planBytesCovered;
  rec.planShape = plan.shape();
  for (const query::PlanStep& step : plan.steps) {
    if (step.kind != query::PlanStep::Kind::ComputeRemainder) {
      rec.bytesReusedPerSource.push_back(step.bytesCovered);
    }
  }
  return executePlan(std::move(plan), pred, /*depth=*/0, rec);
}

void QueryServer::runQuery(sched::NodeId node, PendingQuery pq) {
  metrics::QueryRecord rec = std::move(pq.record);
  rec.startTime = nowSeconds();
  pagespace::PageSpaceManager::resetThreadCounters();
  // Attribute everything emitted on this thread — including IO_STALL spans
  // from deep inside the Page Space Manager — to this query.
  trace::Tracer::QueryScope queryScope(tracer_, node);

  const query::PredicatePtr predPtr = scheduler_.predicateOf(node);
  const query::Predicate& pred = *predPtr;

  // Application code (executors, user-defined operators, the storage
  // layer on a permanent device fault) may throw; the failure is scoped
  // to this query: it is delivered through the client future as a
  // QueryFailure and the graph node is retired so dependents and the
  // scheduler stay consistent. The worker thread survives.
  std::vector<std::byte> out;
  std::string failureReason;
  bool failed = false;
  try {
    checkDeadline(rec);  // a query already past its deadline never executes
    out = computeQuery(node, pred, rec);
  } catch (const std::exception& e) {
    failed = true;
    failureReason = e.what();
  } catch (...) {
    failed = true;
    failureReason = "unknown error";
  }
  rec.bytesFromDisk = pagespace::PageSpaceManager::threadDeviceBytes();
  rec.ioStallTime = pagespace::PageSpaceManager::threadStallSeconds();

  // The terminal DELIVER span covers result caching, the graph-node
  // transition, and client delivery; its end event carries the failed flag.
  trace::SpanScope deliver(tracer_, node, trace::SpanKind::Deliver);
  if (failed) deliver.setEndFlags(trace::kFlagFailed);

  // --- cache the result & transition the graph node --------------------
  if (failed) {
    rec.failed = true;
    rec.failureReason = failureReason;
    // FAILED is terminal: there is no reusable result, so the node leaves
    // the graph at once and waiting neighbors are re-ranked.
    scheduler_.failed(node);
  } else {
    std::optional<datastore::BlobId> blob;
    if (rec.overlapUsed < 1.0) blob = cacheResult(pred, out);
    if (blob) {
      MutexLock lock(mu_);
      nodeBlob_[node] = *blob;
      blobNode_[*blob] = node;
    }
    scheduler_.completed(node);
    if (!blob) {
      // Nothing cached (duplicate result, or DS full/disabled): the
      // node cannot serve reuse, so it leaves the graph at once.
      scheduler_.swappedOut(node);
    } else {
      MutexLock lock(mu_);
      if (evictedWhileExecuting_.erase(node) > 0) {
        nodeBlob_.erase(node);
        blobNode_.erase(*blob);
        scheduler_.swappedOut(node);
      }
    }
  }

  // --- deliver ----------------------------------------------------------
  {
    MutexLock lock(mu_);
    latches_[node]->promise.set_value();
  }
  // A failed query produced no result, so it contributes no reuse-feedback
  // signal to adaptive policies.
  if (!failed) scheduler_.reportQueryOutcome(rec.overlapUsed);

  deliver.close();
  rec.finishTime = nowSeconds();
  collector_.add(rec);
  if (failed) {
    pq.promise.set_exception(
        std::make_exception_ptr(QueryFailure(failureReason)));
  } else {
    pq.promise.set_value(QueryResult{std::move(out), rec});
  }
}

void QueryServer::onBlobEvicted(datastore::BlobId blob) {
  MutexLock lock(mu_);
  const auto it = blobNode_.find(blob);
  if (it == blobNode_.end()) return;  // sub-query blob without a graph node
  const sched::NodeId node = it->second;
  blobNode_.erase(it);
  nodeBlob_.erase(node);
  if (scheduler_.stateOf(node) == sched::QueryState::Cached) {
    scheduler_.swappedOut(node);
  } else {
    evictedWhileExecuting_.insert(node);
  }
}

}  // namespace mqs::server
