file(REMOVE_RECURSE
  "libmqs_pagespace.a"
)
