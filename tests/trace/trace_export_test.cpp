// Exporter contracts: the Chrome trace_event JSON is schema-complete and
// parseable (validated with a strict mini JSON parser, no dependencies),
// byte-stable for a fixed seed (virtual-time determinism end to end), and
// the flat CSV/JSON query exporters survive adversarial predicate strings
// — embedded quotes, commas, CR/LF — via an exhaustive RFC-4180 round trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "sim/sim_server.hpp"
#include "sim/simulator.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

// --- strict mini JSON parser (tests only) -----------------------------------

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;  // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  static std::optional<JsonValue> parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v;
    if (!p.parseValue(v)) return std::nullopt;
    p.skipWs();
    if (p.pos_ != text.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* s) {
    std::size_t i = 0;
    while (s[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != s[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  bool parseString(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // The exporters only \u-escape control chars (< 0x20).
            if (code >= 0x80) return false;
            out += static_cast<char>(code);
            break;
          }
          default: return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      out += c;
    }
    return false;  // unterminated
  }

  bool parseNumber(JsonValue& v) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    const auto eat = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat();
    if (pos_ < text_.size() && text_[pos_] == '.') { ++pos_; eat(); }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat();
    }
    if (!digits) return false;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool parseValue(JsonValue& v) {
    skipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::Object;
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
      while (true) {
        skipWs();
        std::string key;
        if (!parseString(key)) return false;
        skipWs();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        JsonValue member;
        if (!parseValue(member)) return false;
        v.members.emplace_back(std::move(key), std::move(member));
        skipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == '}') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::Array;
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
      while (true) {
        JsonValue item;
        if (!parseValue(item)) return false;
        v.items.push_back(std::move(item));
        skipWs();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') { ++pos_; continue; }
        if (text_[pos_] == ']') { ++pos_; return true; }
        return false;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::String;
      return parseString(v.str);
    }
    if (c == 't') { v.kind = JsonValue::Kind::Bool; v.boolean = true; return literal("true"); }
    if (c == 'f') { v.kind = JsonValue::Kind::Bool; v.boolean = false; return literal("false"); }
    if (c == 'n') { v.kind = JsonValue::Kind::Null; return literal("null"); }
    return parseNumber(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- RFC-4180 CSV parser (tests only) ---------------------------------------

std::vector<std::vector<std::string>> parseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool inQuotes = false;
  bool fieldQuoted = false;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (inQuotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        inQuotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !fieldQuoted) {
      inQuotes = true;
      fieldQuoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
      fieldQuoted = false;
      ++i;
      continue;
    }
    if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      fieldQuoted = false;
      rows.push_back(std::move(row));
      row.clear();
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (!field.empty() || fieldQuoted || !row.empty()) {
    row.push_back(field);
    rows.push_back(row);
  }
  return rows;
}

/// Exhaustive adversarial strings: every string of length <= 3 over an
/// alphabet of CSV/JSON metacharacters, plus a few longer classics.
std::vector<std::string> adversarialStrings() {
  const std::string alphabet = "a,\"\n\r";
  std::vector<std::string> out = {""};
  std::vector<std::string> frontier = {""};
  for (int len = 1; len <= 3; ++len) {
    std::vector<std::string> next;
    for (const std::string& prefix : frontier) {
      for (const char c : alphabet) {
        next.push_back(prefix + c);
      }
    }
    out.insert(out.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  out.push_back("zoom=4 region=\"0,0,256,256\"");
  out.push_back("line1\r\nline2,with\ttab");
  out.push_back("\"\"quoted\"\",trailing,");
  return out;
}

std::vector<metrics::QueryRecord> adversarialRecords() {
  std::vector<metrics::QueryRecord> records;
  std::uint64_t id = 1;
  for (const std::string& s : adversarialStrings()) {
    metrics::QueryRecord r;
    r.queryId = id;
    r.client = static_cast<int>(id % 7);
    r.predicate = s;
    r.planShape = s.empty() ? "R" : "C100|" + s;
    r.failed = (id % 3) == 0;
    r.failureReason = r.failed ? s : "";
    r.arrivalTime = 0.25 * static_cast<double>(id);
    r.finishTime = r.arrivalTime + 1.5;
    ++id;
    records.push_back(std::move(r));
  }
  return records;
}

// --- traced sim run shared by the schema/stability tests --------------------

std::vector<trace::Event> tracedSimEvents() {
  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{1024, 1024, 96, 99}};
  wl.clientsPerDataset = {3};
  wl.queriesPerClient = 5;
  wl.outputSide = 64;
  wl.zoomLevels = {2, 4};
  wl.zoomWeights = {1, 1};
  wl.alignGrid = 8;
  wl.browseProbability = 0.7;
  wl.op = vm::VMOp::Subsample;
  wl.seed = 0xBEE;

  vm::VMSemantics sem;
  const auto workloads = driver::WorkloadGenerator::generate(wl, sem);
  sim::Simulator sim;
  sim::SimConfig cfg;
  cfg.threads = 4;
  cfg.policy = "FIFO";
  cfg.dsBytes = 2ULL << 20;
  cfg.psBytes = 1ULL << 20;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  sim::SimServer server(sim, &sem, cfg);
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      server.submit(q.clone(), client.client);
    }
  }
  sim.run();
  return cfg.traceSink->drain();
}

std::string chromeTraceString(const std::vector<trace::Event>& events) {
  std::ostringstream os;
  trace::exportChromeTrace(os, events);
  return os.str();
}

TEST(ChromeTraceExport, SchemaCompleteAndParseable) {
  const auto events = tracedSimEvents();
  ASSERT_FALSE(events.empty());
  const auto parsed = JsonParser::parse(chromeTraceString(events));
  ASSERT_TRUE(parsed.has_value()) << "Chrome trace is not valid JSON";
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);

  const JsonValue* traceEvents = parsed->find("traceEvents");
  ASSERT_NE(traceEvents, nullptr);
  ASSERT_EQ(traceEvents->kind, JsonValue::Kind::Array);
  ASSERT_EQ(traceEvents->items.size(), events.size());

  int spans = 0;
  int counters = 0;
  for (const JsonValue& e : traceEvents->items) {
    ASSERT_EQ(e.kind, JsonValue::Kind::Object);
    // Required trace_event fields on *every* entry.
    for (const char* key : {"ph", "ts", "pid", "tid", "name"}) {
      ASSERT_NE(e.find(key), nullptr) << "missing field " << key;
    }
    ASSERT_EQ(e.find("ph")->kind, JsonValue::Kind::String);
    ASSERT_EQ(e.find("ts")->kind, JsonValue::Kind::Number);
    ASSERT_EQ(e.find("pid")->kind, JsonValue::Kind::Number);
    ASSERT_EQ(e.find("tid")->kind, JsonValue::Kind::Number);
    ASSERT_EQ(e.find("name")->kind, JsonValue::Kind::String);
    const std::string& ph = e.find("ph")->str;
    ASSERT_TRUE(ph == "b" || ph == "e" || ph == "C") << "ph=" << ph;
    if (ph == "C") {
      ++counters;
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("total"), nullptr);
    } else {
      ++spans;
      // Async spans need the pairing id and category.
      ASSERT_NE(e.find("id"), nullptr);
      ASSERT_NE(e.find("cat"), nullptr);
    }
  }
  EXPECT_GT(spans, 0);
  EXPECT_GT(counters, 0);
}

TEST(ChromeTraceExport, ByteStableForFixedSeed) {
  // Two fully independent runs of the identical virtual-time configuration
  // must serialize to the identical bytes — determinism of the engine, the
  // tracer and the fixed-point formatter, end to end.
  const std::string a = chromeTraceString(tracedSimEvents());
  const std::string b = chromeTraceString(tracedSimEvents());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ChromeTraceExport, CounterTracksAreCumulative) {
  const auto events = tracedSimEvents();
  const auto parsed = JsonParser::parse(chromeTraceString(events));
  ASSERT_TRUE(parsed.has_value());
  std::map<std::string, double> lastTotal;
  for (const JsonValue& e : parsed->find("traceEvents")->items) {
    if (e.find("ph")->str != "C") continue;
    const std::string& name = e.find("name")->str;
    const double total = e.find("args")->find("total")->number;
    auto it = lastTotal.find(name);
    if (it != lastTotal.end()) {
      EXPECT_GE(total, it->second) << "counter " << name << " went backwards";
    }
    lastTotal[name] = total;
  }
  EXPECT_FALSE(lastTotal.empty());
}

TEST(CsvExport, RoundTripsAdversarialPredicates) {
  const auto records = adversarialRecords();
  std::ostringstream os;
  trace::exportQueryCsv(os, records);
  const auto rows = parseCsv(os.str());
  ASSERT_EQ(rows.size(), records.size() + 1);  // header + one per record

  const std::size_t columns = rows[0].size();
  EXPECT_EQ(rows[0][0], "queryId");
  EXPECT_EQ(rows[0][2], "predicate");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& row = rows[i + 1];
    ASSERT_EQ(row.size(), columns) << "ragged row " << i;
    EXPECT_EQ(row[0], std::to_string(records[i].queryId));
    EXPECT_EQ(row[2], records[i].predicate) << "predicate mangled, row " << i;
    EXPECT_EQ(row[columns - 3], records[i].planShape);
    EXPECT_EQ(row[columns - 2], records[i].failed ? "1" : "0");
    EXPECT_EQ(row[columns - 1], records[i].failureReason);
  }
}

TEST(CsvExport, QuotingIsMinimalAndReversible) {
  EXPECT_EQ(trace::csvQuote("plain"), "plain");
  EXPECT_EQ(trace::csvQuote(""), "");
  EXPECT_EQ(trace::csvQuote("a,b"), "\"a,b\"");
  EXPECT_EQ(trace::csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(trace::csvQuote("line\nbreak"), "\"line\nbreak\"");
  for (const std::string& s : adversarialStrings()) {
    const auto rows = parseCsv(trace::csvQuote(s) + "\n");
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), 1u);
    EXPECT_EQ(rows[0][0], s);
  }
}

TEST(JsonExport, QueryJsonParsesWithAdversarialStrings) {
  const auto records = adversarialRecords();
  std::ostringstream os;
  trace::exportQueryJson(os, records);
  const auto parsed = JsonParser::parse(os.str());
  ASSERT_TRUE(parsed.has_value()) << "query JSON is not valid JSON";
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Array);
  ASSERT_EQ(parsed->items.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonValue& obj = parsed->items[i];
    ASSERT_EQ(obj.kind, JsonValue::Kind::Object);
    EXPECT_EQ(obj.find("queryId")->number,
              static_cast<double>(records[i].queryId));
    EXPECT_EQ(obj.find("predicate")->str, records[i].predicate);
    EXPECT_EQ(obj.find("failed")->boolean, records[i].failed);
    EXPECT_EQ(obj.find("failureReason")->str, records[i].failureReason);
  }
}

TEST(JsonExport, JsonQuoteRoundTripsControlCharacters) {
  for (const std::string& s : adversarialStrings()) {
    const auto parsed = JsonParser::parse(trace::jsonQuote(s));
    ASSERT_TRUE(parsed.has_value()) << "unparseable quoting of: " << s;
    ASSERT_EQ(parsed->kind, JsonValue::Kind::String);
    EXPECT_EQ(parsed->str, s);
  }
}

TEST(JsonExport, SummaryJsonIsParseable) {
  std::vector<metrics::QueryRecord> records = adversarialRecords();
  const auto parsed =
      JsonParser::parse(trace::summaryJson(metrics::summarize(records)));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->kind, JsonValue::Kind::Object);
  ASSERT_NE(parsed->find("queries"), nullptr);
  EXPECT_EQ(parsed->find("queries")->number,
            static_cast<double>(records.size()));
  ASSERT_NE(parsed->find("trimmedResponse"), nullptr);
  ASSERT_NE(parsed->find("p99Response"), nullptr);
}

}  // namespace
}  // namespace mqs
