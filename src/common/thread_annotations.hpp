// Clang thread-safety annotations + the annotated synchronization
// primitives every subsystem locks through.
//
// The macros expand to Clang's capability attributes so `-Wthread-safety`
// (the MQS_THREAD_SAFETY build, -Werror in CI) proves at compile time that
// every GUARDED_BY field is only touched with its mutex held and that
// every REQUIRES contract is met at each call site. On GCC (and any other
// compiler) they expand to nothing and the wrappers below behave exactly
// like std::mutex / std::lock_guard / std::condition_variable.
//
// Project rules (enforced by scripts/lint.sh):
//  * No naked std::mutex / std::condition_variable / std::lock_guard /
//    std::unique_lock outside this shim — lock through Mutex / MutexLock /
//    CondVar so both the compile-time analysis and the debug lock-rank
//    checker (common/lock_order.hpp) see every acquisition.
//  * Subsystem mutexes are constructed with their rank from
//    lockorder::Rank; debug builds abort on any out-of-order acquisition.
//  * Condition-variable waits are explicit while-loops over the predicate
//    (`while (!pred()) cv_.wait(mu_);`) in a scope where the analysis can
//    prove the lock is held — no predicate lambdas, whose bodies Clang
//    analyzes without the lock context.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.hpp"
#include "common/lock_stats.hpp"

#if defined(__clang__) && !defined(SWIG)
#define MQS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MQS_THREAD_ANNOTATION(x)  // no-op on non-Clang compilers
#endif

/// Type is a lockable capability ("mutex" in diagnostics).
#define CAPABILITY(x) MQS_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires a capability in its constructor.
#define SCOPED_CAPABILITY MQS_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written with the given mutex held.
#define GUARDED_BY(x) MQS_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is protected by the given mutex.
#define PT_GUARDED_BY(x) MQS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function must be called with the given mutex(es) held (the *Locked()
/// helper contract).
#define REQUIRES(...) MQS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the mutex(es) and returns with them held.
#define ACQUIRE(...) MQS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the mutex(es).
#define RELEASE(...) MQS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function may acquire the mutex but must not be entered holding it
/// (reentrancy guard at call sites the analysis can see).
#define EXCLUDES(...) MQS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch: function body is exempt from the analysis. Every use
/// carries a comment saying why the contract holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  MQS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mqs {

/// Annotated mutex. Ranked construction opts into the debug lock-order
/// checker; the default constructor yields an unranked (order-exempt,
/// still reentrancy-checked) lock for utility code and tests.
class CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() noexcept : Mutex(lockorder::Rank::kUnranked, "mutex") {}
  constexpr Mutex(lockorder::Rank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if MQS_LOCK_ORDER
    // Check + push before blocking: an inversion aborts with both stacks
    // printed instead of deadlocking against the other thread.
    lockorder::onAcquire(this, name_, rank_);
#endif
    // Contention accounting (common/lock_stats.hpp): the uncontended path
    // is the try_lock it would have paid anyway; only a blocked
    // acquisition reads the clock and touches the per-subsystem counters.
    if (!mu_.try_lock()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      const auto waited = std::chrono::steady_clock::now() - t0;
      lockstats::recordContended(
          rank_, static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         waited)
                         .count()));
    }
  }

  void unlock() RELEASE() {
    mu_.unlock();
#if MQS_LOCK_ORDER
    lockorder::onRelease(this);
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  [[maybe_unused]] lockorder::Rank rank_;
  [[maybe_unused]] const char* name_;
};

/// RAII lock for Mutex (the lock_guard of this codebase). SCOPED_CAPABILITY
/// tells the analysis the constructor acquires and the destructor releases.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. wait() REQUIRES the mutex, so every
/// predicate re-check around it is provably under the right lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and sleeps; the mutex is reacquired before
  /// returning. Callers loop: `while (!ready_) cv_.wait(mu_);`. The debug
  /// held-lock stack deliberately keeps `mu` recorded across the wait —
  /// the thread still logically owns the slot, and a predicate that
  /// acquires a lower-ranked lock is exactly the bug the checker exists
  /// to catch.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // ownership stays with the caller's scope
  }

  void notifyOne() noexcept { cv_.notify_one(); }
  void notifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mqs
