// Umbrella header: the full public API of the multi-query scheduling
// middleware. Fine-grained headers remain available for faster builds.
#pragma once

// Substrate
#include "common/bytes.hpp"
#include "common/geometry.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

// Storage & indexing
#include "index/chunk_layout.hpp"
#include "index/rtree.hpp"
#include "storage/data_source.hpp"
#include "storage/delayed_source.hpp"
#include "storage/disk_model.hpp"
#include "storage/file_source.hpp"
#include "storage/synthetic_source.hpp"

// Middleware services
#include "datastore/data_store.hpp"
#include "pagespace/page_space_manager.hpp"

// Query framework & scheduling (the paper's core)
#include "query/executor.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "sched/graph.hpp"
#include "sched/policy.hpp"
#include "sched/scheduler.hpp"

// Runtimes
#include "server/query_server.hpp"
#include "sim/sim_server.hpp"

// Network front-end
#include "net/net_client.hpp"
#include "net/net_server.hpp"

// Applications
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"
#include "vol/vol_executor.hpp"

// Experiment tooling
#include "driver/server_experiment.hpp"
#include "driver/sim_experiment.hpp"
#include "driver/trace.hpp"
#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
