#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sched {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    (void)sem_.addDataset(index::ChunkLayout(16384, 16384, 128));
  }

  query::PredicatePtr pred(Rect r, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(0, r, zoom, op);
  }

  QueryScheduler make(const std::string& policy, bool incremental = true) {
    return QueryScheduler(&sem_, makePolicy(policy, 0.2), incremental);
  }

  vm::VMSemantics sem_;
};

TEST_F(SchedulerTest, FifoDequeuesInArrivalOrder) {
  auto s = make("FIFO");
  const NodeId a = s.submit(pred(Rect::ofSize(0, 0, 128, 128), 4));
  const NodeId b = s.submit(pred(Rect::ofSize(512, 0, 128, 128), 4));
  const NodeId c = s.submit(pred(Rect::ofSize(0, 512, 128, 128), 4));
  EXPECT_EQ(s.dequeue(), a);
  EXPECT_EQ(s.dequeue(), b);
  EXPECT_EQ(s.dequeue(), c);
  EXPECT_FALSE(s.dequeue().has_value());
}

TEST_F(SchedulerTest, SjfDequeuesShortestFirst) {
  auto s = make("SJF");
  const NodeId big = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048), 4));
  const NodeId small = s.submit(pred(Rect::ofSize(4096, 0, 256, 256), 4));
  const NodeId medium = s.submit(pred(Rect::ofSize(0, 4096, 1024, 1024), 4));
  EXPECT_EQ(s.dequeue(), small);
  EXPECT_EQ(s.dequeue(), medium);
  EXPECT_EQ(s.dequeue(), big);
}

TEST_F(SchedulerTest, TiesBreakByArrivalForEveryPolicy) {
  for (const auto& name : allPolicyNames()) {
    auto s = make(name);
    // Identical disjoint queries: every policy ranks them equal.
    std::vector<NodeId> ids;
    for (int i = 0; i < 5; ++i) {
      ids.push_back(
          s.submit(pred(Rect::ofSize(i * 2048, 0, 256, 256), 4)));
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(s.dequeue(), ids[static_cast<std::size_t>(i)])
          << "policy " << name;
    }
  }
}

TEST_F(SchedulerTest, StateMachineTransitions) {
  auto s = make("FIFO");
  const NodeId n = s.submit(pred(Rect::ofSize(0, 0, 128, 128), 4));
  EXPECT_EQ(s.stateOf(n), QueryState::Waiting);
  EXPECT_EQ(s.waitingCount(), 1u);
  ASSERT_EQ(s.dequeue(), n);
  EXPECT_EQ(s.stateOf(n), QueryState::Executing);
  EXPECT_EQ(s.executingCount(), 1u);
  s.completed(n);
  EXPECT_EQ(s.stateOf(n), QueryState::Cached);
  // Swap-out retains the node (the spill tier may bring it back) ...
  s.swappedOut(n);
  EXPECT_EQ(s.stateOf(n), QueryState::SwappedOut);
  // ... restore revives it ...
  s.restored(n);
  EXPECT_EQ(s.stateOf(n), QueryState::Cached);
  // ... and retire is the terminal drop (from either CACHED or SWAPPED_OUT).
  s.retired(n);
  EXPECT_FALSE(s.stateOf(n).has_value());
  const auto st = s.stats();
  EXPECT_EQ(st.swappedOutCount, 2u);  // explicit swap-out + retired-from-cached
  EXPECT_EQ(st.restoredCount, 1u);
  EXPECT_EQ(st.retiredCount, 1u);
}

TEST_F(SchedulerTest, IllegalTransitionsThrow) {
  auto s = make("FIFO");
  const NodeId n = s.submit(pred(Rect::ofSize(0, 0, 128, 128), 4));
  EXPECT_THROW(s.completed(n), CheckFailure);   // not executing yet
  EXPECT_THROW(s.swappedOut(n), CheckFailure);  // not cached
  (void)s.dequeue();
  EXPECT_THROW(s.swappedOut(n), CheckFailure);  // executing, not cached
  s.completed(n);
  EXPECT_THROW(s.completed(n), CheckFailure);   // already cached
}

TEST_F(SchedulerTest, CfPrefersQueryClosestToCachedResults) {
  auto s = make("CF");
  // hi-res result over region X, then two waiting queries: one over X
  // (projectable), one far away.
  const NodeId src = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 2));
  ASSERT_EQ(s.dequeue(), src);
  s.completed(src);  // src result now cached

  const NodeId far = s.submit(pred(Rect::ofSize(8192, 8192, 1024, 1024), 4));
  const NodeId near = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  (void)far;
  EXPECT_EQ(s.dequeue(), near);  // despite arriving later
}

TEST_F(SchedulerTest, MufPrefersTheProducerOthersWaitFor) {
  auto s = make("MUF");
  // One hi-res query that two lo-res queries could reuse.
  const NodeId a = s.submit(pred(Rect::ofSize(4096, 4096, 512, 512), 4));
  const NodeId producer = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 2));
  const NodeId c1 = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  const NodeId c2 = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 8));
  (void)a;
  (void)c1;
  (void)c2;
  EXPECT_EQ(s.dequeue(), producer);
}

TEST_F(SchedulerTest, RanksUpdateIncrementallyOnStateChanges) {
  auto s = make("CNBF");
  const NodeId src = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 2));
  const NodeId dep = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  const NodeId neutral =
      s.submit(pred(Rect::ofSize(8192, 8192, 1024, 1024), 4));
  ASSERT_EQ(s.dequeue(), src);  // FIFO tie-break among rank-0 nodes
  // src is now EXECUTING: CNBF pushes dep below neutral.
  EXPECT_EQ(s.dequeue(), neutral);
  s.completed(src);
  // src CACHED: dep's rank turns positive.
  EXPECT_EQ(s.dequeue(), dep);
  EXPECT_GT(s.rankOf(dep), 0.0);
}

TEST_F(SchedulerTest, IncrementalMatchesFullRecomputation) {
  // Property: for every graph-aware policy, an incremental scheduler and a
  // full-recompute scheduler driven identically dequeue identical orders.
  Rng rng(99);
  for (const auto& name : allPolicyNames()) {
    auto inc = make(name, /*incremental=*/true);
    auto full = make(name, /*incremental=*/false);
    Rng r1 = rng.fork();

    std::vector<NodeId> incDeq, fullDeq;
    for (int step = 0; step < 120; ++step) {
      const double roll = r1.uniform01();
      if (roll < 0.5) {
        const std::uint32_t zoom = 1u << r1.uniformInt(0, 3);
        auto snap = [&](std::int64_t v) { return (v / 32) * 32; };
        const Rect rect =
            Rect::ofSize(snap(r1.uniformInt(0, 8000)), snap(r1.uniformInt(0, 8000)),
                         static_cast<std::int64_t>(zoom) * 64,
                         static_cast<std::int64_t>(zoom) * 64);
        const NodeId ni = inc.submit(pred(rect, zoom));
        const NodeId nf = full.submit(pred(rect, zoom));
        ASSERT_EQ(ni, nf);
      } else if (roll < 0.75) {
        const auto di = inc.dequeue();
        const auto df = full.dequeue();
        ASSERT_EQ(di, df) << "policy " << name << " step " << step;
        if (di) {
          incDeq.push_back(*di);
          fullDeq.push_back(*df);
        }
      } else if (!incDeq.empty()) {
        // Complete (and sometimes swap out) the oldest executing query.
        const NodeId n = incDeq.front();
        incDeq.erase(incDeq.begin());
        fullDeq.erase(fullDeq.begin());
        inc.completed(n);
        full.completed(n);
        if (r1.bernoulli(0.4)) {
          inc.swappedOut(n);
          full.swappedOut(n);
        }
      }
    }
    // Drain both completely; orders must agree.
    for (;;) {
      const auto di = inc.dequeue();
      const auto df = full.dequeue();
      ASSERT_EQ(di, df) << "policy " << name;
      if (!di) break;
    }
  }
}

TEST_F(SchedulerTest, BestReuseSourcePrefersHigherOverlap) {
  auto s = make("FIFO");
  const NodeId half = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 2));
  const NodeId exact = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  const NodeId q = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  ASSERT_EQ(s.dequeue(), half);
  s.completed(half);
  ASSERT_EQ(s.dequeue(), exact);
  s.completed(exact);
  ASSERT_EQ(s.dequeue(), q);
  const auto src = s.bestReuseSource(q, true);
  ASSERT_TRUE(src.has_value());
  EXPECT_EQ(src->node, exact);
  EXPECT_DOUBLE_EQ(src->overlap, 1.0);
  EXPECT_EQ(src->state, QueryState::Cached);
}

TEST_F(SchedulerTest, ExecutingSourceOnlyIfOlder) {
  auto s = make("FIFO");
  const NodeId first = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 2));
  const NodeId second = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  ASSERT_EQ(s.dequeue(), first);
  ASSERT_EQ(s.dequeue(), second);
  // second (exec seq 2) may wait on first (exec seq 1)...
  const auto forSecond = s.bestExecutingSource(second);
  ASSERT_TRUE(forSecond.has_value());
  EXPECT_EQ(forSecond->node, first);
  // ...but never the other way around, even though the overlap edge
  // first <- second does not exist (zoom); construct a symmetric case:
  const NodeId third = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  ASSERT_EQ(s.dequeue(), third);
  // third (seq 3) can wait on second (seq 2)
  const auto forThird = s.bestExecutingSource(third);
  ASSERT_TRUE(forThird.has_value());
  EXPECT_EQ(forThird->node, second);
  // second must not be offered third (younger) as a source.
  const auto again = s.bestExecutingSource(second);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->node, first);
}

TEST_F(SchedulerTest, SwappedOutNodesStopBeingReuseSources) {
  auto s = make("FIFO");
  const NodeId src = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  const NodeId q = s.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4));
  ASSERT_EQ(s.dequeue(), src);
  s.completed(src);
  s.swappedOut(src);
  ASSERT_EQ(s.dequeue(), q);
  EXPECT_FALSE(s.bestReuseSource(q, true).has_value());
}

TEST_F(SchedulerTest, StatsAreMaintained) {
  auto s = make("MUF");
  (void)s.submit(pred(Rect::ofSize(0, 0, 512, 512), 4));
  (void)s.submit(pred(Rect::ofSize(0, 0, 512, 512), 2));
  const auto d = s.dequeue();
  ASSERT_TRUE(d.has_value());
  s.completed(*d);
  const auto st = s.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.dequeued, 1u);
  EXPECT_EQ(st.completedCount, 1u);
  EXPECT_GT(st.rankEvaluations, 0u);
}

TEST_F(SchedulerTest, AdaptiveFeedbackChangesDequeueOrder) {
  auto s = make("ADAPTIVE");
  // A cached result fully covering `covered` (overlap 1); `smaller` has
  // less input but no coverage.
  const NodeId src = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048), 4));
  ASSERT_EQ(s.dequeue(), src);
  s.completed(src);

  auto submitPair = [&] {
    const NodeId covered = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048), 4));
    const NodeId smaller =
        s.submit(pred(Rect::ofSize(8192, 8192, 1024, 1024), 4));
    return std::pair{covered, smaller};
  };

  // Cold policy = SJF: the smaller query wins.
  {
    const auto [covered, smaller] = submitPair();
    EXPECT_EQ(s.dequeue(), smaller);
    EXPECT_EQ(s.dequeue(), covered);
    s.completed(smaller);
    s.swappedOut(smaller);
    s.completed(covered);
    s.swappedOut(covered);
  }

  // After consistent full-reuse outcomes, coverage dominates: the fully
  // covered (effectively free) query wins despite its larger input.
  for (int i = 0; i < 60; ++i) s.reportQueryOutcome(1.0);
  s.reportResourceSignal(1.0);
  {
    const auto [covered, smaller] = submitPair();
    EXPECT_EQ(s.dequeue(), covered);
    EXPECT_EQ(s.dequeue(), smaller);
  }
}

TEST_F(SchedulerTest, FeedbackIsNoopForStaticPolicies) {
  auto s = make("SJF");
  const NodeId big = s.submit(pred(Rect::ofSize(0, 0, 2048, 2048), 4));
  const NodeId small = s.submit(pred(Rect::ofSize(4096, 0, 256, 256), 4));
  (void)big;
  s.reportQueryOutcome(1.0);
  s.reportResourceSignal(1.0);
  EXPECT_EQ(s.dequeue(), small);
}

TEST_F(SchedulerTest, ConcurrentSubmitDequeueCompleteIsConsistent) {
  // The threaded server hammers one scheduler from many query threads;
  // this stresses the same interleavings directly.
  auto s = make("CF");
  constexpr int kProducers = 4, kPerProducer = 50, kWorkers = 4;
  std::atomic<int> completedCount{0};
  std::atomic<bool> doneSubmitting{false};

  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(static_cast<std::uint64_t>(p) + 1);
        for (int i = 0; i < kPerProducer; ++i) {
          const std::uint32_t zoom = 1u << rng.uniformInt(0, 2);
          auto snap = [&](std::int64_t v) { return (v / 16) * 16; };
          (void)s.submit(pred(
              Rect::ofSize(snap(rng.uniformInt(0, 8000)),
                           snap(rng.uniformInt(0, 8000)),
                           static_cast<std::int64_t>(zoom) * 64,
                           static_cast<std::int64_t>(zoom) * 64),
              zoom));
        }
      });
    }
    std::vector<std::jthread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const auto node = s.dequeue();
          if (!node) {
            if (doneSubmitting.load() && s.waitingCount() == 0) return;
            std::this_thread::yield();
            continue;
          }
          (void)s.bestReuseSource(*node, true);
          s.completed(*node);
          if ((++completedCount & 1) == 0) s.swappedOut(*node);
        }
      });
    }
    threads.clear();  // join producers
    doneSubmitting.store(true);
  }

  EXPECT_EQ(completedCount.load(), kProducers * kPerProducer);
  const auto st = s.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(st.dequeued, st.submitted);
  EXPECT_EQ(st.completedCount, st.submitted);
  EXPECT_EQ(s.waitingCount(), 0u);
  EXPECT_EQ(s.executingCount(), 0u);
}

TEST_F(SchedulerTest, ExecSeqAssignedAtDequeue) {
  auto s = make("FIFO");
  const NodeId a = s.submit(pred(Rect::ofSize(0, 0, 128, 128), 4));
  EXPECT_EQ(s.execSeq(a), 0u);
  (void)s.dequeue();
  EXPECT_EQ(s.execSeq(a), 1u);
}

}  // namespace
}  // namespace mqs::sched
