// True positive: file I/O while holding a shard-leaf rank (44 >= the
// default --blocking-min-rank).
#include "ranks.hpp"

namespace fx {

class Spiller {
 public:
  void writeOut() {
    MutexLock lock(mu_);
    fwrite(nullptr, 1, 0, nullptr);  // FINDING: blocking under rank 44
  }

 private:
  Mutex mu_{lockorder::Rank::kShard, "fx.spill"};
};

}  // namespace fx
