#include "datastore/data_store.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::datastore {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class DataStoreTest : public ::testing::Test {
 protected:
  DataStoreTest() {
    dataset_ = sem_.addDataset(index::ChunkLayout(4096, 4096, 64));
  }

  query::PredicatePtr pred(Rect region, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(dataset_, region, zoom, op);
  }

  static std::uint64_t outBytes(const query::Predicate& p) {
    return vm::asVM(p).outBytes();
  }

  vm::VMSemantics sem_;
  storage::DatasetId dataset_ = 0;
};

TEST_F(DataStoreTest, InsertAndExactLookup) {
  DataStore ds(1 << 20, &sem_);
  auto p = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const auto id = ds.insert(p->clone(), {}, outBytes(*p));
  ASSERT_TRUE(id.has_value());
  const auto m = ds.lookup(*p);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, *id);
  EXPECT_DOUBLE_EQ(m->overlap, 1.0);
}

TEST_F(DataStoreTest, LookupPicksBestOverlap) {
  DataStore ds(1 << 24, &sem_);
  // Same region at zoom 2 (projectable, overlap 0.5 into a zoom-4 query)
  // and at zoom 4 (overlap 1).
  auto loRes = pred(Rect::ofSize(0, 0, 256, 256), 4);
  auto hiRes = pred(Rect::ofSize(0, 0, 256, 256), 2);
  (void)ds.insert(hiRes->clone(), {}, outBytes(*hiRes));
  const auto bestId = ds.insert(loRes->clone(), {}, outBytes(*loRes));
  const auto m = ds.lookup(*pred(Rect::ofSize(0, 0, 256, 256), 4));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->id, *bestId);
  EXPECT_DOUBLE_EQ(m->overlap, 1.0);
}

TEST_F(DataStoreTest, LookupMissesDisjointRegions) {
  DataStore ds(1 << 20, &sem_);
  auto p = pred(Rect::ofSize(0, 0, 128, 128), 4);
  (void)ds.insert(p->clone(), {}, outBytes(*p));
  EXPECT_FALSE(ds.lookup(*pred(Rect::ofSize(2048, 2048, 128, 128), 4)));
}

TEST_F(DataStoreTest, MinOverlapThreshold) {
  DataStore ds(1 << 24, &sem_);
  // Cached result covers a quarter of the query region.
  auto cached = pred(Rect::ofSize(0, 0, 128, 128), 4);
  (void)ds.insert(cached->clone(), {}, outBytes(*cached));
  auto q = pred(Rect::ofSize(0, 0, 256, 256), 4);
  EXPECT_TRUE(ds.lookup(*q, 0.0).has_value());   // 0.25 > 0
  EXPECT_FALSE(ds.lookup(*q, 0.25).has_value()); // strictly greater required
  EXPECT_FALSE(ds.lookup(*q, 0.5).has_value());
}

TEST_F(DataStoreTest, LruEvictionWithListener) {
  // Budget: exactly two 64x64-output blobs (64*64*3 bytes each).
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const std::uint64_t blobBytes = outBytes(*a);
  DataStore ds(2 * blobBytes, &sem_);
  std::vector<BlobId> evicted;
  ds.setEvictionListener(
      [&](EvictedBlob blob) { evicted.push_back(blob.id); });

  const auto ida = ds.insert(a->clone(), {}, blobBytes);
  auto b = pred(Rect::ofSize(256, 0, 256, 256), 4);
  (void)ds.insert(b->clone(), {}, blobBytes);
  // Touch a so b is LRU.
  (void)ds.lookup(*a);
  auto c = pred(Rect::ofSize(512, 0, 256, 256), 4);
  (void)ds.insert(c->clone(), {}, blobBytes);

  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_NE(evicted[0], *ida);  // b was evicted, not the touched a
  EXPECT_TRUE(ds.lookup(*a).has_value());
  EXPECT_FALSE(ds.lookup(*b, 0.9).has_value());
  EXPECT_EQ(ds.residentBlobs(), 2u);
}

TEST_F(DataStoreTest, PinnedBlobSurvivesPressure) {
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const std::uint64_t blobBytes = outBytes(*a);
  DataStore ds(2 * blobBytes, &sem_);
  const auto ida = ds.insert(a->clone(), {}, blobBytes);
  ds.pin(*ida);
  auto b = pred(Rect::ofSize(256, 0, 256, 256), 4);
  (void)ds.insert(b->clone(), {}, blobBytes);
  auto c = pred(Rect::ofSize(512, 0, 256, 256), 4);
  (void)ds.insert(c->clone(), {}, blobBytes);
  EXPECT_TRUE(ds.contains(*ida));
  ds.unpin(*ida);
}

TEST_F(DataStoreTest, LookupAndPinBlocksEviction) {
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const std::uint64_t blobBytes = outBytes(*a);
  DataStore ds(blobBytes, &sem_);
  (void)ds.insert(a->clone(), {}, blobBytes);
  const auto m = ds.lookupAndPin(*a);
  ASSERT_TRUE(m.has_value());
  // New insert cannot evict the pinned blob -> uncacheable.
  auto b = pred(Rect::ofSize(256, 0, 256, 256), 4);
  EXPECT_FALSE(ds.insert(b->clone(), {}, blobBytes).has_value());
  EXPECT_EQ(ds.stats().uncacheable, 1u);
  ds.unpin(m->id);
  EXPECT_TRUE(ds.insert(b->clone(), {}, blobBytes).has_value());
}

TEST_F(DataStoreTest, TryPin) {
  DataStore ds(1 << 20, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  const auto id = ds.insert(a->clone(), {}, outBytes(*a));
  EXPECT_TRUE(ds.tryPin(*id));
  ds.unpin(*id);
  ds.erase(*id);
  EXPECT_FALSE(ds.tryPin(*id));
}

TEST_F(DataStoreTest, OversizedBlobRejected) {
  DataStore ds(100, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  EXPECT_FALSE(ds.insert(a->clone(), {}, outBytes(*a)).has_value());
  EXPECT_EQ(ds.stats().uncacheable, 1u);
  EXPECT_EQ(ds.residentBlobs(), 0u);
}

TEST_F(DataStoreTest, PayloadRoundTrip) {
  DataStore ds(1 << 20, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  std::vector<std::byte> payload = {std::byte{1}, std::byte{2}, std::byte{3}};
  const auto id = ds.insert(a->clone(), payload, outBytes(*a));
  ASSERT_TRUE(id);
  const auto got = ds.payload(*id);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[1], std::byte{2});
  EXPECT_EQ(ds.predicate(*id).describe(), a->describe());
}

TEST_F(DataStoreTest, LogicalBytesDriveBudgetNotPayload) {
  // Simulation mode: empty payloads, logical accounting still evicts.
  DataStore ds(1000, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  const auto id1 = ds.insert(a->clone(), {}, 600);
  auto b = pred(Rect::ofSize(128, 0, 128, 128), 4);
  (void)ds.insert(b->clone(), {}, 600);
  EXPECT_FALSE(ds.contains(*id1));
  EXPECT_EQ(ds.stats().evictions, 1u);
}

TEST_F(DataStoreTest, EraseFiresListener) {
  DataStore ds(1 << 20, &sem_);
  int fired = 0;
  ds.setEvictionListener([&](EvictedBlob) { ++fired; });
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  const auto id = ds.insert(a->clone(), {}, outBytes(*a));
  ds.erase(*id);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(ds.contains(*id));
  ds.erase(*id);  // no-op, no second fire
  EXPECT_EQ(fired, 1);
}

TEST_F(DataStoreTest, StatsCountHitsAndFullHits) {
  DataStore ds(1 << 24, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  (void)ds.insert(a->clone(), {}, outBytes(*a));
  (void)ds.lookup(*a);                                    // full hit
  (void)ds.lookup(*pred(Rect::ofSize(0, 0, 512, 512), 4)); // partial hit
  (void)ds.lookup(*pred(Rect::ofSize(2048, 2048, 64, 64), 4)); // miss
  const auto s = ds.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.fullHits, 1u);
}

TEST_F(DataStoreTest, LfuEvictsColdBlobs) {
  auto a = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const std::uint64_t blobBytes = outBytes(*a);
  DataStore ds(2 * blobBytes, &sem_, EvictionPolicy::Lfu);
  const auto ida = ds.insert(a->clone(), {}, blobBytes);
  auto b = pred(Rect::ofSize(1024, 0, 256, 256), 4);
  const auto idb = ds.insert(b->clone(), {}, blobBytes);
  // Hit a twice, b never. Under LRU, inserting c would evict a-or-b by
  // recency; under LFU, b (0 uses) must go even if a is less recent.
  (void)ds.lookup(*a);
  (void)ds.lookup(*a);
  auto c = pred(Rect::ofSize(2048, 0, 256, 256), 4);
  (void)ds.insert(c->clone(), {}, blobBytes);
  EXPECT_TRUE(ds.contains(*ida));
  EXPECT_FALSE(ds.contains(*idb));
}

TEST_F(DataStoreTest, LargestEvictsBiggestFirst) {
  DataStore ds(1000, &sem_, EvictionPolicy::Largest);
  auto small = pred(Rect::ofSize(0, 0, 128, 128), 4);
  auto big = pred(Rect::ofSize(1024, 0, 256, 256), 4);
  const auto idSmall = ds.insert(small->clone(), {}, 300);
  const auto idBig = ds.insert(big->clone(), {}, 600);
  // Touch big so LRU would evict small; LARGEST must still pick big.
  (void)ds.lookup(*big);
  auto more = pred(Rect::ofSize(2048, 0, 128, 128), 4);
  (void)ds.insert(more->clone(), {}, 500);
  EXPECT_TRUE(ds.contains(*idSmall));
  EXPECT_FALSE(ds.contains(*idBig));
}

TEST_F(DataStoreTest, NonLruPoliciesStillRespectPins) {
  DataStore ds(1000, &sem_, EvictionPolicy::Largest);
  auto big = pred(Rect::ofSize(0, 0, 256, 256), 4);
  const auto idBig = ds.insert(big->clone(), {}, 900);
  ds.pin(*idBig);
  auto next = pred(Rect::ofSize(1024, 0, 128, 128), 4);
  EXPECT_FALSE(ds.insert(next->clone(), {}, 500).has_value());
  ds.unpin(*idBig);
  EXPECT_TRUE(ds.insert(next->clone(), {}, 500).has_value());
  EXPECT_FALSE(ds.contains(*idBig));
}

TEST_F(DataStoreTest, PinGuardReleasesOnDestruction) {
  DataStore ds(1 << 20, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  const auto id = ds.insert(a->clone(), {}, outBytes(*a));
  {
    const auto m = ds.lookupAndPin(*a);
    ASSERT_TRUE(m);
    DataStore::PinGuard guard(ds, m->id);
    EXPECT_TRUE(guard.held());
    // Pinned: explicit erase would be a contract violation.
    EXPECT_THROW(ds.erase(*id), CheckFailure);
  }  // guard unpins here
  ds.erase(*id);  // now legal
  EXPECT_FALSE(ds.contains(*id));
}

TEST_F(DataStoreTest, PinGuardMoveTransfersOwnership) {
  DataStore ds(1 << 20, &sem_);
  auto a = pred(Rect::ofSize(0, 0, 128, 128), 4);
  const auto id = ds.insert(a->clone(), {}, outBytes(*a));
  ds.pin(*id);
  DataStore::PinGuard g1(ds, *id);
  DataStore::PinGuard g2(std::move(g1));
  EXPECT_FALSE(g1.held());  // NOLINT(bugprone-use-after-move): tested intent
  EXPECT_TRUE(g2.held());
  g2.release();
  EXPECT_FALSE(g2.held());
  ds.erase(*id);  // pin fully released
}

TEST(EvictionPolicyNames, ParseAndPrint) {
  EXPECT_EQ(parseEvictionPolicy("LRU"), EvictionPolicy::Lru);
  EXPECT_EQ(parseEvictionPolicy("LFU"), EvictionPolicy::Lfu);
  EXPECT_EQ(parseEvictionPolicy("LARGEST"), EvictionPolicy::Largest);
  EXPECT_EQ(toString(EvictionPolicy::Lfu), "LFU");
  EXPECT_THROW(parseEvictionPolicy("MRU"), CheckFailure);
}

TEST_F(DataStoreTest, DifferentOperatorsNeverMatch) {
  DataStore ds(1 << 20, &sem_);
  auto sub = pred(Rect::ofSize(0, 0, 128, 128), 4, VMOp::Subsample);
  (void)ds.insert(sub->clone(), {}, outBytes(*sub));
  EXPECT_FALSE(
      ds.lookup(*pred(Rect::ofSize(0, 0, 128, 128), 4, VMOp::Average)));
}

}  // namespace
}  // namespace mqs::datastore
