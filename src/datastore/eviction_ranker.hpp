// Pluggable eviction ranking for the Data Store (DESIGN.md §13).
//
// The replacement policy used to be a hard-coded enum switch inside the
// store's victim scan; it is now an EvictionRanker strategy object so new
// policies plug in without touching the shard machinery. The built-in
// rankers reproduce the historical policies exactly (byte-identical victim
// sequences — asserted by tests/datastore/lru_differential_test.cpp),
// and CostAware implements the benefit metric of "Don't Trash your
// Intermediate Results, Cache 'em": keep the blobs that are most expensive
// to recompute per byte of budget they occupy, where the recompute cost is
// the query's traced COMPUTE/IO_STALL wall time attributed at insert time
// (trace::Tracer cost accounting).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>

namespace mqs::datastore {

/// Replacement policy for intermediate results. The paper does not pin one
/// down; LRU is the default, the alternatives feed the eviction ablations.
enum class EvictionPolicy {
  Lru,       ///< least recently used (lookup hits and inserts refresh)
  Lfu,       ///< fewest lookup hits (ties broken toward LRU)
  Largest,   ///< biggest blob first (maximizes freed bytes per eviction)
  CostAware, ///< cheapest recompute-cost-per-byte first (ties toward LRU)
};

/// Every policy, in declaration order — the single source of truth for
/// parseEvictionPolicy's valid set and for policy-sweep tests.
inline constexpr std::array<EvictionPolicy, 4> kAllEvictionPolicies = {
    EvictionPolicy::Lru, EvictionPolicy::Lfu, EvictionPolicy::Largest,
    EvictionPolicy::CostAware};

/// Parse a policy name (case-insensitive); throws CheckFailure naming the
/// valid set — generated from kAllEvictionPolicies — on anything else.
EvictionPolicy parseEvictionPolicy(std::string_view name);
std::string_view toString(EvictionPolicy policy);

/// The slice of per-blob state a ranker may score on.
struct BlobView {
  std::uint64_t logicalBytes = 0;
  std::uint64_t uses = 0;           ///< lookup hits since insert
  double recomputeCostSec = 0.0;    ///< traced cost to rebuild this blob
};

/// Strategy interface: the store evicts the *unpinned* blob with the lowest
/// victimScore(); score ties keep the least recently used candidate, so
/// every ranker degrades to LRU when its metric cannot discriminate.
/// Rankers are stateless and called under a shard lock — implementations
/// must not block or call back into the store.
class EvictionRanker {
 public:
  virtual ~EvictionRanker() = default;

  /// Lower = evicted sooner.
  [[nodiscard]] virtual double victimScore(const BlobView& blob) const = 0;

  /// Pure-recency rankers return true and skip scoring entirely: the store
  /// takes the first unpinned blob from the LRU tail (the historical O(1)
  /// LRU fast path).
  [[nodiscard]] virtual bool recencyOnly() const { return false; }
};

/// Built-in ranker for `policy`.
std::unique_ptr<EvictionRanker> makeEvictionRanker(EvictionPolicy policy);

}  // namespace mqs::datastore
