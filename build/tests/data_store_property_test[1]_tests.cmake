add_test([=[DataStoreProperty.MatchesReferenceLruModel]=]  /root/repo/build/tests/data_store_property_test [==[--gtest_filter=DataStoreProperty.MatchesReferenceLruModel]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[DataStoreProperty.MatchesReferenceLruModel]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  data_store_property_test_TESTS DataStoreProperty.MatchesReferenceLruModel)
