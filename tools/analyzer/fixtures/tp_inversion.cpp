// True positive: acquires a low rank while holding a high rank.
#include "ranks.hpp"

namespace fx {

class InvOwner {
 public:
  void bad() {
    MutexLock a(hi_);
    MutexLock b(lo_);  // rank 10 under rank 50: inversion
  }

 private:
  Mutex lo_{lockorder::Rank::kLow, "fx.inv.lo"};
  Mutex hi_{lockorder::Rank::kHigh, "fx.inv.hi"};
};

}  // namespace fx
