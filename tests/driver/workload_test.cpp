#include "driver/workload.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>

#include "common/check.hpp"
#include "driver/trace.hpp"

namespace mqs::driver {
namespace {

WorkloadConfig smallConfig() {
  WorkloadConfig cfg;
  cfg.datasets = {DatasetSpec{4096, 4096, 128, 7},
                  DatasetSpec{4096, 4096, 128, 8},
                  DatasetSpec{4096, 4096, 128, 9}};
  cfg.clientsPerDataset = {3, 2, 1};
  cfg.queriesPerClient = 8;
  cfg.outputSide = 128;
  cfg.zoomLevels = {1, 2, 4, 8};
  cfg.zoomWeights = {1, 2, 2, 1};
  cfg.alignGrid = 8;
  cfg.seed = 1234;
  return cfg;
}

TEST(Workload, GeneratesPaperShape) {
  vm::VMSemantics sem;
  const auto cfg = smallConfig();
  const auto wls = WorkloadGenerator::generate(cfg, sem);
  ASSERT_EQ(wls.size(), 6u);  // 3 + 2 + 1 clients
  EXPECT_EQ(sem.datasetCount(), 3u);
  int client = 0;
  for (const auto& wl : wls) {
    EXPECT_EQ(wl.client, client++);
    EXPECT_EQ(wl.queries.size(), 8u);
  }
  // Dataset split 3/2/1.
  EXPECT_EQ(wls[0].dataset, 0u);
  EXPECT_EQ(wls[2].dataset, 0u);
  EXPECT_EQ(wls[3].dataset, 1u);
  EXPECT_EQ(wls[5].dataset, 2u);
}

TEST(Workload, QueriesAreValidAndInBounds) {
  vm::VMSemantics sem;
  const auto cfg = smallConfig();
  for (const auto& wl : WorkloadGenerator::generate(cfg, sem)) {
    const auto& layout = sem.layout(wl.dataset);
    for (const auto& q : wl.queries) {
      EXPECT_TRUE(layout.extent().contains(q.region()));
      EXPECT_EQ(q.region().width(),
                cfg.outputSide * static_cast<std::int64_t>(q.zoom()));
      EXPECT_EQ(q.region().x0 % cfg.alignGrid, 0);
      EXPECT_EQ(q.region().y0 % cfg.alignGrid, 0);
      EXPECT_EQ(q.op(), cfg.op);
    }
  }
}

TEST(Workload, DeterministicInSeed) {
  vm::VMSemantics semA, semB;
  const auto cfg = smallConfig();
  const auto a = WorkloadGenerator::generate(cfg, semA);
  const auto b = WorkloadGenerator::generate(cfg, semB);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].queries.size(), b[i].queries.size());
    for (std::size_t j = 0; j < a[i].queries.size(); ++j) {
      EXPECT_TRUE(a[i].queries[j] == b[i].queries[j]);
    }
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  vm::VMSemantics semA, semB;
  auto cfg = smallConfig();
  const auto a = WorkloadGenerator::generate(cfg, semA);
  cfg.seed = 999;
  const auto b = WorkloadGenerator::generate(cfg, semB);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].queries.size(); ++j) {
      if (!(a[i].queries[j] == b[i].queries[j])) ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(Workload, HotspotsCreateCrossClientOverlap) {
  vm::VMSemantics sem;
  auto cfg = smallConfig();
  cfg.browseProbability = 0.2;  // jump to hotspots often
  const auto wls = WorkloadGenerator::generate(cfg, sem);
  // Count exact-region repeats across different clients on dataset 0.
  std::set<std::pair<std::int64_t, std::int64_t>> seenByClient0;
  for (const auto& q : wls[0].queries) {
    seenByClient0.insert({q.region().x0, q.region().y0});
  }
  int sharedOrigins = 0;
  for (std::size_t c = 1; c < 3; ++c) {
    for (const auto& q : wls[c].queries) {
      if (seenByClient0.contains({q.region().x0, q.region().y0})) {
        ++sharedOrigins;
      }
    }
  }
  EXPECT_GT(sharedOrigins, 0);
}

TEST(Workload, ZoomCappedToFitSmallDatasets) {
  vm::VMSemantics sem;
  auto cfg = smallConfig();
  cfg.datasets = {DatasetSpec{512, 512, 128, 7}};
  cfg.clientsPerDataset = {2};
  cfg.zoomLevels = {1, 2, 4, 8, 16};  // 16*128 = 2048 > 512
  cfg.zoomWeights = {1, 1, 1, 1, 5};
  cfg.alignGrid = 16;
  const auto wls = WorkloadGenerator::generate(cfg, sem);
  for (const auto& wl : wls) {
    for (const auto& q : wl.queries) {
      EXPECT_LE(q.region().width(), 512);
    }
  }
}

TEST(Workload, InterleaveRoundRobins) {
  vm::VMSemantics sem;
  auto cfg = smallConfig();
  cfg.clientsPerDataset = {2, 0, 0};
  cfg.queriesPerClient = 3;
  const auto wls = WorkloadGenerator::generate(cfg, sem);
  const auto flat = WorkloadGenerator::interleave(wls);
  ASSERT_EQ(flat.size(), 6u);
  EXPECT_TRUE(flat[0] == wls[0].queries[0]);
  EXPECT_TRUE(flat[1] == wls[1].queries[0]);
  EXPECT_TRUE(flat[2] == wls[0].queries[1]);
}

TEST(Trace, RoundTripPreservesEverything) {
  vm::VMSemantics sem;
  const auto wls = WorkloadGenerator::generate(smallConfig(), sem);
  std::stringstream buffer;
  writeTrace(buffer, wls);
  const auto loaded = readTrace(buffer);
  ASSERT_EQ(loaded.size(), wls.size());
  for (std::size_t i = 0; i < wls.size(); ++i) {
    EXPECT_EQ(loaded[i].client, wls[i].client);
    EXPECT_EQ(loaded[i].dataset, wls[i].dataset);
    ASSERT_EQ(loaded[i].queries.size(), wls[i].queries.size());
    for (std::size_t j = 0; j < wls[i].queries.size(); ++j) {
      EXPECT_TRUE(loaded[i].queries[j] == wls[i].queries[j]);
    }
  }
}

TEST(Trace, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "# header\n"
      "\n"
      "3 0 0 0 128 128 2 subsample  # trailing comment\n"
      "3 0 128 0 256 256 4 average\n");
  const auto wls = readTrace(in);
  ASSERT_EQ(wls.size(), 1u);
  EXPECT_EQ(wls[0].client, 3);
  ASSERT_EQ(wls[0].queries.size(), 2u);
  EXPECT_EQ(wls[0].queries[1].op(), vm::VMOp::Average);
  EXPECT_EQ(wls[0].queries[1].zoom(), 4u);
}

TEST(Trace, MalformedLinesRejected) {
  std::stringstream bad1("1 0 0 0 128\n");
  EXPECT_THROW(readTrace(bad1), CheckFailure);
  std::stringstream bad2("1 0 0 0 128 128 2 sharpen\n");
  EXPECT_THROW(readTrace(bad2), CheckFailure);
  // A client hopping datasets mid-trace is a structural error.
  std::stringstream bad3(
      "1 0 0 0 128 128 2 subsample\n"
      "1 1 0 0 128 128 2 subsample\n");
  EXPECT_THROW(readTrace(bad3), CheckFailure);
}

TEST(Trace, FileRoundTrip) {
  vm::VMSemantics sem;
  auto cfg = smallConfig();
  cfg.queriesPerClient = 3;
  const auto wls = WorkloadGenerator::generate(cfg, sem);
  const auto path = std::filesystem::temp_directory_path() / "mqs_trace.txt";
  ASSERT_TRUE(saveTrace(path, wls));
  const auto loaded = loadTrace(path);
  EXPECT_EQ(loaded.size(), wls.size());
  std::filesystem::remove(path);
  EXPECT_THROW(loadTrace(path), CheckFailure);  // gone now
}

TEST(Workload, DefaultConfigIsPaperScale) {
  const WorkloadConfig cfg;
  EXPECT_EQ(cfg.datasets.size(), 3u);
  EXPECT_EQ(cfg.clientsPerDataset, (std::vector<int>{8, 6, 2}));
  EXPECT_EQ(cfg.queriesPerClient, 16);
  EXPECT_EQ(cfg.outputSide, 1024);
  // 30000^2 * 3 bytes * 3 datasets = 7.5GB as in the paper.
  std::uint64_t total = 0;
  for (const auto& d : cfg.datasets) {
    total += static_cast<std::uint64_t>(d.width) *
             static_cast<std::uint64_t>(d.height) * 3;
  }
  EXPECT_NEAR(static_cast<double>(total) / (1ULL << 30), 7.5, 0.1);
}

}  // namespace
}  // namespace mqs::driver
