// Leveled, thread-safe logging. Off (Warn) by default so benches stay quiet;
// tests and examples can raise the level for tracing.
#pragma once

#include <sstream>
#include <string>

namespace mqs {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global minimum level; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {
void logEmit(LogLevel level, const std::string& message);
}

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::logEmit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace mqs

#define MQS_LOG(level)                           \
  if (::mqs::LogLevel::level < ::mqs::logLevel()) \
    ;                                             \
  else                                            \
    ::mqs::LogLine(::mqs::LogLevel::level)
