file(REMOVE_RECURSE
  "CMakeFiles/timeseries_app.dir/timeseries_app.cpp.o"
  "CMakeFiles/timeseries_app.dir/timeseries_app.cpp.o.d"
  "timeseries_app"
  "timeseries_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
