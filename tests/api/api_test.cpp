// The umbrella header must expose the whole public API, compile cleanly,
// and be enough to assemble a working server end to end.
#include "mqs.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Api, UmbrellaHeaderAssemblesAWorkingServer) {
  mqs::vm::VMSemantics semantics;
  const auto slideId =
      semantics.addDataset(mqs::index::ChunkLayout(512, 512, 96));
  mqs::storage::SyntheticSlideSource slide(semantics.layout(slideId), 1);
  mqs::vm::VMExecutor executor(&semantics);

  mqs::server::ServerConfig cfg;
  cfg.threads = 2;
  cfg.policy = "CNBF";
  mqs::server::QueryServer server(&semantics, &executor, cfg);
  server.attach(slideId, &slide);

  const auto result = server.execute(
      std::make_unique<mqs::vm::VMPredicate>(
          slideId, mqs::Rect::ofSize(0, 0, 128, 128), 2,
          mqs::vm::VMOp::Subsample),
      0);
  EXPECT_EQ(result.bytes.size(), 64u * 64 * 3);
  server.shutdown();
}

TEST(Api, UmbrellaHeaderAssemblesASimulation) {
  mqs::vm::VMSemantics semantics;
  (void)semantics.addDataset(mqs::index::ChunkLayout(512, 512, 96));
  mqs::sim::Simulator simr;
  mqs::sim::SimConfig cfg;
  mqs::sim::SimServer server(simr, &semantics, cfg);
  server.submit(std::make_unique<mqs::vm::VMPredicate>(
                    0, mqs::Rect::ofSize(0, 0, 128, 128), 2,
                    mqs::vm::VMOp::Average),
                0);
  simr.run();
  EXPECT_EQ(server.collector().count(), 1u);
}

}  // namespace
