// True positive: no annotation anywhere — the inversion only falls out of
// the call-summary fixpoint (outer holds hi_, calls inner, inner acquires
// lo_).
#include "ranks.hpp"

namespace fx {

class CallProp {
 public:
  void outer() {
    MutexLock lock(hi_);
    inner();
  }
  void inner() { MutexLock lock(lo_); }

 private:
  Mutex lo_{lockorder::Rank::kLow, "fx.cp.lo"};
  Mutex hi_{lockorder::Rank::kHigh, "fx.cp.hi"};
};

}  // namespace fx
