#include "pagespace/page_cache_core.hpp"

#include "common/check.hpp"

namespace mqs::pagespace {

PageCacheCore::PageCacheCore(std::uint64_t capacityBytes)
    : capacity_(capacityBytes) {}

bool PageCacheCore::touch(const storage::PageKey& key) {
  auto it = pages_.find(key);
  if (it == pages_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  return true;
}

bool PageCacheCore::contains(const storage::PageKey& key) const {
  return pages_.contains(key);
}

std::vector<storage::PageKey> PageCacheCore::insert(
    const storage::PageKey& key, std::size_t bytes) {
  std::vector<storage::PageKey> evicted;
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return evicted;
  }
  if (bytes > capacity_) {
    ++stats_.uncacheable;
    return evicted;
  }

  // Evict from the LRU tail, skipping pinned pages.
  auto victim = lru_.end();
  while (resident_ + bytes > capacity_) {
    if (victim == lru_.begin()) {
      // Everything remaining is pinned; give up on caching this page.
      ++stats_.uncacheable;
      return evicted;
    }
    --victim;
    auto vit = pages_.find(*victim);
    MQS_DCHECK(vit != pages_.end());
    if (vit->second.pins > 0) continue;
    resident_ -= vit->second.bytes;
    evicted.push_back(*victim);
    ++stats_.evictions;
    victim = lru_.erase(victim);
    pages_.erase(vit);
  }

  lru_.push_front(key);
  pages_.emplace(key, Entry{bytes, 0, lru_.begin()});
  resident_ += bytes;
  return evicted;
}

void PageCacheCore::pin(const storage::PageKey& key) {
  auto it = pages_.find(key);
  MQS_CHECK_MSG(it != pages_.end(), "pin of non-resident page");
  if (it->second.pins == 0) pinned_ += it->second.bytes;
  ++it->second.pins;
}

void PageCacheCore::unpin(const storage::PageKey& key) {
  auto it = pages_.find(key);
  MQS_CHECK_MSG(it != pages_.end(), "unpin of non-resident page");
  MQS_CHECK_MSG(it->second.pins > 0, "unbalanced unpin");
  --it->second.pins;
  if (it->second.pins == 0) pinned_ -= it->second.bytes;
}

std::vector<storage::PageKey> PageCacheCore::evictUpTo(
    std::uint64_t want, std::uint64_t* freedBytes) {
  std::vector<storage::PageKey> evicted;
  std::uint64_t freed = 0;
  auto victim = lru_.end();
  while (freed < want && victim != lru_.begin()) {
    --victim;
    auto vit = pages_.find(*victim);
    MQS_DCHECK(vit != pages_.end());
    if (vit->second.pins > 0) continue;
    freed += vit->second.bytes;
    resident_ -= vit->second.bytes;
    evicted.push_back(*victim);
    ++stats_.evictions;
    victim = lru_.erase(victim);
    pages_.erase(vit);
  }
  if (freedBytes != nullptr) *freedBytes = freed;
  return evicted;
}

void PageCacheCore::erase(const storage::PageKey& key) {
  auto it = pages_.find(key);
  if (it == pages_.end()) return;
  MQS_CHECK_MSG(it->second.pins == 0, "erase of pinned page");
  resident_ -= it->second.bytes;
  lru_.erase(it->second.lruIt);
  pages_.erase(it);
}

}  // namespace mqs::pagespace
