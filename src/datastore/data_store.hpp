// Data Store Manager (§2): dynamic storage for intermediate results with
// semantic metadata.
//
// Each blob is a query result (or sub-query result) annotated with its
// predicate. lookup() implements the system's reuse test: find the resident
// blob whose user-defined overlap with the incoming query is highest.
// Blobs are evicted LRU under a byte budget; the scheduler is notified so
// it can move the corresponding graph node to SWAPPED_OUT and drop it.
//
// Sizes are accounted in *logical* bytes (qoutsize) so the discrete-event
// engine — which stores no payloads — sees exactly the same residency
// behaviour as the threaded runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "index/rtree.hpp"
#include "query/predicate.hpp"
#include "query/semantics.hpp"
#include "trace/trace.hpp"

namespace mqs::datastore {

using BlobId = std::uint64_t;

/// Replacement policy for intermediate results. The paper does not pin one
/// down; LRU is the default, the alternatives feed the eviction ablation.
enum class EvictionPolicy {
  Lru,      ///< least recently used (lookup hits and inserts refresh)
  Lfu,      ///< fewest lookup hits (ties broken toward LRU)
  Largest,  ///< biggest blob first (maximizes freed bytes per eviction)
};

/// Parse "LRU" / "LFU" / "LARGEST" (case-insensitive); throws CheckFailure
/// naming the valid set on anything else.
EvictionPolicy parseEvictionPolicy(std::string_view name);
std::string_view toString(EvictionPolicy policy);

class DataStore {
 public:
  /// `semantics` provides the user-defined overlap operator used by lookup.
  DataStore(std::uint64_t capacityBytes, const query::QuerySemantics* semantics,
            EvictionPolicy eviction = EvictionPolicy::Lru);

  /// Called with (id, predicate) whenever a blob is evicted. Must not call
  /// back into the data store.
  void setEvictionListener(
      std::function<void(BlobId, const query::Predicate&)> listener);

  /// Attach a lifecycle tracer: reuse hits (lookup hit / noteReuse), empty
  /// lookups, and evictions emit DS_HIT / DS_MISS / DS_EVICT counters. The
  /// tracer must outlive the store.
  void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Store a result. `payload` may be empty (simulation mode);
  /// `logicalBytes` is the result's qoutsize and drives the byte budget.
  /// Returns the blob id, or std::nullopt if the blob cannot be cached
  /// (larger than the whole store, or everything else is pinned).
  std::optional<BlobId> insert(query::PredicatePtr predicate,
                               std::vector<std::byte> payload,
                               std::uint64_t logicalBytes);

  struct Match {
    BlobId id = 0;
    double overlap = 0.0;
  };

  /// Best-overlap resident blob for query predicate `q` with overlap
  /// strictly greater than `minOverlap`. Refreshes the match's LRU
  /// position. Ties break toward the most recently used blob.
  [[nodiscard]] std::optional<Match> lookup(const query::Predicate& q,
                                            double minOverlap = 0.0);

  /// lookup() that atomically pins the match, so concurrent evictions can
  /// never invalidate the returned blob before the caller reads it. The
  /// caller must unpin() when done.
  [[nodiscard]] std::optional<Match> lookupAndPin(const query::Predicate& q,
                                                  double minOverlap = 0.0);

  /// Candidate generation for the multi-source reuse planner: up to `k`
  /// resident blobs with overlap(blob, q) > minOverlap, sorted by overlap
  /// descending (ties toward the newer blob, matching lookup()'s bias
  /// toward recent results). Candidates come from the R-tree, so the cost
  /// is proportional to the spatial matches, not the resident population.
  /// Unlike lookup(), this does NOT refresh LRU positions or hit counters —
  /// the planner reports the sources it actually selects via noteReuse().
  /// Counts one lookup in stats().
  [[nodiscard]] std::vector<Match> lookupTopK(const query::Predicate& q,
                                              std::size_t k,
                                              double minOverlap = 0.0);

  /// Reuse feedback from the planner: refresh the blob's LRU position and
  /// use count, and account a hit (a full hit when `overlap` >= 1). No-op
  /// if the blob was evicted in the meantime.
  void noteReuse(BlobId id, double overlap);

  [[nodiscard]] bool contains(BlobId id) const;

  /// Predicate of a resident blob. The reference is valid while the blob is
  /// pinned (or, single-threadedly, until the next mutating call).
  [[nodiscard]] const query::Predicate& predicate(BlobId id) const;

  /// Payload bytes of a resident blob (empty span in simulation mode).
  [[nodiscard]] std::span<const std::byte> payload(BlobId id) const;

  /// Pinned blobs are never evicted. Pins nest.
  void pin(BlobId id);
  void unpin(BlobId id);
  /// Pin if still resident; returns whether the pin was taken.
  bool tryPin(BlobId id);

  /// RAII unpin: holds one pin on a blob and releases it on destruction
  /// (exception-safe counterpart to lookupAndPin/tryPin).
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(DataStore& ds, BlobId id) : ds_(&ds), id_(id) {}
    PinGuard(PinGuard&& other) noexcept
        : ds_(std::exchange(other.ds_, nullptr)), id_(other.id_) {}
    PinGuard& operator=(PinGuard&& other) noexcept {
      if (this != &other) {
        release();
        ds_ = std::exchange(other.ds_, nullptr);
        id_ = other.id_;
      }
      return *this;
    }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() { release(); }

    void release() {
      if (ds_ != nullptr) {
        ds_->unpin(id_);
        ds_ = nullptr;
      }
    }
    [[nodiscard]] bool held() const { return ds_ != nullptr; }

   private:
    DataStore* ds_ = nullptr;
    BlobId id_ = 0;
  };

  /// Explicitly drop a blob (used by tests and by administrative paths).
  /// No-op if absent; the eviction listener fires.
  void erase(BlobId id);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;        ///< lookups that found a usable blob
    std::uint64_t fullHits = 0;    ///< hits with overlap >= 1
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::uint64_t capacityBytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t residentBytes() const;
  [[nodiscard]] std::size_t residentBlobs() const;
  /// Blobs currently holding at least one pin. Zero once the server is
  /// idle — a positive count then means a leaked PinGuard (soak-test
  /// invariant).
  [[nodiscard]] std::size_t pinnedBlobs() const;

 private:
  struct Blob {
    query::PredicatePtr predicate;
    std::vector<std::byte> payload;
    std::uint64_t logicalBytes = 0;
    std::uint64_t uses = 0;  ///< lookup hits (LFU)
    int pins = 0;
    std::list<BlobId>::iterator lruIt;
  };

  /// Next eviction victim under the configured policy, or kNoVictim.
  BlobId pickVictimLocked() const REQUIRES(mu_);

  std::optional<Match> lookupImpl(const query::Predicate& q,
                                  double minOverlap, bool pinMatch)
      EXCLUDES(mu_);

  /// Debug cross-check for the R-tree candidate path: best overlap by a
  /// linear scan over every resident blob. Only compiled into !NDEBUG
  /// builds.
  [[nodiscard]] double bestOverlapLinearLocked(const query::Predicate& q,
                                               double minOverlap) const
      REQUIRES(mu_);

  /// Evict LRU unpinned blobs until `need` bytes are free; returns false if
  /// impossible.
  bool makeRoomLocked(std::uint64_t need) REQUIRES(mu_);
  void eraseLocked(BlobId id, bool countEviction) REQUIRES(mu_);

  trace::Tracer* tracer_ = nullptr;

  mutable Mutex mu_{lockorder::Rank::kDataStore, "DataStore::mu_"};
  std::uint64_t capacity_;   ///< immutable after construction
  std::uint64_t resident_ GUARDED_BY(mu_) = 0;
  EvictionPolicy eviction_;                  ///< immutable after construction
  const query::QuerySemantics* semantics_;   ///< immutable after construction
  std::function<void(BlobId, const query::Predicate&)> evictionListener_
      GUARDED_BY(mu_);
  BlobId nextId_ GUARDED_BY(mu_) = 1;
  std::list<BlobId> lru_ GUARDED_BY(mu_);  ///< front = most recent
  std::unordered_map<BlobId, Blob> blobs_ GUARDED_BY(mu_);
  index::RTree spatial_ GUARDED_BY(mu_);   ///< bounding boxes -> blob ids
  /// Evictions performed under the lock, drained and reported to the
  /// listener after unlocking (the listener takes the scheduler lock).
  std::vector<std::pair<BlobId, query::PredicatePtr>> pendingEvictions_
      GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace mqs::datastore
