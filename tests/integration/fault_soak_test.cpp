// Seeded randomized soak: the full threaded server (many clients x queries,
// rotating through all six paper policies) run three times per iteration —
// fault-free, under transient device faults, and with permanently poisoned
// pages — with every run checked against hard invariants:
//
//  * the server drains to idle: nothing waiting or executing, no leaked
//    page claims, no in-flight reads, no pinned Data Store blobs;
//  * transient faults within the retry budget are invisible: every query
//    succeeds with bytes identical to the fault-free run;
//  * permanent faults fail exactly the predicted query set (those whose
//    region touches a poisoned chunk), each reported exactly once, while
//    every other query still matches the fault-free bytes.
//
// Iterations and base seed come from MQS_SOAK_ITERS / MQS_SOAK_SEED so CI
// can run a short pass and a nightly job (or a bug hunt) can go long:
//   MQS_SOAK_ITERS=50 MQS_SOAK_SEED=977 ctest -R FaultSoak
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "driver/workload.hpp"
#include "sched/policy.hpp"
#include "server/query_server.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

using server::QueryFailure;
using server::QueryResult;
using server::QueryServer;
using storage::FaultPlan;
using storage::FaultySource;
using vm::VMPredicate;

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// One query's outcome: its bytes hash, or "failed".
struct Outcome {
  bool failed = false;
  std::uint64_t hash = 0;
};

struct RunReport {
  std::vector<Outcome> outcomes;  ///< by submission index
  std::size_t failedRecords = 0;  ///< FAILED metrics records
  std::size_t totalRecords = 0;
};

driver::WorkloadConfig soakWorkload(std::uint64_t seed) {
  driver::WorkloadConfig cfg;
  cfg.datasets = {driver::DatasetSpec{.seed = 11},
                  driver::DatasetSpec{.seed = 22}};
  cfg.clientsPerDataset = {2, 2};
  cfg.queriesPerClient = 4;
  cfg.outputSide = 128;
  cfg.zoomLevels = {2, 4, 8};
  cfg.zoomWeights = {1.0, 2.0, 1.0};
  cfg.seed = seed;
  return cfg;
}

server::ServerConfig soakServer(const std::string& policy) {
  server::ServerConfig cfg;
  cfg.threads = 4;
  cfg.policy = policy;
  cfg.dsBytes = 24ULL << 20;
  cfg.psBytes = 12ULL << 20;
  cfg.ioRetryBackoffSec = 0.0;  // retries are logic under test, not pacing
  return cfg;
}

/// Flattened (client, predicate) submission order for one workload.
struct SubmitPlan {
  std::vector<int> clients;
  std::vector<VMPredicate> queries;
};

SubmitPlan submitPlan(const std::vector<driver::ClientWorkload>& workloads) {
  SubmitPlan plan;
  std::size_t maxLen = 0;
  for (const auto& wl : workloads) maxLen = std::max(maxLen, wl.queries.size());
  for (std::size_t i = 0; i < maxLen; ++i) {
    for (const auto& wl : workloads) {
      if (i < wl.queries.size()) {
        plan.clients.push_back(wl.client);
        plan.queries.push_back(wl.queries[i]);
      }
    }
  }
  return plan;
}

/// Build a server over `sources`, push the whole plan through it, and
/// collect per-query outcomes plus drain/leak invariants.
RunReport runOnce(const driver::WorkloadConfig& wcfg,
                  const server::ServerConfig& scfg,
                  const std::vector<const storage::DataSource*>& sources) {
  vm::VMSemantics semantics;
  const auto workloads =
      driver::WorkloadGenerator::generate(wcfg, semantics);
  const SubmitPlan plan = submitPlan(workloads);

  vm::VMExecutor executor(&semantics, /*intraQueryThreads=*/1,
                          scfg.prefetchPages);
  QueryServer server(&semantics, &executor, scfg);
  for (std::size_t d = 0; d < sources.size(); ++d) {
    server.attach(static_cast<storage::DatasetId>(d), sources[d]);
  }

  std::vector<std::future<QueryResult>> futures;
  futures.reserve(plan.queries.size());
  for (std::size_t i = 0; i < plan.queries.size(); ++i) {
    futures.push_back(server.submit(
        std::make_unique<VMPredicate>(plan.queries[i]), plan.clients[i]));
  }

  RunReport report;
  report.outcomes.resize(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const QueryResult r = futures[i].get();
      report.outcomes[i].hash = fnv1a(r.bytes);
    } catch (const QueryFailure&) {
      report.outcomes[i].failed = true;
    }
  }

  // Drained to idle: nothing scheduled, no claim/pin leaks. In-flight
  // reads whose claims were released may still be landing on the I/O
  // pool; give them a moment to settle.
  EXPECT_EQ(server.scheduler().waitingCount(), 0u);
  EXPECT_EQ(server.scheduler().executingCount(), 0u);
  EXPECT_EQ(server.pageSpace().claimCount(), 0u);
  for (int spin = 0; spin < 2000 && server.pageSpace().inflightCount() > 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.pageSpace().inflightCount(), 0u);
  EXPECT_EQ(server.dataStore().pinnedBlobs(), 0u);

  const auto records = server.collector().records();
  report.totalRecords = records.size();
  for (const auto& r : records) {
    if (r.failed) ++report.failedRecords;
  }
  server.shutdown();
  return report;
}

class FaultSoakTest : public ::testing::Test {};

TEST_F(FaultSoakTest, SoakAllPoliciesUnderInjectedFaults) {
  const std::uint64_t baseSeed = envU64("MQS_SOAK_SEED", 20260806);
  const std::uint64_t iters = envU64("MQS_SOAK_ITERS", 6);
  const auto& policies = sched::paperPolicyNames();

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = baseSeed + iter;
    const std::string& policy = policies[iter % policies.size()];
    SCOPED_TRACE("iter=" + std::to_string(iter) + " seed=" +
                 std::to_string(seed) + " policy=" + policy);

    const driver::WorkloadConfig wcfg = soakWorkload(seed);
    const server::ServerConfig scfg = soakServer(policy);

    // Materialize the raw sources once; every run wraps the same slides.
    vm::VMSemantics layoutOnly;
    const auto workloads =
        driver::WorkloadGenerator::generate(wcfg, layoutOnly);
    std::vector<std::unique_ptr<storage::SyntheticSlideSource>> slides;
    for (std::size_t d = 0; d < wcfg.datasets.size(); ++d) {
      slides.push_back(std::make_unique<storage::SyntheticSlideSource>(
          layoutOnly.layout(static_cast<storage::DatasetId>(d)),
          wcfg.datasets[d].seed));
    }

    // --- run 1: fault-free baseline -----------------------------------
    std::vector<const storage::DataSource*> rawSources;
    for (const auto& s : slides) rawSources.push_back(s.get());
    const RunReport baseline = runOnce(wcfg, scfg, rawSources);
    ASSERT_EQ(baseline.failedRecords, 0u);
    for (const auto& o : baseline.outcomes) ASSERT_FALSE(o.failed);

    // --- run 2: transient faults inside the retry budget --------------
    {
      std::vector<std::unique_ptr<FaultySource>> faulty;
      std::vector<const storage::DataSource*> sources;
      for (std::size_t d = 0; d < slides.size(); ++d) {
        FaultPlan plan;
        plan.seed = seed * 31 + d;
        plan.transientRate = 0.15;
        plan.maxConsecutiveTransient = 2;  // < ioRetryAttempts (3)
        plan.burstPeriod = 40;
        plan.burstLen = 8;
        plan.burstTransientRate = 0.6;
        faulty.push_back(std::make_unique<FaultySource>(*slides[d], plan));
        sources.push_back(faulty.back().get());
      }
      const RunReport shaken = runOnce(wcfg, scfg, sources);
      EXPECT_EQ(shaken.failedRecords, 0u);
      ASSERT_EQ(shaken.outcomes.size(), baseline.outcomes.size());
      for (std::size_t i = 0; i < shaken.outcomes.size(); ++i) {
        ASSERT_FALSE(shaken.outcomes[i].failed) << "query " << i;
        // Retried I/O must be invisible: bit-identical results.
        EXPECT_EQ(shaken.outcomes[i].hash, baseline.outcomes[i].hash)
            << "query " << i;
      }
      std::uint64_t injected = 0;
      for (const auto& f : faulty) injected += f->stats().transientInjected;
      EXPECT_GT(injected, 0u) << "fault plan injected nothing; soak vacuous";
    }

    // --- run 3: permanently poisoned pages ----------------------------
    {
      // Poison the first chunk of the first query on each dataset: at
      // least one query per dataset is doomed, and the failing set is
      // exactly predictable from geometry.
      const SubmitPlan plan = submitPlan(workloads);
      std::map<storage::DatasetId, std::set<storage::PageId>> poison;
      for (const auto& q : plan.queries) {
        const auto ds = q.dataset();
        if (poison.contains(ds)) continue;
        const auto chunks =
            layoutOnly.layout(ds).chunksIntersecting(q.region());
        ASSERT_FALSE(chunks.empty());
        poison[ds] = {chunks.front().id};
      }

      std::vector<bool> doomed(plan.queries.size(), false);
      std::size_t doomedCount = 0;
      for (std::size_t i = 0; i < plan.queries.size(); ++i) {
        const auto& q = plan.queries[i];
        for (const auto& c :
             layoutOnly.layout(q.dataset()).chunksIntersecting(q.region())) {
          if (poison[q.dataset()].contains(c.id)) {
            doomed[i] = true;
            ++doomedCount;
            break;
          }
        }
      }
      ASSERT_GT(doomedCount, 0u);
      ASSERT_LT(doomedCount, plan.queries.size())
          << "every query poisoned; survivor check vacuous";

      std::vector<std::unique_ptr<FaultySource>> faulty;
      std::vector<const storage::DataSource*> sources;
      for (std::size_t d = 0; d < slides.size(); ++d) {
        FaultPlan fp;
        fp.seed = seed * 57 + d;
        const auto& bad = poison[static_cast<storage::DatasetId>(d)];
        fp.permanentPages.assign(bad.begin(), bad.end());
        faulty.push_back(std::make_unique<FaultySource>(*slides[d], fp));
        sources.push_back(faulty.back().get());
      }
      const RunReport burned = runOnce(wcfg, scfg, sources);
      ASSERT_EQ(burned.outcomes.size(), plan.queries.size());
      for (std::size_t i = 0; i < burned.outcomes.size(); ++i) {
        EXPECT_EQ(burned.outcomes[i].failed, doomed[i])
            << "query " << i << " (" << plan.queries[i].describe() << ")";
        if (!doomed[i] && !burned.outcomes[i].failed) {
          // Survivors are unaffected bystanders: same bytes as baseline.
          EXPECT_EQ(burned.outcomes[i].hash, baseline.outcomes[i].hash)
              << "query " << i;
        }
      }
      // Each failure reported exactly once: one FAILED record per doomed
      // query, and every submission produced exactly one record.
      EXPECT_EQ(burned.failedRecords, doomedCount);
      EXPECT_EQ(burned.totalRecords, plan.queries.size());
    }
  }
}

}  // namespace
}  // namespace mqs
