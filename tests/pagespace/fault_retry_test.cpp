#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "index/chunk_layout.hpp"
#include "pagespace/page_space_manager.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::pagespace {
namespace {

using storage::FaultPlan;
using storage::FaultySource;
using storage::PageKey;

class FaultRetryTest : public ::testing::Test {
 protected:
  FaultRetryTest() : layout_(256, 256, 64), slide_(layout_, /*seed=*/9) {}

  std::vector<std::byte> groundTruth(storage::PageId page) const {
    std::vector<std::byte> want(layout_.chunkBytes(page));
    slide_.readPage(page, want);
    return want;
  }

  static void awaitInflightDrain(const PageSpaceManager& ps) {
    for (int i = 0; i < 2000 && ps.inflightCount() > 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
};

TEST_F(FaultRetryTest, TransientFaultsRetriedToSuccess) {
  FaultPlan plan;
  plan.seed = 5;
  plan.transientRate = 0.5;
  plan.maxConsecutiveTransient = 2;
  FaultySource faulty(slide_, plan);
  // maxAttempts exceeds the plan's consecutive-failure bound, so every
  // fetch is guaranteed to succeed; zero backoff keeps the test fast.
  PageSpaceManager ps(1 << 22, /*ioThreads=*/0,
                      RetryPolicy{/*maxAttempts=*/3, /*backoffSec=*/0.0});
  ps.attach(0, &faulty);

  for (storage::PageId p = 0; p < layout_.chunkCount(); ++p) {
    const auto page = ps.fetch(PageKey{0, p});
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(*page, groundTruth(p)) << "page " << p;
  }
  const auto s = ps.stats();
  EXPECT_EQ(s.readFailures, 0u);
  EXPECT_GT(faulty.stats().transientInjected, 0u);
  // Every injected transient was absorbed by a retry.
  EXPECT_EQ(s.readRetries, faulty.stats().transientInjected);
}

/// A device so broken that every read fails transiently — beyond what any
/// FaultPlan models (plans bound consecutive failures), so built directly.
class AlwaysTransientSource final : public storage::DataSource {
 public:
  explicit AlwaysTransientSource(const storage::DataSource& inner)
      : inner_(inner) {}
  [[nodiscard]] storage::PageId pageCount() const override {
    return inner_.pageCount();
  }
  [[nodiscard]] std::size_t pageBytes(storage::PageId page) const override {
    return inner_.pageBytes(page);
  }
  void readPage(storage::PageId, std::span<std::byte>) const override {
    throw storage::TransientReadError("device never recovers");
  }

 private:
  const storage::DataSource& inner_;
};

TEST_F(FaultRetryTest, RetryBudgetExhaustedPropagatesTransient) {
  AlwaysTransientSource broken(slide_);
  PageSpaceManager ps(1 << 20, /*ioThreads=*/0,
                      RetryPolicy{/*maxAttempts=*/2, /*backoffSec=*/0.0});
  ps.attach(0, &broken);

  EXPECT_THROW((void)ps.fetch(PageKey{0, 0}), storage::TransientReadError);
  const auto s = ps.stats();
  EXPECT_EQ(s.readRetries, 1u);   // one retry spent before giving up
  EXPECT_EQ(s.readFailures, 1u);
  EXPECT_EQ(ps.inflightCount(), 0u);
  EXPECT_EQ(ps.claimCount(), 0u);
}

TEST_F(FaultRetryTest, PermanentFaultPropagatesWithoutRetry) {
  FaultPlan plan;
  plan.permanentPages = {3};
  FaultySource faulty(slide_, plan);
  PageSpaceManager ps(1 << 20, /*ioThreads=*/0,
                      RetryPolicy{/*maxAttempts=*/5, /*backoffSec=*/0.0});
  ps.attach(0, &faulty);

  EXPECT_THROW((void)ps.fetch(PageKey{0, 3}), storage::PermanentReadError);
  // Retrying a permanent fault would only burn time: exactly one device
  // read was attempted.
  EXPECT_EQ(faulty.stats().reads, 1u);
  EXPECT_EQ(ps.stats().readRetries, 0u);
  EXPECT_EQ(ps.stats().readFailures, 1u);
}

TEST_F(FaultRetryTest, FailedFetchLeavesNoResidueAndRecovers) {
  FaultPlan plan;
  plan.permanentPages = {2};
  FaultySource faulty(slide_, plan);
  PageSpaceManager ps(1 << 22, /*ioThreads=*/2);
  ps.attach(0, &faulty);

  EXPECT_THROW((void)ps.fetch(PageKey{0, 2}), storage::PermanentReadError);
  EXPECT_EQ(ps.inflightCount(), 0u);
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_EQ(ps.residentBytes(), 0u);  // no partially-read page was cached

  // The bad device is replaced: the same key now reads pristine bytes.
  faulty.clearPermanentFaults();
  const auto page = ps.fetch(PageKey{0, 2});
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(*page, groundTruth(2));
}

TEST_F(FaultRetryTest, FetchConsumesItsClaimEvenOnFailure) {
  FaultPlan plan;
  plan.permanentPages = {1};
  FaultySource faulty(slide_, plan);
  PageSpaceManager ps(1 << 20, /*ioThreads=*/2,
                      RetryPolicy{/*maxAttempts=*/1, /*backoffSec=*/0.0});
  ps.attach(0, &faulty);

  ps.prefetch(PageKey{0, 1});  // takes one claim; the pool read will fail
  EXPECT_EQ(ps.claimCount(), 1u);
  EXPECT_THROW((void)ps.fetch(PageKey{0, 1}), storage::PermanentReadError);
  // The failing fetch settled the claim (unserved), exactly like a
  // successful fetch would have consumed it.
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_EQ(ps.inflightCount(), 0u);
}

// Regression: a batch whose fetch fails mid-way must release ONLY the
// claims it took for keys it never reached. The failing key's claim was
// already consumed by the failing fetch; releasing it again would steal —
// and unpin — a claim held by a concurrent query on the same page,
// exposing that query's prefetched page to eviction.
TEST_F(FaultRetryTest, FetchBatchPartialFailureSparesConcurrentClaims) {
  FaultPlan plan;
  plan.permanentPages = {6};
  FaultySource faulty(slide_, plan);
  PageSpaceManager ps(1 << 22, /*ioThreads=*/4,
                      RetryPolicy{/*maxAttempts=*/1, /*backoffSec=*/0.0});
  ps.attach(0, &faulty);

  // A concurrent query's outstanding claim on the page that will fail.
  ps.prefetch(PageKey{0, 6});
  EXPECT_EQ(ps.claimCount(), 1u);

  const std::vector<PageKey> batch = {
      PageKey{0, 4}, PageKey{0, 6}, PageKey{0, 8}};
  EXPECT_THROW((void)ps.fetchBatch(batch), storage::PermanentReadError);
  awaitInflightDrain(ps);

  // Keys 4 (fetched) and 8 (released tail) hold no claims; the external
  // claim on key 6 survived the batch failure.
  EXPECT_EQ(ps.claimCount(), 1u);
  ps.releaseClaim(PageKey{0, 6});
  EXPECT_EQ(ps.claimCount(), 0u);

  // The successfully fetched prefix is cached and correct.
  const auto page4 = ps.fetch(PageKey{0, 4});
  EXPECT_EQ(*page4, groundTruth(4));
}

TEST_F(FaultRetryTest, FetchBatchSucceedsUnderTransientFaults) {
  FaultPlan plan;
  plan.seed = 13;
  plan.transientRate = 0.4;
  plan.maxConsecutiveTransient = 2;
  FaultySource faulty(slide_, plan);
  PageSpaceManager ps(1 << 22, /*ioThreads=*/4,
                      RetryPolicy{/*maxAttempts=*/3, /*backoffSec=*/0.0});
  ps.attach(0, &faulty);

  std::vector<PageKey> keys;
  for (storage::PageId p = 0; p < layout_.chunkCount(); ++p) {
    keys.push_back(PageKey{0, p});
  }
  const auto pages = ps.fetchBatch(keys);
  ASSERT_EQ(pages.size(), keys.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(*pages[i], groundTruth(keys[i].page)) << "page " << i;
  }
  EXPECT_EQ(ps.claimCount(), 0u);
  EXPECT_EQ(ps.stats().readFailures, 0u);
}

}  // namespace
}  // namespace mqs::pagespace
