// Trace-stream analysis: per-query views, well-nesting validation, and
// plan-shape reconstruction.
//
// Every QueryRecord field is derivable from the span stream; the helpers
// here do those derivations so the invariant tests (tests/trace/) can
// cross-check the two representations, and so exporters can group events
// per query without re-implementing the merge rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mqs::trace {

/// All events of one query, in span order: filtered from a drained stream
/// (which concatenates per-thread buffers) and stably sorted by timestamp.
/// The only cross-thread event of a query is its QUEUED begin (emitted on
/// the submitting thread), which the sort keys first among ties.
[[nodiscard]] std::vector<Event> eventsForQuery(const std::vector<Event>& all,
                                                std::uint64_t queryId);

/// One matched span (begin/end pair) of a query.
struct Span {
  SpanKind kind = SpanKind::Queued;
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t value = 0;  ///< begin event's value (PROJECT bytes covered)
  std::uint8_t depth = 0;
  std::uint8_t flags = 0;   ///< begin | end flags
  int level = 0;            ///< nesting level within the query (0 = top)

  [[nodiscard]] double duration() const { return end - begin; }
};

/// Result of pairing a query's events into spans with a stack discipline.
struct SpanTree {
  std::vector<Span> spans;  ///< in begin order
  bool wellNested = true;   ///< every end matched its begin LIFO
  bool monotonic = true;    ///< timestamps never decreased
  std::string error;        ///< first violation, for test diagnostics
};

/// Pair a query's events (as returned by eventsForQuery) into spans.
[[nodiscard]] SpanTree buildSpanTree(const std::vector<Event>& queryEvents);

/// Reconstruct the reuse-plan signature from a query's trace, in the exact
/// vocabulary of metrics::QueryRecord::planShape / query::ReusePlan::shape:
/// "C<bytes>" per cached projection, "X<bytes>" per executing-source
/// projection, "R" per remainder compute — top-level (depth 0) spans only,
/// '|'-separated. Identical across engines for identical plans.
[[nodiscard]] std::string planShapeOf(const std::vector<Event>& queryEvents);

/// Distinct query ids appearing in span events, in first-seen order.
[[nodiscard]] std::vector<std::uint64_t> queryIds(
    const std::vector<Event>& all);

/// Sum of a query's span durations for one kind (e.g. IO_STALL).
[[nodiscard]] double totalDuration(const SpanTree& tree, SpanKind kind);

}  // namespace mqs::trace
