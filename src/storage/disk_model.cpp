#include "storage/disk_model.hpp"

// DiskModel is header-only today; this TU anchors the library and keeps a
// home for future out-of-line additions (e.g. zoned-bandwidth models).
