file(REMOVE_RECURSE
  "CMakeFiles/mqs_pagespace.dir/page_cache_core.cpp.o"
  "CMakeFiles/mqs_pagespace.dir/page_cache_core.cpp.o.d"
  "CMakeFiles/mqs_pagespace.dir/page_space_manager.cpp.o"
  "CMakeFiles/mqs_pagespace.dir/page_space_manager.cpp.o.d"
  "libmqs_pagespace.a"
  "libmqs_pagespace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_pagespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
