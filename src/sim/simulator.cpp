#include "sim/simulator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mqs::sim {

Simulator::~Simulator() {
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Simulator::schedule(Time at, std::function<void()> fn) {
  MQS_CHECK_MSG(at >= now_, "cannot schedule events in the past");
  queue_.push(Event{at, nextSeq_++, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  auto handle = task.release();
  MQS_CHECK(handle);
  roots_.push_back(handle);
  handle.resume();  // run until first suspension
  reapFinishedRoots();
}

void Simulator::reapFinishedRoots() {
  for (auto& h : roots_) {
    if (h && h.done()) {
      if (h.promise().exception) {
        std::rethrow_exception(h.promise().exception);
      }
      h.destroy();
      h = {};
    }
  }
  std::erase_if(roots_, [](auto h) { return !h; });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // std::priority_queue::top() is const; moving the closure out requires
  // a copy otherwise, so grab it via const_cast-free extraction.
  Event ev = queue_.top();
  queue_.pop();
  MQS_DCHECK(ev.at >= now_);
  now_ = ev.at;
  ++processed_;
  ev.fn();
  reapFinishedRoots();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace mqs::sim
