#include "common/options.hpp"

#include <sstream>

#include "common/bytes.hpp"
#include "common/check.hpp"

namespace mqs {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Options::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Options::getString(const std::string& key,
                               const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Options::getInt(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stoll(it->second);
}

double Options::getDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

bool Options::getBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::uint64_t Options::getBytes(const std::string& key,
                                std::uint64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return parseBytes(it->second);
}

std::vector<std::int64_t> Options::getIntList(
    const std::string& key, std::vector<std::int64_t> def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::istringstream is(it->second);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  MQS_CHECK_MSG(!out.empty(), "empty list for --" + key);
  return out;
}

}  // namespace mqs
