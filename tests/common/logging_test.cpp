#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mqs {
namespace {

/// Capture std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(logLevel()) {}
  ~LoggingTest() override { setLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  setLogLevel(LogLevel::Warn);
  ClogCapture cap;
  MQS_LOG(Info) << "should not appear";
  MQS_LOG(Warn) << "should appear";
  EXPECT_EQ(cap.text().find("should not appear"), std::string::npos);
  EXPECT_NE(cap.text().find("should appear"), std::string::npos);
  EXPECT_NE(cap.text().find("WARN"), std::string::npos);
}

TEST_F(LoggingTest, TraceLevelEmitsEverything) {
  setLogLevel(LogLevel::Trace);
  ClogCapture cap;
  MQS_LOG(Trace) << "t";
  MQS_LOG(Debug) << "d";
  MQS_LOG(Error) << "e";
  EXPECT_NE(cap.text().find("TRACE"), std::string::npos);
  EXPECT_NE(cap.text().find("DEBUG"), std::string::npos);
  EXPECT_NE(cap.text().find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateStreaming) {
  setLogLevel(LogLevel::Error);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  MQS_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  MQS_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  setLogLevel(LogLevel::Info);
  ClogCapture cap;
  MQS_LOG(Info) << "n=" << 42 << " f=" << 2.5;
  EXPECT_NE(cap.text().find("n=42 f=2.5"), std::string::npos);
}

}  // namespace
}  // namespace mqs
