// Built-in C++ frontend for mqs-analyze: a raw lexer good enough for the
// declaration/body patterns this codebase's lint rules already enforce.
// Handles //, /* */, string/char literals (incl. raw strings), preprocessor
// directives (skipped, continuations honored), and multi-char punctuation
// the parser relies on (`::`, `->`, `>>`). Comment text is retained per
// line for the `immutable after construction` member exemption.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analyzer.hpp"

namespace mqs::analyze {

std::string readFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "mqs-analyze: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void addComment(LexedFile& out, int line, const std::string& text) {
  auto& slot = out.comments[line];
  if (!slot.empty()) slot += ' ';
  slot += text;
}

}  // namespace

LexedFile lexSource(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      addComment(out, line, text.substr(i + 2, j - (i + 2)));
      i = j;
      continue;
    }
    // Block comment (may span lines; text attributed line by line).
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      std::size_t segStart = j;
      int l = line;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') {
          addComment(out, l, text.substr(segStart, j - segStart));
          ++l;
          segStart = j + 1;
        }
        ++j;
      }
      addComment(out, l, text.substr(segStart, (j < n ? j : n) - segStart));
      i = (j + 1 < n) ? j + 2 : n;
      line = l;
      continue;
    }
    // Preprocessor directive: skip to end of (continued) line.
    if (c == '#') {
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k)
        if (text[k] == '\n') ++line;
      out.toks.push_back({Tok::Kind::String, "<raw>", line});
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string val;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) {
          val += text[j + 1];
          j += 2;
        } else {
          if (text[j] == '\n') ++line;  // unterminated; stay sane
          val += text[j++];
        }
      }
      out.toks.push_back(
          {quote == '"' ? Tok::Kind::String : Tok::Kind::Char, val, line});
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifier / keyword.
    if (identStart(c)) {
      std::size_t j = i + 1;
      while (j < n && identChar(text[j])) ++j;
      out.toks.push_back({Tok::Kind::Ident, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (incl. 0x..., digit separators, suffixes, floats).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (identChar(text[j]) || text[j] == '.' ||
                       text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P'))))
        ++j;
      out.toks.push_back({Tok::Kind::Number, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuation the parser cares about.
    if (c == ':' && peek(1) == ':') {
      out.toks.push_back({Tok::Kind::Punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      out.toks.push_back({Tok::Kind::Punct, "->", line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal compile_commands.json reader: an array of objects, each with a
// "file" key (and optionally "directory" for relative paths). Quoting per
// JSON; everything else in the entries is ignored.
std::vector<std::string> compileCommandsFiles(const std::string& dbPath) {
  const std::string text = readFileOrDie(dbPath);
  std::vector<std::string> files;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto parseString = [&](std::size_t& p) -> std::string {
    std::string out;
    ++p;  // opening quote
    while (p < n && text[p] != '"') {
      if (text[p] == '\\' && p + 1 < n) {
        const char e = text[p + 1];
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e);
        p += 2;
      } else {
        out += text[p++];
      }
    }
    ++p;  // closing quote
    return out;
  };
  std::string directory, file;
  auto flush = [&] {
    if (file.empty()) return;
    if (file[0] != '/' && !directory.empty())
      file = directory + "/" + file;
    files.push_back(file);
    directory.clear();
    file.clear();
  };
  while (i < n) {
    const char c = text[i];
    if (c == '"') {
      std::string key = parseString(i);
      while (i < n && (std::isspace(static_cast<unsigned char>(text[i]))))
        ++i;
      if (i < n && text[i] == ':') {
        ++i;
        while (i < n && std::isspace(static_cast<unsigned char>(text[i])))
          ++i;
        if (i < n && text[i] == '"') {
          std::string val = parseString(i);
          if (key == "file") file = val;
          else if (key == "directory") directory = val;
        }
      }
    } else if (c == '}') {
      flush();
      ++i;
    } else {
      ++i;
    }
  }
  flush();
  return files;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mqs::analyze
