file(REMOVE_RECURSE
  "libmqs_net.a"
)
