// Brick layout of a 3-D volume dataset (the index-manager role for the
// volume-visualization application — the paper's future-work item 2).
//
// A W x H x D volume of 1-byte intensity voxels is cut into cubic bricks of
// side `brickSide` (edge bricks clipped); one brick per page, id ordered
// x-fastest, z-slowest.
#pragma once

#include <cstdint>
#include <vector>

#include "common/geometry.hpp"

namespace mqs::vol {

struct BrickRef {
  std::uint64_t id = 0;
  Box3 box;

  friend bool operator==(const BrickRef&, const BrickRef&) = default;
};

class VolumeLayout {
 public:
  VolumeLayout(std::int64_t width, std::int64_t height, std::int64_t depth,
               std::int64_t brickSide);

  [[nodiscard]] std::int64_t width() const { return width_; }
  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::int64_t depth() const { return depth_; }
  [[nodiscard]] std::int64_t brickSide() const { return brickSide_; }
  [[nodiscard]] Box3 extent() const {
    return Box3{0, 0, 0, width_, height_, depth_};
  }

  [[nodiscard]] std::uint64_t brickCount() const {
    return static_cast<std::uint64_t>(nx_ * ny_ * nz_);
  }
  [[nodiscard]] Box3 brickBox(std::uint64_t id) const;
  /// Bytes of voxel data in brick `id` (1 byte per voxel, edges clipped).
  [[nodiscard]] std::size_t brickBytes(std::uint64_t id) const;

  /// All bricks intersecting `box` (clipped to the extent), ascending id.
  [[nodiscard]] std::vector<BrickRef> bricksIntersecting(const Box3& box) const;

  /// Total bytes of bricks intersecting `box` — qinputsize for SJF.
  [[nodiscard]] std::uint64_t inputBytes(const Box3& box) const;

 private:
  std::int64_t width_, height_, depth_, brickSide_;
  std::int64_t nx_, ny_, nz_;
};

}  // namespace mqs::vol
