#include "common/bytes.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace mqs {

std::uint64_t parseBytes(std::string_view text) {
  MQS_CHECK_MSG(!text.empty(), "empty byte size");
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  MQS_CHECK_MSG(ec == std::errc() && value >= 0.0,
                "malformed byte size: " + std::string(text));
  std::string_view suffix(ptr, static_cast<std::size_t>(end - ptr));
  while (!suffix.empty() && suffix.front() == ' ') suffix.remove_prefix(1);

  std::uint64_t mult = 1;
  if (!suffix.empty()) {
    const char unit = static_cast<char>(std::toupper(suffix.front()));
    switch (unit) {
      case 'B': mult = 1; break;
      case 'K': mult = KiB; break;
      case 'M': mult = MiB; break;
      case 'G': mult = GiB; break;
      case 'T': mult = 1024ULL * GiB; break;
      default:
        MQS_CHECK_MSG(false, "unknown byte suffix: " + std::string(text));
    }
    // Remainder must be one of "", "B", "iB" (case-insensitive).
    std::string_view rest = suffix.substr(1);
    const bool ok = rest.empty() ||
                    (rest.size() == 1 && (rest[0] == 'B' || rest[0] == 'b')) ||
                    (rest.size() == 2 && (rest[0] == 'i' || rest[0] == 'I') &&
                     (rest[1] == 'B' || rest[1] == 'b'));
    MQS_CHECK_MSG(ok && !(unit == 'B' && !rest.empty()),
                  "malformed byte suffix: " + std::string(text));
  }
  return static_cast<std::uint64_t>(std::llround(value * static_cast<double>(mult)));
}

std::string formatBytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB",
                                                       "TB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  if (v == std::floor(v)) {
    os << static_cast<std::uint64_t>(v) << units[u];
  } else {
    os.precision(1);
    os << std::fixed << v << units[u];
  }
  return os.str();
}

}  // namespace mqs
