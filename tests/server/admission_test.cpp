// Admission-control properties of QueryServer (DESIGN.md §11), driven
// directly through submit() so the invariants are checked without the wire
// in the way:
//
//  * conservation — every offered query settles in exactly one fate
//    (completed, failed, rejected, shed), under randomized burst pressure;
//  * the admission queue never exceeds its configured bound;
//  * per-client quotas cap a flooding client while an idle client's next
//    query is always admitted;
//  * deadline shedding refuses doomed queries (QueryShed, record.shed)
//    instead of spending compute on them.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "server/query_server.hpp"
#include "storage/delayed_source.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::server {
namespace {

using vm::VMOp;
using vm::VMPredicate;

constexpr std::uint64_t kSeed = 2002;

/// Fate tally for a batch of futures, settled by waiting them all out.
/// submit() never throws on overload — rejection arrives through the
/// future, exactly like it arrives through the wire as a Rejected frame.
struct Fates {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t shed = 0;
  std::size_t rejectedQueueFull = 0;
  std::size_t rejectedQuota = 0;

  [[nodiscard]] std::size_t rejected() const {
    return rejectedQueueFull + rejectedQuota;
  }
};

Fates settle(std::vector<std::future<QueryResult>>& futures) {
  Fates fates;
  for (auto& f : futures) {
    // share() holds the result state across the handlers: future::get()
    // drops it before a catch body runs, letting the worker's promise
    // teardown race the exception reads (TSan cannot see the runtime's
    // exception refcount; see net_server.cpp for the full rationale).
    std::shared_future<QueryResult> settled = f.share();
    try {
      (void)settled.get();
      ++fates.completed;
    } catch (const QueryShed&) {
      ++fates.shed;
    } catch (const QueryFailure&) {
      ++fates.failed;
    } catch (const QueryRejected& e) {
      if (e.reason() == RejectReason::QueueFull) {
        ++fates.rejectedQueueFull;
      } else {
        ++fates.rejectedQuota;
      }
    }
  }
  return fates;
}

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest()
      : layout_(1024, 1024, 96),
        slide_(layout_, kSeed),
        slow_(slide_, storage::DiskModel{.seekOverheadSec = 0.002,
                                         .sequentialOverheadSec = 0.002,
                                         .bytesPerSecond = 200.0 * 1024 *
                                                           1024}),
        exec_(&sem_) {
    dsid_ = sem_.addDataset(layout_);
  }

  ServerConfig config() {
    ServerConfig cfg;
    cfg.threads = 2;
    cfg.policy = "FIFO";
    cfg.dsBytes = 1ULL << 20;  // too small to turn the flood into hits
    cfg.psBytes = 1ULL << 20;
    return cfg;
  }

  /// Server over the delay-wrapped slide: a few ms per page read, so a
  /// submit loop can always out-pace the workers and build a real queue.
  std::unique_ptr<QueryServer> makeServer(ServerConfig cfg) {
    auto server = std::make_unique<QueryServer>(&sem_, &exec_, cfg);
    server->attach(dsid_, &slow_);
    return server;
  }

  query::PredicatePtr pred(std::int64_t x, std::int64_t y,
                           std::int64_t side = 256) {
    return std::make_unique<VMPredicate>(dsid_, Rect::ofSize(x, y, side, side),
                                         4, VMOp::Subsample);
  }

  /// A distinct region per index so the result cache cannot shortcut.
  query::PredicatePtr distinctPred(std::size_t i) {
    const auto x = static_cast<std::int64_t>((i * 128) % 768);
    const auto y = static_cast<std::int64_t>(((i * 128) / 768 * 128) % 768);
    return pred(x, y);
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  storage::DelayedSource slow_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  storage::DatasetId dsid_ = 0;
};

TEST_F(AdmissionTest, ConservationHoldsUnderRandomizedBursts) {
  ServerConfig cfg = config();
  cfg.admissionQueueLimit = 6;
  cfg.maxQueuedPerClient = 4;
  auto server = makeServer(cfg);

  Rng rng(333);
  std::size_t offered = 0;
  std::vector<std::future<QueryResult>> futures;
  for (int burst = 0; burst < 8; ++burst) {
    const auto size = static_cast<std::size_t>(rng.uniformInt(1, 24));
    for (std::size_t i = 0; i < size; ++i) {
      ++offered;
      const int client = static_cast<int>(rng.uniformInt(0, 2));
      futures.push_back(server->submit(distinctPred(offered), client));
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng.uniformInt(0, 12)));
  }
  const Fates fates = settle(futures);

  const AdmissionCounts counts = server->admission().snapshot();
  EXPECT_EQ(counts.offered, offered);
  EXPECT_EQ(counts.rejectedQueueFull, fates.rejectedQueueFull);
  EXPECT_EQ(counts.rejectedQuota, fates.rejectedQuota);
  // Conservation: everything offered settled in exactly one fate.
  EXPECT_EQ(counts.offered, counts.settled());
  EXPECT_EQ(counts.completed, fates.completed);
  EXPECT_EQ(counts.failed, fates.failed);
  EXPECT_EQ(counts.shedDeadline, fates.shed);
  EXPECT_EQ(offered, fates.completed + fates.failed + fates.shed +
                         fates.rejected());
  // The bound held throughout, and pressure actually tested it.
  EXPECT_LE(counts.peakQueueDepth, cfg.admissionQueueLimit);
  EXPECT_GT(counts.peakQueueDepth, 0u);
  EXPECT_GT(fates.rejected(), 0u)
      << "bursts never filled the queue; test vacuous";
  // Drained: no residual quota charges or queue depth.
  EXPECT_EQ(counts.queueDepth, 0u);
  server->shutdown();
}

TEST_F(AdmissionTest, QueueNeverExceedsBoundAndUnboundedServerRejectsNothing) {
  // Control: with no bound configured, the same flood is never rejected.
  auto open = makeServer(config());
  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 40; ++i) {
    futures.push_back(open->submit(distinctPred(i), 0));
  }
  const Fates fates = settle(futures);
  EXPECT_EQ(fates.rejected(), 0u);
  const AdmissionCounts counts = open->admission().snapshot();
  EXPECT_EQ(counts.rejected(), 0u);
  EXPECT_EQ(counts.offered, 40u);
  EXPECT_EQ(counts.offered, counts.settled());
  // With 2 workers dispatching instantly, depth can reach offered-minus-
  // in-service but is unbounded in principle; just confirm it was tracked.
  EXPECT_GT(counts.peakQueueDepth, 0u);
  open->shutdown();
}

TEST_F(AdmissionTest, FloodingClientIsCappedWhileIdleClientIsAdmitted) {
  ServerConfig cfg = config();
  cfg.maxQueuedPerClient = 3;  // no global bound: isolate the quota
  auto server = makeServer(cfg);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 30; ++i) {
    futures.push_back(server->submit(distinctPred(i), /*client=*/7));
  }
  // The idle client's first query must be admitted even while the flood's
  // backlog is still queued — a quota, not a shared penalty.
  auto polite = server->submit(distinctPred(100), /*client=*/8);

  const Fates fates = settle(futures);
  EXPECT_GT(fates.rejectedQuota, 0u)
      << "flood never hit the quota; test vacuous";
  EXPECT_EQ(fates.rejectedQueueFull, 0u);
  EXPECT_NO_THROW((void)polite.get()) << "fair client was rejected";

  const AdmissionCounts counts = server->admission().snapshot();
  EXPECT_EQ(counts.rejectedQuota, fates.rejectedQuota);
  EXPECT_EQ(counts.rejectedQueueFull, 0u);
  EXPECT_EQ(counts.offered, counts.settled());
  server->shutdown();
}

TEST_F(AdmissionTest, ByteQuotaCapsQueuedOutputBytes) {
  ServerConfig cfg = config();
  // One 256x256 zoom-4 result is 64*64*3 bytes; allow ~2 of those queued.
  cfg.maxQueuedBytesPerClient = 2ULL * 64 * 64 * 3 + 1;
  auto server = makeServer(cfg);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 20; ++i) {
    futures.push_back(server->submit(distinctPred(i), 0));
  }
  const Fates fates = settle(futures);
  EXPECT_GT(fates.rejectedQuota, 0u);
  EXPECT_EQ(fates.rejectedQueueFull, 0u);
  EXPECT_EQ(server->admission().snapshot().rejectedQuota,
            fates.rejectedQuota);
  server->shutdown();
}

TEST_F(AdmissionTest, DeadlineSheddingRefusesDoomedQueriesCheaply) {
  ServerConfig cfg = config();
  cfg.threads = 1;
  cfg.queryDeadlineSec = 1e-4;  // everything that waits at all is doomed
  cfg.shedDeadlineMisses = true;
  auto server = makeServer(cfg);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(server->submit(distinctPred(i), 0));
  }
  const Fates fates = settle(futures);
  EXPECT_GT(fates.shed, 0u) << "nothing queued past the deadline";

  const AdmissionCounts counts = server->admission().snapshot();
  EXPECT_EQ(counts.shedDeadline, fates.shed);
  EXPECT_EQ(counts.offered, counts.settled());

  // A shed query is shed, not failed — and never both shed and completed.
  std::size_t shedRecords = 0;
  for (const auto& rec : server->collector().records()) {
    if (rec.shed) {
      ++shedRecords;
      EXPECT_FALSE(rec.failed);
      EXPECT_NE(rec.failureReason.find("deadline"), std::string::npos);
    }
  }
  EXPECT_EQ(shedRecords, fates.shed);
  server->shutdown();
}

TEST_F(AdmissionTest, SheddingOffMeansDeadlineMissesOnlyCount) {
  ServerConfig cfg = config();
  cfg.threads = 1;
  cfg.queryDeadlineSec = 1e-4;
  cfg.shedDeadlineMisses = false;  // observe-only mode
  auto server = makeServer(cfg);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    futures.push_back(server->submit(distinctPred(i), 0));
  }
  const Fates fates = settle(futures);
  const AdmissionCounts counts = server->admission().snapshot();
  EXPECT_EQ(counts.shedDeadline, 0u);
  EXPECT_EQ(fates.shed, 0u);
  EXPECT_GT(counts.deadlineMissed, 0u) << "misses should still be counted";
  EXPECT_EQ(counts.offered, counts.settled());
  server->shutdown();
}

}  // namespace
}  // namespace mqs::server
