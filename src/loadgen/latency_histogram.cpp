#include "loadgen/latency_histogram.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace mqs::loadgen {

std::size_t LatencyHistogram::slotOf(std::uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<std::size_t>(nanos);
  // nanos in [2^k, 2^(k+1)) with k >= kSubBucketBits: keep the top
  // kSubBucketBits bits after the leading one as the linear sub-index.
  const int k = 63 - std::countl_zero(nanos);
  const int shift = k - kSubBucketBits;
  const auto sub = static_cast<std::size_t>((nanos >> shift) &
                                            (kSubBuckets - 1));
  return ((static_cast<std::size_t>(k) - kSubBucketBits + 1)
          << kSubBucketBits) +
         sub;
}

std::uint64_t LatencyHistogram::slotUpperBound(std::size_t slot) {
  if (slot < kSubBuckets) return slot;  // exact range
  const std::size_t group = slot >> kSubBucketBits;      // >= 1
  const std::size_t sub = slot & (kSubBuckets - 1);
  const int k = static_cast<int>(group) + kSubBucketBits - 1;
  const int shift = k - kSubBucketBits;
  // Lowest value in the bucket, plus the bucket width minus one.
  const std::uint64_t lo =
      (1ULL << k) + (static_cast<std::uint64_t>(sub) << shift);
  return lo + (1ULL << shift) - 1;
}

void LatencyHistogram::record(std::uint64_t nanos) {
  ++counts_[slotOf(nanos)];
  ++count_;
  sum_ += nanos;
  if (nanos > max_) max_ = nanos;
}

double LatencyHistogram::meanNanos() const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::percentileNanos(double p) const {
  MQS_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0;
  // Rank of the percentile sample, 1-based (nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    cumulative += counts_[slot];
    if (cumulative >= target) return slotUpperBound(slot);
  }
  return max_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kSlots; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

std::string LatencyHistogram::toJson() const {
  std::string out = "{\"count\":" + std::to_string(count_) +
                    ",\"sumNanos\":" + std::to_string(sum_) +
                    ",\"maxNanos\":" + std::to_string(max_) + ",\"buckets\":[";
  bool first = true;
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    if (counts_[slot] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(slot) + ',' + std::to_string(counts_[slot]) +
           ']';
  }
  out += "]}";
  return out;
}

}  // namespace mqs::loadgen
