#include "sched/graph.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/check.hpp"
#include "sched/state.hpp"

namespace mqs::sched {

SchedulingGraph::SchedulingGraph(const query::QuerySemantics* semantics)
    : semantics_(semantics) {
  MQS_CHECK(semantics_ != nullptr);
}

const SchedulingGraph::Node& SchedulingGraph::node(NodeId n) const {
  auto it = nodes_.find(n);
  MQS_CHECK_MSG(it != nodes_.end(), "unknown scheduling-graph node");
  return it->second;
}

SchedulingGraph::Node& SchedulingGraph::node(NodeId n) {
  auto it = nodes_.find(n);
  MQS_CHECK_MSG(it != nodes_.end(), "unknown scheduling-graph node");
  return it->second;
}

NodeId SchedulingGraph::insert(query::PredicatePtr predicate) {
  MQS_CHECK(predicate != nullptr);
  const NodeId id = nextId_++;
  Node fresh;
  fresh.predicate = std::move(predicate);
  fresh.state = QueryState::Waiting;
  fresh.outBytes = semantics_->qoutsize(*fresh.predicate);
  fresh.inBytes = semantics_->qinputsize(*fresh.predicate);
  fresh.arrival = nextArrival_++;
  const Rect bbox = fresh.predicate->boundingBox();

  // Connect to every node with a usable transformation in either direction.
  // Overlap requires intersecting bounding boxes, so the spatial index
  // narrows the candidate set (§4: graph updates are incremental).
  std::vector<NodeId> candidates;
  spatial_.queryIntersecting(
      bbox, [&](const Rect&, std::uint64_t v) {
        candidates.push_back(static_cast<NodeId>(v));
      });
  for (NodeId k : candidates) {
    Node& other = node(k);
    // e(k, id): the new query reuses k's result.
    const double ovKtoNew =
        semantics_->overlap(*other.predicate, *fresh.predicate);
    if (ovKtoNew > 0.0) {
      const double w = ovKtoNew * static_cast<double>(other.outBytes);
      other.out.push_back(Edge{id, ovKtoNew, w});
      fresh.in.push_back(Edge{k, ovKtoNew, w});
    }
    // e(id, k): k can reuse the new query's result.
    const double ovNewToK =
        semantics_->overlap(*fresh.predicate, *other.predicate);
    if (ovNewToK > 0.0) {
      const double w = ovNewToK * static_cast<double>(fresh.outBytes);
      fresh.out.push_back(Edge{k, ovNewToK, w});
      other.in.push_back(Edge{id, ovNewToK, w});
    }
  }

  spatial_.insert(bbox, id);
  nodes_.emplace(id, std::move(fresh));
  return id;
}

void SchedulingGraph::setState(NodeId n, QueryState s) { node(n).state = s; }

void SchedulingGraph::remove(NodeId n) {
  auto it = nodes_.find(n);
  MQS_CHECK_MSG(it != nodes_.end(), "remove of unknown node");
  MQS_CHECK_MSG(it->second.state != QueryState::Executing,
                "cannot remove an executing query");
  Node& victim = it->second;
  auto dropPeerEdges = [n](std::vector<Edge>& edges) {
    std::erase_if(edges, [n](const Edge& e) { return e.peer == n; });
  };
  for (const Edge& e : victim.out) dropPeerEdges(node(e.peer).in);
  for (const Edge& e : victim.in) dropPeerEdges(node(e.peer).out);
  for (const NodeId peer : victim.foldOut) std::erase(node(peer).foldIn, n);
  for (const NodeId peer : victim.foldIn) std::erase(node(peer).foldOut, n);
  const bool erased = spatial_.erase(victim.predicate->boundingBox(), n);
  MQS_DCHECK(erased);
  (void)erased;
  nodes_.erase(it);
}

bool SchedulingGraph::contains(NodeId n) const { return nodes_.contains(n); }

QueryState SchedulingGraph::state(NodeId n) const { return node(n).state; }

const query::Predicate& SchedulingGraph::predicate(NodeId n) const {
  return *node(n).predicate;
}

std::uint64_t SchedulingGraph::qoutsize(NodeId n) const {
  return node(n).outBytes;
}

std::uint64_t SchedulingGraph::qinputsize(NodeId n) const {
  return node(n).inBytes;
}

std::uint64_t SchedulingGraph::arrivalSeq(NodeId n) const {
  return node(n).arrival;
}

const std::vector<Edge>& SchedulingGraph::outEdges(NodeId n) const {
  return node(n).out;
}

const std::vector<Edge>& SchedulingGraph::inEdges(NodeId n) const {
  return node(n).in;
}

bool SchedulingGraph::addFoldEdge(NodeId owner, NodeId subscriber) {
  MQS_CHECK_MSG(owner != subscriber, "a query cannot fold into its own scan");
  Node& o = node(owner);
  Node& s = node(subscriber);
  if (std::find(o.foldOut.begin(), o.foldOut.end(), subscriber) !=
      o.foldOut.end()) {
    return false;  // one edge per (owner, subscriber) pair
  }
  o.foldOut.push_back(subscriber);
  s.foldIn.push_back(owner);
  return true;
}

const std::vector<NodeId>& SchedulingGraph::foldSubscribers(
    NodeId owner) const {
  return node(owner).foldOut;
}

const std::vector<NodeId>& SchedulingGraph::foldOwners(
    NodeId subscriber) const {
  return node(subscriber).foldIn;
}

std::size_t SchedulingGraph::foldEdgeCount() const {
  std::size_t total = 0;
  for (const auto& [id, nd] : nodes_) total += nd.foldOut.size();
  return total;
}

std::vector<NodeId> SchedulingGraph::neighbors(NodeId n) const {
  const Node& nd = node(n);
  std::vector<NodeId> out;
  out.reserve(nd.out.size() + nd.in.size());
  for (const Edge& e : nd.out) out.push_back(e.peer);
  for (const Edge& e : nd.in) out.push_back(e.peer);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SchedulingGraph::forEachNode(
    const std::function<void(NodeId)>& fn) const {
  for (const auto& [id, nd] : nodes_) fn(id);
}

std::size_t SchedulingGraph::edgeCount() const {
  std::size_t total = 0;
  for (const auto& [id, nd] : nodes_) total += nd.out.size();
  return total;
}

void SchedulingGraph::writeDot(std::ostream& os) const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, nd] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  auto color = [](QueryState s) {
    switch (s) {
      case QueryState::Waiting: return "lightyellow";
      case QueryState::Executing: return "lightblue";
      case QueryState::Cached: return "palegreen";
      case QueryState::SwappedOut: return "lightgray";
      case QueryState::Failed: return "lightpink";
    }
    return "white";
  };

  os << "digraph scheduling_graph {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, style=filled];\n";
  for (const NodeId id : ids) {
    const Node& nd = nodes_.at(id);
    os << "  q" << id << " [fillcolor=" << color(nd.state) << ", label=\"q"
       << id << " [" << toString(nd.state) << "]\\n"
       << nd.predicate->describe() << "\"];\n";
  }
  for (const NodeId id : ids) {
    for (const Edge& e : nodes_.at(id).out) {
      os << "  q" << id << " -> q" << e.peer << " [label=\"" << std::fixed
         << std::setprecision(2) << e.overlap << " / "
         << static_cast<std::uint64_t>(e.weight) << "B\"];\n";
    }
    // Fold edges (owner → subscriber) render dashed: shared-scan structure,
    // not Eq. 4 reuse weight.
    for (const NodeId sub : nodes_.at(id).foldOut) {
      os << "  q" << id << " -> q" << sub
         << " [style=dashed, color=gray40, label=\"fold\"];\n";
    }
  }
  os << "}\n";
}

bool SchedulingGraph::checkInvariants() const {
  for (const auto& [id, nd] : nodes_) {
    for (const Edge& e : nd.out) {
      if (e.weight < 0.0 || e.overlap <= 0.0 || e.overlap > 1.0) return false;
      auto pit = nodes_.find(e.peer);
      if (pit == nodes_.end()) return false;
      // Mirror in-edge must exist with the same weight.
      const auto& peerIn = pit->second.in;
      const bool mirrored =
          std::any_of(peerIn.begin(), peerIn.end(), [&](const Edge& m) {
            return m.peer == id && m.weight == e.weight &&
                   m.overlap == e.overlap;
          });
      if (!mirrored) return false;
    }
    for (const Edge& e : nd.in) {
      if (!nodes_.contains(e.peer)) return false;
    }
    // Fold edges: no self-edges, peers resident, strict mirror symmetry.
    for (const NodeId sub : nd.foldOut) {
      if (sub == id) return false;
      auto pit = nodes_.find(sub);
      if (pit == nodes_.end()) return false;
      const auto& peerIn = pit->second.foldIn;
      if (std::find(peerIn.begin(), peerIn.end(), id) == peerIn.end()) {
        return false;
      }
    }
    for (const NodeId owner : nd.foldIn) {
      if (owner == id || !nodes_.contains(owner)) return false;
      const auto& peerOut = nodes_.at(owner).foldOut;
      if (std::find(peerOut.begin(), peerOut.end(), id) == peerOut.end()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace mqs::sched
