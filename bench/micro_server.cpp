// Micro-benchmarks of the *threaded* runtime: end-to-end latency of the
// three fundamental paths a query can take — cold (all disk), page-space
// warm (disk cached, recompute), and data-store hit (pure projection).
#include <benchmark/benchmark.h>

#include "server/query_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

namespace {

using namespace mqs;

struct Rig {
  vm::VMSemantics semantics;
  std::unique_ptr<storage::SyntheticSlideSource> slide;
  std::unique_ptr<vm::VMExecutor> executor;
  std::unique_ptr<server::QueryServer> server;

  explicit Rig(bool cachingEnabled, std::uint64_t psBytes = 256ULL << 20) {
    const auto id = semantics.addDataset(index::ChunkLayout(4096, 4096, 146));
    slide = std::make_unique<storage::SyntheticSlideSource>(
        semantics.layout(id), 7);
    executor = std::make_unique<vm::VMExecutor>(&semantics);
    server::ServerConfig cfg;
    cfg.threads = 2;
    cfg.policy = "CF";
    cfg.dataStoreEnabled = cachingEnabled;
    cfg.dsBytes = 256ULL << 20;
    cfg.psBytes = psBytes;
    server = std::make_unique<server::QueryServer>(&semantics, executor.get(),
                                                   cfg);
    server->attach(id, slide.get());
  }
};

vm::VMPredicate probe(std::int64_t x) {
  return vm::VMPredicate(0, Rect::ofSize(x, 0, 512, 512), 4,
                         vm::VMOp::Average);
}

void BM_ServerDataStoreHit(benchmark::State& state) {
  Rig rig(true);
  (void)rig.server->execute(probe(0).clone(), 0);  // prime the DS
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(0).clone(), 0));
  }
  state.SetBytesProcessed(state.iterations() * 128 * 128 * 3);
}
BENCHMARK(BM_ServerDataStoreHit);

void BM_ServerPageSpaceWarm(benchmark::State& state) {
  Rig rig(false);  // no DS: recompute every time, pages stay cached
  (void)rig.server->execute(probe(0).clone(), 0);  // prime the PS
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(0).clone(), 0));
  }
  state.SetBytesProcessed(state.iterations() * 2048 * 2048 * 3);
}
BENCHMARK(BM_ServerPageSpaceWarm);

void BM_ServerColdPath(benchmark::State& state) {
  // No result cache, one-page page space: every execute takes the full
  // index + source-read + compute path.
  Rig rig(false, /*psBytes=*/1);
  std::int64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.server->execute(probe(x).clone(), 0));
    x = (x + 512) % 2048;
  }
  state.SetBytesProcessed(state.iterations() * 2048 * 2048 * 3);
}
BENCHMARK(BM_ServerColdPath);

}  // namespace
