file(REMOVE_RECURSE
  "libmqs_sched.a"
)
