# Empty compiler generated dependencies file for mqs_sched.
# This may be replaced when dependencies are built.
