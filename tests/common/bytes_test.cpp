#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace mqs {
namespace {

TEST(ParseBytes, PlainNumbers) {
  EXPECT_EQ(parseBytes("0"), 0u);
  EXPECT_EQ(parseBytes("123"), 123u);
  EXPECT_EQ(parseBytes("123B"), 123u);
}

TEST(ParseBytes, BinarySuffixes) {
  EXPECT_EQ(parseBytes("1KB"), 1024u);
  EXPECT_EQ(parseBytes("64KB"), 64u * 1024);
  EXPECT_EQ(parseBytes("32MB"), 32u * 1024 * 1024);
  EXPECT_EQ(parseBytes("2GB"), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(parseBytes("1TB"), 1ull << 40);
}

TEST(ParseBytes, IecSuffixesAndCase) {
  EXPECT_EQ(parseBytes("1KiB"), 1024u);
  EXPECT_EQ(parseBytes("1kib"), 1024u);
  EXPECT_EQ(parseBytes("3mb"), 3u * 1024 * 1024);
  EXPECT_EQ(parseBytes("1k"), 1024u);
}

TEST(ParseBytes, FractionalValues) {
  EXPECT_EQ(parseBytes("1.5KB"), 1536u);
  EXPECT_EQ(parseBytes("0.5MB"), 512u * 1024);
}

TEST(ParseBytes, RejectsMalformed) {
  EXPECT_THROW(parseBytes(""), CheckFailure);
  EXPECT_THROW(parseBytes("abc"), CheckFailure);
  EXPECT_THROW(parseBytes("12XB"), CheckFailure);
  EXPECT_THROW(parseBytes("12KBs"), CheckFailure);
  EXPECT_THROW(parseBytes("-5KB"), CheckFailure);
}

TEST(FormatBytes, RoundTripReadable) {
  EXPECT_EQ(formatBytes(0), "0B");
  EXPECT_EQ(formatBytes(512), "512B");
  EXPECT_EQ(formatBytes(1024), "1KB");
  EXPECT_EQ(formatBytes(64ull * 1024 * 1024), "64MB");
  EXPECT_EQ(formatBytes(1536), "1.5KB");
}

}  // namespace
}  // namespace mqs
