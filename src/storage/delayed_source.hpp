// DataSource decorator adding modeled device latency to real reads.
//
// The synthetic slide generator is effectively instant, which makes I/O
// blocking invisible in the threaded runtime. Wrapping it in DelayedSource
// makes every page read cost what the disk model says it should, so the
// threaded server exhibits realistic stalls (request merging, blocked
// queries) in tests and examples.
#pragma once

#include <chrono>
#include <thread>

#include "storage/data_source.hpp"
#include "storage/disk_model.hpp"

namespace mqs::storage {

class DelayedSource final : public DataSource {
 public:
  DelayedSource(const DataSource& inner, DiskModel model)
      : inner_(inner), model_(model) {}

  [[nodiscard]] PageId pageCount() const override {
    return inner_.pageCount();
  }
  [[nodiscard]] std::size_t pageBytes(PageId page) const override {
    return inner_.pageBytes(page);
  }
  void readPage(PageId page, std::span<std::byte> out) const override {
    const double seconds = model_.serviceTime(inner_.pageBytes(page));
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    inner_.readPage(page, out);
  }

 private:
  const DataSource& inner_;
  DiskModel model_;
};

}  // namespace mqs::storage
