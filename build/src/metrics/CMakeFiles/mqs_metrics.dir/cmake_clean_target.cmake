file(REMOVE_RECURSE
  "libmqs_metrics.a"
)
