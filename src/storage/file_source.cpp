#include "storage/file_source.hpp"

#include <cstring>

#include "common/check.hpp"

namespace mqs::storage {

FileSource::FileSource(std::filesystem::path path, index::ChunkLayout layout)
    : path_(std::move(path)), layout_(std::move(layout)) {
  offsets_.reserve(layout_.chunkCount() + 1);
  std::uint64_t off = 0;
  for (PageId p = 0; p < layout_.chunkCount(); ++p) {
    offsets_.push_back(off);
    off += layout_.chunkBytes(p);
  }
  offsets_.push_back(off);

  file_ = std::fopen(path_.string().c_str(), "rb");
  MQS_CHECK_MSG(file_ != nullptr, "cannot open " + path_.string());
  std::fseek(file_, 0, SEEK_END);
  const auto size = static_cast<std::uint64_t>(std::ftell(file_));
  MQS_CHECK_MSG(size == off, "file size mismatch for " + path_.string());
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

PageId FileSource::pageCount() const { return layout_.chunkCount(); }

std::size_t FileSource::pageBytes(PageId page) const {
  return layout_.chunkBytes(page);
}

std::uint64_t FileSource::pageOffset(PageId page) const {
  MQS_CHECK(page < offsets_.size() - 1);
  return offsets_[page];
}

void FileSource::readPage(PageId page, std::span<std::byte> out) const {
  const std::size_t n = pageBytes(page);
  MQS_CHECK(out.size() >= n);
  MutexLock lock(ioMutex_);
  MQS_CHECK(std::fseek(file_, static_cast<long>(pageOffset(page)), SEEK_SET) ==
            0);
  const std::size_t got = std::fread(out.data(), 1, n, file_);
  MQS_CHECK_MSG(got == n, "short read from " + path_.string());
}

std::uint64_t FileSource::materialize(const DataSource& source,
                                      const std::filesystem::path& path) {
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  MQS_CHECK_MSG(f != nullptr, "cannot create " + path.string());
  std::uint64_t total = 0;
  std::vector<std::byte> buf;
  for (PageId p = 0; p < source.pageCount(); ++p) {
    const std::size_t n = source.pageBytes(p);
    buf.resize(n);
    source.readPage(p, buf);
    const std::size_t put = std::fwrite(buf.data(), 1, n, f);
    MQS_CHECK_MSG(put == n, "short write to " + path.string());
    total += n;
  }
  MQS_CHECK(std::fclose(f) == 0);
  return total;
}

}  // namespace mqs::storage
