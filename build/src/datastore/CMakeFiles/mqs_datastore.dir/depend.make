# Empty dependencies file for mqs_datastore.
# This may be replaced when dependencies are built.
