#include "sim/primitives.hpp"

#include "common/check.hpp"

namespace mqs::sim {

void Trigger::fire() {
  if (fired_) return;
  fired_ = true;
  // Resume via the event queue so firing inside arbitrary code cannot
  // reenter the waiters' frames synchronously.
  for (auto h : waiters_) {
    sim_->scheduleAfter(0.0, [h] { h.resume(); });
  }
  waiters_.clear();
}

Semaphore::Semaphore(Simulator& sim, int permits)
    : sim_(&sim), capacity_(permits), permits_(permits) {
  MQS_CHECK(permits > 0);
}

void Semaphore::accrue() {
  const int busy = capacity_ - permits_;
  busyIntegral_ += static_cast<double>(busy) * (sim_->now() - lastChange_);
  lastChange_ = sim_->now();
}

void Semaphore::take() {
  accrue();
  MQS_DCHECK(permits_ > 0);
  --permits_;
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    // Hand the permit to the head waiter; busy count is unchanged.
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->scheduleAfter(0.0, [h] { h.resume(); });
    return;
  }
  accrue();
  ++permits_;
  MQS_CHECK_MSG(permits_ <= capacity_, "semaphore over-release");
}

double Semaphore::busyIntegral() const {
  const int busy = capacity_ - permits_;
  return busyIntegral_ +
         static_cast<double>(busy) * (sim_->now() - lastChange_);
}

Task<void> FcfsServer::service(Time duration) {
  co_await gate_.acquire();
  co_await sim_->delay(duration);
  ++served_;
  gate_.release();
}

}  // namespace mqs::sim
