#include "datastore/data_store.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace mqs::datastore {

namespace {
/// Attempts to grow a shard's slice before declaring a blob uncacheable.
/// Bounded because concurrent inserts can consume borrowed budget between
/// the unlock and the relock.
constexpr int kMaxBorrowAttempts = 4;

/// Retries of the multi-shard lookup when the winner is evicted between
/// the scan and the commit (another thread's insert pressure).
constexpr int kMaxLookupAttempts = 3;

#if MQS_LOCK_ORDER
/// Debug reentrancy guard for the eviction-listener contract: set to the
/// reporting store while its listener runs on this thread; any public
/// entry into the *same* store from inside the callback aborts (the same
/// print-and-abort discipline as the lock-rank checker).
thread_local const void* tlsListenerActiveStore = nullptr;
#endif
}  // namespace

void DataStore::guardReentry() const {
#if MQS_LOCK_ORDER
  if (tlsListenerActiveStore == this) {
    std::fprintf(stderr,
                 "eviction-listener reentrancy: the listener called back "
                 "into the data store it was notified by\n");
    std::abort();
  }
#endif
}

DataStore::DataStore(std::uint64_t capacityBytes,
                     const query::QuerySemantics* semantics,
                     EvictionPolicy eviction, int shards)
    : DataStore(capacityBytes, semantics, makeEvictionRanker(eviction),
                shards) {}

DataStore::DataStore(std::uint64_t capacityBytes,
                     const query::QuerySemantics* semantics,
                     std::unique_ptr<EvictionRanker> ranker, int shards)
    : capacity_(capacityBytes), ranker_(std::move(ranker)),
      semantics_(semantics) {
  MQS_CHECK(semantics_ != nullptr);
  MQS_CHECK(ranker_ != nullptr);
  MQS_CHECK_MSG(shards >= 1 && shards <= kMaxShards,
                "shard count out of range");
  const auto n = std::bit_ceil(static_cast<std::size_t>(shards));
  shardMask_ = n - 1;
  // Equal slices; the remainder seeds the spare pool so every byte of the
  // budget is accounted for (sum of slices + spare == capacity).
  const std::uint64_t slice = capacityBytes / n;
  spare_.store(capacityBytes - slice * n, std::memory_order_relaxed);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, slice));
  }
}

void DataStore::setEvictionListener(
    std::function<void(EvictedBlob)> listener) {
  MutexLock lock(mu_);
  evictionListener_ = std::move(listener);
}

DataStore::Shard& DataStore::shardFor(const query::Predicate& predicate) const {
  const Rect b = predicate.boundingBox();
  // Blobs land on shards by their region: spatially distinct results from
  // concurrent workloads spread across locks, while an identical region
  // always rehashes to the same shard.
  std::uint64_t h = 0;
  const auto mix = [&h](std::int64_t v) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  };
  mix(b.x0);
  mix(b.y0);
  mix(b.x1);
  mix(b.y1);
  return *shards_[h & shardMask_];
}

void DataStore::reportEvictions(std::vector<EvictedBlob>& evicted) {
  if (evicted.empty()) return;
  std::function<void(EvictedBlob)> listener;
  {
    MutexLock lock(mu_);
    listener = evictionListener_;
  }
  if (!listener) return;
#if MQS_LOCK_ORDER
  const void* const saved = tlsListenerActiveStore;
  tlsListenerActiveStore = this;
#endif
  for (auto& blob : evicted) listener(std::move(blob));
#if MQS_LOCK_ORDER
  tlsListenerActiveStore = saved;
#endif
}

std::uint64_t DataStore::takeFromSpare(std::uint64_t want) {
  std::uint64_t cur = spare_.load(std::memory_order_relaxed);
  while (cur > 0) {
    const std::uint64_t take = std::min(cur, want);
    if (spare_.compare_exchange_weak(cur, cur - take,
                                     std::memory_order_relaxed)) {
      return take;
    }
  }
  return 0;
}

std::uint64_t DataStore::borrowBudget(std::uint64_t want, const Shard& home,
                                      std::vector<EvictedBlob>& evicted) {
  std::uint64_t got = takeFromSpare(want);
  for (const auto& sp : shards_) {
    if (got >= want) break;
    Shard& t = *sp;
    if (&t == &home) continue;
    MutexLock lock(t.mu);
    // Global pressure: idle headroom alone may not be enough, so evict
    // policy-order victims from this shard too — the sharded equivalent
    // of the single store evicting across its whole population.
    while (t.capacity - t.resident < want - got) {
      const BlobId victim = pickVictimLocked(t);
      if (victim == 0) break;
      eraseLocked(t, victim, /*countEviction=*/true);
    }
    const std::uint64_t take = std::min(t.capacity - t.resident, want - got);
    t.capacity -= take;
    got += take;
    for (auto& e : t.pending) evicted.push_back(std::move(e));
    t.pending.clear();
  }
  return got;
}

std::optional<BlobId> DataStore::insert(query::PredicatePtr predicate,
                                        std::vector<std::byte> payload,
                                        std::uint64_t logicalBytes,
                                        double recomputeCostSec) {
  MQS_CHECK(predicate != nullptr);
  guardReentry();
  if (recomputeCostSec < 0.0) {
    // Default attribution: the inserting query's accrued COMPUTE/IO_STALL
    // time since its last insert (0 when cost accounting is off).
    recomputeCostSec = (tracer_ != nullptr && tracer_->costAccounting())
                           ? tracer_->takeThreadQueryCost()
                           : 0.0;
  }
  Shard& s = shardFor(*predicate);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  // Blobs evicted to make room; listener runs unlocked.
  std::vector<EvictedBlob> evicted;
  std::optional<BlobId> result;
  if (logicalBytes <= capacity_) {
    for (int attempt = 0; attempt < kMaxBorrowAttempts; ++attempt) {
      std::uint64_t deficit = 0;
      {
        MutexLock lock(s.mu);
        if (makeRoomLocked(s, logicalBytes)) {
          const BlobId id = s.nextSeq++ * shards_.size() + s.index + 1;
          Blob blob;
          blob.predicate = std::move(predicate);
          blob.payload = std::move(payload);
          blob.logicalBytes = logicalBytes;
          blob.recomputeCostSec = recomputeCostSec;
          s.lru.push_front(id);
          blob.lruIt = s.lru.begin();
          s.spatial.insert(blob.predicate->boundingBox(), id);
          s.blobs.emplace(id, std::move(blob));
          s.resident += logicalBytes;
          result = id;
        } else {
          // Everything still resident is pinned; grow the slice instead.
          deficit = s.resident + logicalBytes - s.capacity;
        }
        for (auto& e : s.pending) evicted.push_back(std::move(e));
        s.pending.clear();
      }
      if (result) break;
      // Slice too small: rebalance without holding the home shard (the
      // borrow locks other shards, and two kDataStoreShard locks must
      // never nest).
      const std::uint64_t got = borrowBudget(deficit, s, evicted);
      if (got == 0) break;  // every other byte is pinned or in use
      MutexLock lock(s.mu);
      s.capacity += got;
    }
  }
  if (!result) uncacheable_.fetch_add(1, std::memory_order_relaxed);
  reportEvictions(evicted);
  return result;
}

BlobId DataStore::pickVictimLocked(const Shard& s) const {
  constexpr BlobId kNone = 0;
  if (ranker_->recencyOnly()) {
    // O(1) LRU fast path: the least recently used unpinned blob, no
    // scoring — byte-identical to the historical inline LRU.
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
      const auto bit = s.blobs.find(*it);
      MQS_DCHECK(bit != s.blobs.end());
      if (bit->second.pins == 0) return *it;
    }
    return kNone;
  }
  // Scored rankers: scan candidates for the minimum victimScore, breaking
  // ties toward the LRU end by walking the recency list from least recent
  // to most recent (strict < keeps the earlier = less recent candidate).
  BlobId best = kNone;
  double bestScore = 0.0;
  for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
    const auto bit = s.blobs.find(*it);
    MQS_DCHECK(bit != s.blobs.end());
    const Blob& blob = bit->second;
    if (blob.pins > 0) continue;
    const double score = ranker_->victimScore(
        BlobView{blob.logicalBytes, blob.uses, blob.recomputeCostSec});
    if (best == kNone || score < bestScore) {
      best = *it;
      bestScore = score;
    }
  }
  return best;
}

bool DataStore::makeRoomLocked(Shard& s, std::uint64_t need) {
  // A blob larger than the whole slice can never fit here: skip straight
  // to the budget borrow instead of draining the shard for nothing.
  if (need > s.capacity) return false;
  while (s.resident + need > s.capacity) {
    const BlobId victim = pickVictimLocked(s);
    if (victim == 0) return false;  // everything pinned (or shard empty)
    eraseLocked(s, victim, /*countEviction=*/true);
  }
  return true;
}

void DataStore::eraseLocked(Shard& s, BlobId id, bool countEviction) {
  auto it = s.blobs.find(id);
  if (it == s.blobs.end()) return;
  MQS_CHECK_MSG(it->second.pins == 0, "evicting a pinned blob");
  s.resident -= it->second.logicalBytes;
  s.lru.erase(it->second.lruIt);
  const bool erased =
      s.spatial.erase(it->second.predicate->boundingBox(), id);
  MQS_DCHECK(erased);
  (void)erased;
  if (countEviction) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsEvict);
  }
  // The blob's state moves out with the eviction so the listener can
  // demote it to the spill tier without calling back in.
  s.pending.push_back(EvictedBlob{id, std::move(it->second.predicate),
                                  std::move(it->second.payload),
                                  it->second.logicalBytes,
                                  it->second.recomputeCostSec});
  s.blobs.erase(it);
}

std::optional<DataStore::Match> DataStore::lookup(const query::Predicate& q,
                                                  double minOverlap) {
  return lookupImpl(q, minOverlap, /*pin=*/false);
}

std::optional<DataStore::Match> DataStore::lookupAndPin(
    const query::Predicate& q, double minOverlap) {
  return lookupImpl(q, minOverlap, /*pin=*/true);
}

std::optional<DataStore::Match> DataStore::scanShardLocked(
    const Shard& s, const query::Predicate& q, double minOverlap) const {
  BlobId bestId = 0;
  double bestOverlap = minOverlap;
  bool found = false;
  // Candidate generation goes through the R-tree: overlap needs
  // intersecting bounding boxes, so only spatial matches are scored.
  s.spatial.queryIntersecting(
      q.boundingBox(), [&](const Rect&, std::uint64_t id) {
        const auto it = s.blobs.find(id);
        MQS_DCHECK(it != s.blobs.end());
        const double ov = semantics_->overlap(*it->second.predicate, q);
        if (ov > bestOverlap) {
          bestOverlap = ov;
          bestId = id;
          found = true;
        }
      });
#ifndef NDEBUG
  // Debug cross-check: the linear scan over the shard's blobs must agree
  // with the R-tree candidate path (an overlap > 0 implies intersecting
  // bounding boxes, so the spatial pre-filter may never lose a match).
  double linearBest = minOverlap;
  for (const auto& [id, blob] : s.blobs) {
    linearBest = std::max(linearBest, semantics_->overlap(*blob.predicate, q));
  }
  MQS_DCHECK(linearBest == bestOverlap);
#endif
  if (!found) return std::nullopt;
  return Match{bestId, bestOverlap};
}

void DataStore::commitHitLocked(Shard& s, BlobId id, double overlap,
                                bool pinMatch) {
  auto it = s.blobs.find(id);
  MQS_DCHECK(it != s.blobs.end());
  s.lru.splice(s.lru.begin(), s.lru, it->second.lruIt);
  ++it->second.uses;
  if (pinMatch) ++it->second.pins;
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (overlap >= 1.0) fullHits_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsHit);
}

std::optional<DataStore::Match> DataStore::lookupImpl(
    const query::Predicate& q, double minOverlap, bool pinMatch) {
  guardReentry();
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (shards_.size() == 1) {
    // Single-shard fast path: scan and commit under one lock hold, exactly
    // the pre-shard store.
    Shard& s = *shards_[0];
    MutexLock lock(s.mu);
    const auto m = scanShardLocked(s, q, minOverlap);
    if (!m) {
      if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsMiss);
      return std::nullopt;
    }
    commitHitLocked(s, m->id, m->overlap, pinMatch);
    return m;
  }
  // Multi-shard: scan shards one at a time (raising the floor to the best
  // seen, so ties break toward the earlier shard), then commit the winner
  // under its home lock. The winner can be evicted between the scan and
  // the commit; rescan — a later round sees the next-best blob.
  for (int attempt = 0; attempt < kMaxLookupAttempts; ++attempt) {
    std::optional<Match> best;
    Shard* home = nullptr;
    for (const auto& sp : shards_) {
      Shard& s = *sp;
      MutexLock lock(s.mu);
      const auto m = scanShardLocked(s, q, best ? best->overlap : minOverlap);
      if (m) {
        best = m;
        home = &s;
      }
    }
    if (!best) break;
    MutexLock lock(home->mu);
    if (home->blobs.contains(best->id)) {
      commitHitLocked(*home, best->id, best->overlap, pinMatch);
      return best;
    }
  }
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsMiss);
  return std::nullopt;
}

std::vector<DataStore::Match> DataStore::lookupTopK(const query::Predicate& q,
                                                    std::size_t k,
                                                    double minOverlap) {
  guardReentry();
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (k == 0) return {};
  std::vector<Match> matches;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    MutexLock lock(s.mu);
    [[maybe_unused]] const std::size_t first = matches.size();
    s.spatial.queryIntersecting(
        q.boundingBox(), [&](const Rect&, std::uint64_t id) {
          const auto it = s.blobs.find(id);
          MQS_DCHECK(it != s.blobs.end());
          const double ov = semantics_->overlap(*it->second.predicate, q);
          if (ov > minOverlap) matches.push_back(Match{id, ov});
        });
#ifndef NDEBUG
    double linearBest = minOverlap;
    for (const auto& [id, blob] : s.blobs) {
      linearBest =
          std::max(linearBest, semantics_->overlap(*blob.predicate, q));
    }
    double rtreeBest = minOverlap;
    for (std::size_t i = first; i < matches.size(); ++i) {
      rtreeBest = std::max(rtreeBest, matches[i].overlap);
    }
    MQS_DCHECK(linearBest == rtreeBest);
#endif
  }
  std::sort(matches.begin(), matches.end(), [](const Match& a, const Match& b) {
    if (a.overlap != b.overlap) return a.overlap > b.overlap;
    return a.id > b.id;  // ties toward the newer blob
  });
  if (matches.size() > k) matches.resize(k);
  if (matches.empty() && tracer_ != nullptr) {
    tracer_->counter(trace::CounterKind::DsMiss);
  }
  return matches;
}

void DataStore::noteReuse(BlobId id, double overlap) {
  guardReentry();
  Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  if (it == s.blobs.end()) return;
  s.lru.splice(s.lru.begin(), s.lru, it->second.lruIt);
  ++it->second.uses;
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (overlap >= 1.0) fullHits_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsHit);
}

bool DataStore::contains(BlobId id) const {
  const Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  return s.blobs.contains(id);
}

const query::Predicate& DataStore::predicate(BlobId id) const {
  const Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  MQS_CHECK_MSG(it != s.blobs.end(), "predicate() of absent blob");
  return *it->second.predicate;
}

double DataStore::recomputeCost(BlobId id) const {
  const Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  MQS_CHECK_MSG(it != s.blobs.end(), "recomputeCost() of absent blob");
  return it->second.recomputeCostSec;
}

std::span<const std::byte> DataStore::payload(BlobId id) const {
  const Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  MQS_CHECK_MSG(it != s.blobs.end(), "payload() of absent blob");
  return it->second.payload;
}

void DataStore::pin(BlobId id) {
  guardReentry();
  Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  MQS_CHECK_MSG(it != s.blobs.end(), "pin() of absent blob");
  ++it->second.pins;
}

bool DataStore::tryPin(BlobId id) {
  guardReentry();
  Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  if (it == s.blobs.end()) return false;
  ++it->second.pins;
  return true;
}

void DataStore::unpin(BlobId id) {
  guardReentry();
  Shard& s = shardOf(id);
  MutexLock lock(s.mu);
  auto it = s.blobs.find(id);
  MQS_CHECK_MSG(it != s.blobs.end(), "unpin() of absent blob");
  MQS_CHECK_MSG(it->second.pins > 0, "unbalanced unpin");
  --it->second.pins;
}

void DataStore::erase(BlobId id) {
  guardReentry();
  Shard& s = shardOf(id);
  std::vector<EvictedBlob> evicted;
  {
    MutexLock lock(s.mu);
    eraseLocked(s, id, /*countEviction=*/false);
    evicted.swap(s.pending);
  }
  reportEvictions(evicted);
}

DataStore::Stats DataStore::stats() const {
  Stats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.fullHits = fullHits_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.uncacheable = uncacheable_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t DataStore::residentBytes() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->resident;
  }
  return total;
}

std::size_t DataStore::residentBlobs() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->blobs.size();
  }
  return total;
}

std::size_t DataStore::pinnedBlobs() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    for (const auto& [id, blob] : sp->blobs) {
      if (blob.pins > 0) ++total;
    }
  }
  return total;
}

std::uint64_t DataStore::budgetAccountedBytes() const {
  std::uint64_t total = spare_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    MutexLock lock(sp->mu);
    total += sp->capacity;
  }
  return total;
}

}  // namespace mqs::datastore
