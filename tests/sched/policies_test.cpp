#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sched/graph.hpp"
#include "sched/policy.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::sched {
namespace {

using vm::VMOp;
using vm::VMPredicate;

/// Fixture graph:
///   A = (0,0,512,512) @ zoom 4     qoutsize = 128*128*3 = 49152
///   B = (256,0,512,512) @ zoom 4   qoutsize = 49152
///   C = (0,0,512,512) @ zoom 2     qoutsize = 256*256*3 = 196608
/// Overlaps: A<->B = 0.5 each way; C->A = 0.5, C->B = 0.25 (one-way).
/// Weights: w(A,B) = w(B,A) = 24576; w(C,A) = 98304; w(C,B) = 49152.
class PoliciesTest : public ::testing::Test {
 protected:
  PoliciesTest() {
    (void)sem_.addDataset(index::ChunkLayout(8192, 8192, 128));
    graph_ = std::make_unique<SchedulingGraph>(&sem_);
    a_ = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
    b_ = graph_->insert(pred(Rect::ofSize(256, 0, 512, 512), 4));
    c_ = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 2));
  }

  query::PredicatePtr pred(Rect r, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(0, r, zoom, op);
  }

  vm::VMSemantics sem_;
  std::unique_ptr<SchedulingGraph> graph_;
  NodeId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(PoliciesTest, FixtureWeightsAreAsDocumented) {
  ASSERT_EQ(graph_->qoutsize(a_), 49152u);
  ASSERT_EQ(graph_->qoutsize(c_), 196608u);
  double wca = 0;
  for (const Edge& e : graph_->inEdges(a_)) {
    if (e.peer == c_) wca = e.weight;
  }
  EXPECT_DOUBLE_EQ(wca, 98304.0);
}

TEST_F(PoliciesTest, FifoRanksByArrival) {
  const auto p = makePolicy("FIFO");
  EXPECT_GT(p->rank(*graph_, a_), p->rank(*graph_, b_));
  EXPECT_GT(p->rank(*graph_, b_), p->rank(*graph_, c_));
  EXPECT_FALSE(p->ranksDependOnGraph());
}

TEST_F(PoliciesTest, MufSumsOutgoingWaitingWeights) {
  const auto p = makePolicy("MUF");
  // C feeds both waiting queries: 98304 + 49152.
  EXPECT_DOUBLE_EQ(p->rank(*graph_, c_), 98304.0 + 49152.0);
  // A feeds only B.
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 24576.0);
  // If B starts executing, its usefulness no longer counts for A.
  graph_->setState(b_, QueryState::Executing);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 0.0);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, c_), 98304.0);
}

TEST_F(PoliciesTest, MufPrefersTheMostUseful) {
  const auto p = makePolicy("MUF");
  EXPECT_GT(p->rank(*graph_, c_), p->rank(*graph_, a_));
}

TEST_F(PoliciesTest, FfPenalizesDependencies) {
  const auto p = makePolicy("FF");
  // A depends on B (24576) and C (98304), both waiting.
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), -(24576.0 + 98304.0));
  // C depends on nothing: the "farthest" query.
  EXPECT_DOUBLE_EQ(p->rank(*graph_, c_), 0.0);
  EXPECT_GT(p->rank(*graph_, c_), p->rank(*graph_, a_));
}

TEST_F(PoliciesTest, FfIgnoresCachedDependencies) {
  const auto p = makePolicy("FF");
  graph_->setState(c_, QueryState::Cached);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), -24576.0);
  graph_->setState(b_, QueryState::Executing);
  // Executing dependencies still count (the query could block on them).
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), -24576.0);
}

TEST_F(PoliciesTest, CfRewardsCachedAndDiscountsExecuting) {
  const auto p = makePolicy("CF", 0.2);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 0.0);  // nothing materialized yet
  graph_->setState(c_, QueryState::Cached);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 98304.0);
  graph_->setState(b_, QueryState::Executing);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 98304.0 + 0.2 * 24576.0);
}

TEST_F(PoliciesTest, CfAlphaOutOfRangeThrows) {
  EXPECT_THROW(makePolicy("CF", 0.0), CheckFailure);
  EXPECT_THROW(makePolicy("CF", 1.0), CheckFailure);
}

TEST_F(PoliciesTest, CnbfSubtractsExecutingDependencies) {
  const auto p = makePolicy("CNBF");
  graph_->setState(c_, QueryState::Cached);
  graph_->setState(b_, QueryState::Executing);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 98304.0 - 24576.0);
}

TEST_F(PoliciesTest, CnbfAvoidsBlockingWhereCfDoesNot) {
  // B executing and overlapping A: CF nudges A up (locality), CNBF pushes
  // A down (interlock risk).
  graph_->setState(b_, QueryState::Executing);
  const auto cf = makePolicy("CF", 0.2);
  const auto cnbf = makePolicy("CNBF");
  EXPECT_GT(cf->rank(*graph_, a_), 0.0);
  EXPECT_LT(cnbf->rank(*graph_, a_), 0.0);
}

TEST_F(PoliciesTest, SjfRanksByInputSize) {
  const auto p = makePolicy("SJF");
  const NodeId small =
      graph_->insert(pred(Rect::ofSize(1024, 1024, 128, 128), 4));
  EXPECT_GT(p->rank(*graph_, small), p->rank(*graph_, a_));
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_),
                   -static_cast<double>(graph_->qinputsize(a_)));
  EXPECT_FALSE(p->ranksDependOnGraph());
}

TEST_F(PoliciesTest, CombinedDiscountsCoveredInput) {
  const auto p = makePolicy("COMBINED", 0.2);
  // Nothing cached: behaves like SJF.
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_),
                   -static_cast<double>(graph_->qinputsize(a_)));
  // C cached covers half of A: effective input halves.
  graph_->setState(c_, QueryState::Cached);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_),
                   -static_cast<double>(graph_->qinputsize(a_)) * 0.5);
}

TEST_F(PoliciesTest, CombinedCoverageSaturatesAtOne) {
  const auto p = makePolicy("COMBINED", 0.5);
  // Cache an identical query: coverage 1 -> rank 0 (free job).
  const NodeId dup = graph_->insert(pred(Rect::ofSize(0, 0, 512, 512), 4));
  graph_->setState(dup, QueryState::Cached);
  graph_->setState(c_, QueryState::Cached);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), 0.0);
}

TEST_F(PoliciesTest, FactoryKnowsAllNamesAndRejectsUnknown) {
  for (const auto& name : allPolicyNames()) {
    EXPECT_EQ(makePolicy(name)->name(), name);
  }
  EXPECT_THROW(makePolicy("NOPE"), CheckFailure);
  EXPECT_EQ(paperPolicyNames().size(), 6u);
  EXPECT_EQ(allPolicyNames().size(), 8u);
}

TEST_F(PoliciesTest, AdaptiveStartsAsPureSjf) {
  const auto adaptive = makePolicy("ADAPTIVE", 0.2);
  const auto sjf = makePolicy("SJF");
  graph_->setState(c_, QueryState::Cached);  // coverage exists but untrusted
  EXPECT_DOUBLE_EQ(adaptive->rank(*graph_, a_), sjf->rank(*graph_, a_));
  EXPECT_DOUBLE_EQ(adaptive->rank(*graph_, b_), sjf->rank(*graph_, b_));
}

TEST_F(PoliciesTest, AdaptiveLearnsToTrustReuse) {
  const auto p = makePolicy("ADAPTIVE", 0.2);
  graph_->setState(c_, QueryState::Cached);  // C covers half of A
  const double before = p->rank(*graph_, a_);
  for (int i = 0; i < 50; ++i) p->onQueryOutcome(1.0);
  const double after = p->rank(*graph_, a_);
  // With reuse paying off, covered input is discounted: rank improves.
  EXPECT_GT(after, before);
  // A query with no coverage at all is unaffected by the learned weight
  // (B overlaps cached C, so use a fresh disjoint query).
  const NodeId lone = graph_->insert(pred(Rect::ofSize(4096, 4096, 512, 512), 4));
  EXPECT_DOUBLE_EQ(p->rank(*graph_, lone),
                   -static_cast<double>(graph_->qinputsize(lone)));
}

TEST_F(PoliciesTest, AdaptiveRespondsToIoCongestion) {
  const auto p = makePolicy("ADAPTIVE", 0.2);
  graph_->setState(c_, QueryState::Cached);
  const double idle = p->rank(*graph_, a_);
  p->onResourceSignal(1.0);  // disks saturated: reuse is precious
  const double congested = p->rank(*graph_, a_);
  EXPECT_GT(congested, idle);
  p->onResourceSignal(0.0);
  EXPECT_DOUBLE_EQ(p->rank(*graph_, a_), idle);
}

TEST_F(PoliciesTest, AdaptiveFeedbackSaturates) {
  const auto p = makePolicy("ADAPTIVE", 0.2);
  graph_->setState(c_, QueryState::Cached);
  for (int i = 0; i < 1000; ++i) p->onQueryOutcome(5.0);  // clamped to 1
  p->onResourceSignal(7.0);                               // clamped to 1
  // weight <= 1 and coverage <= 1: rank can never exceed 0.
  EXPECT_LE(p->rank(*graph_, a_), 0.0);
  EXPECT_TRUE(p->ranksDependOnFeedback());
  EXPECT_FALSE(makePolicy("CF", 0.2)->ranksDependOnFeedback());
}

}  // namespace
}  // namespace mqs::sched
