// Figure 4 (a, b): 95%-trimmed mean query response time vs the maximum
// number of concurrent queries (query-server threads), for all six ranking
// strategies, with 64MB Data Store and 32MB Page Space, interactive
// clients. (a) = subsampling (I/O-intensive), (b) = pixel averaging.
#include "bench_common.hpp"
#include "sched/policy.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "fig4");
  ctx.printHeader();

  const auto threadCounts =
      ctx.options().getIntList("threads", {1, 2, 4, 8, 16, 24});

  for (const vm::VMOp op : {vm::VMOp::Subsample, vm::VMOp::Average}) {
    Table table(std::string("Figure 4 — trimmed-mean response time (s) vs #threads, ") +
                bench::opName(op));
    std::vector<std::string> cols = {"threads"};
    for (const auto& p : sched::paperPolicyNames()) cols.push_back(p);
    table.setColumns(cols);

    for (const auto threads : threadCounts) {
      std::vector<double> row;
      for (const auto& policy : sched::paperPolicyNames()) {
        auto cfg =
            ctx.server(policy, static_cast<int>(threads), 64 * MiB, 32 * MiB);
        // --trace-out captures the first (policy, thread-count) run as a
        // Chrome trace — the per-query lifecycle behind this figure.
        const bool traced = ctx.attachTraceSink(cfg);
        const auto result =
            driver::SimExperiment::runInteractive(ctx.workload(op), cfg);
        if (traced) ctx.writeTraceEvents(result.traceEvents);
        row.push_back(result.summary.trimmedResponse);
      }
      table.addRow(std::to_string(threads), row);
    }
    ctx.emit(table);
  }
  return 0;
}
