// Model-based property test: the Data Store against a brute-force
// reference model, under long random sequences of insert / lookup / pin /
// unpin / erase, with LRU eviction tracked exactly.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "datastore/data_store.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::datastore {
namespace {

using vm::VMOp;
using vm::VMPredicate;

/// Reference LRU model tracking exactly what must be resident.
struct Model {
  struct Entry {
    std::uint64_t bytes = 0;
    int pins = 0;
  };
  std::uint64_t capacity = 0;
  std::uint64_t resident = 0;
  std::list<BlobId> lru;  // front = most recent
  std::map<BlobId, Entry> entries;

  void touch(BlobId id) {
    lru.remove(id);
    lru.push_front(id);
  }

  bool insert(BlobId id, std::uint64_t bytes) {
    if (bytes > capacity) return false;
    while (resident + bytes > capacity) {
      // Find the least-recent unpinned entry.
      BlobId victim = 0;
      bool found = false;
      for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
        if (entries[*it].pins == 0) {
          victim = *it;
          found = true;
          break;
        }
      }
      if (!found) return false;
      resident -= entries[victim].bytes;
      entries.erase(victim);
      lru.remove(victim);
    }
    entries[id] = Entry{bytes, 0};
    lru.push_front(id);
    resident += bytes;
    return true;
  }
};

TEST(DataStoreProperty, MatchesReferenceLruModel) {
  vm::VMSemantics sem;
  (void)sem.addDataset(index::ChunkLayout(1 << 16, 1 << 16, 146));

  constexpr std::uint64_t kCapacity = 10'000;
  DataStore ds(kCapacity, &sem);
  Model model;
  model.capacity = kCapacity;

  Rng rng(0xDA7A);
  std::vector<BlobId> live;  // ids we believe are resident
  std::set<BlobId> pinned;
  BlobId nextExpected = 1;  // DataStore ids are sequential from 1

  // Disjoint regions so overlap-based lookups target exactly one blob.
  auto regionFor = [](std::uint64_t id) {
    const auto i = static_cast<std::int64_t>(id);
    return Rect::ofSize((i % 256) * 256, (i / 256) * 256, 64, 64);
  };

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.45) {
      // Insert a new blob with a random logical size.
      const auto bytes = static_cast<std::uint64_t>(rng.uniformInt(100, 3000));
      const BlobId probeId = nextExpected;
      auto pred = std::make_unique<VMPredicate>(0, regionFor(probeId), 1,
                                                VMOp::Subsample);
      const auto got = ds.insert(std::move(pred), {}, bytes);
      const bool expectOk = model.insert(probeId, bytes);
      ASSERT_EQ(got.has_value(), expectOk) << "step " << step;
      if (got) {
        ASSERT_EQ(*got, probeId);
        live.push_back(*got);
        ++nextExpected;
      }
    } else if (roll < 0.75 && !live.empty()) {
      // Lookup by exact predicate of a random previously-inserted blob.
      const BlobId id = live[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1))];
      const VMPredicate probe(0, regionFor(id), 1, VMOp::Subsample);
      const auto m = ds.lookup(probe);
      const bool expectHit = model.entries.contains(id);
      ASSERT_EQ(m.has_value(), expectHit) << "step " << step << " id " << id;
      if (m) {
        ASSERT_EQ(m->id, id);
        model.touch(id);
      }
    } else if (roll < 0.85 && !live.empty()) {
      // Toggle a pin on a random blob (if resident).
      const BlobId id = live[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1))];
      if (pinned.contains(id)) {
        ds.unpin(id);
        if (auto it = model.entries.find(id); it != model.entries.end()) {
          --it->second.pins;
        }
        pinned.erase(id);
      } else if (ds.tryPin(id)) {
        ASSERT_TRUE(model.entries.contains(id));
        ++model.entries[id].pins;
        pinned.insert(id);
      } else {
        ASSERT_FALSE(model.entries.contains(id));
      }
    } else if (!live.empty()) {
      // Erase a random unpinned blob.
      const BlobId id = live[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(live.size()) - 1))];
      if (!pinned.contains(id)) {
        ds.erase(id);
        if (auto it = model.entries.find(id); it != model.entries.end()) {
          model.resident -= it->second.bytes;
          model.entries.erase(it);
          model.lru.remove(id);
        }
      }
    }

    // Global agreement.
    ASSERT_EQ(ds.residentBytes(), model.resident) << "step " << step;
    ASSERT_EQ(ds.residentBlobs(), model.entries.size()) << "step " << step;
  }

  // Final deep agreement: every model entry resident, everything else not.
  for (const auto& [id, e] : model.entries) {
    EXPECT_TRUE(ds.contains(id));
  }
  for (const BlobId id : live) {
    EXPECT_EQ(ds.contains(id), model.entries.contains(id));
  }
  // Leave no pins behind (sanity of the test itself).
  for (const BlobId id : pinned) ds.unpin(id);
}

}  // namespace
}  // namespace mqs::datastore
