#include "sim/vm_model.hpp"

#include "common/check.hpp"

namespace mqs::sim {

VMModel::VMModel(const vm::VMSemantics* semantics, double cpuPerByteSubsample,
                 double cpuPerByteAverage)
    : sem_(semantics),
      cpuPerByteSubsample_(cpuPerByteSubsample),
      cpuPerByteAverage_(cpuPerByteAverage) {
  MQS_CHECK(sem_ != nullptr);
}

std::vector<ChunkDemand> VMModel::demandFor(
    const query::Predicate& part) const {
  const vm::VMPredicate& q = vm::asVM(part);
  const index::ChunkLayout& layout = sem_->layout(q.dataset());
  const double cpuPerByte = q.op() == vm::VMOp::Subsample
                                ? cpuPerByteSubsample_
                                : cpuPerByteAverage_;
  std::vector<ChunkDemand> out;
  for (const index::ChunkRef& chunk :
       layout.chunksIntersecting(q.region())) {
    const Rect clip = Rect::intersection(chunk.rect, q.region());
    out.push_back(ChunkDemand{
        storage::PageKey{q.dataset(), chunk.id},
        static_cast<std::size_t>(chunk.rect.area()) * 3,
        static_cast<double>(clip.area() * 3) * cpuPerByte});
  }
  return out;
}

}  // namespace mqs::sim
