#include "pagespace/page_space_manager.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "index/chunk_layout.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::pagespace {
namespace {

using storage::PageKey;

/// Wraps a source, counting device reads and optionally stalling them so
/// tests can provoke concurrent fetches of the same page.
class CountingSource final : public storage::DataSource {
 public:
  explicit CountingSource(const storage::DataSource& inner,
                          std::chrono::milliseconds delay = {})
      : inner_(inner), delay_(delay) {}

  [[nodiscard]] storage::PageId pageCount() const override {
    return inner_.pageCount();
  }
  [[nodiscard]] std::size_t pageBytes(storage::PageId p) const override {
    return inner_.pageBytes(p);
  }
  void readPage(storage::PageId p, std::span<std::byte> out) const override {
    ++reads_;
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    inner_.readPage(p, out);
  }

  [[nodiscard]] int reads() const { return reads_.load(); }

 private:
  const storage::DataSource& inner_;
  std::chrono::milliseconds delay_;
  mutable std::atomic<int> reads_{0};
};

class PageSpaceManagerTest : public ::testing::Test {
 protected:
  PageSpaceManagerTest()
      : layout_(256, 256, 64), slide_(layout_, /*seed=*/9) {}

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
};

TEST_F(PageSpaceManagerTest, FetchReturnsCorrectBytes) {
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &slide_);
  const auto page = ps.fetch(PageKey{0, 0});
  ASSERT_EQ(page->size(), layout_.chunkBytes(0));
  // Spot-check the first pixel against the pure synthetic function.
  EXPECT_EQ(static_cast<std::uint8_t>((*page)[0]),
            storage::syntheticPixel(9, 0, 0, 0));
  EXPECT_EQ(static_cast<std::uint8_t>((*page)[2]),
            storage::syntheticPixel(9, 0, 0, 2));
}

TEST_F(PageSpaceManagerTest, SecondFetchIsAHit) {
  CountingSource counting(slide_);
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &counting);
  (void)ps.fetch(PageKey{0, 3});
  (void)ps.fetch(PageKey{0, 3});
  EXPECT_EQ(counting.reads(), 1);
  const auto s = ps.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.merged, 0u);
}

TEST_F(PageSpaceManagerTest, EvictionUnderTinyBudget) {
  CountingSource counting(slide_);
  // Budget for roughly one page only.
  PageSpaceManager ps(layout_.chunkBytes(0) + 10);
  ps.attach(0, &counting);
  (void)ps.fetch(PageKey{0, 0});
  (void)ps.fetch(PageKey{0, 1});  // evicts page 0
  (void)ps.fetch(PageKey{0, 0});  // must re-read
  EXPECT_EQ(counting.reads(), 3);
  EXPECT_GE(ps.stats().evictions, 1u);
}

TEST_F(PageSpaceManagerTest, EvictedPageStaysAliveForHolder) {
  PageSpaceManager ps(layout_.chunkBytes(0) + 10);
  ps.attach(0, &slide_);
  const auto held = ps.fetch(PageKey{0, 0});
  (void)ps.fetch(PageKey{0, 1});  // evicts page 0 from the cache
  // Our shared_ptr still owns the bytes.
  EXPECT_EQ(static_cast<std::uint8_t>((*held)[0]),
            storage::syntheticPixel(9, 0, 0, 0));
}

TEST_F(PageSpaceManagerTest, ConcurrentDuplicateRequestsAreMerged) {
  CountingSource slow(slide_, std::chrono::milliseconds(50));
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &slow);

  constexpr int kThreads = 8;
  std::vector<PagePtr> results(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { results[i] = ps.fetch(PageKey{0, 5}); });
    }
  }
  // One device read; everyone else merged onto it.
  EXPECT_EQ(slow.reads(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->size(), layout_.chunkBytes(5));
  }
  const auto s = ps.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.merged, kThreads - 1u);
}

TEST_F(PageSpaceManagerTest, ConcurrentDistinctPagesAllCorrect) {
  PageSpaceManager ps(1 << 22);
  ps.attach(0, &slide_);
  std::atomic<bool> ok{true};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (storage::PageId p = 0; p < layout_.chunkCount(); ++p) {
          const auto page = ps.fetch(PageKey{0, (p + static_cast<storage::PageId>(t) * 3) %
                                                     layout_.chunkCount()});
          const Rect r = layout_.chunkRect((p + static_cast<storage::PageId>(t) * 3) %
                                           layout_.chunkCount());
          if (static_cast<std::uint8_t>((*page)[0]) !=
              storage::syntheticPixel(9, r.x0, r.y0, 0)) {
            ok = false;
          }
        }
      });
    }
  }
  EXPECT_TRUE(ok.load());
}

TEST_F(PageSpaceManagerTest, MultipleDatasets) {
  storage::SyntheticSlideSource other(layout_, /*seed=*/77);
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &slide_);
  ps.attach(1, &other);
  const auto a = ps.fetch(PageKey{0, 0});
  const auto b = ps.fetch(PageKey{1, 0});
  EXPECT_EQ(static_cast<std::uint8_t>((*a)[0]),
            storage::syntheticPixel(9, 0, 0, 0));
  EXPECT_EQ(static_cast<std::uint8_t>((*b)[0]),
            storage::syntheticPixel(77, 0, 0, 0));
}

TEST_F(PageSpaceManagerTest, ThreadDeviceByteAccounting) {
  PageSpaceManager ps(1 << 20);
  ps.attach(0, &slide_);
  PageSpaceManager::resetThreadCounters();
  (void)ps.fetch(PageKey{0, 0});
  EXPECT_EQ(PageSpaceManager::threadDeviceBytes(), layout_.chunkBytes(0));
  (void)ps.fetch(PageKey{0, 0});  // hit: no extra device bytes
  EXPECT_EQ(PageSpaceManager::threadDeviceBytes(), layout_.chunkBytes(0));
}

}  // namespace
}  // namespace mqs::pagespace
