# Empty compiler generated dependencies file for vm_executor_test.
# This may be replaced when dependencies are built.
