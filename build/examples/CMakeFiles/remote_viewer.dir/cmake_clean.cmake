file(REMOVE_RECURSE
  "CMakeFiles/remote_viewer.dir/remote_viewer.cpp.o"
  "CMakeFiles/remote_viewer.dir/remote_viewer.cpp.o.d"
  "remote_viewer"
  "remote_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
