// Small RGB image helpers: container, PPM export, and a reference renderer
// that computes a VM query's expected output directly from the synthetic
// pixel function (independent of chunking, caching, and projection — the
// ground truth for correctness tests and examples).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "vm/vm_predicate.hpp"

namespace mqs::vm {

struct ImageRGB {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::vector<std::uint8_t> pixels;  ///< row-major RGB

  ImageRGB() = default;
  ImageRGB(std::int64_t w, std::int64_t h)
      : width(w), height(h),
        pixels(static_cast<std::size_t>(w * h * 3), 0) {}

  [[nodiscard]] std::uint8_t& at(std::int64_t x, std::int64_t y, int c) {
    return pixels[static_cast<std::size_t>((y * width + x) * 3 + c)];
  }
  [[nodiscard]] std::uint8_t at(std::int64_t x, std::int64_t y, int c) const {
    return pixels[static_cast<std::size_t>((y * width + x) * 3 + c)];
  }

  /// Reinterpret a raw result buffer (as produced by VMExecutor) as pixels.
  static ImageRGB fromBytes(std::span<const std::byte> bytes,
                            std::int64_t width, std::int64_t height);
};

/// Binary PPM (P6) writer; returns success.
bool writePpm(const ImageRGB& img, const std::filesystem::path& path);

/// Direct evaluation of a VM query against the synthetic slide `seed`,
/// bypassing the whole runtime. Matches VMExecutor::execute bit-for-bit
/// (same sampling anchors and rounding).
ImageRGB renderReference(const VMPredicate& q, std::uint64_t seed);

/// Largest absolute per-channel difference between two equal-sized images.
int maxAbsDiff(const ImageRGB& a, const ImageRGB& b);

}  // namespace mqs::vm
