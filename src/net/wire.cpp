#include "net/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace mqs::net {

void Writer::raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  bytes_.insert(bytes_.end(), b, b + n);
}

void Reader::raw(void* p, std::size_t n) {
  MQS_CHECK_MSG(offset_ + n <= data_.size(), "wire underrun");
  std::memcpy(p, data_.data() + offset_, n);
  offset_ += n;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint16_t Reader::u16() {
  std::uint16_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::int64_t Reader::i64() {
  std::int64_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::string Reader::str() {
  const std::uint16_t n = u16();
  std::string s(n, '\0');
  raw(s.data(), n);
  return s;
}
std::vector<std::byte> Reader::blob() {
  const std::uint64_t n = u64();
  MQS_CHECK_MSG(n <= remaining(), "wire blob underrun");
  std::vector<std::byte> out(static_cast<std::size_t>(n));
  raw(out.data(), out.size());
  return out;
}

std::vector<std::byte> packFrame(FrameType type,
                                 std::span<const std::byte> payload) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  std::vector<std::byte> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool writeAll(int fd, std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool readAll(int fd, std::span<std::byte> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::recv(fd, out.data() + got, out.size() - got, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool readFrame(int fd, Frame& out, std::uint32_t maxPayload) {
  std::byte header[5];
  if (!readAll(fd, header)) return false;
  Reader r(header);
  const std::uint32_t len = r.u32();
  const auto type = static_cast<FrameType>(r.u8());
  if (len > maxPayload) return false;
  out.type = type;
  out.payload.assign(len, std::byte{0});
  return len == 0 || readAll(fd, out.payload);
}

}  // namespace mqs::net
