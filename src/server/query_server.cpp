#include "server/query_server.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/logging.hpp"

namespace mqs::server {

namespace {
/// Combined contention counts for a subsystem spanning two lock ranks
/// (its coarse lock plus the sharded variant).
lockstats::Counts sumCounts(lockorder::Rank a, lockorder::Rank b) {
  const auto ca = lockstats::countsFor(a);
  const auto cb = lockstats::countsFor(b);
  return lockstats::Counts{ca.contended + cb.contended,
                           ca.waitNanos + cb.waitNanos};
}
}  // namespace

QueryServer::QueryServer(const query::QuerySemantics* semantics,
                         const query::QueryExecutor* executor,
                         ServerConfig cfg)
    : sem_(semantics),
      exec_(executor),
      cfg_(std::move(cfg)),
      scheduler_(semantics, sched::makePolicy(cfg_.policy, cfg_.alpha),
                 cfg_.incrementalRanking),
      ds_(cfg_.dsBytes, semantics,
          datastore::parseEvictionPolicy(cfg_.dsEviction), cfg_.dsShards),
      ps_(cfg_.psBytes, cfg_.psIoThreads,
          pagespace::RetryPolicy{cfg_.ioRetryAttempts,
                                 cfg_.ioRetryBackoffSec},
          cfg_.psShards),
      planner_(semantics,
               query::PlannerConfig{
                   .dataStoreEnabled = cfg_.dataStoreEnabled,
                   .allowWaitOnExecuting = cfg_.allowWaitOnExecuting,
                   .maxReuseSources = cfg_.maxReuseSources,
                   .candidatePoolSize = std::max(8, 2 * cfg_.maxReuseSources),
                   .maxNestedReuseDepth = cfg_.maxNestedReuseDepth,
                   .minMarginalBytes = 1,
                   // Worker threads race with evictions: the planner pins
                   // the blobs it selects until their steps execute.
                   .pinSources = true,
               }),
      epoch_(std::chrono::steady_clock::now()) {
  MQS_CHECK(sem_ != nullptr && exec_ != nullptr);
  MQS_CHECK(cfg_.threads >= 1);
  MQS_CHECK(cfg_.queryDeadlineSec >= 0.0);
  if (cfg_.traceSink != nullptr) {
    tracer_ = cfg_.traceSink.get();
    // All components stamp events with the server's experiment clock, the
    // same clock behind every QueryRecord timestamp.
    tracer_->setClock(
        [](void* ctx) {
          return static_cast<const QueryServer*>(ctx)->nowSeconds();
        },
        this);
    scheduler_.setTracer(tracer_);
    ds_.setTracer(tracer_);
    ps_.setTracer(tracer_);
    lockWaitBaseSched_ = lockstats::countsFor(lockorder::Rank::kScheduler);
    lockWaitBaseDs_ = sumCounts(lockorder::Rank::kDataStore,
                                lockorder::Rank::kDataStoreShard);
    lockWaitBasePs_ = sumCounts(lockorder::Rank::kPageSpace,
                                lockorder::Rank::kPageSpaceShard);
  }
  // Cost-aware eviction and the spill tier's restore-vs-recompute gate both
  // need every blob stamped with its traced recompute cost. With a trace
  // sink attached, its Compute/IoStall spans feed the ledger for free;
  // without one, a private *disabled* tracer does the accounting (one
  // relaxed load per span site, no event buffering).
  const bool needCost = datastore::parseEvictionPolicy(cfg_.dsEviction) ==
                            datastore::EvictionPolicy::CostAware ||
                        cfg_.spillBytes > 0;
  if (needCost) {
    if (tracer_ == nullptr) {
      ownedTracer_ = std::make_unique<trace::Tracer>();
      ownedTracer_->setEnabled(false);
      ownedTracer_->setClock(
          [](void* ctx) {
            return static_cast<const QueryServer*>(ctx)->nowSeconds();
          },
          this);
      tracer_ = ownedTracer_.get();
      scheduler_.setTracer(tracer_);
      ds_.setTracer(tracer_);
      ps_.setTracer(tracer_);
    }
    tracer_->setCostAccounting(true);
  }
  if (cfg_.spillBytes > 0) {
    spill_ = std::make_unique<datastore::SpillTier>(cfg_.spillBytes, sem_,
                                                    cfg_.spillDir);
    if (tracer_ != nullptr) spill_->setTracer(tracer_);
  }
  ds_.setEvictionListener(
      [this](datastore::EvictedBlob blob) { onBlobEvicted(std::move(blob)); });
  workers_.reserve(static_cast<std::size_t>(cfg_.threads));
  for (int i = 0; i < cfg_.threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

QueryServer::~QueryServer() { shutdown(); }

double QueryServer::nowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void QueryServer::attach(storage::DatasetId dataset,
                         const storage::DataSource* source) {
  ps_.attach(dataset, source);
}

std::future<QueryResult> QueryServer::submit(query::PredicatePtr pred,
                                             int client) {
  MQS_CHECK(pred != nullptr);
  PendingQuery pq;
  pq.record.client = client;
  pq.record.predicate = pred->describe();
  pq.record.arrivalTime = nowSeconds();
  pq.record.inputBytes = sem_->qinputsize(*pred);
  pq.record.outputBytes = sem_->qoutsize(*pred);
  auto future = pq.promise.get_future();

  {
    MutexLock lock(mu_);
    if (stopping_) {
      pq.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("query server is shutting down")));
      return future;
    }
    admission_.onOffered();
    // Bounded admission queue (DESIGN.md §11): a saturated server turns
    // work away at the door instead of letting queue wait grow without
    // bound. Rejection costs the client one round trip and the server
    // nothing downstream of this lock.
    if (cfg_.admissionQueueLimit > 0 &&
        queuedCount_ >= cfg_.admissionQueueLimit) {
      admission_.onRejected(RejectReason::QueueFull);
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::AdmissionRejected);
      }
      pq.promise.set_exception(std::make_exception_ptr(QueryRejected(
          RejectReason::QueueFull,
          "admission queue full (" + std::to_string(queuedCount_) + " of " +
              std::to_string(cfg_.admissionQueueLimit) + " slots queued)")));
      return future;
    }
    // Per-client fairness quota: one greedy client cannot occupy the whole
    // admission queue and starve the rest. A client with nothing queued is
    // always allowed one query, even past the byte quota — otherwise a
    // single large query could never run at all.
    if (client >= 0 &&
        (cfg_.maxQueuedPerClient > 0 || cfg_.maxQueuedBytesPerClient > 0)) {
      if (const auto it = clientQuota_.find(client);
          it != clientQuota_.end() && it->second.queued > 0) {
        const ClientQuota& q = it->second;
        const bool overQueries = cfg_.maxQueuedPerClient > 0 &&
                                 q.queued >= cfg_.maxQueuedPerClient;
        const bool overBytes = cfg_.maxQueuedBytesPerClient > 0 &&
                               q.queuedBytes + pq.record.outputBytes >
                                   cfg_.maxQueuedBytesPerClient;
        if (overQueries || overBytes) {
          admission_.onRejected(RejectReason::ClientQuota);
          if (tracer_ != nullptr) {
            tracer_->counter(trace::CounterKind::AdmissionRejected);
            tracer_->counter(trace::CounterKind::AdmissionQuotaHit);
          }
          pq.promise.set_exception(std::make_exception_ptr(QueryRejected(
              RejectReason::ClientQuota,
              std::string("client quota exceeded (") +
                  (overQueries ? "queued queries" : "queued bytes") +
                  " for client " + std::to_string(client) + ")")));
          return future;
        }
      }
    }
    const sched::NodeId node = scheduler_.submit(std::move(pred));
    pq.record.queryId = node;
    if (client >= 0) {
      ClientQuota& q = clientQuota_[client];
      ++q.queued;
      q.queuedBytes += pq.record.outputBytes;
    }
    ++queuedCount_;
    admission_.onAdmitted(queuedCount_);
    if (tracer_ != nullptr) {
      tracer_->counter(trace::CounterKind::AdmissionAdmitted);
      tracer_->counter(trace::CounterKind::AdmissionQueueDepth, queuedCount_);
    }
    latches_.emplace(node, std::make_shared<DoneLatch>());
    pending_.emplace(node, std::move(pq));
  }
  workAvailable_.notifyOne();
  return future;
}

void QueryServer::releaseClientQuota(const metrics::QueryRecord& rec) {
  if (rec.client < 0) return;
  const auto it = clientQuota_.find(rec.client);
  if (it == clientQuota_.end()) return;
  ClientQuota& q = it->second;
  q.queued = std::max(0, q.queued - 1);
  q.queuedBytes -= std::min(q.queuedBytes, rec.outputBytes);
  // Drop drained entries so the map stays bounded by *active* clients.
  if (q.queued == 0) clientQuota_.erase(it);
}

QueryResult QueryServer::execute(query::PredicatePtr pred, int client) {
  return submit(std::move(pred), client).get();
}

void QueryServer::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  workAvailable_.notifyAll();
  workers_.clear();  // jthread joins
  if (tracer_ != nullptr) {
    // Per-subsystem lock-contention exposure for this run: value = blocked
    // acquisitions since construction (workers are joined, so the deltas
    // are final).
    const auto emit = [this](trace::CounterKind kind,
                             const lockstats::Counts& base,
                             const lockstats::Counts& now) {
      if (now.contended > base.contended) {
        tracer_->counter(kind, now.contended - base.contended);
      }
    };
    emit(trace::CounterKind::LockWaitSched, lockWaitBaseSched_,
         lockstats::countsFor(lockorder::Rank::kScheduler));
    emit(trace::CounterKind::LockWaitDs, lockWaitBaseDs_,
         sumCounts(lockorder::Rank::kDataStore,
                   lockorder::Rank::kDataStoreShard));
    emit(trace::CounterKind::LockWaitPs, lockWaitBasePs_,
         sumCounts(lockorder::Rank::kPageSpace,
                   lockorder::Rank::kPageSpaceShard));
  }
}

void QueryServer::workerLoop() {
  for (;;) {
    sched::NodeId node = sched::kInvalidNode;
    PendingQuery pq;
    {
      MutexLock lock(mu_);
      // Explicit while-loop (not a predicate lambda): the thread-safety
      // analysis cannot see lock state inside a lambda body.
      while (!stopping_ && scheduler_.waitingCount() == 0) {
        workAvailable_.wait(mu_);
      }
      if (scheduler_.waitingCount() == 0) {
        if (stopping_) return;
        continue;
      }
      auto n = scheduler_.dequeue();
      if (!n) continue;  // raced with another worker
      node = *n;
      auto it = pending_.find(node);
      MQS_CHECK_MSG(it != pending_.end(), "dequeued query without record");
      pq = std::move(it->second);
      pending_.erase(it);
      // The quota charge covers submit -> dispatch: once a worker owns the
      // query it no longer crowds other clients out of the queue.
      if (queuedCount_ > 0) --queuedCount_;
      admission_.onDispatched(queuedCount_);
      releaseClientQuota(pq.record);
      if (tracer_ != nullptr) {
        tracer_->counter(trace::CounterKind::AdmissionQueueDepth,
                         queuedCount_);
      }
    }
    runQuery(node, std::move(pq));
  }
}

void QueryServer::checkDeadline(const metrics::QueryRecord& rec) const {
  if (cfg_.queryDeadlineSec <= 0.0) return;
  const double elapsed = nowSeconds() - rec.arrivalTime;
  if (elapsed > cfg_.queryDeadlineSec) {
    throw QueryFailure("query deadline exceeded (" + std::to_string(elapsed) +
                       "s > " + std::to_string(cfg_.queryDeadlineSec) + "s)");
  }
}

bool QueryServer::shouldShed(const metrics::QueryRecord& rec,
                             std::string& reason) const {
  if (!cfg_.shedDeadlineMisses || cfg_.queryDeadlineSec <= 0.0) return false;
  const double elapsed = nowSeconds() - rec.arrivalTime;
  if (elapsed > cfg_.queryDeadlineSec) {
    reason = "query shed: deadline exceeded before dispatch (" +
             std::to_string(elapsed) + "s > " +
             std::to_string(cfg_.queryDeadlineSec) + "s)";
    return true;
  }
  if (cfg_.predictiveShedding) {
    const double rate = ewmaSecPerByte_.load(std::memory_order_relaxed);
    if (rate > 0.0) {
      const double predicted = rate * static_cast<double>(rec.outputBytes);
      if (elapsed + predicted > cfg_.queryDeadlineSec) {
        reason = "query shed: predicted deadline miss (" +
                 std::to_string(elapsed) + "s elapsed + " +
                 std::to_string(predicted) + "s predicted > " +
                 std::to_string(cfg_.queryDeadlineSec) + "s)";
        return true;
      }
    }
  }
  return false;
}

void QueryServer::noteServiceRate(double secPerByte) {
  if (!(secPerByte > 0.0)) return;  // also rejects NaN
  constexpr double kAlpha = 0.2;
  double cur = ewmaSecPerByte_.load(std::memory_order_relaxed);
  double next = secPerByte;
  do {
    next = cur == 0.0 ? secPerByte : cur + kAlpha * (secPerByte - cur);
  } while (!ewmaSecPerByte_.compare_exchange_weak(
      cur, next, std::memory_order_relaxed));
}

std::shared_future<void> QueryServer::doneFutureOf(sched::NodeId node) {
  MutexLock lock(mu_);
  auto it = latches_.find(node);
  MQS_CHECK_MSG(it != latches_.end(), "no completion latch for node");
  return it->second->future;
}

std::vector<std::byte> QueryServer::executePlan(query::ReusePlan plan,
                                                const query::Predicate& pred,
                                                int depth,
                                                metrics::QueryRecord& rec) {
  const auto d8 = static_cast<std::uint8_t>(depth);
  // Raw fast path: a plan without projection steps is a single
  // ComputeRemainder step covering `pred` — run the executor directly
  // (registered as a shared scan at depth 0, DESIGN.md §14).
  if (!plan.hasReuse()) {
    trace::SpanScope compute(tracer_, rec.queryId, trace::SpanKind::Compute,
                             d8);
    pagespace::ScanRegistry::ScanGuard scan =
        beginScanIfFolding(pred, rec, depth);
    std::vector<std::byte> raw = exec_->execute(pred, ps_);
    publishScan(scan, raw);
    return raw;
  }

  std::vector<std::byte> out(sem_->qoutsize(pred));
  std::size_t pinIdx = 0;  // plan.pins parallels the ProjectFromCached steps
  for (query::PlanStep& step : plan.steps) {
    switch (step.kind) {
      case query::PlanStep::Kind::ProjectFromCached: {
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagCachedSource);
        // The planner pinned the blob (pinSources), so it is still
        // resident; release the pin as soon as the projection is done.
        exec_->project(*step.sourcePred, ds_.payload(step.blob), pred, out);
        MQS_DCHECK(pinIdx < plan.pins.size());
        plan.pins[pinIdx++].release();
        rec.bytesReused += step.bytesCovered;
        break;
      }
      case query::PlanStep::Kind::WaitAndProjectFromExecuting: {
        // The PROJECT span covers the whole step — including the fallback
        // compute below — so a query's depth-0 PROJECT count always equals
        // its recorded reuseSources, even when a source vanished.
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered,
                                 trace::kFlagExecutingSource);
        // Block on the older executing query's completion latch; the
        // thread-pool slot stays occupied while we wait (§4).
        rec.reusedExecuting = true;
        const double t0 = nowSeconds();
        {
          trace::SpanScope wait(tracer_, rec.queryId,
                                trace::SpanKind::WaitSource, d8);
          doneFutureOf(step.node).wait();
        }
        rec.blockedTime += nowSeconds() - t0;
        checkDeadline(rec);

        datastore::BlobId blob = 0;
        bool haveBlob = false;
        {
          MutexLock lock(mu_);
          if (auto it = nodeBlob_.find(step.node); it != nodeBlob_.end()) {
            blob = it->second;
            haveBlob = true;
          }
        }
        if (haveBlob && ds_.tryPin(blob)) {
          datastore::DataStore::PinGuard pin(ds_, blob);
          exec_->project(*step.sourcePred, ds_.payload(blob), pred, out);
          pin.release();
          ds_.noteReuse(blob, step.overlap);
          rec.bytesReused += step.bytesCovered;
        } else {
          // The source failed, produced an uncacheable result, or was
          // evicted before we could read it: compute this step's share of
          // the output from raw data instead (its coveredParts tile it).
          for (const query::PredicatePtr& cp : step.coveredParts) {
            const std::vector<std::byte> sub =
                computePart(*cp, depth + 1, rec);
            exec_->project(*cp, sub, pred, out);
          }
        }
        break;
      }
      case query::PlanStep::Kind::RestoreFromSpill: {
        // The PROJECT span covers restore + projection (and the fallback
        // compute if the entry vanished); the disk read inside restore()
        // is the tier's own cost, not a Page Space IO_STALL, so a query's
        // IO_STALL span total still equals its recorded ioStallTime.
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered, trace::kFlagSpillSource);
        std::optional<datastore::EvictedBlob> restoredBlob =
            spill_ != nullptr ? spill_->restore(step.spillId) : std::nullopt;
        if (restoredBlob) {
          exec_->project(*step.sourcePred, restoredBlob->payload, pred, out);
          rec.bytesReused += step.bytesCovered;
          // Re-insert with the blob's *original* traced cost: the restore
          // must not consume (or be billed to) this query's ledger.
          const std::uint64_t lb = restoredBlob->logicalBytes;
          const double rc = restoredBlob->recomputeCostSec;
          const std::optional<datastore::BlobId> nb =
              ds_.insert(std::move(restoredBlob->predicate),
                         std::move(restoredBlob->payload), lb, rc);
          MutexLock lock(mu_);
          const auto nIt = spillNode_.find(step.spillId);
          if (nIt != spillNode_.end()) {
            const sched::NodeId rn = nIt->second;
            spillNode_.erase(nIt);
            nodeSpill_.erase(rn);
            if (nb) {
              nodeBlob_[rn] = *nb;
              blobNode_[*nb] = rn;
              scheduler_.restored(rn);
            } else {
              // Insert refused (duplicate or over budget): the spill entry
              // is spent, so the node's result is gone for good.
              scheduler_.retired(rn);
            }
          }
          // With no mapped node this was a sub-query blob: no scheduler
          // transition, it serves reuse straight from the store again.
        } else {
          // Dropped (or restored by a racing query) between planning and
          // execution: compute this step's share from raw data instead.
          for (const query::PredicatePtr& cp : step.coveredParts) {
            const std::vector<std::byte> sub =
                computePart(*cp, depth + 1, rec);
            exec_->project(*cp, sub, pred, out);
          }
        }
        break;
      }
      case query::PlanStep::Kind::FoldIntoScan: {
        // The PROJECT span covers the whole step — including the fallback
        // below — so depth-0 PROJECT count always equals reuseSources even
        // when the scan resolved before we could join.
        trace::SpanScope project(tracer_, rec.queryId,
                                 trace::SpanKind::Project, d8,
                                 step.bytesCovered, trace::kFlagFoldSource);
        pagespace::ScanRegistry::ScanPtr scan =
            ps_.scanRegistry().subscribe(step.scanId);
        bool projected = false;
        if (scan != nullptr) {
          // The fold is real: annotate the graph (rank feedback sees the
          // shared scan once, on the owner) and block on the scan latch —
          // the owner is strictly older (candidatesFor enforced it), so
          // this wait keeps the wait graph acyclic.
          scheduler_.noteFold(rec.queryId, step.node);
          if (tracer_ != nullptr) {
            tracer_->counter(trace::CounterKind::FoldHit);
          }
          rec.reusedExecuting = true;
          const double t0 = nowSeconds();
          {
            trace::SpanScope wait(tracer_, rec.queryId,
                                  trace::SpanKind::WaitSource, d8);
            scan->done.wait();
          }
          rec.blockedTime += nowSeconds() - t0;
          checkDeadline(rec);
          if (scan->state == pagespace::ScanRegistry::ScanState::Published &&
              scan->payload != nullptr) {
            exec_->project(*step.sourcePred, *scan->payload, pred, out);
            rec.bytesReused += step.bytesCovered;
            if (tracer_ != nullptr) {
              tracer_->counter(trace::CounterKind::ScanBytesShared,
                               static_cast<double>(scan->payload->size()));
            }
            projected = true;
          }
        }
        if (!projected) {
          // The scan settled before we joined, or its owner failed: replan
          // this step's share independently from raw data (the §14 failure
          // contract — a subscriber never hangs and never inherits the
          // owner's failure when its own region is computable).
          for (const query::PredicatePtr& cp : step.coveredParts) {
            const std::vector<std::byte> sub =
                computePart(*cp, depth + 1, rec);
            exec_->project(*cp, sub, pred, out);
          }
        }
        break;
      }
      case query::PlanStep::Kind::ComputeRemainder: {
        trace::SpanScope compute(tracer_, rec.queryId,
                                 trace::SpanKind::Compute, d8,
                                 step.bytesCovered);
        pagespace::ScanRegistry::ScanGuard scan =
            beginScanIfFolding(*step.pred, rec, depth);
        const std::vector<std::byte> sub =
            computePart(*step.pred, depth + 1, rec);
        publishScan(scan, sub);
        exec_->project(*step.pred, sub, pred, out);
        break;
      }
    }
  }
  return out;
}

std::vector<std::byte> QueryServer::computePart(const query::Predicate& part,
                                                int depth,
                                                metrics::QueryRecord& rec) {
  // Remainder parts never wait on executing queries (no graph node, and
  // blocking inside a nested computation would stack latch waits).
  query::ReusePlan plan = [&] {
    trace::SpanScope planSpan(tracer_, rec.queryId, trace::SpanKind::Plan,
                              static_cast<std::uint8_t>(depth));
    return planner_.plan(part, ds_, nullptr, sched::kInvalidNode, depth);
  }();
  std::vector<std::byte> out = executePlan(std::move(plan), part, depth, rec);
  if (cfg_.dataStoreEnabled && cfg_.cacheSubqueryResults) {
    (void)ds_.insert(part.clone(), std::vector<std::byte>(out),
                     sem_->qoutsize(part));
  }
  return out;
}

pagespace::ScanRegistry::ScanGuard QueryServer::beginScanIfFolding(
    const query::Predicate& pred, const metrics::QueryRecord& rec,
    int depth) {
  if (!cfg_.foldScans || !cfg_.allowWaitOnExecuting || depth != 0) return {};
  return ps_.scanRegistry().beginScan(pred, rec.queryId,
                                      scheduler_.execSeq(rec.queryId));
}

void QueryServer::publishScan(pagespace::ScanRegistry::ScanGuard& scan,
                              std::span<const std::byte> bytes) {
  if (!scan.active()) return;
  const int subscribers = scan.publish(bytes);
  if (subscribers > 0 && tracer_ != nullptr) {
    tracer_->counter(trace::CounterKind::FoldSubscribers, subscribers);
  }
}

std::optional<datastore::BlobId> QueryServer::cacheResult(
    const query::Predicate& pred, std::span<const std::byte> out) {
  if (!cfg_.dataStoreEnabled) return std::nullopt;
  return ds_.insert(pred.clone(),
                    std::vector<std::byte>(out.begin(), out.end()),
                    sem_->qoutsize(pred));
}

std::vector<std::byte> QueryServer::computeQuery(sched::NodeId node,
                                                 const query::Predicate& pred,
                                                 metrics::QueryRecord& rec) {
  // All source selection happens in the shared planner; record the plan's
  // accounting, then execute its steps. Fold candidates are snapshotted
  // before planning (cloned predicates), so the plan stays valid however
  // the scans resolve afterwards — a settled scan just falls back at
  // execution time.
  std::vector<query::FoldCandidate> folds;
  if (cfg_.foldScans && cfg_.allowWaitOnExecuting) {
    folds = ps_.scanRegistry().candidatesFor(
        scheduler_.execSeq(node),
        static_cast<std::size_t>(std::max(8, 2 * cfg_.maxReuseSources)));
  }
  query::ReusePlan plan = [&] {
    trace::SpanScope planSpan(tracer_, rec.queryId, trace::SpanKind::Plan);
    return planner_.plan(pred, ds_, &scheduler_, node, /*depth=*/0,
                         spill_.get(), folds);
  }();
  rec.overlapUsed = plan.primaryOverlap;
  rec.reuseSources = plan.reuseSources();
  rec.planBytesCovered = plan.planBytesCovered;
  rec.planShape = plan.shape();
  for (const query::PlanStep& step : plan.steps) {
    if (step.kind != query::PlanStep::Kind::ComputeRemainder) {
      rec.bytesReusedPerSource.push_back(step.bytesCovered);
    }
  }
  return executePlan(std::move(plan), pred, /*depth=*/0, rec);
}

void QueryServer::runQuery(sched::NodeId node, PendingQuery pq) {
  metrics::QueryRecord rec = std::move(pq.record);
  rec.startTime = nowSeconds();
  pagespace::PageSpaceManager::resetThreadCounters();
  // Attribute everything emitted on this thread — including IO_STALL spans
  // from deep inside the Page Space Manager — to this query.
  trace::Tracer::QueryScope queryScope(tracer_, node);

  const query::PredicatePtr predPtr = scheduler_.predicateOf(node);
  const query::Predicate& pred = *predPtr;

  // Application code (executors, user-defined operators, the storage
  // layer on a permanent device fault) may throw; the failure is scoped
  // to this query: it is delivered through the client future as a
  // QueryFailure and the graph node is retired so dependents and the
  // scheduler stay consistent. The worker thread survives.
  std::vector<std::byte> out;
  std::string failureReason;
  bool failed = false;
  // Load shedding (DESIGN.md §11): a query whose deadline has passed — or,
  // predictively, cannot be met — is dropped here, before planning or
  // compute. With shedding off, the same observed miss fails through
  // checkDeadline below (the historical FAILED classification).
  const bool shed = shouldShed(rec, failureReason);
  if (!shed) {
    try {
      checkDeadline(rec);  // a query already past its deadline never executes
      out = computeQuery(node, pred, rec);
    } catch (const std::exception& e) {
      failed = true;
      failureReason = e.what();
    } catch (...) {
      failed = true;
      failureReason = "unknown error";
    }
  }
  rec.bytesFromDisk = pagespace::PageSpaceManager::threadDeviceBytes();
  rec.ioStallTime = pagespace::PageSpaceManager::threadStallSeconds();

  // The terminal DELIVER span covers result caching, the graph-node
  // transition, and client delivery; its end event carries the failed or
  // shed flag (never both — shed queries skip execution entirely).
  trace::SpanScope deliver(tracer_, node, trace::SpanKind::Deliver);
  if (failed) deliver.setEndFlags(trace::kFlagFailed);
  if (shed) deliver.setEndFlags(trace::kFlagShed);

  // --- cache the result & transition the graph node --------------------
  if (shed) {
    rec.shed = true;
    rec.failureReason = failureReason;
    // SHED is terminal like FAILED: no reusable result, so the node leaves
    // the graph at once and waiting neighbors are re-ranked.
    scheduler_.failed(node);
    admission_.onShed();
    if (tracer_ != nullptr) {
      tracer_->counter(trace::CounterKind::AdmissionShed);
    }
  } else if (failed) {
    rec.failed = true;
    rec.failureReason = failureReason;
    // FAILED is terminal: there is no reusable result, so the node leaves
    // the graph at once and waiting neighbors are re-ranked.
    scheduler_.failed(node);
    admission_.onFailed();
  } else {
    std::optional<datastore::BlobId> blob;
    if (rec.overlapUsed < 1.0) blob = cacheResult(pred, out);
    if (blob) {
      MutexLock lock(mu_);
      nodeBlob_[node] = *blob;
      blobNode_[*blob] = node;
    }
    scheduler_.completed(node);
    if (!blob) {
      // Nothing cached (duplicate result, or DS full/disabled): the
      // node cannot serve reuse, so it leaves the graph at once.
      scheduler_.retired(node);
    } else {
      MutexLock lock(mu_);
      if (evictedWhileExecuting_.erase(node) > 0) {
        nodeBlob_.erase(node);
        blobNode_.erase(*blob);
        scheduler_.retired(node);
      }
    }
  }

  // --- deliver ----------------------------------------------------------
  {
    MutexLock lock(mu_);
    latches_[node]->promise.set_value();
  }
  // A failed or shed query produced no result, so it contributes no
  // reuse-feedback signal to adaptive policies.
  if (!failed && !shed) {
    scheduler_.reportQueryOutcome(rec.overlapUsed);
    admission_.onCompleted();
  }

  deliver.close();
  rec.finishTime = nowSeconds();
  // Deadline-missed accounting: queries that consumed compute and still
  // finished (or died) past their deadline — the misses shedding did not
  // prevent. Shed queries are counted once, as SHED.
  if (!shed && cfg_.queryDeadlineSec > 0.0 &&
      rec.responseTime() > cfg_.queryDeadlineSec) {
    admission_.onDeadlineMissed();
    if (tracer_ != nullptr) {
      tracer_->counter(trace::CounterKind::DeadlineMissed);
    }
  }
  // Feed the predictive-shedding EWMA with the observed service rate.
  if (!shed && !failed && rec.outputBytes > 0) {
    noteServiceRate(rec.execTime() / static_cast<double>(rec.outputBytes));
  }
  collector_.add(rec);
  if (shed) {
    pq.promise.set_exception(
        std::make_exception_ptr(QueryShed(failureReason)));
  } else if (failed) {
    pq.promise.set_exception(
        std::make_exception_ptr(QueryFailure(failureReason)));
  } else {
    pq.promise.set_value(QueryResult{std::move(out), rec});
  }
}

void QueryServer::onBlobEvicted(datastore::EvictedBlob blob) {
  MutexLock lock(mu_);
  sched::NodeId node = sched::kInvalidNode;
  if (const auto it = blobNode_.find(blob.id); it != blobNode_.end()) {
    node = it->second;
    blobNode_.erase(it);
    nodeBlob_.erase(node);
    if (scheduler_.stateOf(node) != sched::QueryState::Cached) {
      // Evicted before its own query finished (tiny Data Store): the
      // finishing worker retires the node; nothing worth spilling yet.
      evictedWhileExecuting_.insert(node);
      return;
    }
  }
  if (spill_ == nullptr) {
    // No tier: eviction is terminal, exactly the historical behaviour
    // (retired() on a CACHED node counts one swap-out and removes it).
    if (node != sched::kInvalidNode) scheduler_.retired(node);
    return;
  }
  // Demote (mu_ -> kSpillTier is rank-legal, 20 -> 44). Entries the tier
  // FIFO-drops to make room are terminal for *their* nodes.
  std::vector<datastore::SpillId> droppedIds;
  const std::optional<datastore::SpillId> sid =
      spill_->demote(std::move(blob), &droppedIds);
  if (node != sched::kInvalidNode) {
    if (sid) {
      nodeSpill_[node] = *sid;
      spillNode_[*sid] = node;
      scheduler_.swappedOut(node);
    } else {
      scheduler_.retired(node);  // blob alone exceeds the tier
    }
  }
  for (const datastore::SpillId d : droppedIds) retireSpilledLocked(d);
}

void QueryServer::retireSpilledLocked(datastore::SpillId sid) {
  const auto it = spillNode_.find(sid);
  if (it == spillNode_.end()) return;  // sub-query entry, no graph node
  const sched::NodeId node = it->second;
  spillNode_.erase(it);
  nodeSpill_.erase(node);
  scheduler_.retired(node);
}

}  // namespace mqs::server
