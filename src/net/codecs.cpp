#include "net/codecs.hpp"

#include "common/check.hpp"
#include "vm/vm_predicate.hpp"
#include "vol/vol_predicate.hpp"

namespace mqs::net {

namespace {

// Frames come from untrusted peers: coordinates straight off the wire can
// sit near INT64_MIN/MAX, where even computing an extent (x1 - x0) is
// signed overflow before the predicate constructors get a chance to
// validate. Bound every decoded coordinate well inside the representable
// range (far beyond any real dataset) so downstream arithmetic is safe.
constexpr std::int64_t kMaxWireCoord = std::int64_t{1} << 48;
constexpr std::uint32_t kMaxWireLevel = 1u << 20;

std::int64_t checkedCoord(std::int64_t v) {
  MQS_CHECK_MSG(v >= -kMaxWireCoord && v <= kMaxWireCoord,
                "wire coordinate out of range");
  return v;
}

std::uint32_t checkedLevel(std::uint32_t v) {
  MQS_CHECK_MSG(v >= 1 && v <= kMaxWireLevel, "wire level out of range");
  return v;
}

class VmCodec final : public PredicateCodec {
 public:
  [[nodiscard]] std::string_view kind() const override { return "vm"; }

  void encode(const query::Predicate& pred, Writer& out) const override {
    const vm::VMPredicate& p = vm::asVM(pred);
    out.u32(p.dataset());
    out.i64(p.region().x0);
    out.i64(p.region().y0);
    out.i64(p.region().x1);
    out.i64(p.region().y1);
    out.u32(p.zoom());
    out.u8(static_cast<std::uint8_t>(p.op()));
  }

  [[nodiscard]] query::PredicatePtr decode(Reader& in) const override {
    const auto dataset = in.u32();
    Rect r;
    r.x0 = checkedCoord(in.i64());
    r.y0 = checkedCoord(in.i64());
    r.x1 = checkedCoord(in.i64());
    r.y1 = checkedCoord(in.i64());
    const auto zoom = checkedLevel(in.u32());
    const auto op = static_cast<vm::VMOp>(in.u8());
    MQS_CHECK_MSG(op == vm::VMOp::Subsample || op == vm::VMOp::Average,
                  "bad VM op on the wire");
    return std::make_unique<vm::VMPredicate>(dataset, r, zoom, op);
  }
};

class VolCodec final : public PredicateCodec {
 public:
  [[nodiscard]] std::string_view kind() const override { return "vol"; }

  void encode(const query::Predicate& pred, Writer& out) const override {
    const vol::VolPredicate& p = vol::asVol(pred);
    out.u32(p.dataset());
    out.i64(p.box().x0);
    out.i64(p.box().y0);
    out.i64(p.box().z0);
    out.i64(p.box().x1);
    out.i64(p.box().y1);
    out.i64(p.box().z1);
    out.u32(p.lod());
    out.u8(static_cast<std::uint8_t>(p.op()));
  }

  [[nodiscard]] query::PredicatePtr decode(Reader& in) const override {
    const auto dataset = in.u32();
    Box3 b;
    b.x0 = checkedCoord(in.i64());
    b.y0 = checkedCoord(in.i64());
    b.z0 = checkedCoord(in.i64());
    b.x1 = checkedCoord(in.i64());
    b.y1 = checkedCoord(in.i64());
    b.z1 = checkedCoord(in.i64());
    const auto lod = checkedLevel(in.u32());
    const auto op = static_cast<vol::VolOp>(in.u8());
    MQS_CHECK_MSG(op == vol::VolOp::Subvolume || op == vol::VolOp::Slice,
                  "bad volume op on the wire");
    return std::make_unique<vol::VolPredicate>(dataset, b, lod, op);
  }
};

}  // namespace

std::unique_ptr<PredicateCodec> makeVmCodec() {
  return std::make_unique<VmCodec>();
}
std::unique_ptr<PredicateCodec> makeVolCodec() {
  return std::make_unique<VolCodec>();
}

void CodecRegistry::add(std::unique_ptr<PredicateCodec> codec) {
  MQS_CHECK(codec != nullptr);
  const std::string kind(codec->kind());
  codecs_[kind] = std::move(codec);
}

void CodecRegistry::encode(const query::Predicate& pred, Writer& out) const {
  const auto it = codecs_.find(pred.kind());
  MQS_CHECK_MSG(it != codecs_.end(),
                "no codec registered for predicate kind '" +
                    std::string(pred.kind()) + "'");
  out.str(pred.kind());
  it->second->encode(pred, out);
}

query::PredicatePtr CodecRegistry::decode(Reader& in) const {
  const std::string kind = in.str();
  const auto it = codecs_.find(kind);
  MQS_CHECK_MSG(it != codecs_.end(),
                "no codec registered for wire kind '" + kind + "'");
  return it->second->decode(in);
}

CodecRegistry CodecRegistry::standard() {
  CodecRegistry reg;
  reg.add(makeVmCodec());
  reg.add(makeVolCodec());
  return reg;
}

}  // namespace mqs::net
