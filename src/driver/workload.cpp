#include "driver/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace mqs::driver {

namespace {

/// Snap v to the alignment grid, clamped so [v, v + extent) fits in
/// [0, limit).
std::int64_t snapOrigin(std::int64_t v, std::int64_t grid, std::int64_t extent,
                        std::int64_t limit) {
  const std::int64_t maxOrigin = ((limit - extent) / grid) * grid;
  v = (v / grid) * grid;
  return std::clamp<std::int64_t>(v, 0, std::max<std::int64_t>(0, maxOrigin));
}

struct BrowseState {
  std::int64_t cx = 0;  ///< focus point (base-resolution coords)
  std::int64_t cy = 0;
  std::size_t zoomIdx = 0;
};

}  // namespace

std::vector<ClientWorkload> WorkloadGenerator::generate(
    const WorkloadConfig& cfg, vm::VMSemantics& semantics) {
  MQS_CHECK(cfg.datasets.size() == cfg.clientsPerDataset.size());
  MQS_CHECK(!cfg.zoomLevels.empty());
  MQS_CHECK(cfg.zoomLevels.size() == cfg.zoomWeights.size());
  for (std::uint32_t z : cfg.zoomLevels) {
    MQS_CHECK_MSG(cfg.alignGrid % z == 0,
                  "alignGrid must be a multiple of every zoom level");
  }

  std::vector<storage::DatasetId> ids;
  ids.reserve(cfg.datasets.size());
  for (const DatasetSpec& d : cfg.datasets) {
    ids.push_back(semantics.addDataset(
        index::ChunkLayout(d.width, d.height, d.chunkSide)));
  }

  Rng master(cfg.seed);

  // Shared hotspots per dataset — the slide features everyone looks at.
  std::vector<std::vector<Point>> hotspots(cfg.datasets.size());
  for (std::size_t d = 0; d < cfg.datasets.size(); ++d) {
    Rng hs = master.fork();
    for (int i = 0; i < cfg.hotspotsPerDataset; ++i) {
      hotspots[d].push_back(Point{hs.uniformInt(0, cfg.datasets[d].width - 1),
                                  hs.uniformInt(0, cfg.datasets[d].height - 1)});
    }
  }

  // Hotspot popularity: uniform by default; zipf(1/(i+1)^s) when the
  // config asks for a skewed profile.
  std::vector<double> hotspotWeights;
  if (cfg.hotspotZipfS > 0.0) {
    for (int i = 0; i < cfg.hotspotsPerDataset; ++i) {
      hotspotWeights.push_back(
          1.0 / std::pow(static_cast<double>(i + 1), cfg.hotspotZipfS));
    }
  }

  std::vector<ClientWorkload> out;
  int clientId = 0;
  for (std::size_t d = 0; d < cfg.datasets.size(); ++d) {
    const DatasetSpec& spec = cfg.datasets[d];
    for (int c = 0; c < cfg.clientsPerDataset[d]; ++c, ++clientId) {
      Rng rng = master.fork();
      ClientWorkload wl;
      wl.client = clientId;
      wl.dataset = ids[d];

      BrowseState st;
      st.cx = rng.uniformInt(0, spec.width - 1);
      st.cy = rng.uniformInt(0, spec.height - 1);
      st.zoomIdx = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(cfg.zoomLevels.size()) - 1));

      for (int q = 0; q < cfg.queriesPerClient; ++q) {
        if (!rng.bernoulli(cfg.browseProbability)) {
          // Jump to a shared hotspot and re-draw the zoom level.
          const auto& hs = hotspots[d];
          // Keep the zero-skew RNG draw sequence byte-identical to the
          // historical generator (uniformInt, not a degenerate zipf draw).
          const std::size_t hi =
              cfg.hotspotZipfS > 0.0
                  ? rng.weightedIndex(hotspotWeights)
                  : static_cast<std::size_t>(rng.uniformInt(
                        0, static_cast<std::int64_t>(hs.size()) - 1));
          const Point p = hs[hi];
          st.cx = p.x;
          st.cy = p.y;
          st.zoomIdx = rng.weightedIndex(cfg.zoomWeights);
        } else {
          // Continue browsing: small pan, sometimes a zoom step.
          const auto zoom =
              static_cast<std::int64_t>(cfg.zoomLevels[st.zoomIdx]);
          const std::int64_t view = cfg.outputSide * zoom;
          st.cx += rng.uniformInt(-view / 2, view / 2);
          st.cy += rng.uniformInt(-view / 2, view / 2);
          const double roll = rng.uniform01();
          if (roll < 0.25 && st.zoomIdx + 1 < cfg.zoomLevels.size()) {
            ++st.zoomIdx;  // zoom out
          } else if (roll < 0.5 && st.zoomIdx > 0) {
            --st.zoomIdx;  // zoom in
          }
        }
        // Cap the zoom so the viewport fits the dataset (small test slides).
        auto fits = [&](std::size_t zi) {
          const std::int64_t e =
              cfg.outputSide * static_cast<std::int64_t>(cfg.zoomLevels[zi]);
          return e <= spec.width && e <= spec.height;
        };
        while (st.zoomIdx > 0 && !fits(st.zoomIdx)) --st.zoomIdx;
        MQS_CHECK_MSG(fits(st.zoomIdx),
                      "smallest zoom level does not fit the dataset");
        const auto zoom = cfg.zoomLevels[st.zoomIdx];
        const std::int64_t extentW =
            cfg.outputSide * static_cast<std::int64_t>(zoom);
        st.cx = std::clamp<std::int64_t>(st.cx, 0, spec.width - 1);
        st.cy = std::clamp<std::int64_t>(st.cy, 0, spec.height - 1);
        const std::int64_t x0 = snapOrigin(st.cx - extentW / 2, cfg.alignGrid,
                                           extentW, spec.width);
        const std::int64_t y0 = snapOrigin(st.cy - extentW / 2, cfg.alignGrid,
                                           extentW, spec.height);
        MQS_CHECK_MSG(x0 + extentW <= spec.width && y0 + extentW <= spec.height,
                      "workload region exceeds dataset extent; increase the "
                      "dataset size or lower outputSide/zoom");
        wl.queries.emplace_back(wl.dataset,
                                Rect::ofSize(x0, y0, extentW, extentW), zoom,
                                cfg.op);
      }
      out.push_back(std::move(wl));
    }
  }
  return out;
}

std::vector<vm::VMPredicate> WorkloadGenerator::interleave(
    const std::vector<ClientWorkload>& workloads) {
  std::vector<vm::VMPredicate> out;
  std::size_t maxLen = 0;
  for (const auto& wl : workloads) maxLen = std::max(maxLen, wl.queries.size());
  for (std::size_t i = 0; i < maxLen; ++i) {
    for (const auto& wl : workloads) {
      if (i < wl.queries.size()) out.push_back(wl.queries[i]);
    }
  }
  return out;
}

}  // namespace mqs::driver
