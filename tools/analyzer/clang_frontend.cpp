// Optional Clang frontend for mqs-analyze, compiled only when CMake finds
// the Clang development libraries (MQS_ANALYZE_HAVE_CLANG). Produces the
// same LexedFile token stream as the built-in lexer — clang::Lexer in raw
// mode with comment retention — and loads TU lists through the real
// clang::tooling::JSONCompilationDatabase instead of the minimal built-in
// scanner. The analysis core is identical either way.
#if defined(MQS_ANALYZE_HAVE_CLANG)

#include "clang/Basic/LangOptions.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/JSONCompilationDatabase.h"

#include "analyzer.hpp"

namespace mqs::analyze {

namespace {

std::string stripCommentMarkers(std::string s) {
  if (s.rfind("//", 0) == 0) return s.substr(2);
  if (s.rfind("/*", 0) == 0) {
    s = s.substr(2);
    if (s.size() >= 2 && s.compare(s.size() - 2, 2, "*/") == 0)
      s = s.substr(0, s.size() - 2);
  }
  return s;
}

}  // namespace

LexedFile lexSourceClang(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;

  clang::SourceManagerForFile smHolder(path, text);
  clang::SourceManager& sm = smHolder.get();
  const clang::FileID fid = sm.getMainFileID();
  clang::LangOptions langOpts;
  langOpts.CPlusPlus = 1;
  langOpts.CPlusPlus11 = 1;
  langOpts.CPlusPlus14 = 1;
  langOpts.CPlusPlus17 = 1;
  langOpts.LineComment = 1;

  clang::Lexer lex(fid, sm.getBufferOrFake(fid), sm, langOpts);
  lex.SetCommentRetentionState(true);

  bool inDirective = false;
  clang::Token tk;
  while (true) {
    lex.LexFromRawLexer(tk);
    if (tk.is(clang::tok::eof)) break;
    if (tk.isAtStartOfLine()) inDirective = false;
    const int line =
        static_cast<int>(sm.getSpellingLineNumber(tk.getLocation()));
    const std::string spelling = clang::Lexer::getSpelling(tk, sm, langOpts);
    if (tk.is(clang::tok::hash) && tk.isAtStartOfLine()) {
      inDirective = true;  // skip the whole directive (continuations keep
      continue;            // isAtStartOfLine false on following tokens)
    }
    if (inDirective) continue;
    if (tk.is(clang::tok::comment)) {
      auto& slot = out.comments[line];
      if (!slot.empty()) slot += ' ';
      slot += stripCommentMarkers(spelling);
      continue;
    }
    Tok t;
    t.line = line;
    t.text = spelling;
    if (tk.is(clang::tok::raw_identifier)) {
      t.kind = Tok::Kind::Ident;
    } else if (tk.is(clang::tok::numeric_constant)) {
      t.kind = Tok::Kind::Number;
    } else if (tk.is(clang::tok::string_literal) ||
               tk.is(clang::tok::utf8_string_literal) ||
               tk.is(clang::tok::wide_string_literal)) {
      t.kind = Tok::Kind::String;
      if (t.text.size() >= 2 && t.text.front() == '"')
        t.text = t.text.substr(1, t.text.size() - 2);
    } else if (tk.is(clang::tok::char_constant) ||
               tk.is(clang::tok::wide_char_constant)) {
      t.kind = Tok::Kind::Char;
      if (t.text.size() >= 2 && t.text.front() == '\'')
        t.text = t.text.substr(1, t.text.size() - 2);
    } else {
      t.kind = Tok::Kind::Punct;
      // The built-in lexer splits every punctuator except `::` and `->`;
      // normalize clang's combined punctuators the same way.
      if (t.text != "::" && t.text != "->" && t.text.size() > 1) {
        for (std::size_t i = 0; i < t.text.size(); ++i)
          out.toks.push_back(
              {Tok::Kind::Punct, std::string(1, t.text[i]), line});
        continue;
      }
    }
    out.toks.push_back(std::move(t));
  }
  return out;
}

std::vector<std::string> compileCommandsFilesClang(const std::string& dbPath) {
  std::string err;
  auto db = clang::tooling::JSONCompilationDatabase::loadFromFile(
      dbPath, err, clang::tooling::JSONCommandLineSyntax::AutoDetect);
  if (!db) {
    // Fall back to the built-in scanner rather than failing outright.
    return compileCommandsFiles(dbPath);
  }
  return db->getAllFiles();
}

}  // namespace mqs::analyze

#endif  // MQS_ANALYZE_HAVE_CLANG
