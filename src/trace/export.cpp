#include "trace/export.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace mqs::trace {

namespace {

/// Fixed-point microsecond formatting: deterministic across runs for equal
/// double inputs (no locale, no shortest-round-trip variance).
std::string formatMicros(double seconds) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3f", seconds * 1e6);
  return buf.data();
}

}  // namespace

std::string jsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string csvQuote(const std::string& field) {
  const bool needsQuoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needsQuoting) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void exportChromeTrace(std::ostream& os, const std::vector<Event>& events) {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Counters are exported as running totals so a Perfetto counter track
  // shows cumulative hits/misses over time. AdmissionQueueDepth is the one
  // gauge in the vocabulary: its value is already the instantaneous depth,
  // so it is exported as-is instead of summed.
  std::array<std::uint64_t, 32> counterTotals{};
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    if (e.type == EventType::Counter) {
      const auto idx = static_cast<std::size_t>(e.kind) % counterTotals.size();
      const bool gauge = e.counterKind() == CounterKind::AdmissionQueueDepth ||
                         e.counterKind() == CounterKind::DsSpillBytes;
      if (!gauge) counterTotals[idx] += e.value;
      os << "{\"ph\":\"C\",\"ts\":" << formatMicros(e.ts)
         << ",\"pid\":1,\"tid\":" << e.tid << ",\"name\":"
         << jsonQuote(std::string(toString(e.counterKind())))
         << ",\"args\":{\"total\":" << (gauge ? e.value : counterTotals[idx])
         << "}}";
      continue;
    }
    const bool begin = e.type == EventType::SpanBegin;
    os << "{\"ph\":\"" << (begin ? 'b' : 'e') << "\",\"ts\":"
       << formatMicros(e.ts) << ",\"pid\":1,\"tid\":" << e.tid
       << ",\"cat\":\"query\",\"id\":" << e.queryId << ",\"name\":"
       << jsonQuote(std::string(toString(e.spanKind())));
    if (begin) {
      os << ",\"args\":{\"query\":" << e.queryId
         << ",\"depth\":" << static_cast<int>(e.depth);
      if (e.spanKind() == SpanKind::Project) {
        os << ",\"bytes\":" << e.value << ",\"source\":\""
           << ((e.flags & kFlagSpillSource) != 0      ? "spilled"
               : (e.flags & kFlagExecutingSource) != 0 ? "executing"
                                                       : "cached")
           << "\"";
      }
      os << "}";
    } else if ((e.flags & kFlagFailed) != 0) {
      os << ",\"args\":{\"failed\":true}";
    } else if ((e.flags & kFlagShed) != 0) {
      os << ",\"args\":{\"shed\":true}";
    }
    os << "}";
  }
  os << "]}\n";
}

bool writeChromeTrace(const std::string& path,
                      const std::vector<Event>& events) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  exportChromeTrace(out, events);
  return static_cast<bool>(out);
}

namespace {

const char* const kQueryColumns =
    "queryId,client,predicate,arrivalTime,startTime,finishTime,waitTime,"
    "execTime,responseTime,blockedTime,ioStallTime,overlapUsed,reuseSources,"
    "planBytesCovered,bytesReused,inputBytes,outputBytes,bytesFromDisk,shed,"
    "planShape,failed,failureReason";

std::string formatSeconds(double seconds) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.9f", seconds);
  return buf.data();
}

}  // namespace

void exportQueryCsv(std::ostream& os,
                    const std::vector<metrics::QueryRecord>& records) {
  os << kQueryColumns << "\n";
  for (const metrics::QueryRecord& r : records) {
    os << r.queryId << ',' << r.client << ',' << csvQuote(r.predicate) << ','
       << formatSeconds(r.arrivalTime) << ',' << formatSeconds(r.startTime)
       << ',' << formatSeconds(r.finishTime) << ','
       << formatSeconds(r.waitTime()) << ',' << formatSeconds(r.execTime())
       << ',' << formatSeconds(r.responseTime()) << ','
       << formatSeconds(r.blockedTime) << ',' << formatSeconds(r.ioStallTime)
       << ',' << formatSeconds(r.overlapUsed) << ',' << r.reuseSources << ','
       << r.planBytesCovered << ',' << r.bytesReused << ',' << r.inputBytes
       << ',' << r.outputBytes << ',' << r.bytesFromDisk << ','
       << (r.shed ? 1 : 0) << ',' << csvQuote(r.planShape) << ','
       << (r.failed ? 1 : 0) << ',' << csvQuote(r.failureReason) << "\n";
  }
}

bool writeQueryCsv(const std::string& path,
                   const std::vector<metrics::QueryRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  exportQueryCsv(out, records);
  return static_cast<bool>(out);
}

void exportQueryJson(std::ostream& os,
                     const std::vector<metrics::QueryRecord>& records) {
  os << "[";
  bool first = true;
  for (const metrics::QueryRecord& r : records) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"queryId\":" << r.queryId << ",\"client\":" << r.client
       << ",\"predicate\":" << jsonQuote(r.predicate)
       << ",\"arrivalTime\":" << formatSeconds(r.arrivalTime)
       << ",\"startTime\":" << formatSeconds(r.startTime)
       << ",\"finishTime\":" << formatSeconds(r.finishTime)
       << ",\"responseTime\":" << formatSeconds(r.responseTime())
       << ",\"blockedTime\":" << formatSeconds(r.blockedTime)
       << ",\"ioStallTime\":" << formatSeconds(r.ioStallTime)
       << ",\"overlapUsed\":" << formatSeconds(r.overlapUsed)
       << ",\"reuseSources\":" << r.reuseSources
       << ",\"planBytesCovered\":" << r.planBytesCovered
       << ",\"bytesReused\":" << r.bytesReused
       << ",\"inputBytes\":" << r.inputBytes
       << ",\"outputBytes\":" << r.outputBytes
       << ",\"bytesFromDisk\":" << r.bytesFromDisk
       << ",\"planShape\":" << jsonQuote(r.planShape)
       << ",\"failed\":" << (r.failed ? "true" : "false")
       << ",\"shed\":" << (r.shed ? "true" : "false")
       << ",\"failureReason\":" << jsonQuote(r.failureReason) << "}";
  }
  os << "]\n";
}

std::string summaryJson(const metrics::Summary& s) {
  std::string out = "{";
  const auto num = [&out](const char* key, double v, bool comma = true) {
    out += '"';
    out += key;
    out += "\":";
    out += formatSeconds(v);
    if (comma) out += ',';
  };
  out += "\"queries\":" + std::to_string(s.queries) + ",";
  out += "\"failedQueries\":" + std::to_string(s.failedQueries) + ",";
  out += "\"shedQueries\":" + std::to_string(s.shedQueries) + ",";
  num("trimmedResponse", s.trimmedResponse);
  num("meanResponse", s.meanResponse);
  num("meanWait", s.meanWait);
  num("meanExec", s.meanExec);
  num("meanIoStall", s.meanIoStall);
  num("makespan", s.makespan);
  num("avgOverlap", s.avgOverlap);
  num("reuseRate", s.reuseRate);
  out += "\"totalDiskBytes\":" + std::to_string(s.totalDiskBytes) + ",";
  out += "\"totalReusedBytes\":" + std::to_string(s.totalReusedBytes) + ",";
  num("avgReuseSources", s.avgReuseSources);
  out += "\"multiSourceQueries\":" + std::to_string(s.multiSourceQueries) +
         ",";
  num("clientFairness", s.clientFairness);
  num("p50Response", s.p50Response);
  num("p95Response", s.p95Response);
  num("p99Response", s.p99Response);
  num("p999Response", s.p999Response, /*comma=*/false);
  out += "}";
  return out;
}

}  // namespace mqs::trace
