# Empty dependencies file for mqs_driver.
# This may be replaced when dependencies are built.
