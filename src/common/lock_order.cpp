#include "common/lock_order.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mqs::lockorder {

namespace {

struct HeldLock {
  const void* mu = nullptr;
  const char* name = "";
  Rank rank = Rank::kUnranked;
};

/// The calling thread's currently-held locks, acquisition order. A plain
/// vector: depth is tiny (the deepest real chain today is three locks).
thread_local std::vector<HeldLock> tlsHeld;

[[noreturn]] void fail(const char* what, const void* mu, const char* name,
                       Rank rank) {
  std::fprintf(stderr,
               "== mqs lock-order violation: %s ==\n"
               "attempted acquisition: %s (rank %u, %p)\n"
               "locks held by this thread (acquisition order):\n",
               what, name, static_cast<unsigned>(rank),
               static_cast<const void*>(mu));
  if (tlsHeld.empty()) {
    std::fprintf(stderr, "  (none)\n");
  }
  for (const HeldLock& h : tlsHeld) {
    std::fprintf(stderr, "  %s (rank %u, %p)\n", h.name,
                 static_cast<unsigned>(h.rank), h.mu);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void onAcquire(const void* mu, const char* name, Rank rank) {
  Rank maxHeld = Rank::kUnranked;
  for (const HeldLock& h : tlsHeld) {
    if (h.mu == mu) fail("reentrant acquisition", mu, name, rank);
    if (h.rank > maxHeld) maxHeld = h.rank;
  }
  if (rank != Rank::kUnranked && maxHeld != Rank::kUnranked &&
      rank <= maxHeld) {
    fail("rank not above every held lock", mu, name, rank);
  }
  tlsHeld.push_back(HeldLock{mu, name, rank});
}

void onRelease(const void* mu) noexcept {
  for (auto it = tlsHeld.rbegin(); it != tlsHeld.rend(); ++it) {
    if (it->mu == mu) {
      tlsHeld.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t heldCount() noexcept { return tlsHeld.size(); }

}  // namespace mqs::lockorder
