#include "index/chunk_layout.hpp"

#include "common/check.hpp"

namespace mqs::index {

ChunkLayout::ChunkLayout(std::int64_t width, std::int64_t height,
                         std::int64_t chunkSide, int bytesPerPixel)
    : width_(width),
      height_(height),
      chunkSide_(chunkSide),
      bytesPerPixel_(bytesPerPixel) {
  MQS_CHECK(width > 0 && height > 0);
  MQS_CHECK(chunkSide > 0);
  MQS_CHECK(bytesPerPixel > 0);
  chunksPerRow_ = (width + chunkSide - 1) / chunkSide;
  chunksPerCol_ = (height + chunkSide - 1) / chunkSide;
}

Rect ChunkLayout::chunkRect(std::uint64_t id) const {
  MQS_CHECK(id < chunkCount());
  const auto row = static_cast<std::int64_t>(id) / chunksPerRow_;
  const auto col = static_cast<std::int64_t>(id) % chunksPerRow_;
  const std::int64_t x0 = col * chunkSide_;
  const std::int64_t y0 = row * chunkSide_;
  return Rect{x0, y0, std::min(x0 + chunkSide_, width_),
              std::min(y0 + chunkSide_, height_)};
}

std::size_t ChunkLayout::chunkBytes(std::uint64_t id) const {
  return static_cast<std::size_t>(chunkRect(id).area()) *
         static_cast<std::size_t>(bytesPerPixel_);
}

std::uint64_t ChunkLayout::chunkAt(std::int64_t x, std::int64_t y) const {
  MQS_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return static_cast<std::uint64_t>((y / chunkSide_) * chunksPerRow_ +
                                    (x / chunkSide_));
}

std::vector<ChunkRef> ChunkLayout::chunksIntersecting(
    const Rect& region) const {
  const Rect r = Rect::intersection(region, extent());
  if (r.empty()) return {};
  const std::int64_t c0 = r.x0 / chunkSide_;
  const std::int64_t c1 = (r.x1 - 1) / chunkSide_;
  const std::int64_t r0 = r.y0 / chunkSide_;
  const std::int64_t r1 = (r.y1 - 1) / chunkSide_;
  std::vector<ChunkRef> out;
  out.reserve(static_cast<std::size_t>((c1 - c0 + 1) * (r1 - r0 + 1)));
  for (std::int64_t row = r0; row <= r1; ++row) {
    for (std::int64_t col = c0; col <= c1; ++col) {
      const auto id = static_cast<std::uint64_t>(row * chunksPerRow_ + col);
      out.push_back(ChunkRef{id, chunkRect(id)});
    }
  }
  return out;
}

std::uint64_t ChunkLayout::inputBytes(const Rect& region) const {
  const Rect r = Rect::intersection(region, extent());
  if (r.empty()) return 0;
  // Closed chunk index ranges; edge chunks are shorter, so sum exactly.
  std::uint64_t total = 0;
  for (const ChunkRef& c : chunksIntersecting(r)) {
    total += static_cast<std::uint64_t>(c.rect.area()) *
             static_cast<std::uint64_t>(bytesPerPixel_);
  }
  return total;
}

}  // namespace mqs::index
