file(REMOVE_RECURSE
  "CMakeFiles/mqs_metrics.dir/metrics.cpp.o"
  "CMakeFiles/mqs_metrics.dir/metrics.cpp.o.d"
  "libmqs_metrics.a"
  "libmqs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
