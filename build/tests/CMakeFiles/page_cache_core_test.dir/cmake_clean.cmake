file(REMOVE_RECURSE
  "CMakeFiles/page_cache_core_test.dir/pagespace/page_cache_core_test.cpp.o"
  "CMakeFiles/page_cache_core_test.dir/pagespace/page_cache_core_test.cpp.o.d"
  "page_cache_core_test"
  "page_cache_core_test.pdb"
  "page_cache_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_cache_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
