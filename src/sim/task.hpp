// Coroutine task type for the discrete-event engine.
//
// Task<T> is a lazily-started coroutine: nothing runs until it is awaited
// (or resumed by Simulator::spawn). Awaiting a child task suspends the
// parent until the child reaches final_suspend, then transfers control back
// (symmetric transfer) and delivers the child's value or exception. The
// whole engine is single-threaded, so no synchronization is needed.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "common/check.hpp"

namespace mqs::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  T value{};
  Task<T> get_return_object();
  void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const { return handle_ && handle_.done(); }

  /// Awaiting a task starts it and suspends the awaiter until it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;  // start the child now
      }
      T await_resume() {
        if (handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
        if constexpr (!std::is_void_v<T>) {
          return std::move(handle.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

  /// Release ownership (used by Simulator::spawn, which manages lifetime).
  Handle release() { return std::exchange(handle_, {}); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace detail

}  // namespace mqs::sim
