// Query lifecycle states (§4): a graph vertex is a query that is waiting to
// be computed, is being computed, or was recently computed and cached; a
// cached query whose result the Data Store reclaims is swapped out and the
// node leaves the graph. FAILED is a terminal state for queries whose
// execution raised an error (bad read, deadline): the node leaves the graph
// immediately — a failed query has no result anyone could reuse.
#pragma once

#include <cstdint>
#include <string_view>

namespace mqs::sched {

enum class QueryState : std::uint8_t {
  Waiting = 0,
  Executing = 1,
  Cached = 2,
  SwappedOut = 3,
  Failed = 4,
};

constexpr std::string_view toString(QueryState s) {
  switch (s) {
    case QueryState::Waiting: return "WAITING";
    case QueryState::Executing: return "EXECUTING";
    case QueryState::Cached: return "CACHED";
    case QueryState::SwappedOut: return "SWAPPED_OUT";
    case QueryState::Failed: return "FAILED";
  }
  return "?";
}

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0;  ///< node ids start at 1

}  // namespace mqs::sched
