// Adversarial input for the wire layer: the decoders sit on a network
// boundary, so anything — truncation mid-field, corrupted bytes, lying
// length prefixes, unknown frame types — must come back as a clean error,
// never a crash or an out-of-bounds read. Run under ASan/UBSan these tests
// double as overread detectors.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "net/codecs.hpp"
#include "net/wire.hpp"
#include "vm/vm_predicate.hpp"
#include "vol/vol_predicate.hpp"

namespace mqs::net {
namespace {

/// One connected AF_UNIX stream pair; tests stage bytes on one end and
/// parse from the other.
struct SockPair {
  int a = -1;
  int b = -1;
  SockPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SockPair() {
    closeA();
    if (b >= 0) ::close(b);
  }
  void closeA() {
    if (a >= 0) ::close(a);
    a = -1;
  }
};

std::vector<std::byte> validQueryPayload() {
  const auto reg = CodecRegistry::standard();
  const vm::VMPredicate p(0, Rect::ofSize(64, 128, 256, 512), 4,
                          vm::VMOp::Subsample);
  Writer w;
  w.u64(123);
  reg.encode(p, w);
  return w.take();
}

/// Feed a payload to the server-side decode path (request id + predicate);
/// returns true if it decoded to a structurally valid predicate.
bool tryDecode(std::span<const std::byte> payload) {
  const auto reg = CodecRegistry::standard();
  Reader r(payload);
  try {
    (void)r.u64();
    const auto pred = reg.decode(r);
    EXPECT_NE(pred, nullptr);
    (void)pred->describe();
    return true;
  } catch (const CheckFailure&) {
    return false;  // rejected cleanly
  }
}

TEST(WireFuzz, EveryTruncationOfAValidPayloadIsRejectedCleanly) {
  const std::vector<std::byte> whole = validQueryPayload();
  ASSERT_TRUE(tryDecode(whole));
  for (std::size_t len = 0; len < whole.size(); ++len) {
    std::vector<std::byte> cut(whole.begin(),
                               whole.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(tryDecode(cut)) << "truncation at " << len
                                 << " bytes decoded as if complete";
  }
}

TEST(WireFuzz, CorruptedPayloadsNeverCrashTheDecoder) {
  const std::vector<std::byte> whole = validQueryPayload();
  Rng rng(0xC0DEC);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::byte> mutated = whole;
    const int flips = static_cast<int>(rng.uniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::byte>(rng.uniformInt(1, 255));
    }
    // Either outcome is fine; crashing, hanging, or overreading is not.
    (void)tryDecode(mutated);
  }
}

TEST(WireFuzz, RandomJunkAgainstEveryReaderPrimitive) {
  Rng rng(0x5EED);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniformInt(0, 48)));
    for (auto& b : junk) b = static_cast<std::byte>(rng.uniformInt(0, 255));
    Reader r(junk);
    try {
      for (;;) {
        switch (rng.uniformInt(0, 5)) {
          case 0: (void)r.u8(); break;
          case 1: (void)r.u16(); break;
          case 2: (void)r.u32(); break;
          case 3: (void)r.u64(); break;
          case 4: (void)r.str(); break;
          default: (void)r.blob(); break;
        }
        if (r.remaining() == 0) break;
      }
    } catch (const CheckFailure&) {
      // Underrun rejected; the reader never walked past the buffer.
    }
  }
}

TEST(WireFuzz, LyingBlobAndStringLengthsAreRejected) {
  {
    Writer w;
    w.u64(~0ULL);  // blob claims 2^64-1 bytes; 3 follow
    w.u8(1);
    w.u8(2);
    w.u8(3);
    Reader r(w.bytes());
    EXPECT_THROW((void)r.blob(), CheckFailure);
  }
  {
    Writer w;
    w.u16(60000);  // string claims 60000 bytes; none follow
    Reader r(w.bytes());
    EXPECT_THROW((void)r.str(), CheckFailure);
  }
}

TEST(WireFuzz, ReadFrameHandlesTruncationAndOversizeWithoutBlocking) {
  {
    // Header cut off mid-way, then EOF.
    SockPair s;
    const std::byte half[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
    ASSERT_TRUE(writeAll(s.a, half));
    s.closeA();
    Frame f;
    EXPECT_FALSE(readFrame(s.b, f));
  }
  {
    // Payload length exceeds the cap: rejected before any allocation of
    // attacker-controlled size.
    SockPair s;
    Writer w;
    w.u32(1u << 24);
    w.u8(static_cast<std::uint8_t>(FrameType::Query));
    ASSERT_TRUE(writeAll(s.a, w.bytes()));
    s.closeA();
    Frame f;
    EXPECT_FALSE(readFrame(s.b, f, /*maxPayload=*/1u << 16));
  }
  {
    // Declared payload longer than what arrives before EOF.
    SockPair s;
    Writer w;
    w.u32(100);
    w.u8(static_cast<std::uint8_t>(FrameType::Result));
    w.u64(7);  // only 8 of the promised 100 payload bytes
    ASSERT_TRUE(writeAll(s.a, w.bytes()));
    s.closeA();
    Frame f;
    EXPECT_FALSE(readFrame(s.b, f));
  }
}

TEST(WireFuzz, AllFrameTypesIncludingFailedSurviveTheRoundTrip) {
  SockPair s;
  for (const FrameType t : {FrameType::Query, FrameType::Result,
                            FrameType::Error, FrameType::Failed}) {
    Writer w;
    w.u64(9);
    w.str("payload");
    ASSERT_TRUE(writeAll(s.a, packFrame(t, w.bytes())));
    Frame f;
    ASSERT_TRUE(readFrame(s.b, f));
    EXPECT_EQ(f.type, t);
    Reader r(f.payload);
    EXPECT_EQ(r.u64(), 9u);
    EXPECT_EQ(r.str(), "payload");
  }
}

TEST(WireFuzz, RandomFrameStreamsNeverCrashReadFrame) {
  Rng rng(0xF4A3);
  for (int iter = 0; iter < 200; ++iter) {
    SockPair s;
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniformInt(0, 512)));
    for (auto& b : junk) b = static_cast<std::byte>(rng.uniformInt(0, 255));
    ASSERT_TRUE(junk.empty() || writeAll(s.a, junk));
    s.closeA();
    Frame f;
    // Drain frames until the parser gives up; a tiny payload cap keeps
    // random 4-byte lengths from turning into large allocations.
    int frames = 0;
    while (readFrame(s.b, f, /*maxPayload=*/1u << 12)) {
      ++frames;
      ASSERT_LE(f.payload.size(), 1u << 12);
      if (frames > 200) FAIL() << "parser failed to terminate";
    }
  }
}

TEST(WireFuzz, HostileCoordinatesAreRejectedBeforeGeometry) {
  // Coordinates near INT64_MIN/MAX would overflow inside Rect/Box extent
  // arithmetic if the codec let them through; the wire bound must reject
  // them first.
  const auto reg = CodecRegistry::standard();
  Writer w;
  w.str("vm");
  w.u32(0);
  w.i64(INT64_MIN);
  w.i64(0);
  w.i64(INT64_MAX);
  w.i64(64);
  w.u32(1);
  w.u8(0);  // VMOp::Subsample
  Reader r(w.bytes());
  EXPECT_THROW((void)reg.decode(r), CheckFailure);

  Writer w2;
  w2.str("vol");
  w2.u32(0);
  for (int i = 0; i < 3; ++i) w2.i64(INT64_MIN / 2);
  for (int i = 0; i < 3; ++i) w2.i64(INT64_MAX / 2);
  w2.u32(0);  // lod 0 is also out of range
  w2.u8(0);
  Reader r2(w2.bytes());
  EXPECT_THROW((void)reg.decode(r2), CheckFailure);
}

}  // namespace
}  // namespace mqs::net
