#include "vol/volume_layout.hpp"

#include "common/check.hpp"

namespace mqs::vol {

VolumeLayout::VolumeLayout(std::int64_t width, std::int64_t height,
                           std::int64_t depth, std::int64_t brickSide)
    : width_(width), height_(height), depth_(depth), brickSide_(brickSide) {
  MQS_CHECK(width > 0 && height > 0 && depth > 0);
  MQS_CHECK(brickSide > 0);
  nx_ = (width + brickSide - 1) / brickSide;
  ny_ = (height + brickSide - 1) / brickSide;
  nz_ = (depth + brickSide - 1) / brickSide;
}

Box3 VolumeLayout::brickBox(std::uint64_t id) const {
  MQS_CHECK(id < brickCount());
  const auto i = static_cast<std::int64_t>(id);
  const std::int64_t bx = i % nx_;
  const std::int64_t by = (i / nx_) % ny_;
  const std::int64_t bz = i / (nx_ * ny_);
  const std::int64_t x0 = bx * brickSide_;
  const std::int64_t y0 = by * brickSide_;
  const std::int64_t z0 = bz * brickSide_;
  return Box3{x0,
              y0,
              z0,
              std::min(x0 + brickSide_, width_),
              std::min(y0 + brickSide_, height_),
              std::min(z0 + brickSide_, depth_)};
}

std::size_t VolumeLayout::brickBytes(std::uint64_t id) const {
  return static_cast<std::size_t>(brickBox(id).volume());
}

std::vector<BrickRef> VolumeLayout::bricksIntersecting(const Box3& box) const {
  const Box3 b = Box3::intersection(box, extent());
  if (b.empty()) return {};
  const std::int64_t bx0 = b.x0 / brickSide_, bx1 = (b.x1 - 1) / brickSide_;
  const std::int64_t by0 = b.y0 / brickSide_, by1 = (b.y1 - 1) / brickSide_;
  const std::int64_t bz0 = b.z0 / brickSide_, bz1 = (b.z1 - 1) / brickSide_;
  std::vector<BrickRef> out;
  out.reserve(static_cast<std::size_t>((bx1 - bx0 + 1) * (by1 - by0 + 1) *
                                       (bz1 - bz0 + 1)));
  for (std::int64_t bz = bz0; bz <= bz1; ++bz) {
    for (std::int64_t by = by0; by <= by1; ++by) {
      for (std::int64_t bx = bx0; bx <= bx1; ++bx) {
        const auto id =
            static_cast<std::uint64_t>((bz * ny_ + by) * nx_ + bx);
        out.push_back(BrickRef{id, brickBox(id)});
      }
    }
  }
  return out;
}

std::uint64_t VolumeLayout::inputBytes(const Box3& box) const {
  std::uint64_t total = 0;
  for (const BrickRef& b : bricksIntersecting(box)) {
    total += static_cast<std::uint64_t>(b.box.volume());
  }
  return total;
}

}  // namespace mqs::vol
