#include "common/geometry.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mqs {
namespace {

TEST(Rect, BasicAccessors) {
  const Rect r = Rect::ofSize(10, 20, 30, 40);
  EXPECT_EQ(r.x0, 10);
  EXPECT_EQ(r.y0, 20);
  EXPECT_EQ(r.x1, 40);
  EXPECT_EQ(r.y1, 60);
  EXPECT_EQ(r.width(), 30);
  EXPECT_EQ(r.height(), 40);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_FALSE(r.empty());
}

TEST(Rect, EmptyAndInvertedHaveZeroArea) {
  EXPECT_TRUE(Rect{}.empty());
  EXPECT_EQ(Rect{}.area(), 0);
  const Rect inverted{10, 10, 5, 20};
  EXPECT_TRUE(inverted.empty());
  EXPECT_EQ(inverted.area(), 0);
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 9}));
  EXPECT_FALSE(r.contains(Point{9, 10}));
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect outer = Rect::ofSize(0, 0, 100, 100);
  EXPECT_TRUE(outer.contains(Rect::ofSize(10, 10, 20, 20)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect::ofSize(90, 90, 20, 20)));
  EXPECT_FALSE(outer.contains(Rect{}));  // empty rect is never contained
}

TEST(Rect, Intersection) {
  const Rect a = Rect::ofSize(0, 0, 10, 10);
  const Rect b = Rect::ofSize(5, 5, 10, 10);
  EXPECT_EQ(Rect::intersection(a, b), (Rect{5, 5, 10, 10}));
  EXPECT_TRUE(Rect::intersection(a, Rect::ofSize(20, 20, 5, 5)).empty());
  // Touching edges do not intersect (half-open).
  EXPECT_TRUE(Rect::intersection(a, Rect::ofSize(10, 0, 5, 10)).empty());
}

TEST(Rect, IntersectionCommutes) {
  const Rect a = Rect::ofSize(3, 4, 17, 9);
  const Rect b = Rect::ofSize(10, 2, 6, 30);
  EXPECT_EQ(Rect::intersection(a, b), Rect::intersection(b, a));
}

TEST(Rect, Bounding) {
  const Rect a = Rect::ofSize(0, 0, 5, 5);
  const Rect b = Rect::ofSize(10, 10, 5, 5);
  EXPECT_EQ(Rect::bounding(a, b), (Rect{0, 0, 15, 15}));
  EXPECT_EQ(Rect::bounding(a, Rect{}), a);
  EXPECT_EQ(Rect::bounding(Rect{}, b), b);
}

TEST(Rect, Shifted) {
  EXPECT_EQ(Rect::ofSize(1, 2, 3, 4).shifted(10, 20),
            Rect::ofSize(11, 22, 3, 4));
}

TEST(RectSubtract, NoIntersection) {
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  const auto parts = r.subtract(Rect::ofSize(20, 20, 5, 5));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], r);
}

TEST(RectSubtract, FullCover) {
  const Rect r = Rect::ofSize(2, 2, 6, 6);
  EXPECT_TRUE(r.subtract(Rect::ofSize(0, 0, 10, 10)).empty());
}

TEST(RectSubtract, CenterHoleGivesFourParts) {
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  const Rect hole = Rect::ofSize(3, 3, 4, 4);
  const auto parts = r.subtract(hole);
  EXPECT_EQ(parts.size(), 4u);
  EXPECT_TRUE(exactlyCovers(r, parts) ||
              totalArea(parts) + hole.area() == r.area());
  EXPECT_EQ(totalArea(parts), r.area() - hole.area());
}

TEST(RectSubtract, CornerHoleGivesTwoParts) {
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  const auto parts = r.subtract(Rect::ofSize(0, 0, 4, 4));
  EXPECT_EQ(parts.size(), 2u);
  EXPECT_EQ(totalArea(parts), 100 - 16);
}

TEST(RectSubtract, EdgeHoleGivesThreeParts) {
  const Rect r = Rect::ofSize(0, 0, 10, 10);
  const auto parts = r.subtract(Rect::ofSize(3, 0, 4, 4));
  EXPECT_EQ(parts.size(), 3u);
  EXPECT_EQ(totalArea(parts), 100 - 16);
}

TEST(ExactlyCovers, DetectsGapsAndOverlaps) {
  const Rect r = Rect::ofSize(0, 0, 4, 4);
  // Perfect tiling.
  EXPECT_TRUE(exactlyCovers(
      r, {Rect::ofSize(0, 0, 2, 4), Rect::ofSize(2, 0, 2, 4)}));
  // Overlapping parts.
  EXPECT_FALSE(exactlyCovers(
      r, {Rect::ofSize(0, 0, 3, 4), Rect::ofSize(2, 0, 2, 4)}));
  // Gap.
  EXPECT_FALSE(exactlyCovers(
      r, {Rect::ofSize(0, 0, 1, 4), Rect::ofSize(2, 0, 2, 4)}));
  // Part sticking out.
  EXPECT_FALSE(exactlyCovers(
      r, {Rect::ofSize(0, 0, 2, 4), Rect::ofSize(2, 0, 3, 4)}));
}

/// Property: for random rect pairs, subtraction + intersection exactly
/// tiles the original rectangle.
TEST(RectSubtract, PropertySubtractPlusIntersectionTiles) {
  Rng rng(123);
  for (int iter = 0; iter < 2000; ++iter) {
    const Rect r = Rect::ofSize(rng.uniformInt(-50, 50), rng.uniformInt(-50, 50),
                                rng.uniformInt(1, 60), rng.uniformInt(1, 60));
    const Rect hole =
        Rect::ofSize(rng.uniformInt(-50, 50), rng.uniformInt(-50, 50),
                     rng.uniformInt(1, 60), rng.uniformInt(1, 60));
    auto parts = r.subtract(hole);
    const Rect inter = Rect::intersection(r, hole);
    ASSERT_LE(parts.size(), 4u);
    if (!inter.empty()) parts.push_back(inter);
    EXPECT_TRUE(exactlyCovers(r, parts))
        << "r=" << r.str() << " hole=" << hole.str();
  }
}

TEST(TotalArea, SumsAreas) {
  EXPECT_EQ(totalArea({}), 0);
  EXPECT_EQ(totalArea({Rect::ofSize(0, 0, 2, 3), Rect::ofSize(9, 9, 4, 4)}),
            6 + 16);
}

TEST(Box3, BasicAccessors) {
  const Box3 b = Box3::ofSize(1, 2, 3, 10, 20, 30);
  EXPECT_EQ(b.width(), 10);
  EXPECT_EQ(b.height(), 20);
  EXPECT_EQ(b.depth(), 30);
  EXPECT_EQ(b.volume(), 6000);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(Box3{}.empty());
  EXPECT_EQ(b.footprint(), (Rect{1, 2, 11, 22}));
}

TEST(Box3, Intersection) {
  const Box3 a = Box3::ofSize(0, 0, 0, 10, 10, 10);
  const Box3 b = Box3::ofSize(5, 5, 5, 10, 10, 10);
  EXPECT_EQ(Box3::intersection(a, b), (Box3{5, 5, 5, 10, 10, 10}));
  EXPECT_TRUE(
      Box3::intersection(a, Box3::ofSize(10, 0, 0, 5, 5, 5)).empty());
}

TEST(Box3, Contains) {
  const Box3 outer = Box3::ofSize(0, 0, 0, 10, 10, 10);
  EXPECT_TRUE(outer.contains(Box3::ofSize(1, 1, 1, 2, 2, 2)));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Box3::ofSize(9, 9, 9, 2, 2, 2)));
  EXPECT_FALSE(outer.contains(Box3{}));
}

TEST(Box3Subtract, CenterHoleGivesSixParts) {
  const Box3 b = Box3::ofSize(0, 0, 0, 10, 10, 10);
  const Box3 hole = Box3::ofSize(3, 3, 3, 4, 4, 4);
  const auto parts = b.subtract(hole);
  EXPECT_EQ(parts.size(), 6u);
  auto all = parts;
  all.push_back(hole);
  EXPECT_TRUE(exactlyCovers(b, all));
}

TEST(Box3Subtract, NoIntersectionAndFullCover) {
  const Box3 b = Box3::ofSize(0, 0, 0, 4, 4, 4);
  const auto parts = b.subtract(Box3::ofSize(10, 10, 10, 2, 2, 2));
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], b);
  EXPECT_TRUE(b.subtract(Box3::ofSize(-1, -1, -1, 10, 10, 10)).empty());
}

TEST(Box3Subtract, PropertySubtractPlusIntersectionTiles) {
  Rng rng(321);
  for (int iter = 0; iter < 1500; ++iter) {
    const Box3 b =
        Box3::ofSize(rng.uniformInt(-20, 20), rng.uniformInt(-20, 20),
                     rng.uniformInt(-20, 20), rng.uniformInt(1, 25),
                     rng.uniformInt(1, 25), rng.uniformInt(1, 25));
    const Box3 hole =
        Box3::ofSize(rng.uniformInt(-20, 20), rng.uniformInt(-20, 20),
                     rng.uniformInt(-20, 20), rng.uniformInt(1, 25),
                     rng.uniformInt(1, 25), rng.uniformInt(1, 25));
    auto parts = b.subtract(hole);
    ASSERT_LE(parts.size(), 6u);
    const Box3 inter = Box3::intersection(b, hole);
    if (!inter.empty()) parts.push_back(inter);
    EXPECT_TRUE(exactlyCovers(b, parts))
        << "b=" << b.str() << " hole=" << hole.str();
  }
}

TEST(Box3, TotalVolumeSums) {
  EXPECT_EQ(totalVolume({}), 0);
  EXPECT_EQ(totalVolume({Box3::ofSize(0, 0, 0, 2, 2, 2),
                         Box3::ofSize(9, 9, 9, 3, 1, 1)}),
            8 + 3);
}

}  // namespace
}  // namespace mqs
