// DataSource decorator that injects faults per a deterministic plan.
//
// The paper's middleware fronts a disk farm serving many concurrent clients;
// at that scale partial failures (a flaky controller, a bad sector, a
// saturated bus) are routine and must degrade a single query, never the
// shared server. FaultySource makes every such failure mode reproducible:
// all injection decisions are pure functions of (plan.seed, page, per-page
// read sequence), so a soak run that found a bug replays byte-for-byte from
// its seed.
//
// Fault model:
//  * Transient read errors — thrown as storage::TransientReadError in
//    bounded consecutive runs (at most `maxConsecutiveTransient` per read
//    sequence), so a retry loop with at least that many spare attempts is
//    guaranteed to make progress.
//  * Permanent faults — a target page set whose reads always throw
//    storage::PermanentReadError (a bad region of the disk farm).
//  * Latency spikes — occasional sleeps standing in for device contention.
//  * Burst windows — global read-sequence windows during which the
//    transient rate is boosted (a controller brown-out), still respecting
//    the consecutive-failure bound.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.hpp"
#include "storage/data_source.hpp"

namespace mqs::storage {

struct FaultPlan {
  std::uint64_t seed = 1;

  /// Probability that a fresh read of a page starts a transient-failure run.
  double transientRate = 0.0;
  /// Longest run of consecutive transient failures for one page. Retry
  /// loops need maxAttempts > this value to be guaranteed to succeed.
  int maxConsecutiveTransient = 2;

  /// Pages whose reads always fail permanently.
  std::vector<PageId> permanentPages;

  /// Probability of a latency spike on any given read, and its duration.
  double latencySpikeRate = 0.0;
  double latencySpikeSec = 0.001;

  /// Every `burstPeriod` global reads, the next `burstLen` reads use
  /// `burstTransientRate` instead of `transientRate` (0 = no bursts).
  std::uint64_t burstPeriod = 0;
  std::uint64_t burstLen = 0;
  double burstTransientRate = 0.5;
};

class FaultySource final : public DataSource {
 public:
  FaultySource(const DataSource& inner, FaultPlan plan);

  [[nodiscard]] PageId pageCount() const override;
  [[nodiscard]] std::size_t pageBytes(PageId page) const override;
  void readPage(PageId page, std::span<std::byte> out) const override;

  /// Drop all permanent faults (the bad device was replaced). Subsequent
  /// reads of previously-poisoned pages succeed; used to verify that a
  /// failed query left no partially-written state behind.
  void clearPermanentFaults();

  struct Stats {
    std::uint64_t reads = 0;               ///< readPage calls (incl. failed)
    std::uint64_t transientInjected = 0;
    std::uint64_t permanentInjected = 0;
    std::uint64_t spikesInjected = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  /// Per-page injection state: the read sequence number drives the
  /// deterministic draws; pendingTransient counts failures still owed from
  /// the current run.
  struct PageState {
    std::uint64_t readSeq = 0;
    int pendingTransient = 0;
    /// The read following a failure run is forced to succeed, so runs can
    /// never chain past maxConsecutiveTransient.
    bool cooldown = false;
  };

  const DataSource& inner_;
  FaultPlan plan_;  ///< immutable after construction (validated in the ctor)

  /// Held only for the injection decision; the inner read and the latency
  /// spike sleep both run unlocked so faults never serialize other pages.
  mutable Mutex mu_{lockorder::Rank::kStorageFaulty, "FaultySource::mu_"};
  std::unordered_set<PageId> permanent_ GUARDED_BY(mu_);
  mutable std::unordered_map<PageId, PageState> pages_ GUARDED_BY(mu_);
  mutable std::uint64_t globalSeq_ GUARDED_BY(mu_) = 0;
  mutable Stats stats_ GUARDED_BY(mu_);
};

}  // namespace mqs::storage
