#include "metrics/metrics.hpp"

#include <algorithm>
#include <map>

#include "common/stats.hpp"

namespace mqs::metrics {

void Collector::add(QueryRecord record) {
  // Consecutive tickets land on different slots, so even adds arriving
  // back to back from different threads take different locks.
  const std::uint64_t ticket =
      ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (kSlots - 1)];
  MutexLock lock(slot.mu);
  slot.records.emplace_back(ticket, std::move(record));
}

std::vector<QueryRecord> Collector::records() const {
  std::vector<std::pair<std::uint64_t, QueryRecord>> merged;
  for (const Slot& slot : slots_) {
    MutexLock lock(slot.mu);
    merged.insert(merged.end(), slot.records.begin(), slot.records.end());
  }
  // Tickets restore the global add order the single-vector collector had.
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QueryRecord> out;
  out.reserve(merged.size());
  for (auto& [ticket, record] : merged) out.push_back(std::move(record));
  return out;
}

std::size_t Collector::count() const {
  std::size_t total = 0;
  for (const Slot& slot : slots_) {
    MutexLock lock(slot.mu);
    total += slot.records.size();
  }
  return total;
}

Summary summarize(const std::vector<QueryRecord>& records) {
  Summary s;
  s.queries = records.size();
  if (records.empty()) return s;

  std::vector<double> response, wait, exec;
  response.reserve(records.size());
  double firstArrival = records.front().arrivalTime;
  double lastFinish = records.front().finishTime;
  double overlapSum = 0.0;
  double stallSum = 0.0;
  std::size_t reused = 0;
  std::int64_t sourceSum = 0;
  for (const QueryRecord& r : records) {
    if (r.failed) ++s.failedQueries;
    if (r.shed) ++s.shedQueries;
    response.push_back(r.responseTime());
    wait.push_back(r.waitTime());
    exec.push_back(r.execTime());
    firstArrival = std::min(firstArrival, r.arrivalTime);
    lastFinish = std::max(lastFinish, r.finishTime);
    overlapSum += r.overlapUsed;
    stallSum += r.ioStallTime;
    if (r.overlapUsed > 0.0) ++reused;
    s.totalDiskBytes += r.bytesFromDisk;
    s.totalReusedBytes += r.bytesReused;
    sourceSum += r.reuseSources;
    if (r.reuseSources > 1) ++s.multiSourceQueries;
  }
  s.trimmedResponse = trimmedMean95(response);
  s.p50Response = percentile(response, 50);
  s.p95Response = percentile(response, 95);
  s.p99Response = percentile(response, 99);
  s.p999Response = percentile(response, 99.9);
  s.meanResponse = mean(response);
  s.meanWait = mean(wait);
  s.meanExec = mean(exec);
  s.meanIoStall = stallSum / static_cast<double>(records.size());
  s.makespan = lastFinish - firstArrival;
  s.avgOverlap = overlapSum / static_cast<double>(records.size());
  s.reuseRate = static_cast<double>(reused) / static_cast<double>(records.size());
  s.avgReuseSources =
      static_cast<double>(sourceSum) / static_cast<double>(records.size());
  std::vector<double> clientMeans;
  for (const auto& [client, meanResp] : perClientMeanResponse(records)) {
    clientMeans.push_back(meanResp);
  }
  s.clientFairness = jainFairness(clientMeans);
  return s;
}

std::vector<std::pair<int, double>> perClientMeanResponse(
    const std::vector<QueryRecord>& records) {
  std::map<int, std::pair<double, std::size_t>> acc;  // sum, count
  for (const QueryRecord& r : records) {
    if (r.client < 0) continue;
    auto& [sum, count] = acc[r.client];
    sum += r.responseTime();
    ++count;
  }
  std::vector<std::pair<int, double>> out;
  out.reserve(acc.size());
  for (const auto& [client, sc] : acc) {
    out.emplace_back(client, sc.first / static_cast<double>(sc.second));
  }
  return out;
}

double jainFairness(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0, sumSq = 0.0;
  for (double x : xs) {
    sum += x;
    sumSq += x * x;
  }
  if (sumSq <= 0.0) return 1.0;  // all zeros: perfectly equal
  return (sum * sum) / (static_cast<double>(xs.size()) * sumSq);
}

}  // namespace mqs::metrics
