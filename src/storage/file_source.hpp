// File-backed data source: pages stored contiguously in one file, plus a
// helper that materializes a synthetic slide to disk. Used by examples and
// integration tests to exercise a real I/O path (the paper stores each
// slide on the local disks of the SMP).
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "index/chunk_layout.hpp"
#include "storage/data_source.hpp"

namespace mqs::storage {

/// On-disk page store. The file is a concatenation of pages in id order;
/// page boundaries come from the chunk layout (edge pages are short).
class FileSource final : public DataSource {
 public:
  /// Opens an existing file previously produced by materialize().
  FileSource(std::filesystem::path path, index::ChunkLayout layout);
  ~FileSource() override;

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  [[nodiscard]] PageId pageCount() const override;
  [[nodiscard]] std::size_t pageBytes(PageId page) const override;
  void readPage(PageId page, std::span<std::byte> out) const override;

  [[nodiscard]] const index::ChunkLayout& layout() const { return layout_; }

  /// Write all pages of `source` to `path` in id order. Returns total bytes.
  static std::uint64_t materialize(const DataSource& source,
                                   const std::filesystem::path& path);

 private:
  [[nodiscard]] std::uint64_t pageOffset(PageId page) const;

  std::filesystem::path path_;    ///< immutable after construction
  index::ChunkLayout layout_;     ///< immutable after construction
  /// Byte offset of each page; immutable after construction.
  std::vector<std::uint64_t> offsets_;
  /// Serializes the seek+read pair on the one shared FILE handle. The
  /// pointer itself is set in the constructor and closed in the destructor;
  /// only the stream it points to needs the lock.
  mutable Mutex ioMutex_{lockorder::Rank::kStorageFile,
                         "FileSource::ioMutex_"};
  std::FILE* file_ PT_GUARDED_BY(ioMutex_) = nullptr;
};

}  // namespace mqs::storage
