// LatencyHistogram: the streaming percentile estimator must agree with an
// exact sorted-sample computation up to its documented quantization on
// every distribution shape the load generator meets (constant service,
// bimodal hit/miss, heavy tails under overload), merge exactly and
// associatively, and render byte-stable JSON.
#include "loadgen/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace mqs::loadgen {
namespace {

/// Nearest-rank percentile on the raw samples — the definition the
/// histogram's documentation promises to match bucket-for-bucket.
std::uint64_t exactPercentile(std::vector<std::uint64_t> samples, double p) {
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

LatencyHistogram histogramOf(const std::vector<std::uint64_t>& samples) {
  LatencyHistogram h;
  for (const std::uint64_t v : samples) h.record(v);
  return h;
}

/// The histogram reports the upper bound of the bucket holding the exact
/// nearest-rank sample: same rank definition, monotone bucketing.
void expectMatchesExact(const std::vector<std::uint64_t>& samples) {
  const LatencyHistogram h = histogramOf(samples);
  for (const double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t exact = exactPercentile(samples, p);
    EXPECT_EQ(h.percentileNanos(p),
              LatencyHistogram::slotUpperBound(LatencyHistogram::slotOf(exact)))
        << "p=" << p;
    // Never understates the true percentile; overstates by at most the
    // relative quantization bound (exact below the sub-bucket threshold).
    EXPECT_GE(h.percentileNanos(p), exact) << "p=" << p;
    EXPECT_LE((h.percentileNanos(p) - exact) * LatencyHistogram::kSubBuckets,
              std::max<std::uint64_t>(exact, 1))
        << "p=" << p;
  }
}

TEST(LatencyHistogram, ValuesBelowSubBucketThresholdAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::slotOf(v), v);
    EXPECT_EQ(LatencyHistogram::slotUpperBound(v), v);
    h.record(v);
  }
  // 32 samples 0..31: p-th percentile is sample ceil(p/100*32)-1, exactly.
  EXPECT_EQ(h.percentileNanos(50), 15u);
  EXPECT_EQ(h.percentileNanos(100), 31u);
  EXPECT_EQ(h.maxNanos(), 31u);
  EXPECT_DOUBLE_EQ(h.meanNanos(), 15.5);
}

TEST(LatencyHistogram, SlotBoundsHoldAcrossMagnitudes) {
  Rng rng(42);
  for (int trial = 0; trial < 20000; ++trial) {
    // Log-uniform across the full range the generator can see.
    const int bits = static_cast<int>(rng.uniformInt(0, 62));
    const std::uint64_t v = (1ULL << bits) +
                            static_cast<std::uint64_t>(rng.uniformInt(
                                0, static_cast<std::int64_t>(
                                       (1ULL << bits) - 1)));
    const std::size_t slot = LatencyHistogram::slotOf(v);
    ASSERT_LT(slot, LatencyHistogram::kSlots);
    const std::uint64_t ub = LatencyHistogram::slotUpperBound(slot);
    ASSERT_GE(ub, v);
    // Relative error bound: bucket width <= value / 2^kSubBucketBits.
    ASSERT_LE((ub - v) * LatencyHistogram::kSubBuckets,
              std::max<std::uint64_t>(v, 1));
    // Bucketing is consistent: the upper bound lands in the same slot.
    ASSERT_EQ(LatencyHistogram::slotOf(ub), slot);
  }
}

TEST(LatencyHistogram, MatchesExactOnConstantDistribution) {
  expectMatchesExact(std::vector<std::uint64_t>(1000, 777777));
}

TEST(LatencyHistogram, MatchesExactOnBimodalDistribution) {
  // Cache-hit mode around 1us, miss mode around 100ms — the shape an
  // overloaded server with a result cache actually produces.
  Rng rng(7);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t base = rng.bernoulli(0.8) ? 1000 : 100000000;
    samples.push_back(base +
                      static_cast<std::uint64_t>(rng.uniformInt(0, base / 4)));
  }
  expectMatchesExact(samples);
}

TEST(LatencyHistogram, MatchesExactOnHeavyTailDistribution) {
  // Pareto-ish tail: u^(-1/alpha) scale, alpha < 2 so the tail dominates.
  Rng rng(13);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    const double u = 1.0 - rng.uniform01();
    samples.push_back(
        static_cast<std::uint64_t>(5000.0 * std::pow(u, -1.0 / 1.3)));
  }
  expectMatchesExact(samples);
}

TEST(LatencyHistogram, MergeIsExactAndAssociative) {
  Rng rng(99);
  std::vector<std::uint64_t> all;
  std::vector<std::vector<std::uint64_t>> shards(3);
  for (int i = 0; i < 9000; ++i) {
    const auto v = static_cast<std::uint64_t>(
        1000.0 * std::pow(1.0 - rng.uniform01(), -0.7));
    all.push_back(v);
    shards[static_cast<std::size_t>(i % 3)].push_back(v);
  }
  const LatencyHistogram whole = histogramOf(all);
  const LatencyHistogram a = histogramOf(shards[0]);
  const LatencyHistogram b = histogramOf(shards[1]);
  const LatencyHistogram c = histogramOf(shards[2]);

  LatencyHistogram left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.merge(c);
  LatencyHistogram right = a;
  right.merge(bc);

  // Integer counts: merges are exact, so all three renderings are
  // byte-identical to recording every sample into one histogram.
  EXPECT_EQ(left.toJson(), whole.toJson());
  EXPECT_EQ(right.toJson(), whole.toJson());
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.maxNanos(), whole.maxNanos());
  EXPECT_DOUBLE_EQ(left.meanNanos(), whole.meanNanos());
  EXPECT_EQ(left.percentileNanos(99), whole.percentileNanos(99));
}

TEST(LatencyHistogram, GoldenJsonIsByteStable) {
  LatencyHistogram h;
  for (const std::uint64_t v : {5ULL, 31ULL, 32ULL, 100ULL, 1000000ULL}) {
    h.record(v);
  }
  // Hand-computed slots: exact 5 and 31; 32 -> first log-linear slot 32;
  // 100 -> k=6, sub=(100>>1)&31=18 -> 64+18=82; 1000000 -> k=19,
  // sub=(1000000>>14)&31=29 -> 480+29=509.
  EXPECT_EQ(h.toJson(),
            "{\"count\":5,\"sumNanos\":1000168,\"maxNanos\":1000000,"
            "\"buckets\":[[5,1],[31,1],[32,1],[82,1],[509,1]]}");
  // Recording order must not matter (the golden's stability across
  // shard-merge orderings depends on it).
  LatencyHistogram reversed;
  for (const std::uint64_t v : {1000000ULL, 100ULL, 32ULL, 31ULL, 5ULL}) {
    reversed.record(v);
  }
  EXPECT_EQ(reversed.toJson(), h.toJson());
}

TEST(LatencyHistogram, EmptyHistogramIsWellDefined) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentileNanos(50), 0u);
  EXPECT_EQ(h.maxNanos(), 0u);
  EXPECT_DOUBLE_EQ(h.meanNanos(), 0.0);
  EXPECT_EQ(h.toJson(),
            "{\"count\":0,\"sumNanos\":0,\"maxNanos\":0,\"buckets\":[]}");
}

}  // namespace
}  // namespace mqs::loadgen
