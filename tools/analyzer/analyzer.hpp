// mqs-analyze — whole-program static analysis for the MQS lock discipline
// (DESIGN.md §15).
//
// Three checks, run across every TU named by compile_commands.json plus
// every header under --src-root, then merged:
//
//   1. lock-graph     Extract every Mutex acquisition together with the set
//                     of ranked locks provably held at that point
//                     (intra-procedural hold-set propagation, seeded by
//                     REQUIRES annotations on *Locked helpers, widened by a
//                     call-summary fixpoint so `server.submit()` under a
//                     lock contributes the scheduler locks submit takes).
//                     Report rank inversions (edge from rank a to rank
//                     b <= a), cycles among the per-mutex graph, and any
//                     disagreement with the DESIGN.md §9 rank table.
//   2. guarded-by     In any record that owns a Mutex, every mutable
//                     non-const, non-atomic data member must carry
//                     GUARDED_BY / PT_GUARDED_BY, an `immutable after
//                     construction` comment, or an allowlist entry —
//                     closing the hole where an unannotated field escapes
//                     -Werror=thread-safety entirely.
//   3. blocking       Calls from a configurable blocking set (file I/O,
//                     sleeps, future/queue waits, CondVar::wait on a
//                     *different* mutex) made while a shard-leaf rank
//                     (>= --blocking-min-rank, default 44) is held.
//
// Frontends: a built-in C++ lexer (always available, zero dependencies)
// or, when CMake finds the Clang development libraries, the real
// clang::Lexer / JSONCompilationDatabase (MQS_ANALYZE_HAVE_CLANG). Both
// feed the same token stream into the same analysis core.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace mqs::analyze {

// ---------------------------------------------------------------------------
// Tokens (the frontend contract)

struct Tok {
  enum class Kind : std::uint8_t { Ident, Punct, Number, String, Char };
  Kind kind = Kind::Punct;
  std::string text;
  int line = 1;
};

struct LexedFile {
  std::string path;  ///< as given (repo-relative preferred)
  std::vector<Tok> toks;
  /// line -> concatenated comment text on that line (for the
  /// `immutable after construction` member exemption).
  std::unordered_map<int, std::string> comments;
};

/// Built-in frontend: lex `text` (C++ source) into tokens, skipping
/// preprocessor directives and recording comment text per line.
LexedFile lexSource(const std::string& path, const std::string& text);

#if defined(MQS_ANALYZE_HAVE_CLANG)
/// Clang frontend: same contract, tokens produced by clang::Lexer.
LexedFile lexSourceClang(const std::string& path, const std::string& text);
/// Load TU paths via clang::tooling::JSONCompilationDatabase.
std::vector<std::string> compileCommandsFilesClang(const std::string& dbPath);
#endif

/// Load TU paths from a compile_commands.json (built-in minimal parser).
std::vector<std::string> compileCommandsFiles(const std::string& dbPath);

// ---------------------------------------------------------------------------
// Program model (what the parser extracts)

struct MutexDecl {
  std::string path;      ///< qualified, e.g. "datastore::SpillTier::mu_"
  std::string rankName;  ///< "kSpillTier"; empty = unranked
  int rank = 0;          ///< numeric rank; 0 = unranked
  /// The debug-name string literal from the initializer (the runtime lock
  /// checker's identity, e.g. "logging::gMutex"). Used as an alias when
  /// matching the DESIGN.md rank table: anonymous namespaces make the
  /// declared path lose its logical scope.
  std::string nameLiteral;
  std::string file;
  int line = 0;
};

struct MemberDecl {
  std::string name;
  std::string typeText;  ///< type tokens joined with spaces
  int line = 0;
  bool isConst = false;    ///< top-level const (or reference member)
  bool isAtomic = false;   ///< std::atomic<...>
  bool isStatic = false;
  bool isGuarded = false;  ///< GUARDED_BY / PT_GUARDED_BY present
  bool hasImmutableComment = false;  ///< "immutable after construction"
};

struct RecordDecl {
  std::string path;  ///< qualified record name
  std::string file;
  int line = 0;
  std::vector<MemberDecl> members;
  std::vector<std::string> mutexMembers;  ///< names of Mutex-typed members
  [[nodiscard]] bool ownsMutex() const { return !mutexMembers.empty(); }
};

/// One Mutex acquisition inside a function body, with the hold set at
/// that point (indices into Program::mutexes).
struct AcquireEvent {
  int mutexIdx = -1;
  std::vector<int> held;
  int line = 0;
};

/// A call made with locks held; resolved to zero or more callee keys.
struct CallEvent {
  std::string callee;  ///< resolved function key ("Record::name" or "name")
  std::vector<int> held;
  int line = 0;
};

/// A call to a configured blocking operation, with the hold set.
struct BlockingEvent {
  std::string what;  ///< e.g. "std::fwrite", "BlockingQueue::pop"
  std::vector<int> held;
  int waitedMutexIdx = -1;  ///< CondVar::wait target (exempt from check)
  int line = 0;
};

struct FuncDef {
  std::string key;     ///< "Record::name" (record-qualified) or bare name
  std::string record;  ///< enclosing record path, or empty
  std::string file;
  int line = 0;
  std::string returnTypeText;
  std::vector<std::string> requiresExprs;  ///< REQUIRES(...) argument texts
  std::vector<std::string> acquireExprs;   ///< ACQUIRE(...) argument texts
  /// Parameter name -> type text (for receiver resolution).
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t bodyBegin = 0, bodyEnd = 0;  ///< token range of `{...}` body
  bool hasBody = false;

  // Filled by the body walk:
  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<BlockingEvent> blocking;
};

struct Program {
  std::vector<MutexDecl> mutexes;
  std::map<std::string, RecordDecl> records;  ///< by qualified path
  std::vector<FuncDef> funcs;
  /// Annotations from declarations without bodies: key -> REQUIRES exprs.
  std::map<std::string, std::vector<std::string>> declRequires;
  std::map<std::string, int> rankValues;  ///< "kSpillTier" -> 44
  /// Namespace-scope variable name -> type text (e.g. logging::gMutex).
  std::map<std::string, std::string> globals;

  [[nodiscard]] int mutexIndex(const std::string& path) const {
    for (std::size_t i = 0; i < mutexes.size(); ++i)
      if (mutexes[i].path == path) return static_cast<int>(i);
    return -1;
  }
};

/// Parse one lexed file into `prog` (declarations, records, function
/// definitions with body token ranges). Safe to call once per file.
void parseFile(const LexedFile& file, Program& prog);

// ---------------------------------------------------------------------------
// Checks

struct Finding {
  std::string check;  ///< lock-inversion | lock-cycle | guarded-by-gap |
                      ///< blocking-under-lock | rank-table-mismatch
  std::string file;
  std::string where;  ///< function or Record::member
  std::string detail;
  int line = 0;

  /// Stable identity (no line numbers, so unrelated edits don't churn the
  /// baseline).
  [[nodiscard]] std::string id() const {
    return check + ": " + file + ": " + where + ": " + detail;
  }
};

struct Edge {
  int from = -1, to = -1;  ///< indices into Program::mutexes
  std::vector<std::string> sites;  ///< "file:line (function)"
};

struct Config {
  int blockingMinRank = 44;
  /// Blocking operations: bare/qualified names and Type::method entries.
  std::set<std::string> blockingNames;
  std::set<std::string> blockingMethods;  ///< "Type::name"
  /// GUARDED_BY coverage: member types exempt by construction (internally
  /// synchronized or lifecycle handles) and Record::member allowlist.
  std::set<std::string> exemptMemberTypes;
  std::set<std::string> memberAllowlist;

  static Config defaults();
  /// Extend from a config file: lines `blocking: name`, `blocking: T::m`,
  /// `exempt-type: Name`, `allow-member: Record::member` (# comments).
  void loadFile(const std::string& path);
};

/// Walk every function body: propagate hold sets, record acquisitions,
/// calls, and blocking events; then run the call-summary fixpoint.
void analyzeBodies(const std::vector<LexedFile>& files, Program& prog,
                   const Config& cfg);

/// Lock-graph edges merged across all functions (after analyzeBodies).
std::vector<Edge> lockGraph(const Program& prog);

std::vector<Finding> checkLockGraph(const Program& prog,
                                    const std::vector<Edge>& edges);
std::vector<Finding> checkGuardedBy(const Program& prog, const Config& cfg);
std::vector<Finding> checkBlocking(const Program& prog, const Config& cfg);

/// DESIGN.md §9 cross-check: every ranked mutex in code appears in the
/// table with the same rank, and vice versa. `designText` is the whole
/// DESIGN.md; rows look like `| 44 | \`datastore::SpillTier::mu_\` | ... |`.
std::vector<Finding> checkDesignTable(const Program& prog,
                                      const std::string& designText,
                                      const std::string& designPath);

// ---------------------------------------------------------------------------
// Fragments + merge + reporting

/// Serialize one TU's extraction (acquisition edges + findings inputs) as
/// JSON; `mergeFragments` parses them back. Round-tripping through disk is
/// how multi-process CI runs merge (and the self-test exercises it).
std::string fragmentJson(const Program& prog, const std::string& tu,
                         const std::vector<const FuncDef*>& funcs);

/// Parse fragment JSON texts back into a merged, deduplicated edge list
/// (paths resolved against `prog.mutexes`; unknown paths dropped).
std::vector<Edge> mergeFragments(const Program& prog,
                                 const std::vector<std::string>& fragmentTexts);

/// Merged lock graph as JSON for results/lockgraph.json.
std::string lockGraphJson(const Program& prog, const std::vector<Edge>& edges,
                          const std::vector<Finding>& findings);

/// Baseline: one Finding::id() per line, '#' comments. Returns the subset
/// of `findings` NOT in the baseline (i.e. new findings that fail CI).
std::vector<Finding> applyBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline,
                                   std::vector<std::string>* staleEntries);

std::set<std::string> loadBaseline(const std::string& path);

// Small shared helpers (used by checks + main).
std::string readFileOrDie(const std::string& path);
std::string jsonEscape(const std::string& s);

}  // namespace mqs::analyze
