// Whole-system integration: the client emulator driving both engines on the
// same (scaled-down) workload the paper uses, checking the system-level
// behaviours the paper reports qualitatively.
#include <gtest/gtest.h>

#include "driver/server_experiment.hpp"
#include "driver/sim_experiment.hpp"

namespace mqs::driver {
namespace {

WorkloadConfig testWorkload(vm::VMOp op = vm::VMOp::Subsample) {
  WorkloadConfig cfg;
  cfg.datasets = {DatasetSpec{4096, 4096, 128, 1},
                  DatasetSpec{4096, 4096, 128, 2},
                  DatasetSpec{4096, 4096, 128, 3}};
  cfg.clientsPerDataset = {4, 3, 1};
  cfg.queriesPerClient = 6;
  cfg.outputSide = 256;
  cfg.zoomLevels = {2, 4, 8};
  cfg.zoomWeights = {1, 2, 1};
  cfg.alignGrid = 16;
  cfg.op = op;
  cfg.seed = 2002;
  return cfg;
}

sim::SimConfig simConfig() {
  sim::SimConfig cfg;
  cfg.threads = 4;
  cfg.cpus = 8;
  cfg.dsBytes = 16ULL << 20;
  cfg.psBytes = 8ULL << 20;
  return cfg;
}

TEST(EndToEndSim, InteractiveRunCompletesAllQueries) {
  const auto result = SimExperiment::runInteractive(testWorkload(), simConfig());
  EXPECT_EQ(result.summary.queries, 48u);  // 8 clients x 6 queries
  EXPECT_GT(result.summary.trimmedResponse, 0.0);
  EXPECT_GT(result.summary.makespan, 0.0);
  EXPECT_GT(result.events, 100u);
  // Inter-client hotspots guarantee some reuse.
  EXPECT_GT(result.summary.reuseRate, 0.0);
  EXPECT_GT(result.dsStats.hits, 0u);
}

TEST(EndToEndSim, BatchRunCompletesAllQueries) {
  const auto result = SimExperiment::runBatch(testWorkload(), simConfig());
  EXPECT_EQ(result.summary.queries, 48u);
  // In batch mode every query arrives at t=0: waits dominate responses.
  EXPECT_GT(result.summary.meanWait, 0.0);
}

TEST(EndToEndSim, DeterministicAcrossRuns) {
  const auto a = SimExperiment::runInteractive(testWorkload(), simConfig());
  const auto b = SimExperiment::runInteractive(testWorkload(), simConfig());
  EXPECT_DOUBLE_EQ(a.summary.trimmedResponse, b.summary.trimmedResponse);
  EXPECT_DOUBLE_EQ(a.summary.makespan, b.summary.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.io.bytesRead, b.io.bytesRead);
}

TEST(EndToEndSim, CachingImprovesPerformance) {
  auto off = simConfig();
  off.dataStoreEnabled = false;
  const auto with = SimExperiment::runBatch(testWorkload(), simConfig());
  const auto without = SimExperiment::runBatch(testWorkload(), off);
  // §5: "caching intermediate results can significantly improve
  // performance" — batch total execution time must drop.
  EXPECT_LT(with.summary.makespan, without.summary.makespan);
  EXPECT_LT(with.io.bytesRead, without.io.bytesRead);
  EXPECT_DOUBLE_EQ(without.summary.avgOverlap, 0.0);
  EXPECT_GT(with.summary.avgOverlap, 0.0);
}

TEST(EndToEndSim, EveryPolicyCompletesTheWorkload) {
  for (const auto& policy : sched::allPolicyNames()) {
    auto cfg = simConfig();
    cfg.policy = policy;
    const auto result = SimExperiment::runBatch(testWorkload(), cfg);
    EXPECT_EQ(result.summary.queries, 48u) << policy;
    EXPECT_GT(result.summary.makespan, 0.0) << policy;
  }
}

TEST(EndToEndSim, PoliciesActuallyChangeTheSchedule) {
  auto fifo = simConfig();
  fifo.policy = "FIFO";
  auto cf = simConfig();
  cf.policy = "CF";
  const auto a = SimExperiment::runBatch(testWorkload(), fifo);
  const auto b = SimExperiment::runBatch(testWorkload(), cf);
  // Same workload, different completion dynamics.
  EXPECT_NE(a.summary.trimmedResponse, b.summary.trimmedResponse);
}

TEST(EndToEndSim, AveragingIsMoreBalancedThanSubsampling) {
  const auto sub = SimExperiment::runBatch(testWorkload(vm::VMOp::Subsample),
                                           simConfig());
  const auto avg = SimExperiment::runBatch(testWorkload(vm::VMOp::Average),
                                           simConfig());
  // Same I/O demand, much higher CPU demand: averaging runs longer.
  EXPECT_GT(avg.summary.makespan, sub.summary.makespan);
}

TEST(EndToEndSim, ThinkTimeStretchesTheRunWithoutChangingWork) {
  WorkloadConfig busy = testWorkload();
  WorkloadConfig relaxed = testWorkload();
  relaxed.thinkTimeMeanSec = 2.0;
  const auto a = SimExperiment::runInteractive(busy, simConfig());
  const auto b = SimExperiment::runInteractive(relaxed, simConfig());
  EXPECT_EQ(a.summary.queries, b.summary.queries);
  EXPECT_GT(b.summary.makespan, a.summary.makespan);
  // Fewer queries in the system at once -> shorter queue waits.
  EXPECT_LE(b.summary.meanWait, a.summary.meanWait + 1e-9);
}

TEST(EndToEndSim, OpenLoopLowRateHasNoQueueing) {
  // At a trickle of arrivals the server is always idle when a query lands.
  const auto result = SimExperiment::runOpenLoop(testWorkload(), simConfig(),
                                                 /*arrivalsPerSecond=*/0.05);
  EXPECT_EQ(result.summary.queries, 48u);
  EXPECT_LT(result.summary.meanWait, 0.01);
}

TEST(EndToEndSim, OpenLoopHighRateQueues) {
  const auto slow = SimExperiment::runOpenLoop(testWorkload(), simConfig(),
                                               0.05);
  const auto flood = SimExperiment::runOpenLoop(testWorkload(), simConfig(),
                                                100.0);
  EXPECT_EQ(flood.summary.queries, 48u);
  EXPECT_GT(flood.summary.meanWait, slow.summary.meanWait);
  EXPECT_GT(flood.summary.meanResponse, slow.summary.meanResponse);
}

TEST(EndToEndSim, PyramidPrewarmEliminatesQueryIo) {
  // Materialized views: execute a pyramid level first, then the whole
  // workload at coarser zooms projects without touching the disk.
  WorkloadConfig wl = testWorkload();
  wl.clientsPerDataset = {2, 0, 0};
  wl.zoomLevels = {4, 8};
  wl.zoomWeights = {1, 1};

  vm::VMSemantics sem;
  const auto workloads = WorkloadGenerator::generate(wl, sem);

  sim::Simulator simr;
  auto cfg = simConfig();
  cfg.dsBytes = 1ULL << 30;      // hold the whole level
  cfg.maxNestedReuseDepth = 8;   // queries may span several tiles
  sim::SimServer server(simr, &sem, cfg);

  for (const auto& tile : sem.pyramidLevel(0, 4, 256, wl.op)) {
    server.submit(std::make_unique<vm::VMPredicate>(tile), -1);
  }
  simr.run();
  const auto warmupRecords = server.collector().records().size();

  for (const auto& c : workloads) {
    for (const auto& q : c.queries) {
      server.submit(std::make_unique<vm::VMPredicate>(q), c.client);
    }
  }
  simr.run();

  const auto records = server.collector().records();
  for (std::size_t i = warmupRecords; i < records.size(); ++i) {
    EXPECT_EQ(records[i].bytesFromDisk, 0u) << records[i].predicate;
    EXPECT_GT(records[i].overlapUsed, 0.0) << records[i].predicate;
  }
}

TEST(EndToEndServer, InteractiveRunCorrectAndComplete) {
  WorkloadConfig wl = testWorkload();
  wl.clientsPerDataset = {2, 1, 1};
  wl.queriesPerClient = 4;
  server::ServerConfig cfg;
  cfg.threads = 4;
  cfg.policy = "CF";
  cfg.dsBytes = 32ULL << 20;
  cfg.psBytes = 16ULL << 20;
  const auto result = ServerExperiment::runInteractive(wl, cfg);
  EXPECT_EQ(result.summary.queries, 16u);
  EXPECT_GT(result.summary.reuseRate, 0.0);
  EXPECT_GT(result.psStats.bytesRead, 0u);
}

TEST(EndToEndServer, BatchRunAllPolicies) {
  WorkloadConfig wl = testWorkload();
  wl.clientsPerDataset = {2, 1, 0};
  wl.queriesPerClient = 4;
  for (const auto& policy : {"FIFO", "SJF", "CNBF"}) {
    server::ServerConfig cfg;
    cfg.threads = 3;
    cfg.policy = policy;
    const auto result = ServerExperiment::runBatch(wl, cfg);
    EXPECT_EQ(result.summary.queries, 12u) << policy;
    EXPECT_EQ(result.schedStats.completedCount, 12u) << policy;
  }
}

TEST(EndToEndCrossEngine, SimAndServerAgreeOnReuseStructure) {
  // The two engines share the scheduler/DS logic; with a single client and
  // a single thread the arrival and execution orders are identical, so
  // their reuse decisions must coincide query by query.
  WorkloadConfig wl = testWorkload();
  wl.clientsPerDataset = {1, 0, 0};
  wl.queriesPerClient = 10;

  auto sc = simConfig();
  sc.threads = 1;
  sc.policy = "FIFO";
  sc.cacheSubqueryResults = false;
  const auto simResult = SimExperiment::runInteractive(wl, sc);

  server::ServerConfig rc;
  rc.threads = 1;
  rc.policy = "FIFO";
  rc.dsBytes = sc.dsBytes;
  rc.psBytes = sc.psBytes;
  rc.cacheSubqueryResults = false;
  const auto srvResult = ServerExperiment::runInteractive(wl, rc);

  ASSERT_EQ(simResult.summary.queries, srvResult.summary.queries);
  // Same per-query reuse overlap, query by query (both FIFO, 1 thread).
  auto simRecs = simResult.records;
  auto srvRecs = srvResult.records;
  auto byArrival = [](const metrics::QueryRecord& a,
                      const metrics::QueryRecord& b) {
    return a.queryId < b.queryId;
  };
  std::sort(simRecs.begin(), simRecs.end(), byArrival);
  std::sort(srvRecs.begin(), srvRecs.end(), byArrival);
  for (std::size_t i = 0; i < simRecs.size(); ++i) {
    EXPECT_DOUBLE_EQ(simRecs[i].overlapUsed, srvRecs[i].overlapUsed)
        << "query " << i << ": " << simRecs[i].predicate;
    EXPECT_EQ(simRecs[i].bytesReused, srvRecs[i].bytesReused) << i;
  }
}

}  // namespace
}  // namespace mqs::driver
