file(REMOVE_RECURSE
  "CMakeFiles/micro_server.dir/micro_server.cpp.o"
  "CMakeFiles/micro_server.dir/micro_server.cpp.o.d"
  "micro_server"
  "micro_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
