#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, regenerate every
# figure/table of the paper plus the ablations. Pass --full to run the
# figure benches at paper scale (minutes instead of seconds).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_FLAG="${1:-}"

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== figures and ablations =="
mkdir -p results
for b in build/bench/*; do
  [ -x "$b" ] || continue
  case "$(basename "$b")" in
    # google-benchmark binaries reject harness flags; run them bare.
    micro_sched|micro_substrates|micro_server)
      echo "--- $b ---"
      "$b"
      ;;
    *)
      # Each figure harness leaves a machine-readable results/BENCH_<fig>.json
      # next to its printed tables (see docs/OBSERVABILITY.md).
      echo "--- $b $SCALE_FLAG --json-dir results ---"
      "$b" $SCALE_FLAG --json-dir results
      ;;
  esac
done

echo "== tracing-overhead guard =="
build/bench/micro_server --overhead-guard

echo "== lifecycle trace (fig4, first run) =="
build/bench/fig4_response_vs_threads --threads 4 --queries 4 \
  --json-dir results --trace-out results/fig4.trace.json

echo "== examples (smoke) =="
build/examples/quickstart
build/examples/timeseries_app
build/examples/volume_explorer --slices 2
build/examples/replay_trace
