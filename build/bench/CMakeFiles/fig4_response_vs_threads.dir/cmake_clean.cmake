file(REMOVE_RECURSE
  "CMakeFiles/fig4_response_vs_threads.dir/fig4_response_vs_threads.cpp.o"
  "CMakeFiles/fig4_response_vs_threads.dir/fig4_response_vs_threads.cpp.o.d"
  "fig4_response_vs_threads"
  "fig4_response_vs_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_response_vs_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
