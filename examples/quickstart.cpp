// Quickstart: stand up the multi-query server on a synthetic slide, run a
// few Virtual Microscope queries, and watch the Data Store turn repeated
// work into projections.
//
//   ./quickstart [--policy CF] [--threads 2] [--out /tmp/vm.ppm]
#include <iostream>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "server/query_server.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

using namespace mqs;

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  // 1. Describe a dataset: a 4096x4096 3-byte-per-pixel slide cut into
  //    ~64KB square chunks, and register it with the VM semantics.
  vm::VMSemantics semantics;
  const storage::DatasetId slideId =
      semantics.addDataset(index::ChunkLayout(4096, 4096, 146));
  storage::SyntheticSlideSource slide(semantics.layout(slideId), /*seed=*/7);

  // 2. Start the query server: thread pool + scheduler + Data Store +
  //    Page Space, with the ranking policy of your choice.
  server::ServerConfig cfg;
  cfg.threads = static_cast<int>(opts.getInt("threads", 2));
  cfg.policy = opts.getString("policy", "CF");
  cfg.dsBytes = opts.getBytes("ds", 32 * MiB);
  cfg.psBytes = opts.getBytes("ps", 16 * MiB);
  vm::VMExecutor executor(&semantics);
  server::QueryServer server(&semantics, &executor, cfg);
  server.attach(slideId, &slide);

  auto query = [&](Rect region, std::uint32_t zoom, vm::VMOp op) {
    auto pred = std::make_unique<vm::VMPredicate>(slideId, region, zoom, op);
    std::cout << "query  " << pred->describe() << "\n";
    const auto result = server.execute(std::move(pred), /*client=*/0);
    std::cout << "  -> " << formatBytes(result.record.outputBytes)
              << " in " << result.record.execTime() * 1e3 << " ms"
              << ", reuse overlap " << result.record.overlapUsed
              << ", read " << formatBytes(result.record.bytesFromDisk)
              << " from disk\n";
    return result;
  };

  // 3. A browsing session. The second query is the same region at lower
  //    magnification — answered entirely by projecting the first result.
  //    The third pans right — answered half from cache, half from disk.
  std::cout << "policy: " << cfg.policy << ", threads: " << cfg.threads
            << "\n\n";
  (void)query(Rect::ofSize(512, 512, 1024, 1024), 2, vm::VMOp::Average);
  (void)query(Rect::ofSize(512, 512, 1024, 1024), 4, vm::VMOp::Average);
  const auto panned =
      query(Rect::ofSize(1024, 512, 1024, 1024), 4, vm::VMOp::Average);

  // 4. Results are plain RGB bytes; save one as a PPM if asked.
  if (opts.has("out")) {
    const auto path = opts.getString("out", "vm.ppm");
    const vm::ImageRGB img =
        vm::ImageRGB::fromBytes(panned.bytes, 256, 256);
    std::cout << "\nwrote " << path << ": " << vm::writePpm(img, path)
              << "\n";
  }

  // 5. Peek at the middleware's accounting.
  const auto ds = server.dataStore().stats();
  const auto ps = server.pageSpace().stats();
  std::cout << "\nData Store: " << ds.lookups << " lookups, " << ds.hits
            << " hits (" << ds.fullHits << " full), " << ds.inserts
            << " inserts, " << ds.evictions << " evictions\n";
  std::cout << "Page Space: " << ps.hits << " hits, "
            << ps.misses + ps.prefetchIssued << " device reads ("
            << formatBytes(ps.bytesRead) << "), " << ps.merged
            << " merged requests, " << ps.prefetchHits << "/"
            << ps.prefetchIssued << " prefetches used\n";
  server.shutdown();
  return 0;
}
