# Empty dependencies file for timeseries_app.
# This may be replaced when dependencies are built.
