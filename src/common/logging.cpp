#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace mqs {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
std::mutex gMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
  }
  return "?????";
}
}  // namespace

void setLogLevel(LogLevel level) { gLevel.store(level); }
LogLevel logLevel() { return gLevel.load(); }

namespace detail {
void logEmit(LogLevel level, const std::string& message) {
  if (level < gLevel.load()) return;
  std::lock_guard lock(gMutex);
  std::clog << '[' << levelName(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace mqs
