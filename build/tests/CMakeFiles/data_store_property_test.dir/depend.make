# Empty dependencies file for data_store_property_test.
# This may be replaced when dependencies are built.
