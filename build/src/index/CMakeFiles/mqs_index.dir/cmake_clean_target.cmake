file(REMOVE_RECURSE
  "libmqs_index.a"
)
