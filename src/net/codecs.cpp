#include "net/codecs.hpp"

#include "common/check.hpp"
#include "vm/vm_predicate.hpp"
#include "vol/vol_predicate.hpp"

namespace mqs::net {

namespace {

class VmCodec final : public PredicateCodec {
 public:
  [[nodiscard]] std::string_view kind() const override { return "vm"; }

  void encode(const query::Predicate& pred, Writer& out) const override {
    const vm::VMPredicate& p = vm::asVM(pred);
    out.u32(p.dataset());
    out.i64(p.region().x0);
    out.i64(p.region().y0);
    out.i64(p.region().x1);
    out.i64(p.region().y1);
    out.u32(p.zoom());
    out.u8(static_cast<std::uint8_t>(p.op()));
  }

  [[nodiscard]] query::PredicatePtr decode(Reader& in) const override {
    const auto dataset = in.u32();
    Rect r;
    r.x0 = in.i64();
    r.y0 = in.i64();
    r.x1 = in.i64();
    r.y1 = in.i64();
    const auto zoom = in.u32();
    const auto op = static_cast<vm::VMOp>(in.u8());
    MQS_CHECK_MSG(op == vm::VMOp::Subsample || op == vm::VMOp::Average,
                  "bad VM op on the wire");
    return std::make_unique<vm::VMPredicate>(dataset, r, zoom, op);
  }
};

class VolCodec final : public PredicateCodec {
 public:
  [[nodiscard]] std::string_view kind() const override { return "vol"; }

  void encode(const query::Predicate& pred, Writer& out) const override {
    const vol::VolPredicate& p = vol::asVol(pred);
    out.u32(p.dataset());
    out.i64(p.box().x0);
    out.i64(p.box().y0);
    out.i64(p.box().z0);
    out.i64(p.box().x1);
    out.i64(p.box().y1);
    out.i64(p.box().z1);
    out.u32(p.lod());
    out.u8(static_cast<std::uint8_t>(p.op()));
  }

  [[nodiscard]] query::PredicatePtr decode(Reader& in) const override {
    const auto dataset = in.u32();
    Box3 b;
    b.x0 = in.i64();
    b.y0 = in.i64();
    b.z0 = in.i64();
    b.x1 = in.i64();
    b.y1 = in.i64();
    b.z1 = in.i64();
    const auto lod = in.u32();
    const auto op = static_cast<vol::VolOp>(in.u8());
    MQS_CHECK_MSG(op == vol::VolOp::Subvolume || op == vol::VolOp::Slice,
                  "bad volume op on the wire");
    return std::make_unique<vol::VolPredicate>(dataset, b, lod, op);
  }
};

}  // namespace

std::unique_ptr<PredicateCodec> makeVmCodec() {
  return std::make_unique<VmCodec>();
}
std::unique_ptr<PredicateCodec> makeVolCodec() {
  return std::make_unique<VolCodec>();
}

void CodecRegistry::add(std::unique_ptr<PredicateCodec> codec) {
  MQS_CHECK(codec != nullptr);
  const std::string kind(codec->kind());
  codecs_[kind] = std::move(codec);
}

void CodecRegistry::encode(const query::Predicate& pred, Writer& out) const {
  const auto it = codecs_.find(pred.kind());
  MQS_CHECK_MSG(it != codecs_.end(),
                "no codec registered for predicate kind '" +
                    std::string(pred.kind()) + "'");
  out.str(pred.kind());
  it->second->encode(pred, out);
}

query::PredicatePtr CodecRegistry::decode(Reader& in) const {
  const std::string kind = in.str();
  const auto it = codecs_.find(kind);
  MQS_CHECK_MSG(it != codecs_.end(),
                "no codec registered for wire kind '" + kind + "'");
  return it->second->decode(in);
}

CodecRegistry CodecRegistry::standard() {
  CodecRegistry reg;
  reg.add(makeVmCodec());
  reg.add(makeVolCodec());
  return reg;
}

}  // namespace mqs::net
