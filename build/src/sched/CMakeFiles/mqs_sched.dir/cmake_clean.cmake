file(REMOVE_RECURSE
  "CMakeFiles/mqs_sched.dir/graph.cpp.o"
  "CMakeFiles/mqs_sched.dir/graph.cpp.o.d"
  "CMakeFiles/mqs_sched.dir/policies.cpp.o"
  "CMakeFiles/mqs_sched.dir/policies.cpp.o.d"
  "CMakeFiles/mqs_sched.dir/scheduler.cpp.o"
  "CMakeFiles/mqs_sched.dir/scheduler.cpp.o.d"
  "libmqs_sched.a"
  "libmqs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
