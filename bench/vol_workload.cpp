// Scheduling the 3-D visualization application (future-work item 2) on the
// DES: a cohort of analysts, each computing an LOD overview of a shared
// volume and then sweeping view-plane slices and drilling into sub-boxes.
// Shows the ranking strategies generalize beyond the Virtual Microscope.
#include <memory>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "sched/policy.hpp"
#include "sim/vol_model.hpp"
#include "vol/vol_semantics.hpp"

using namespace mqs;

namespace {

struct VolClient {
  int id = 0;
  std::vector<vol::VolPredicate> queries;
};

std::vector<VolClient> makeWorkload(storage::DatasetId ds,
                                    const vol::VolumeLayout& layout,
                                    int clients, int queriesPerClient,
                                    std::uint64_t seed) {
  Rng master(seed);
  std::vector<VolClient> out;
  for (int c = 0; c < clients; ++c) {
    Rng rng = master.fork();
    VolClient cl;
    cl.id = c;
    // Everyone starts from the shared overview.
    cl.queries.emplace_back(ds,
                            Box3::ofSize(0, 0, 0, layout.width(),
                                         layout.height(), layout.depth()),
                            8, vol::VolOp::Subvolume);
    for (int q = 1; q < queriesPerClient; ++q) {
      if (rng.bernoulli(0.5)) {
        // Slice sweep at lod 4.
        const std::int64_t z = rng.uniformInt(0, layout.depth() / 4 - 1) * 4;
        cl.queries.push_back(vol::VolPredicate::slice(
            ds, Rect::ofSize(0, 0, layout.width(), layout.height()), z, 4));
      } else {
        // Drill into a random aligned sub-box at lod 2.
        auto snap = [&](std::int64_t v) { return (v / 8) * 8; };
        const std::int64_t w = 128, h = 128, d = 64;
        cl.queries.emplace_back(
            ds,
            Box3::ofSize(snap(rng.uniformInt(0, layout.width() - w)),
                         snap(rng.uniformInt(0, layout.height() - h)),
                         snap(rng.uniformInt(0, layout.depth() - d)), w, h,
                         d),
            2, vol::VolOp::Subvolume);
      }
    }
    out.push_back(std::move(cl));
  }
  return out;
}

sim::Task<void> volClient(sim::SimServer& server, const VolClient* cl) {
  for (const vol::VolPredicate& q : cl->queries) {
    co_await server.executeAndWait(std::make_unique<vol::VolPredicate>(q),
                                   cl->id);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Context ctx(argc, argv, "vol_workload");
  ctx.printHeader();

  const int clients = static_cast<int>(ctx.options().getInt("clients", 6));
  const int queries = static_cast<int>(ctx.options().getInt("queries", 8));

  Table table("3-D visualization workload — per-policy outcome (DES)");
  table.setColumns({"policy", "trimmed-response(s)", "avg-overlap",
                    "makespan(s)", "disk-bytes"});
  for (const auto& policy : sched::allPolicyNames()) {
    vol::VolSemantics sem;
    const auto ds = sem.addDataset(
        ctx.full() ? vol::VolumeLayout(1024, 1024, 1024, 40)
                   : vol::VolumeLayout(512, 512, 256, 40));
    sim::VolModel model(&sem);
    sim::Simulator simr;
    sim::SimConfig cfg;
    cfg.threads = 4;
    cfg.policy = policy;
    cfg.dsBytes = ctx.scaleBytes(64 * MiB);
    cfg.psBytes = ctx.scaleBytes(32 * MiB);
    sim::SimServer server(simr, &sem, &model, cfg);

    const auto workload =
        makeWorkload(ds, sem.layout(ds), clients, queries, 1234);
    for (const VolClient& cl : workload) {
      simr.spawn(volClient(server, &cl));
    }
    simr.run();
    const auto summary = metrics::summarize(server.collector().records());
    table.addRow({policy, formatDouble(summary.trimmedResponse, 3),
                  formatDouble(summary.avgOverlap, 3),
                  formatDouble(summary.makespan, 2),
                  formatBytes(summary.totalDiskBytes)});
  }
  ctx.emit(table);
  return 0;
}
