#include "datastore/spill_tier.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/check.hpp"

namespace mqs::datastore {

namespace fs = std::filesystem;

SpillTier::SpillTier(std::uint64_t capacityBytes,
                     const query::QuerySemantics* semantics, std::string dir,
                     storage::DiskModel disk)
    : capacity_(capacityBytes), semantics_(semantics), dir_(std::move(dir)),
      disk_(disk) {
  MQS_CHECK(semantics_ != nullptr);
  if (!dir_.empty()) {
    std::error_code ec;
    createdDir_ = fs::create_directories(dir_, ec);
    MQS_CHECK_MSG(!ec, "cannot create spill directory '" + dir_ + "'");
    writer_ = std::thread([this] { writerLoop(); });
  }
}

SpillTier::~SpillTier() {
  writeQueue_.close();
  if (writer_.joinable()) writer_.join();
  // Idempotent cleanup (scripts/reproduce.sh reruns benches in place):
  // remove every payload file we persisted, then the directory itself if
  // this tier created it and nothing else moved in.
  // Unlink outside the lock: fs::remove hits the disk, and mu_ is a
  // shard-leaf rank that must never be held across blocking I/O (DESIGN.md
  // §9; mqs-analyze blocking-under-lock).
  std::vector<std::string> deadFiles;
  if (!dir_.empty()) {
    MutexLock lock(mu_);
    for (const auto& [id, entry] : entries_) {
      if (entry.persisted) deadFiles.push_back(pathFor(id));
    }
  }
  for (const auto& path : deadFiles) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  if (createdDir_) {
    std::error_code ec;
    fs::remove(dir_, ec);  // fails harmlessly if non-empty
  }
}

std::string SpillTier::pathFor(SpillId id) const {
  return dir_ + "/spill-" + std::to_string(id) + ".bin";
}

void SpillTier::emitSpillGaugeLocked() {
  if (tracer_ != nullptr) {
    tracer_->counter(trace::CounterKind::DsSpillBytes, resident_);
  }
}

void SpillTier::dropLocked(SpillId id, std::vector<std::string>& deadFiles) {
  auto it = entries_.find(id);
  MQS_DCHECK(it != entries_.end());
  resident_ -= it->second.logicalBytes;
  const bool erased =
      spatial_.erase(it->second.predicate->boundingBox(), id);
  MQS_DCHECK(erased);
  (void)erased;
  if (it->second.persisted) deadFiles.push_back(pathFor(id));
  entries_.erase(it);
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<SpillId> SpillTier::demote(EvictedBlob blob,
                                         std::vector<SpillId>* dropped) {
  MQS_CHECK(blob.predicate != nullptr);
  if (blob.logicalBytes > capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<std::string> deadFiles;
  SpillId id = 0;
  {
    MutexLock lock(mu_);
    while (resident_ + blob.logicalBytes > capacity_) {
      MQS_DCHECK(!fifo_.empty());
      const SpillId victim = fifo_.front();
      fifo_.pop_front();
      dropLocked(victim, deadFiles);
      if (dropped != nullptr) dropped->push_back(victim);
    }
    id = nextId_++;
    Entry entry;
    entry.predicate = std::move(blob.predicate);
    entry.payload = std::move(blob.payload);
    entry.logicalBytes = blob.logicalBytes;
    entry.recomputeCostSec = blob.recomputeCostSec;
    spatial_.insert(entry.predicate->boundingBox(), id);
    entries_.emplace(id, std::move(entry));
    fifo_.push_back(id);
    resident_ += blob.logicalBytes;
    if (!dir_.empty()) ++pendingWrites_;
    demoted_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsSpill);
    emitSpillGaugeLocked();
  }
  for (const auto& path : deadFiles) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  if (!dir_.empty() && !writeQueue_.push(id)) {
    // Shutdown raced the demote; settle the write-out accounting.
    MutexLock lock(mu_);
    if (--pendingWrites_ == 0) drained_.notifyAll();
  }
  return id;
}

void SpillTier::writerLoop() {
  while (auto idOpt = writeQueue_.pop()) {
    const SpillId id = *idOpt;
    std::vector<std::byte> payload;
    {
      MutexLock lock(mu_);
      auto it = entries_.find(id);
      if (it == entries_.end() || it->second.persisted) {
        // Dropped or restored before the write-out got scheduled.
        if (--pendingWrites_ == 0) drained_.notifyAll();
        continue;
      }
      payload = it->second.payload;  // copy: the write runs unlocked
    }
    const std::string path = pathFor(id);
    bool written = false;
    if (std::FILE* f = std::fopen(path.c_str(), "wb"); f != nullptr) {
      written = payload.empty() ||
                std::fwrite(payload.data(), 1, payload.size(), f) ==
                    payload.size();
      written = std::fclose(f) == 0 && written;
    }
    bool orphaned = false;
    {
      MutexLock lock(mu_);
      auto it = entries_.find(id);
      if (it != entries_.end() && written) {
        it->second.payload.clear();
        it->second.payload.shrink_to_fit();
        it->second.persisted = true;
        writeouts_.fetch_add(1, std::memory_order_relaxed);
      } else if (written) {
        // The entry vanished while we wrote; the file is orphaned. Unlink
        // after dropping mu_ — this loop runs on the demote/restore hot
        // path and must not hold a shard-leaf lock across disk I/O.
        orphaned = true;
      }
      if (--pendingWrites_ == 0) drained_.notifyAll();
    }
    if (orphaned) {
      std::error_code ec;
      fs::remove(path, ec);
    }
  }
}

std::vector<SpillTier::Match> SpillTier::lookupTopK(const query::Predicate& q,
                                                    std::size_t k,
                                                    double minOverlap) const {
  if (k == 0) return {};
  std::vector<Match> matches;
  {
    MutexLock lock(mu_);
    spatial_.queryIntersecting(
        q.boundingBox(), [&](const Rect&, std::uint64_t id) {
          const auto it = entries_.find(id);
          MQS_DCHECK(it != entries_.end());
          const double ov = semantics_->overlap(*it->second.predicate, q);
          if (ov > minOverlap) matches.push_back(Match{id, ov});
        });
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              if (a.overlap != b.overlap) return a.overlap > b.overlap;
              return a.id > b.id;  // ties toward the newer entry
            });
  if (matches.size() > k) matches.resize(k);
  return matches;
}

std::optional<SpillTier::Candidate> SpillTier::candidate(SpillId id) const {
  MutexLock lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  Candidate c;
  c.predicate = it->second.predicate->clone();
  c.logicalBytes = it->second.logicalBytes;
  c.recomputeCostSec = it->second.recomputeCostSec;
  c.restoreCostSec = restoreCostSec(it->second.logicalBytes);
  return c;
}

std::optional<EvictedBlob> SpillTier::restore(SpillId id) {
  EvictedBlob blob;
  bool persisted = false;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return std::nullopt;
    blob.id = id;
    blob.predicate = std::move(it->second.predicate);
    blob.payload = std::move(it->second.payload);
    blob.logicalBytes = it->second.logicalBytes;
    blob.recomputeCostSec = it->second.recomputeCostSec;
    persisted = it->second.persisted;
    resident_ -= it->second.logicalBytes;
    const bool erased = spatial_.erase(blob.predicate->boundingBox(), id);
    MQS_DCHECK(erased);
    (void)erased;
    entries_.erase(it);
    fifo_.remove(id);
    restored_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) tracer_->counter(trace::CounterKind::DsRestore);
    emitSpillGaugeLocked();
  }
  if (persisted) {
    // The file belongs to this entry alone now that it left the map (the
    // writer deletes only files whose entry vanished *before* the write
    // finished), so the read + unlink run safely unlocked.
    const std::string path = pathFor(id);
    if (std::FILE* f = std::fopen(path.c_str(), "rb"); f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      if (size > 0) {
        blob.payload.resize(static_cast<std::size_t>(size));
        if (std::fread(blob.payload.data(), 1, blob.payload.size(), f) !=
            blob.payload.size()) {
          blob.payload.clear();
        }
      }
      std::fclose(f);
    }
    std::error_code ec;
    fs::remove(path, ec);
  }
  return blob;
}

SpillTier::Stats SpillTier::stats() const {
  Stats s;
  s.demoted = demoted_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.restored = restored_.load(std::memory_order_relaxed);
  s.writeouts = writeouts_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t SpillTier::residentBytes() const {
  MutexLock lock(mu_);
  return resident_;
}

std::size_t SpillTier::residentEntries() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void SpillTier::flush() {
  MutexLock lock(mu_);
  while (pendingWrites_ > 0) drained_.wait(mu_);
}

}  // namespace mqs::datastore
