// Blocking TCP client for the query server: the role the paper's emulated
// clients play from their PC cluster. Supports both interactive use
// (execute = send + receive) and pipelined batches (send everything, then
// drain responses in order).
//
// Timeouts: a server that accepts the connection and then stalls (wedged
// worker pool, dead peer behind a live socket) must not hang the client
// forever. `connectTimeoutSec` bounds the TCP handshake and
// `ioTimeoutSec` bounds each blocking send/receive; expiry throws
// TimeoutError (distinct from disconnect, so callers can retry or count
// it). Both default to 0 = block indefinitely, the historical behaviour.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/codecs.hpp"

namespace mqs::net {

/// A blocking client operation exceeded its configured timeout. The
/// connection is in an indeterminate state (a late frame may still be in
/// flight); close it rather than resynchronize.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

struct NetClientConfig {
  double connectTimeoutSec = 0.0;  ///< TCP connect bound (0 = none)
  double ioTimeoutSec = 0.0;       ///< per-send/per-receive bound (0 = none)
};

class NetClient {
 public:
  NetClient(const std::string& host, std::uint16_t port,
            const CodecRegistry* codecs, NetClientConfig cfg = {});
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Send a query frame; returns its request id.
  std::uint64_t send(const query::Predicate& pred);

  /// The id the next send() will use. Lets a sender thread register the
  /// request with its receiver thread *before* the frame is on the wire —
  /// otherwise a fast response can race the registration.
  [[nodiscard]] std::uint64_t nextRequestId() const { return nextId_; }

  struct Response {
    std::uint64_t requestId = 0;
    std::vector<std::byte> bytes;
  };
  /// Block for the next response. Throws server::QueryFailure for Failed
  /// frames, server::QueryRejected for Rejected frames (overload),
  /// std::runtime_error carrying the server's message for Error frames or
  /// on disconnect, TimeoutError past ioTimeoutSec.
  Response receive();

  /// Terminal fate of one request, as a value instead of an exception —
  /// the load generator classifies thousands of these per second and
  /// throwing would dominate the measurement.
  struct Outcome {
    enum class Status : std::uint8_t { Result, Failed, Rejected, Error };
    std::uint64_t requestId = 0;
    Status status = Status::Result;
    /// server::RejectReason discriminator (Rejected outcomes only).
    std::uint8_t rejectReason = 0;
    std::vector<std::byte> bytes;  ///< Result payload
    std::string message;           ///< Failed/Rejected/Error message
  };
  /// Block for the next response and classify it. Still throws
  /// TimeoutError / std::runtime_error for transport-level problems
  /// (timeout, disconnect) — those have no request to attribute to.
  Outcome receiveAny();

  /// Interactive convenience: send + receive.
  std::vector<std::byte> execute(const query::Predicate& pred);

  void close();

 private:
  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  const CodecRegistry* codecs_;
  NetClientConfig cfg_;
};

}  // namespace mqs::net
