file(REMOVE_RECURSE
  "CMakeFiles/query_server_test.dir/server/query_server_test.cpp.o"
  "CMakeFiles/query_server_test.dir/server/query_server_test.cpp.o.d"
  "query_server_test"
  "query_server_test.pdb"
  "query_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
