# Empty compiler generated dependencies file for ablation_open_loop.
# This may be replaced when dependencies are built.
