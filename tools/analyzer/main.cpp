// mqs-analyze entry point: file gathering (compile_commands.json + header
// scan), frontend selection, check orchestration, fragment/merge, baseline
// application, lockgraph.json emission, and the fixtures self-test.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace fs = std::filesystem;
using namespace mqs::analyze;

namespace {

struct Options {
  std::string db;          // compile_commands.json
  std::string srcRoot;     // directory scanned for headers/sources
  std::string design;      // DESIGN.md to cross-check (empty = skip)
  std::string baseline;    // baseline file ('' = none)
  std::string lockgraphOut;
  std::string fragmentsDir;
  std::string configFile;
  std::string filterPrefix = "src/";  // keep only these TUs from the db
  std::string fixtures;    // self-test fixture dir
  bool updateBaseline = false;
  bool selfTest = false;
  bool verbose = false;
  bool builtinFrontend = false;  // force built-in even with clang libs
  int blockingMinRank = -1;      // -1 = config default
};

void usage() {
  std::fprintf(
      stderr,
      "usage: mqs-analyze [-p compile_commands.json] [--src-root DIR]\n"
      "                   [--design DESIGN.md] [--baseline FILE]\n"
      "                   [--update-baseline] [--lockgraph-out FILE]\n"
      "                   [--fragments-dir DIR] [--config FILE]\n"
      "                   [--filter-prefix P] [--blocking-min-rank N]\n"
      "                   [--frontend builtin] [-v]\n"
      "       mqs-analyze --self-test --fixtures DIR\n");
}

bool parseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-p" || a == "--db") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->db = v;
    } else if (a == "--src-root") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->srcRoot = v;
    } else if (a == "--design") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->design = v;
    } else if (a == "--baseline") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->baseline = v;
    } else if (a == "--lockgraph-out") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->lockgraphOut = v;
    } else if (a == "--fragments-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->fragmentsDir = v;
    } else if (a == "--config") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->configFile = v;
    } else if (a == "--filter-prefix") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->filterPrefix = v;
    } else if (a == "--fixtures") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->fixtures = v;
    } else if (a == "--blocking-min-rank") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->blockingMinRank = std::atoi(v);
    } else if (a == "--frontend") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->builtinFrontend = std::strcmp(v, "builtin") == 0;
    } else if (a == "--update-baseline") {
      opt->updateBaseline = true;
    } else if (a == "--self-test") {
      opt->selfTest = true;
    } else if (a == "-v" || a == "--verbose") {
      opt->verbose = true;
    } else if (a == "-h" || a == "--help") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "mqs-analyze: unknown argument %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::string relToCwd(const std::string& path) {
  std::error_code ec;
  const fs::path cwd = fs::current_path(ec);
  if (ec) return path;
  const std::string prefix = cwd.string() + "/";
  if (path.rfind(prefix, 0) == 0) return path.substr(prefix.size());
  return path;
}

bool isSourceExt(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".cpp" || e == ".cc" || e == ".cxx";
}
bool isHeaderExt(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".hh" || e == ".h";
}

/// Gather analysis inputs: headers sort before sources so out-of-class
/// definitions in .cpp files resolve against records declared in headers.
std::vector<std::string> gatherFiles(const Options& opt) {
  std::set<std::string> headers, sources;
  auto add = [&](const std::string& raw) {
    std::error_code ec;
    fs::path p = fs::weakly_canonical(raw, ec);
    if (ec) p = raw;
    const std::string rel = relToCwd(p.string());
    if (isHeaderExt(p)) headers.insert(rel);
    else if (isSourceExt(p)) sources.insert(rel);
  };
  if (!opt.db.empty()) {
    std::vector<std::string> tus;
#if defined(MQS_ANALYZE_HAVE_CLANG)
    if (!opt.builtinFrontend)
      tus = compileCommandsFilesClang(opt.db);
    else
      tus = compileCommandsFiles(opt.db);
#else
    tus = compileCommandsFiles(opt.db);
#endif
    for (const auto& tu : tus) {
      const std::string rel = relToCwd(tu);
      if (!opt.filterPrefix.empty() && rel.rfind(opt.filterPrefix, 0) != 0)
        continue;
      add(rel);
    }
  }
  if (!opt.srcRoot.empty() && fs::exists(opt.srcRoot)) {
    for (const auto& ent : fs::recursive_directory_iterator(opt.srcRoot)) {
      if (!ent.is_regular_file()) continue;
      if (isHeaderExt(ent.path()) || isSourceExt(ent.path()))
        add(ent.path().string());
    }
  }
  std::vector<std::string> out(headers.begin(), headers.end());
  out.insert(out.end(), sources.begin(), sources.end());
  return out;
}

LexedFile lexOne(const Options& opt, const std::string& path) {
  const std::string text = readFileOrDie(path);
#if defined(MQS_ANALYZE_HAVE_CLANG)
  if (!opt.builtinFrontend) return lexSourceClang(path, text);
#else
  (void)opt;
#endif
  return lexSource(path, text);
}

struct Analysis {
  Program prog;
  std::vector<LexedFile> files;
  std::vector<Edge> edges;
  std::vector<Finding> findings;
};

std::string fragmentFileName(const std::string& tu) {
  std::string s = tu;
  for (char& c : s)
    if (c == '/' || c == '\\') c = '_';
  return s + ".json";
}

Analysis runAnalysis(const Options& opt, const Config& cfg) {
  Analysis an;
  const std::vector<std::string> paths = gatherFiles(opt);
  if (paths.empty()) {
    std::fprintf(stderr, "mqs-analyze: no input files (need -p/--src-root)\n");
    std::exit(2);
  }
  an.files.reserve(paths.size());
  for (const auto& p : paths) an.files.push_back(lexOne(opt, p));
  for (const auto& f : an.files) parseFile(f, an.prog);
  analyzeBodies(an.files, an.prog, cfg);

  if (!opt.fragmentsDir.empty()) {
    // Serialize per-TU edge fragments, then merge by reading them back —
    // the same path a sharded CI run takes.
    std::error_code ec;
    fs::create_directories(opt.fragmentsDir, ec);
    std::vector<std::string> texts;
    for (const auto& f : an.files) {
      std::vector<const FuncDef*> funcs;
      for (const auto& fn : an.prog.funcs)
        if (fn.file == f.path) funcs.push_back(&fn);
      const std::string json = fragmentJson(an.prog, f.path, funcs);
      const fs::path out =
          fs::path(opt.fragmentsDir) / fragmentFileName(f.path);
      std::ofstream(out.string()) << json;
      texts.push_back(readFileOrDie(out.string()));
    }
    an.edges = mergeFragments(an.prog, texts);
  } else {
    an.edges = lockGraph(an.prog);
  }

  an.findings = checkLockGraph(an.prog, an.edges);
  for (auto& f : checkGuardedBy(an.prog, cfg)) an.findings.push_back(f);
  for (auto& f : checkBlocking(an.prog, cfg)) an.findings.push_back(f);
  if (!opt.design.empty()) {
    const std::string designText = readFileOrDie(opt.design);
    for (auto& f :
         checkDesignTable(an.prog, designText, relToCwd(opt.design)))
      an.findings.push_back(f);
  }
  std::sort(an.findings.begin(), an.findings.end(),
            [](const Finding& a, const Finding& b) { return a.id() < b.id(); });
  return an;
}

// ---------------------------------------------------------------------------
// Self-test (mirrors scripts/lint_rules.py --self-test)

struct Expect {
  const char* substr;  ///< matched against Finding::id()
  bool mustFind;
};

int selfTest(const Options& optIn) {
  Options opt = optIn;
  opt.db.clear();
  opt.srcRoot = opt.fixtures;
  opt.design.clear();
  opt.filterPrefix.clear();
  const Config cfg = Config::defaults();

  int failures = 0;
  auto report = [&](bool ok, const std::string& what) {
    std::printf("%s %s\n", ok ? "PASS" : "FAIL", what.c_str());
    if (!ok) ++failures;
  };

  Analysis an = runAnalysis(opt, cfg);
  std::vector<std::string> ids;
  ids.reserve(an.findings.size());
  for (const auto& f : an.findings) ids.push_back(f.id());
  auto anyContains = [&](const char* sub) {
    for (const auto& id : ids)
      if (id.find(sub) != std::string::npos) return true;
    return false;
  };
  auto countCheck = [&](const char* check) {
    std::size_t n = 0;
    for (const auto& f : an.findings)
      if (f.check == check) ++n;
    return n;
  };

  const Expect expects[] = {
      // True positives, one per check.
      {"InvOwner::hi_ -> fx::InvOwner::lo_", true},
      {"ReqOwner::hi_ -> fx::ReqOwner::lo_", true},
      {"CallProp::hi_ -> fx::CallProp::lo_", true},
      {"lock-cycle", true},
      {"CycA::ma_", true},
      {"CycA::mb_", true},
      {"guarded-by-gap", true},
      {"Guarded::counter_", true},
      {"blocking-under-lock", true},
      {"Spiller::writeOut", true},
      // True negatives: correctly ordered / annotated / unlocked fixtures.
      {"OrderOwner", false},
      {"NonBlocker", false},
      {"AllGood", false},
      {"WithoutMutex", false},
      {"annotated_", false},
      {"limit_", false},
      {"hits_", false},
      {"capacity_", false},
  };
  for (const auto& e : expects) {
    const bool found = anyContains(e.substr);
    report(found == e.mustFind,
           std::string(e.mustFind ? "finds " : "does not flag ") + e.substr);
  }
  report(countCheck("lock-inversion") == 3, "exactly 3 lock-inversions");
  report(countCheck("lock-cycle") == 1, "exactly 1 lock-cycle");
  report(countCheck("guarded-by-gap") == 1, "exactly 1 guarded-by-gap");
  report(countCheck("blocking-under-lock") == 1,
         "exactly 1 blocking-under-lock");

  // Fragment round-trip: per-TU JSON fragments merge back to the same graph.
  {
    std::vector<std::string> texts;
    for (const auto& f : an.files) {
      std::vector<const FuncDef*> funcs;
      for (const auto& fn : an.prog.funcs)
        if (fn.file == f.path) funcs.push_back(&fn);
      texts.push_back(fragmentJson(an.prog, f.path, funcs));
    }
    const std::vector<Edge> merged = mergeFragments(an.prog, texts);
    std::set<std::pair<int, int>> a, b;
    for (const auto& e : an.edges) a.insert({e.from, e.to});
    for (const auto& e : merged) b.insert({e.from, e.to});
    report(a == b, "fragment JSON round-trip preserves the edge set");
  }

  // DESIGN table cross-check against seeded good/bad tables.
  {
    const std::string okPath = opt.fixtures + "/design_ok.md";
    const std::string badPath = opt.fixtures + "/design_bad.md";
    const auto okFindings =
        checkDesignTable(an.prog, readFileOrDie(okPath), okPath);
    report(okFindings.empty(), "design_ok.md table matches fixture ranks");
    for (const auto& f : okFindings)
      std::printf("     unexpected: %s\n", f.id().c_str());
    const auto badFindings =
        checkDesignTable(an.prog, readFileOrDie(badPath), badPath);
    auto badHas = [&](const char* sub) {
      for (const auto& f : badFindings)
        if (f.id().find(sub) != std::string::npos) return true;
      return false;
    };
    report(badHas("fx::CallProp::hi_") && badHas("missing from the section 9"),
           "design_bad.md: detects a mutex missing from the table");
    report(badHas("table says rank 30"),
           "design_bad.md: detects a wrong rank in the table");
    report(badHas("fx::Ghost::mu_") && badHas("no matching ranked mutex"),
           "design_bad.md: detects a stale table row");
  }

  // Baseline mechanics: a baselined id is suppressed, stale ids reported.
  {
    std::set<std::string> baseline = {ids.empty() ? "x" : ids[0],
                                      "bogus-entry-not-a-finding"};
    std::vector<std::string> stale;
    const auto fresh = applyBaseline(an.findings, baseline, &stale);
    report(fresh.size() == an.findings.size() - (ids.empty() ? 0 : 1),
           "baseline suppresses a known finding");
    report(stale.size() == 1 && stale[0] == "bogus-entry-not-a-finding",
           "baseline reports stale entries");
  }

  std::printf("%s: %d failure(s)\n", failures == 0 ? "OK" : "FAILED",
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parseArgs(argc, argv, &opt)) {
    usage();
    return 2;
  }
  if (opt.selfTest) {
    if (opt.fixtures.empty()) {
      std::fprintf(stderr, "mqs-analyze: --self-test requires --fixtures\n");
      return 2;
    }
    return selfTest(opt);
  }

  Config cfg = Config::defaults();
  if (!opt.configFile.empty()) cfg.loadFile(opt.configFile);
  if (opt.blockingMinRank >= 0) cfg.blockingMinRank = opt.blockingMinRank;

  const Analysis an = runAnalysis(opt, cfg);
  if (opt.verbose) {
    std::printf("mqs-analyze: %zu files, %zu records, %zu functions, "
                "%zu mutexes, %zu edges\n",
                an.files.size(), an.prog.records.size(), an.prog.funcs.size(),
                an.prog.mutexes.size(), an.edges.size());
    for (const auto& m : an.prog.mutexes)
      std::printf("  mutex %-45s rank %3d  (%s:%d)\n", m.path.c_str(), m.rank,
                  m.file.c_str(), m.line);
  }

  if (!opt.lockgraphOut.empty()) {
    std::error_code ec;
    const fs::path p(opt.lockgraphOut);
    if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
    std::ofstream(opt.lockgraphOut)
        << lockGraphJson(an.prog, an.edges, an.findings);
  }

  if (opt.updateBaseline) {
    if (opt.baseline.empty()) {
      std::fprintf(stderr,
                   "mqs-analyze: --update-baseline requires --baseline\n");
      return 2;
    }
    std::ofstream out(opt.baseline);
    out << "# mqs-analyze baseline: grandfathered findings, one Finding id\n"
           "# per line. CI fails on any finding NOT listed here; shrink on\n"
           "# sight, never grow (see CONTRIBUTING.md).\n";
    for (const auto& f : an.findings) out << f.id() << "\n";
    std::printf("mqs-analyze: wrote %zu baseline entries to %s\n",
                an.findings.size(), opt.baseline.c_str());
    return 0;
  }

  const std::set<std::string> baseline =
      opt.baseline.empty() ? std::set<std::string>{}
                           : loadBaseline(opt.baseline);
  std::vector<std::string> stale;
  const std::vector<Finding> fresh =
      applyBaseline(an.findings, baseline, &stale);

  for (const auto& f : an.findings) {
    const bool isNew = baseline.count(f.id()) == 0;
    std::printf("%s:%d: [%s] %s: %s%s\n", f.file.c_str(), f.line,
                f.check.c_str(), f.where.c_str(), f.detail.c_str(),
                isNew ? "" : " [baselined]");
  }
  for (const auto& s : stale)
    std::printf("mqs-analyze: warning: stale baseline entry (fixed? remove "
                "it): %s\n",
                s.c_str());
  std::printf("mqs-analyze: %zu finding(s), %zu baselined, %zu new\n",
              an.findings.size(), an.findings.size() - fresh.size(),
              fresh.size());
  return fresh.empty() ? 0 : 1;
}
