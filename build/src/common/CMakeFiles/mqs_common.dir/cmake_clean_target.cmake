file(REMOVE_RECURSE
  "libmqs_common.a"
)
