#include "net/net_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <stdexcept>

#include "common/check.hpp"
#include "server/query_server.hpp"

namespace mqs::net {

namespace {

timeval toTimeval(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  return tv;
}

/// connect() bounded by `timeoutSec`: flip the socket non-blocking for the
/// handshake, poll for writability, read back SO_ERROR. The socket is
/// returned to blocking mode afterwards (per-op timeouts then come from
/// SO_RCVTIMEO/SO_SNDTIMEO).
void connectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                        double timeoutSec) {
  if (timeoutSec <= 0.0) {
    MQS_CHECK_MSG(::connect(fd, addr, len) == 0,
                  "cannot connect to query server");
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  MQS_CHECK(flags >= 0);
  MQS_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  const int rc = ::connect(fd, addr, len);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      throw std::runtime_error("cannot connect to query server");
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int timeoutMs = static_cast<int>(timeoutSec * 1e3);
    const int ready = ::poll(&pfd, 1, timeoutMs > 0 ? timeoutMs : 1);
    if (ready == 0) {
      throw TimeoutError("connect timed out after " +
                         std::to_string(timeoutSec) + "s");
    }
    MQS_CHECK_MSG(ready > 0, "poll failed during connect");
    int soError = 0;
    socklen_t soLen = sizeof soError;
    MQS_CHECK(::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &soLen) == 0);
    if (soError != 0) {
      throw std::runtime_error("cannot connect to query server");
    }
  }
  MQS_CHECK(::fcntl(fd, F_SETFL, flags) == 0);
}

}  // namespace

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     const CodecRegistry* codecs, NetClientConfig cfg)
    : codecs_(codecs), cfg_(cfg) {
  MQS_CHECK(codecs_ != nullptr);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MQS_CHECK_MSG(fd_ >= 0, "cannot create client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  MQS_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "bad host address: " + host);
  try {
    connectWithTimeout(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                       cfg_.connectTimeoutSec);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (cfg_.ioTimeoutSec > 0.0) {
    const timeval tv = toTimeval(cfg_.ioTimeoutSec);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
}

NetClient::~NetClient() { close(); }

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t NetClient::send(const query::Predicate& pred) {
  const std::uint64_t id = nextId_++;
  Writer w;
  w.u64(id);
  codecs_->encode(pred, w);
  if (!writeAll(fd_, packFrame(FrameType::Query, w.bytes()))) {
    // writeAll preserves errno from the failing send(): EAGAIN means the
    // SO_SNDTIMEO expired (peer stopped draining), not a lost connection.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("send timed out after " +
                         std::to_string(cfg_.ioTimeoutSec) + "s");
    }
    throw std::runtime_error("query server connection lost on send");
  }
  return id;
}

NetClient::Outcome NetClient::receiveAny() {
  Frame frame;
  if (!readFrame(fd_, frame)) {
    // readFrame preserves errno from the failing recv(): EAGAIN means the
    // SO_RCVTIMEO expired with the server silent, not a closed socket.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("receive timed out after " +
                         std::to_string(cfg_.ioTimeoutSec) + "s");
    }
    throw std::runtime_error("query server connection lost on receive");
  }
  Reader r(frame.payload);
  Outcome out;
  out.requestId = r.u64();
  switch (frame.type) {
    case FrameType::Result:
      out.status = Outcome::Status::Result;
      out.bytes = r.blob();
      return out;
    case FrameType::Failed:
      out.status = Outcome::Status::Failed;
      out.message = r.str();
      return out;
    case FrameType::Rejected:
      out.status = Outcome::Status::Rejected;
      out.rejectReason = r.u8();
      out.message = r.str();
      return out;
    case FrameType::Error:
      out.status = Outcome::Status::Error;
      out.message = r.str();
      return out;
    default:
      throw std::runtime_error("unexpected frame type from query server");
  }
}

NetClient::Response NetClient::receive() {
  Outcome out = receiveAny();
  switch (out.status) {
    case Outcome::Status::Result:
      return Response{out.requestId, std::move(out.bytes)};
    case Outcome::Status::Failed:
      // The server accepted the query but it reached the terminal FAILED
      // status (device fault, deadline); rethrow as the same type local
      // callers of QueryServer::execute would see.
      throw server::QueryFailure(out.message);
    case Outcome::Status::Rejected:
      throw server::QueryRejected(
          static_cast<server::RejectReason>(out.rejectReason), out.message);
    case Outcome::Status::Error:
      throw std::runtime_error("remote query failed: " + out.message);
  }
  throw std::runtime_error("unexpected frame type from query server");
}

std::vector<std::byte> NetClient::execute(const query::Predicate& pred) {
  const std::uint64_t id = send(pred);
  Response resp = receive();
  MQS_CHECK_MSG(resp.requestId == id, "response out of order");
  return std::move(resp.bytes);
}

}  // namespace mqs::net
