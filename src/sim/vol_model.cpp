#include "sim/vol_model.hpp"

#include "common/check.hpp"

namespace mqs::sim {

VolModel::VolModel(const vol::VolSemantics* semantics, double cpuPerVoxel)
    : sem_(semantics), cpuPerVoxel_(cpuPerVoxel) {
  MQS_CHECK(sem_ != nullptr);
}

std::vector<ChunkDemand> VolModel::demandFor(
    const query::Predicate& part) const {
  const vol::VolPredicate& q = vol::asVol(part);
  const vol::VolumeLayout& layout = sem_->layout(q.dataset());
  std::vector<ChunkDemand> out;
  for (const vol::BrickRef& brick : layout.bricksIntersecting(q.box())) {
    const Box3 clip = Box3::intersection(brick.box, q.box());
    out.push_back(ChunkDemand{
        storage::PageKey{q.dataset(), brick.id},
        static_cast<std::size_t>(brick.box.volume()),
        static_cast<double>(clip.volume()) * cpuPerVoxel_});
  }
  return out;
}

}  // namespace mqs::sim
