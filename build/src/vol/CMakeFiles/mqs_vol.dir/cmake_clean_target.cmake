file(REMOVE_RECURSE
  "libmqs_vol.a"
)
