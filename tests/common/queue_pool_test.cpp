#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/thread_pool.hpp"

namespace mqs {
namespace {

TEST(BlockingQueue, FifoOrderSingleThread) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.tryPop().has_value());
  q.push(7);
  EXPECT_EQ(q.tryPop(), 7);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));  // rejected after close
  EXPECT_EQ(q.pop(), 1);    // drains existing items
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::jthread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4, kPerProducer = 1000, kConsumers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          sum += *v;
          ++popped;
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          for (int i = 1; i <= kPerProducer; ++i) q.push(i);
        });
      }
    }
    q.close();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

// --- closed-state contract (see the header's contract comment) -----------

TEST(BlockingQueueClosedContract, CloseIsIdempotent) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  q.close();  // second close is a no-op, not an error
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueClosedContract, PushAfterCloseNeverDelivers) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.push(2));
  // A rejected item must never surface: the queue is empty and drained.
  EXPECT_FALSE(q.tryPop().has_value());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.size(), 0u);
}

// Accepted pushes racing with close(): every push that returned true is
// popped exactly once, every push that returned false is never popped, and
// consumers terminate (no accepted item is dropped, no rejected item leaks).
TEST(BlockingQueueClosedContract, ConcurrentCloseAndPushAccounting) {
  constexpr int kProducers = 4, kPerProducer = 5000, kConsumers = 3;
  for (int round = 0; round < 8; ++round) {
    BlockingQueue<int> q;
    std::atomic<long> acceptedSum{0};
    std::atomic<long> poppedSum{0};
    std::atomic<int> acceptedCount{0};
    std::atomic<int> poppedCount{0};
    {
      std::vector<std::jthread> consumers;
      for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
          while (auto v = q.pop()) {
            poppedSum += *v;
            ++poppedCount;
          }
        });
      }
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 1; i <= kPerProducer; ++i) {
            if (q.push(p * kPerProducer + i)) {
              acceptedSum += p * kPerProducer + i;
              ++acceptedCount;
            } else {
              // closed() must agree from now on: close happened-before
              // this rejection, so later observations stay closed.
              EXPECT_TRUE(q.closed());
            }
          }
        });
      }
      // Close midway through production so both outcomes occur.
      std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
      q.close();
    }  // producers, then consumers join (jthread reverse order)
    EXPECT_EQ(poppedCount.load(), acceptedCount.load());
    EXPECT_EQ(poppedSum.load(), acceptedSum.load());
    EXPECT_FALSE(q.pop().has_value());  // drained and closed
  }
}

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(pool.submit([&] { ++count; }));
    }
  }  // destructor drains + joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitWithResult) {
  ThreadPool pool(2);
  auto f = pool.submitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submitWithResult([&] {
      const int cur = ++concurrent;
      int expected = peak.load();
      while (cur > expected && !peak.compare_exchange_weak(expected, cur)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --concurrent;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace mqs
