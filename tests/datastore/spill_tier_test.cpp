#include "datastore/spill_tier.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <thread>
#include <vector>

#include "trace/trace.hpp"
#include "vm/vm_predicate.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::datastore {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class SpillTierTest : public ::testing::Test {
 protected:
  SpillTierTest() {
    dataset_ = sem_.addDataset(index::ChunkLayout(4096, 4096, 64));
  }

  query::PredicatePtr pred(Rect region, std::uint32_t zoom = 4) {
    return std::make_unique<VMPredicate>(dataset_, region, zoom,
                                         VMOp::Subsample);
  }

  static std::uint64_t outBytes(const query::Predicate& p) {
    return vm::asVM(p).outBytes();
  }

  EvictedBlob blob(Rect region, double recomputeCostSec = 1.0,
                   std::vector<std::byte> payload = {}) {
    EvictedBlob b;
    b.predicate = pred(region);
    b.payload = std::move(payload);
    b.logicalBytes = outBytes(*b.predicate);
    b.recomputeCostSec = recomputeCostSec;
    return b;
  }

  vm::VMSemantics sem_;
  storage::DatasetId dataset_ = 0;
};

TEST_F(SpillTierTest, DemoteLookupCandidateRestore) {
  SpillTier tier(1 << 24, &sem_);
  auto b = blob(Rect::ofSize(0, 0, 256, 256), /*recomputeCostSec=*/2.5);
  const std::uint64_t bytes = b.logicalBytes;
  const auto sid = tier.demote(std::move(b));
  ASSERT_TRUE(sid.has_value());
  EXPECT_EQ(tier.residentEntries(), 1u);
  EXPECT_EQ(tier.residentBytes(), bytes);

  const auto q = pred(Rect::ofSize(0, 0, 256, 256));
  const auto matches = tier.lookupTopK(*q, 4);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].id, *sid);
  EXPECT_DOUBLE_EQ(matches[0].overlap, 1.0);

  const auto cand = tier.candidate(*sid);
  ASSERT_TRUE(cand.has_value());
  EXPECT_EQ(cand->logicalBytes, bytes);
  EXPECT_DOUBLE_EQ(cand->recomputeCostSec, 2.5);
  EXPECT_DOUBLE_EQ(cand->restoreCostSec, tier.restoreCostSec(bytes));
  EXPECT_GT(cand->restoreCostSec, 0.0);

  auto restored = tier.restore(*sid);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->id, *sid);
  EXPECT_EQ(restored->logicalBytes, bytes);
  EXPECT_DOUBLE_EQ(restored->recomputeCostSec, 2.5);
  EXPECT_DOUBLE_EQ(sem_.overlap(*restored->predicate, *q), 1.0);

  // The restore took the entry out: the tier is empty and every by-id
  // operation on the spent id misses.
  EXPECT_EQ(tier.residentEntries(), 0u);
  EXPECT_EQ(tier.residentBytes(), 0u);
  EXPECT_TRUE(tier.lookupTopK(*q, 4).empty());
  EXPECT_FALSE(tier.candidate(*sid).has_value());
  EXPECT_FALSE(tier.restore(*sid).has_value());

  const auto stats = tier.stats();
  EXPECT_EQ(stats.demoted, 1u);
  EXPECT_EQ(stats.restored, 1u);
  EXPECT_EQ(stats.dropped, 0u);
}

TEST_F(SpillTierTest, OldestEntriesFifoDropUnderPressure) {
  auto a = blob(Rect::ofSize(0, 0, 256, 256));
  const std::uint64_t bytes = a.logicalBytes;
  SpillTier tier(2 * bytes, &sem_);
  const auto ida = tier.demote(std::move(a));
  const auto idb = tier.demote(blob(Rect::ofSize(256, 0, 256, 256)));
  ASSERT_TRUE(ida && idb);

  std::vector<SpillId> dropped;
  const auto idc =
      tier.demote(blob(Rect::ofSize(512, 0, 256, 256)), &dropped);
  ASSERT_TRUE(idc.has_value());
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], *ida);  // oldest first
  EXPECT_EQ(tier.residentEntries(), 2u);
  EXPECT_FALSE(tier.candidate(*ida).has_value());
  EXPECT_TRUE(tier.candidate(*idb).has_value());
  EXPECT_EQ(tier.stats().dropped, 1u);
}

TEST_F(SpillTierTest, OversizedBlobIsRejectedUntouched) {
  auto b = blob(Rect::ofSize(0, 0, 256, 256));
  SpillTier tier(b.logicalBytes - 1, &sem_);
  std::vector<SpillId> dropped;
  EXPECT_FALSE(tier.demote(std::move(b), &dropped).has_value());
  EXPECT_TRUE(dropped.empty());
  EXPECT_EQ(tier.residentEntries(), 0u);
  EXPECT_EQ(tier.stats().demoted, 0u);
  EXPECT_EQ(tier.stats().dropped, 1u);
}

TEST_F(SpillTierTest, RestoreCostScalesWithBytes) {
  SpillTier tier(1 << 20, &sem_);
  EXPECT_GT(tier.restoreCostSec(1 << 10), 0.0);
  EXPECT_GT(tier.restoreCostSec(1 << 20), tier.restoreCostSec(1 << 10));
}

TEST_F(SpillTierTest, FileModePersistsPayloadAndCleansUpOnDestruction) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "mqs_spill_tier_test_dir";
  fs::remove_all(dir);
  ASSERT_FALSE(fs::exists(dir));

  std::vector<std::byte> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 31 + 7);
  }
  {
    SpillTier tier(1 << 24, &sem_, dir.string());
    const auto sid = tier.demote(
        blob(Rect::ofSize(0, 0, 256, 256), 1.0, payload));
    ASSERT_TRUE(sid.has_value());
    tier.flush();
    EXPECT_EQ(tier.stats().writeouts, 1u);
    // The payload now lives in a spill file inside the tier's directory.
    ASSERT_TRUE(fs::exists(dir));
    std::size_t files = 0;
    for (const auto& e : fs::directory_iterator(dir)) {
      (void)e;
      ++files;
    }
    EXPECT_EQ(files, 1u);

    auto restored = tier.restore(*sid);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->payload, payload);
  }
  // The tier created the directory, so it removes it (and any files) on
  // destruction — the reproduce.sh idempotency contract.
  EXPECT_FALSE(fs::exists(dir));
}

// Regression: SpillTier's constructor starts the writer thread, and
// QueryServer installs the tracer afterwards — so setTracer must
// synchronize with the writer loop's tracer_ reads. The unlocked setter
// raced here (TSan caught it under the thread sanitizer preset).
TEST_F(SpillTierTest, SetTracerRacesSafelyWithRunningWriter) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "mqs_spill_tier_tracer_race_dir";
  fs::remove_all(dir);

  trace::Tracer tracer;
  std::vector<std::byte> payload(1024, std::byte{0x5a});
  {
    SpillTier tier(1 << 24, &sem_, dir.string());
    std::thread installer([&] { tier.setTracer(&tracer); });
    // Demotes run concurrently with the installer; the writer thread picks
    // the writes up and emits counters through whatever tracer it sees.
    for (int i = 0; i < 32; ++i) {
      tier.demote(blob(Rect::ofSize(i * 300, 0, 256, 256), 1.0, payload));
    }
    installer.join();
    tier.flush();
    EXPECT_GE(tier.stats().writeouts, 1u);
  }
  EXPECT_FALSE(fs::exists(dir));
}

}  // namespace
}  // namespace mqs::datastore
