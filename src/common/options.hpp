// Minimal command-line option parsing for benches and examples.
//
// Accepts --key=value, --key value, and boolean flags --key. Typed getters
// carry defaults so every binary is runnable with no arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mqs {

class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string getString(const std::string& key,
                                      const std::string& def) const;
  [[nodiscard]] std::int64_t getInt(const std::string& key,
                                    std::int64_t def) const;
  [[nodiscard]] double getDouble(const std::string& key, double def) const;
  [[nodiscard]] bool getBool(const std::string& key, bool def) const;
  /// Byte size with suffix support ("64MB").
  [[nodiscard]] std::uint64_t getBytes(const std::string& key,
                                       std::uint64_t def) const;
  /// Comma-separated integer list, e.g. --threads=1,2,4,8.
  [[nodiscard]] std::vector<std::int64_t> getIntList(
      const std::string& key, std::vector<std::int64_t> def) const;

  /// Positional (non --key) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mqs
