#include "server/query_server.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "storage/delayed_source.hpp"
#include "storage/synthetic_source.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::server {
namespace {

using vm::ImageRGB;
using vm::VMOp;
using vm::VMPredicate;

constexpr std::uint64_t kSeed = 77;

class QueryServerTest : public ::testing::Test {
 protected:
  QueryServerTest()
      : layout_(1024, 1024, 96), slide_(layout_, kSeed), exec_(&sem_) {
    dsid_ = sem_.addDataset(layout_);
  }

  ServerConfig config(int threads = 2, const std::string& policy = "FIFO") {
    ServerConfig cfg;
    cfg.threads = threads;
    cfg.policy = policy;
    cfg.dsBytes = 16ULL << 20;
    cfg.psBytes = 8ULL << 20;
    return cfg;
  }

  std::unique_ptr<QueryServer> makeServer(ServerConfig cfg) {
    auto server = std::make_unique<QueryServer>(&sem_, &exec_, cfg);
    server->attach(dsid_, &slide_);
    return server;
  }

  query::PredicatePtr pred(Rect r, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(dsid_, r, zoom, op);
  }

  static void expectCorrect(const VMPredicate& q, const QueryResult& result) {
    const ImageRGB got =
        ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
    const ImageRGB expect = renderReference(q, kSeed);
    // Averaging reuse paths may double-round; subsampling must be exact.
    const int tol = q.op() == VMOp::Average ? 2 : 0;
    EXPECT_LE(maxAbsDiff(got, expect), tol) << q.describe();
  }

  index::ChunkLayout layout_;
  storage::SyntheticSlideSource slide_;
  vm::VMSemantics sem_;
  vm::VMExecutor exec_;
  storage::DatasetId dsid_ = 0;
};

TEST_F(QueryServerTest, SingleQueryCorrectResult) {
  auto server = makeServer(config());
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 256, 256), 4, VMOp::Subsample);
  const auto result = server->execute(q.clone(), 0);
  expectCorrect(q, result);
  EXPECT_EQ(result.record.outputBytes, q.outBytes());
  EXPECT_GT(result.record.bytesFromDisk, 0u);
}

TEST_F(QueryServerTest, RepeatQueryReusesCache) {
  auto server = makeServer(config());
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 256, 256), 4, VMOp::Subsample);
  (void)server->execute(q.clone(), 0);
  const auto second = server->execute(q.clone(), 0);
  expectCorrect(q, second);
  EXPECT_DOUBLE_EQ(second.record.overlapUsed, 1.0);
  EXPECT_EQ(second.record.bytesFromDisk, 0u);
}

TEST_F(QueryServerTest, PartialReuseStillCorrect) {
  auto server = makeServer(config());
  const VMPredicate a(dsid_, Rect::ofSize(0, 0, 512, 512), 4, VMOp::Subsample);
  (void)server->execute(a.clone(), 0);
  const VMPredicate b(dsid_, Rect::ofSize(256, 128, 512, 512), 4,
                      VMOp::Subsample);
  const auto result = server->execute(b.clone(), 0);
  expectCorrect(b, result);
  EXPECT_GT(result.record.overlapUsed, 0.0);
  EXPECT_LT(result.record.overlapUsed, 1.0);
  EXPECT_GT(result.record.bytesReused, 0u);
}

TEST_F(QueryServerTest, CrossZoomReuseCorrectForBothOps) {
  for (const VMOp op : {VMOp::Subsample, VMOp::Average}) {
    auto server = makeServer(config());
    const VMPredicate hi(dsid_, Rect::ofSize(0, 0, 512, 512), 2, op);
    (void)server->execute(hi.clone(), 0);
    const VMPredicate lo(dsid_, Rect::ofSize(0, 0, 512, 512), 8, op);
    const auto result = server->execute(lo.clone(), 0);
    expectCorrect(lo, result);
    EXPECT_GT(result.record.overlapUsed, 0.0);
    EXPECT_EQ(result.record.bytesFromDisk, 0u);
  }
}

TEST_F(QueryServerTest, ManyConcurrentClientsAllCorrect) {
  auto server = makeServer(config(/*threads=*/4, "CF"));
  std::vector<VMPredicate> queries;
  for (int i = 0; i < 24; ++i) {
    const std::uint32_t zoom = 1u << (i % 3);  // 1, 2, 4
    const std::int64_t side = 64 * static_cast<std::int64_t>(zoom);
    const std::int64_t x = (i % 4) * 128;
    const std::int64_t y = ((i / 4) % 3) * 128;
    queries.emplace_back(dsid_, Rect::ofSize(x, y, side, side), zoom,
                         i % 2 == 0 ? VMOp::Subsample : VMOp::Average);
  }
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(server->submit(queries[i].clone(), static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expectCorrect(queries[i], futures[i].get());
  }
  EXPECT_EQ(server->collector().count(), queries.size());
}

TEST_F(QueryServerTest, AllPoliciesProduceCorrectResults) {
  for (const auto& policy : sched::allPolicyNames()) {
    auto server = makeServer(config(3, policy));
    std::vector<std::future<QueryResult>> futures;
    std::vector<VMPredicate> queries;
    for (int i = 0; i < 10; ++i) {
      queries.emplace_back(dsid_,
                           Rect::ofSize((i % 3) * 128, (i % 2) * 128, 256, 256),
                           2, VMOp::Subsample);
    }
    for (auto& q : queries) futures.push_back(server->submit(q.clone(), 0));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      expectCorrect(queries[i], futures[i].get());
    }
  }
}

TEST_F(QueryServerTest, TinyDataStoreStillCorrect) {
  auto cfg = config();
  cfg.dsBytes = 10 * 1024;  // smaller than any result: nothing cacheable
  auto server = makeServer(cfg);
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 256, 256), 2, VMOp::Average);
  const auto first = server->execute(q.clone(), 0);
  const auto second = server->execute(q.clone(), 0);
  expectCorrect(q, first);
  expectCorrect(q, second);
  EXPECT_DOUBLE_EQ(second.record.overlapUsed, 0.0);  // nothing was cached
}

TEST_F(QueryServerTest, CachingDisabledStillCorrect) {
  auto cfg = config();
  cfg.dataStoreEnabled = false;
  auto server = makeServer(cfg);
  const VMPredicate q(dsid_, Rect::ofSize(64, 64, 256, 256), 4,
                      VMOp::Average);
  const auto r1 = server->execute(q.clone(), 0);
  const auto r2 = server->execute(q.clone(), 0);
  expectCorrect(q, r1);
  expectCorrect(q, r2);
  EXPECT_DOUBLE_EQ(r2.record.overlapUsed, 0.0);
}

TEST_F(QueryServerTest, WaitOnExecutingProducesCorrectResult) {
  auto server = makeServer(config(/*threads=*/2));
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 512, 512), 2, VMOp::Average);
  // Submit twice back-to-back: the second will either find the first
  // executing (and wait) or cached; both paths must be correct.
  auto f1 = server->submit(q.clone(), 0);
  auto f2 = server->submit(q.clone(), 1);
  expectCorrect(q, f1.get());
  expectCorrect(q, f2.get());
}

TEST_F(QueryServerTest, ShutdownDrainsQueuedQueries) {
  auto server = makeServer(config(2));
  std::vector<std::future<QueryResult>> futures;
  std::vector<VMPredicate> queries;
  for (int i = 0; i < 12; ++i) {
    queries.emplace_back(dsid_, Rect::ofSize((i % 3) * 256, 0, 256, 256), 2,
                         VMOp::Average);
    futures.push_back(server->submit(queries.back().clone(), i));
  }
  server->shutdown();  // must finish everything already accepted
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expectCorrect(queries[i], futures[i].get());
  }
  EXPECT_EQ(server->collector().count(), 12u);
}

TEST_F(QueryServerTest, RealisticDiskLatencyStillCorrect) {
  storage::DiskModel model;
  model.seekOverheadSec = 0.0005;
  model.sequentialOverheadSec = 0.0001;
  model.bytesPerSecond = 200.0 * 1024 * 1024;
  const storage::DelayedSource slow(slide_, model);

  auto server = std::make_unique<QueryServer>(&sem_, &exec_, config(4, "FF"));
  server->attach(dsid_, &slow);

  std::vector<std::future<QueryResult>> futures;
  std::vector<VMPredicate> queries;
  for (int i = 0; i < 8; ++i) {
    queries.emplace_back(dsid_, Rect::ofSize((i % 2) * 256, (i % 4) * 128,
                                             256, 256),
                         2, VMOp::Subsample);
    futures.push_back(server->submit(queries.back().clone(), i));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expectCorrect(queries[i], futures[i].get());
    EXPECT_GT(futures.size(), 0u);
  }
  // With real latency, duplicate-request merging has a chance to show up.
  const auto ps = server->pageSpace().stats();
  EXPECT_GT(ps.hits + ps.merged, 0u);
  server->shutdown();
}

TEST_F(QueryServerTest, SubmitAfterShutdownFails) {
  auto server = makeServer(config());
  server->shutdown();
  auto f = server->submit(pred(Rect::ofSize(0, 0, 64, 64), 1), 0);
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST_F(QueryServerTest, RecordsCaptureTiming) {
  auto server = makeServer(config(1));
  const VMPredicate q(dsid_, Rect::ofSize(0, 0, 512, 512), 2, VMOp::Average);
  const auto r = server->execute(q.clone(), 5);
  EXPECT_EQ(r.record.client, 5);
  EXPECT_GE(r.record.startTime, r.record.arrivalTime);
  EXPECT_GT(r.record.finishTime, r.record.startTime);
  EXPECT_GT(r.record.execTime(), 0.0);
  EXPECT_EQ(r.record.inputBytes, sem_.qinputsize(q));
}

/// Failure injection: an executor that throws for marked regions.
class FailingExecutor final : public query::QueryExecutor {
 public:
  explicit FailingExecutor(const vm::VMExecutor* inner) : inner_(inner) {}

  [[nodiscard]] std::vector<std::byte> execute(
      const query::Predicate& pred,
      pagespace::PageSpaceManager& ps) const override {
    if (vm::asVM(pred).region().x0 == kPoisonX) {
      throw std::runtime_error("injected executor failure");
    }
    return inner_->execute(pred, ps);
  }
  void project(const query::Predicate& cached,
               std::span<const std::byte> payload,
               const query::Predicate& out,
               std::span<std::byte> buffer) const override {
    inner_->project(cached, payload, out, buffer);
  }

  static constexpr std::int64_t kPoisonX = 736;  // marker origin

 private:
  const vm::VMExecutor* inner_;
};

TEST_F(QueryServerTest, ExecutorFailureDeliveredViaFuture) {
  FailingExecutor failing(&exec_);
  server::QueryServer server(&sem_, &failing, config(2));
  server.attach(dsid_, &slide_);

  auto bad = server.submit(
      pred(Rect::ofSize(FailingExecutor::kPoisonX, 0, 128, 128), 2), 0);
  EXPECT_THROW((void)bad.get(), std::runtime_error);

  // The server keeps working and the graph is consistent.
  const VMPredicate ok(dsid_, Rect::ofSize(0, 0, 256, 256), 2,
                       VMOp::Subsample);
  expectCorrect(ok, server.execute(ok.clone(), 0));
  EXPECT_EQ(server.scheduler().waitingCount(), 0u);
  EXPECT_EQ(server.scheduler().executingCount(), 0u);
}

TEST_F(QueryServerTest, FailureDoesNotPoisonDependents) {
  FailingExecutor failing(&exec_);
  auto cfg = config(2);
  server::QueryServer server(&sem_, &failing, cfg);
  server.attach(dsid_, &slide_);

  // Both queries overlap; the second may elect to wait on the first, which
  // fails. The second must recover by computing from raw data.
  const VMPredicate poison(dsid_,
                           Rect::ofSize(FailingExecutor::kPoisonX, 0, 256, 256),
                           2, VMOp::Subsample);
  const VMPredicate dependent(
      dsid_, Rect::ofSize(FailingExecutor::kPoisonX - 128, 0, 256, 256), 2,
      VMOp::Subsample);
  auto f1 = server.submit(poison.clone(), 0);
  auto f2 = server.submit(dependent.clone(), 1);
  EXPECT_THROW((void)f1.get(), std::runtime_error);
  // Remainder parts of `dependent` don't start at the poison origin, so it
  // succeeds... unless it computed whole from raw at the poison-free
  // origin. Either way it must produce correct bytes.
  expectCorrect(dependent, f2.get());
}

TEST_F(QueryServerTest, PyramidPrewarmServesAlignedQueriesFromCache) {
  auto cfg = config(2, "CF");
  cfg.dsBytes = 64ULL << 20;
  cfg.maxNestedReuseDepth = 8;
  auto server = makeServer(cfg);

  // Materialize the zoom-2 level as 128^2-output tiles (4x4 over 1024^2).
  for (const auto& tile : sem_.pyramidLevel(dsid_, 2, 128, VMOp::Average)) {
    (void)server->execute(tile.clone(), -1);
  }

  // Aligned queries at zoom 4 and 8 must be pure projections — and exact.
  for (const std::uint32_t zoom : {4u, 8u}) {
    const VMPredicate q(dsid_,
                        Rect::ofSize(128, 256, 64 * zoom, 64 * zoom), zoom,
                        VMOp::Average);
    const auto result = server->execute(q.clone(), 0);
    expectCorrect(q, result);
    EXPECT_EQ(result.record.bytesFromDisk, 0u) << q.describe();
    EXPECT_GT(result.record.overlapUsed, 0.0);
  }
}

TEST_F(QueryServerTest, StressManySmallQueriesWithEvictions) {
  auto cfg = config(/*threads=*/4, "CNBF");
  cfg.dsBytes = 200 * 1024;  // force continuous eviction churn
  auto server = makeServer(cfg);
  std::vector<std::future<QueryResult>> futures;
  std::vector<VMPredicate> queries;
  for (int i = 0; i < 60; ++i) {
    const std::int64_t x = (i * 64) % 768;
    const std::int64_t y = ((i / 7) * 96) % 768;
    queries.emplace_back(dsid_, Rect::ofSize(x, y, 128, 128), 2,
                         VMOp::Subsample);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(server->submit(queries[i].clone(), static_cast<int>(i)));
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expectCorrect(queries[i], futures[i].get());
  }
  EXPECT_GT(server->dataStore().stats().evictions, 0u);
}

}  // namespace
}  // namespace mqs::server
