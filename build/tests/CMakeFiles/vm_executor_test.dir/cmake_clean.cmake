file(REMOVE_RECURSE
  "CMakeFiles/vm_executor_test.dir/vm/vm_executor_test.cpp.o"
  "CMakeFiles/vm_executor_test.dir/vm/vm_executor_test.cpp.o.d"
  "vm_executor_test"
  "vm_executor_test.pdb"
  "vm_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
