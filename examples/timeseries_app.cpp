// A second application on the same middleware (the paper's future-work
// item 2: "additional data analysis applications"). This example builds a
// complete time-series aggregation service — its own predicate type,
// user-defined cmp/overlap/project functions, and executor — without
// touching a line of the runtime, demonstrating that the scheduler, Data
// Store, and Page Space are application-agnostic.
//
// Queries ask for the mean of a sensor channel over [t0, t1) at a given
// aggregation step; results cached at a fine step are re-aggregated to
// answer coarser queries, exactly like VM magnification levels.
//
//   ./timeseries_app [--policy CNBF]
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/bytes.hpp"
#include "common/options.hpp"
#include "index/chunk_layout.hpp"
#include "query/executor.hpp"
#include "query/semantics.hpp"
#include "server/query_server.hpp"
#include "storage/data_source.hpp"

using namespace mqs;

namespace ts {

// ---------------------------------------------------------------------
// Raw storage: synthetic sensor samples, 8192 per 64KB page.
// ---------------------------------------------------------------------
constexpr std::int64_t kSamplesPerPage = 8192;

double syntheticSample(std::uint64_t seed, std::int64_t t) {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 31;
  return static_cast<double>(h % 10000) / 100.0;  // 0.00 .. 99.99
}

class SeriesSource final : public storage::DataSource {
 public:
  SeriesSource(std::int64_t samples, std::uint64_t seed)
      : samples_(samples), seed_(seed) {}

  [[nodiscard]] storage::PageId pageCount() const override {
    return static_cast<storage::PageId>(
        (samples_ + kSamplesPerPage - 1) / kSamplesPerPage);
  }
  [[nodiscard]] std::size_t pageBytes(storage::PageId page) const override {
    const std::int64_t first = static_cast<std::int64_t>(page) * kSamplesPerPage;
    const std::int64_t n = std::min(kSamplesPerPage, samples_ - first);
    return static_cast<std::size_t>(n) * sizeof(double);
  }
  void readPage(storage::PageId page, std::span<std::byte> out) const override {
    const std::int64_t first = static_cast<std::int64_t>(page) * kSamplesPerPage;
    const std::int64_t n =
        static_cast<std::int64_t>(pageBytes(page) / sizeof(double));
    for (std::int64_t i = 0; i < n; ++i) {
      const double v = syntheticSample(seed_, first + i);
      std::memcpy(out.data() + static_cast<std::size_t>(i) * sizeof(double),
                  &v, sizeof(double));
    }
  }

  [[nodiscard]] std::int64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::int64_t samples_;
  std::uint64_t seed_;
};

// ---------------------------------------------------------------------
// Predicate: mean of channel over [t0, t1) at aggregation step `step`.
// ---------------------------------------------------------------------
class TSPredicate final : public query::Predicate {
 public:
  TSPredicate(storage::DatasetId series, std::int64_t t0, std::int64_t t1,
              std::int64_t step)
      : series_(series), t0_(t0), t1_(t1), step_(step) {
    MQS_CHECK(t1 > t0 && step >= 1 && (t1 - t0) % step == 0);
  }

  [[nodiscard]] storage::DatasetId series() const { return series_; }
  [[nodiscard]] std::int64_t t0() const { return t0_; }
  [[nodiscard]] std::int64_t t1() const { return t1_; }
  [[nodiscard]] std::int64_t step() const { return step_; }
  [[nodiscard]] std::int64_t bins() const { return (t1_ - t0_) / step_; }

  [[nodiscard]] query::PredicatePtr clone() const override {
    return std::make_unique<TSPredicate>(*this);
  }
  [[nodiscard]] std::string_view kind() const override { return "ts"; }
  [[nodiscard]] Rect boundingBox() const override {
    const auto offset = static_cast<std::int64_t>(series_) * (1LL << 40);
    return Rect{t0_ + offset, 0, t1_ + offset, 1};
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "ts{series=" << series_ << " [" << t0_ << ',' << t1_ << ") step="
       << step_ << '}';
    return os.str();
  }

 private:
  storage::DatasetId series_;
  std::int64_t t0_, t1_, step_;
};

const TSPredicate& asTS(const query::Predicate& p) {
  MQS_CHECK(p.kind() == "ts");
  return static_cast<const TSPredicate&>(p);
}

// ---------------------------------------------------------------------
// User-defined functions (Eqs. 1-3 for intervals instead of rectangles).
// ---------------------------------------------------------------------
class TSSemantics final : public query::QuerySemantics {
 public:
  [[nodiscard]] double overlap(const query::Predicate& cachedP,
                               const query::Predicate& qP) const override {
    if (cachedP.kind() != "ts" || qP.kind() != "ts") return 0.0;
    const Rect covered = coveredRegion(cachedP, qP);
    if (covered.empty()) return 0.0;
    const auto& c = asTS(cachedP);
    const auto& q = asTS(qP);
    // 1-D Eq. 4 analogue: (I_len * I_step) / (O_len * O_step).
    return (static_cast<double>(covered.width()) * static_cast<double>(c.step())) /
           (static_cast<double>(q.t1() - q.t0()) * static_cast<double>(q.step()));
  }

  [[nodiscard]] std::uint64_t qoutsize(const query::Predicate& p) const override {
    return static_cast<std::uint64_t>(asTS(p).bins()) * sizeof(double);
  }
  [[nodiscard]] std::uint64_t qinputsize(const query::Predicate& p) const override {
    const auto& q = asTS(p);
    const std::int64_t firstPage = q.t0() / kSamplesPerPage;
    const std::int64_t lastPage = (q.t1() - 1) / kSamplesPerPage;
    return static_cast<std::uint64_t>(lastPage - firstPage + 1) *
           kSamplesPerPage * sizeof(double);
  }

  [[nodiscard]] Rect coveredRegion(const query::Predicate& cachedP,
                                   const query::Predicate& qP) const override {
    const auto& c = asTS(cachedP);
    const auto& q = asTS(qP);
    if (c.series() != q.series() || q.step() % c.step() != 0) return {};
    if ((q.t0() - c.t0()) % c.step() != 0) return {};
    std::int64_t lo = std::max(c.t0(), q.t0());
    std::int64_t hi = std::min(c.t1(), q.t1());
    if (lo >= hi) return {};
    // Shrink to whole output bins of q.
    const std::int64_t s = q.step();
    lo = q.t0() + (lo - q.t0() + s - 1) / s * s;
    hi = q.t0() + (hi - q.t0()) / s * s;
    if (lo >= hi) return {};
    return Rect{lo, 0, hi, 1};
  }

  [[nodiscard]] std::vector<query::PredicatePtr> remainder(
      const query::Predicate& cachedP,
      const query::Predicate& qP) const override {
    const auto& q = asTS(qP);
    const Rect covered = coveredRegion(cachedP, qP);
    std::vector<query::PredicatePtr> out;
    if (covered.empty()) {
      out.push_back(q.clone());
      return out;
    }
    if (covered.x0 > q.t0()) {
      out.push_back(std::make_unique<TSPredicate>(q.series(), q.t0(),
                                                  covered.x0, q.step()));
    }
    if (covered.x1 < q.t1()) {
      out.push_back(std::make_unique<TSPredicate>(q.series(), covered.x1,
                                                  q.t1(), q.step()));
    }
    return out;
  }
};

// ---------------------------------------------------------------------
// Executor: compute bin means from raw pages / re-aggregate cached bins.
// ---------------------------------------------------------------------
class TSExecutor final : public query::QueryExecutor {
 public:
  [[nodiscard]] std::vector<std::byte> execute(
      const query::Predicate& pred,
      pagespace::PageSpaceManager& ps) const override {
    const auto& q = asTS(pred);
    std::vector<double> bins(static_cast<std::size_t>(q.bins()), 0.0);
    const std::int64_t firstPage = q.t0() / kSamplesPerPage;
    const std::int64_t lastPage = (q.t1() - 1) / kSamplesPerPage;
    for (std::int64_t page = firstPage; page <= lastPage; ++page) {
      const auto data =
          ps.fetch({q.series(), static_cast<storage::PageId>(page)});
      const std::int64_t base = page * kSamplesPerPage;
      const std::int64_t lo = std::max(q.t0(), base);
      const std::int64_t hi = std::min(
          q.t1(), base + static_cast<std::int64_t>(data->size() / sizeof(double)));
      for (std::int64_t t = lo; t < hi; ++t) {
        double v = 0;
        std::memcpy(&v,
                    data->data() + static_cast<std::size_t>(t - base) * sizeof(double),
                    sizeof(double));
        bins[static_cast<std::size_t>((t - q.t0()) / q.step())] += v;
      }
    }
    std::vector<std::byte> out(bins.size() * sizeof(double));
    for (std::size_t i = 0; i < bins.size(); ++i) {
      const double mean = bins[i] / static_cast<double>(q.step());
      std::memcpy(out.data() + i * sizeof(double), &mean, sizeof(double));
    }
    return out;
  }

  void project(const query::Predicate& cachedP,
               std::span<const std::byte> payload,
               const query::Predicate& outP,
               std::span<std::byte> out) const override {
    const auto& c = asTS(cachedP);
    const auto& q = asTS(outP);
    TSSemantics sem;
    const Rect covered = sem.coveredRegion(cachedP, outP);
    MQS_CHECK(!covered.empty());
    const std::int64_t ratio = q.step() / c.step();
    for (std::int64_t t = covered.x0; t < covered.x1; t += q.step()) {
      double sum = 0;
      for (std::int64_t k = 0; k < ratio; ++k) {
        const auto ci = (t - c.t0()) / c.step() + k;
        double v = 0;
        std::memcpy(&v,
                    payload.data() + static_cast<std::size_t>(ci) * sizeof(double),
                    sizeof(double));
        sum += v;
      }
      const double mean = sum / static_cast<double>(ratio);
      const auto qi = (t - q.t0()) / q.step();
      std::memcpy(out.data() + static_cast<std::size_t>(qi) * sizeof(double),
                  &mean, sizeof(double));
    }
  }
};

}  // namespace ts

int main(int argc, char** argv) {
  const Options opts(argc, argv);

  constexpr std::int64_t kSamples = 4 * 1024 * 1024;  // 32MB of doubles
  ts::SeriesSource sensor(kSamples, /*seed=*/3);
  ts::TSSemantics semantics;
  ts::TSExecutor executor;

  server::ServerConfig cfg;
  cfg.threads = static_cast<int>(opts.getInt("threads", 2));
  cfg.policy = opts.getString("policy", "CNBF");
  cfg.dsBytes = 8 * MiB;
  cfg.psBytes = 8 * MiB;
  server::QueryServer server(&semantics, &executor, cfg);
  server.attach(0, &sensor);

  auto run = [&](std::int64_t t0, std::int64_t t1, std::int64_t step) {
    auto pred = std::make_unique<ts::TSPredicate>(0, t0, t1, step);
    std::cout << "query  " << pred->describe() << "\n";
    const auto result = server.execute(std::move(pred), 0);
    double firstBin = 0;
    std::memcpy(&firstBin, result.bytes.data(), sizeof(double));
    std::cout << "  -> " << result.bytes.size() / sizeof(double)
              << " bins, first mean " << firstBin << ", reuse overlap "
              << result.record.overlapUsed << ", disk "
              << formatBytes(result.record.bytesFromDisk) << "\n";
    return firstBin;
  };

  std::cout << "time-series aggregation on the multi-query middleware "
               "(policy " << cfg.policy << ")\n\n";
  // Fine pass over the morning, coarse pass over the same data (pure
  // re-aggregation), then a widened coarse window (partial reuse).
  const double fine = run(0, 1 << 20, 1 << 8);
  const double coarse = run(0, 1 << 20, 1 << 12);
  (void)run(0, 1 << 21, 1 << 12);

  // Re-aggregation must agree with direct computation.
  std::cout << "\nfine/coarse first-bin means consistent: "
            << (std::abs(fine - coarse) < 1e6 ? "structure ok" : "??")
            << "\n";
  const auto ds = server.dataStore().stats();
  std::cout << "Data Store: " << ds.hits << "/" << ds.lookups
            << " lookups hit, " << ds.inserts << " inserts\n";
  server.shutdown();
  return 0;
}
