#include "driver/server_experiment.hpp"

#include <future>
#include <memory>
#include <thread>

#include "storage/synthetic_source.hpp"
#include "vm/vm_executor.hpp"

namespace mqs::driver {

namespace {

struct Rig {
  vm::VMSemantics semantics;
  std::vector<ClientWorkload> workloads;
  std::vector<std::unique_ptr<storage::SyntheticSlideSource>> sources;
};

Rig buildRig(const WorkloadConfig& workload) {
  Rig rig;
  rig.workloads = WorkloadGenerator::generate(workload, rig.semantics);
  for (std::size_t d = 0; d < workload.datasets.size(); ++d) {
    rig.sources.push_back(std::make_unique<storage::SyntheticSlideSource>(
        rig.semantics.layout(static_cast<storage::DatasetId>(d)),
        workload.datasets[d].seed));
  }
  return rig;
}

ServerRunResult gather(const server::QueryServer& server) {
  ServerRunResult r;
  r.records = server.collector().records();
  r.summary = metrics::summarize(r.records);
  r.dsStats = server.dataStore().stats();
  r.schedStats = server.scheduler().stats();
  if (trace::Tracer* tracer = server.tracer()) {
    r.traceEvents = tracer->drain();
  }
  return r;
}

}  // namespace

ServerRunResult ServerExperiment::runInteractive(
    const WorkloadConfig& workload, const server::ServerConfig& serverCfg) {
  Rig rig = buildRig(workload);
  vm::VMExecutor executor(&rig.semantics, /*intraQueryThreads=*/1,
                          serverCfg.prefetchPages);
  server::QueryServer server(&rig.semantics, &executor, serverCfg);
  for (std::size_t d = 0; d < rig.sources.size(); ++d) {
    server.attach(static_cast<storage::DatasetId>(d), rig.sources[d].get());
  }

  {
    std::vector<std::jthread> clients;
    clients.reserve(rig.workloads.size());
    for (const ClientWorkload& wl : rig.workloads) {
      clients.emplace_back([&server, &wl] {
        for (const vm::VMPredicate& q : wl.queries) {
          // A FAILED query is an answer, not a client crash: record it
          // (the server already did, in its collector) and move on to the
          // next query — an uncaught throw here would terminate().
          try {
            (void)server.execute(std::make_unique<vm::VMPredicate>(q),
                                 wl.client);
          } catch (const server::QueryFailure&) {
          }
        }
      });
    }
  }  // join clients

  ServerRunResult result = gather(server);
  result.psStats = server.pageSpace().stats();
  server.shutdown();
  return result;
}

ServerRunResult ServerExperiment::runBatch(
    const WorkloadConfig& workload, const server::ServerConfig& serverCfg) {
  Rig rig = buildRig(workload);
  vm::VMExecutor executor(&rig.semantics, /*intraQueryThreads=*/1,
                          serverCfg.prefetchPages);
  server::QueryServer server(&rig.semantics, &executor, serverCfg);
  for (std::size_t d = 0; d < rig.sources.size(); ++d) {
    server.attach(static_cast<storage::DatasetId>(d), rig.sources[d].get());
  }

  std::vector<std::future<server::QueryResult>> futures;
  std::size_t maxLen = 0;
  for (const auto& wl : rig.workloads) {
    maxLen = std::max(maxLen, wl.queries.size());
  }
  for (std::size_t i = 0; i < maxLen; ++i) {
    for (const ClientWorkload& wl : rig.workloads) {
      if (i < wl.queries.size()) {
        futures.push_back(server.submit(
            std::make_unique<vm::VMPredicate>(wl.queries[i]), wl.client));
      }
    }
  }
  for (auto& f : futures) {
    // Drain every future even when some queries FAILED: the batch result
    // reports failures through the metrics summary instead of throwing
    // away the rest of the run.
    try {
      (void)f.get();
    } catch (const server::QueryFailure&) {
    }
  }

  ServerRunResult result = gather(server);
  result.psStats = server.pageSpace().stats();
  server.shutdown();
  return result;
}

}  // namespace mqs::driver
