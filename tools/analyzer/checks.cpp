// Analysis core for mqs-analyze: the function-body walk that propagates
// hold sets (RAII MutexLock scopes, manual lock()/unlock(), REQUIRES
// seeding), the call-summary fixpoint, the three whole-program checks,
// the DESIGN.md §9 cross-check, and the fragment/merge/baseline plumbing.
#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "analyzer.hpp"

namespace mqs::analyze {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string parentScope(const std::string& path) {
  const std::size_t pos = path.rfind("::");
  return pos == std::string::npos ? std::string() : path.substr(0, pos);
}

bool typeHasToken(const std::string& typeText, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = typeText.find(tok, pos)) != std::string::npos) {
    const bool l = pos == 0 ||
                   !(std::isalnum(static_cast<unsigned char>(
                         typeText[pos - 1])) ||
                     typeText[pos - 1] == '_');
    const std::size_t end = pos + tok.size();
    const bool r = end >= typeText.size() ||
                   !(std::isalnum(static_cast<unsigned char>(typeText[end])) ||
                     typeText[end] == '_');
    if (l && r) return true;
    pos = end;
  }
  return false;
}

std::vector<int> setToVec(const std::set<int>& s) {
  return {s.begin(), s.end()};
}

}  // namespace

// ---------------------------------------------------------------------------
// Config

Config Config::defaults() {
  Config c;
  c.blockingMinRank = 44;
  c.blockingNames = {
      // C stdio / POSIX file & socket I/O (bare names match free calls only).
      "fopen", "fwrite", "fread", "fclose", "fflush", "fseek", "fsync",
      "fdatasync", "pread", "pwrite", "sendto", "recvfrom", "send", "recv",
      "connect", "accept", "poll", "select", "system", "popen",
      // Sleeps.
      "sleep", "usleep", "nanosleep",
      "this_thread::sleep_for", "this_thread::sleep_until",
      // Filesystem ops (qualified only: bare `remove` is std::remove).
      "fs::remove", "filesystem::remove", "fs::remove_all",
      "filesystem::remove_all", "fs::rename", "filesystem::rename",
      "fs::create_directories", "filesystem::create_directories",
      "fs::resize_file", "filesystem::resize_file", "fs::copy_file",
      "filesystem::copy_file",
  };
  c.blockingMethods = {
      "BlockingQueue::pop", "future::get", "future::wait",
      "shared_future::get", "shared_future::wait", "thread::join",
      "jthread::join", "ofstream::write", "ofstream::flush",
      "fstream::write", "fstream::flush", "ostream::write", "ostream::flush",
      "ifstream::read", "istream::read", "SpillTier::flush",
  };
  c.exemptMemberTypes = {
      // Internally synchronized or lifecycle-only handles; annotating them
      // GUARDED_BY would be wrong (they are the synchronization).
      "Mutex", "CondVar", "MutexLock", "BlockingQueue", "thread", "jthread",
      "mutex", "shared_mutex", "condition_variable", "condition_variable_any",
      "once_flag", "stop_source", "atomic", "atomic_flag", "ThreadPool",
  };
  return c;
}

void Config::loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = trim(line.substr(0, colon));
    const std::string val = trim(line.substr(colon + 1));
    if (val.empty()) continue;
    if (key == "blocking") {
      if (val.find("::") != std::string::npos &&
          val.find("::") == val.rfind("::") &&
          std::isupper(static_cast<unsigned char>(val[0])))
        blockingMethods.insert(val);
      else
        blockingNames.insert(val);
    } else if (key == "exempt-type") {
      exemptMemberTypes.insert(val);
    } else if (key == "allow-member") {
      memberAllowlist.insert(val);
    } else if (key == "blocking-min-rank") {
      blockingMinRank = std::atoi(val.c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Name resolution shared by the body walker

namespace {

class Resolver {
 public:
  explicit Resolver(const Program& prog) : prog_(prog) {}

  /// Map a declared type text to a known record path, trying the context
  /// record's scope chain first (nested records), then exact and
  /// unique-suffix matches.
  std::string recordOfType(const std::string& typeText,
                           const std::string& context) const {
    for (const std::string& cand : qualifiedCandidates(typeText)) {
      std::string ctx = context;
      while (true) {
        const std::string q = ctx.empty() ? cand : ctx + "::" + cand;
        if (prog_.records.count(q) != 0) return q;
        if (ctx.empty()) break;
        ctx = parentScope(ctx);
      }
      if (const std::string u = uniqueRecordSuffix(cand); !u.empty()) return u;
    }
    return {};
  }

  /// Member lookup walking the record scope chain outward.
  const MemberDecl* findMember(const std::string& record,
                               const std::string& name,
                               std::string* owningRecord) const {
    std::string ctx = record;
    while (!ctx.empty()) {
      auto it = prog_.records.find(ctx);
      if (it != prog_.records.end()) {
        for (const auto& m : it->second.members)
          if (m.name == name) {
            if (owningRecord != nullptr) *owningRecord = ctx;
            return &m;
          }
      }
      ctx = parentScope(ctx);
    }
    return nullptr;
  }

  int mutexBySuffix(const std::string& name) const {
    int found = -1;
    for (std::size_t i = 0; i < prog_.mutexes.size(); ++i) {
      const std::string& p = prog_.mutexes[i].path;
      if (p == name || (p.size() > name.size() + 2 &&
                        p.compare(p.size() - name.size(), name.size(), name) ==
                            0 &&
                        p.compare(p.size() - name.size() - 2, 2, "::") == 0)) {
        if (found >= 0) return -1;  // ambiguous
        found = static_cast<int>(i);
      }
    }
    return found;
  }

 private:
  /// "std :: vector < Shard * >" -> {"std::vector", "Shard", ...}:
  /// '::'-joined runs plus each bare identifier, longest first.
  static std::vector<std::string> qualifiedCandidates(
      const std::string& typeText) {
    std::vector<std::string> toks;
    std::istringstream ss(typeText);
    std::string t;
    while (ss >> t) toks.push_back(t);
    std::vector<std::string> out;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i] == "::" || !std::isalpha(static_cast<unsigned char>(
                                 toks[i].empty() ? '0' : toks[i][0])))
        continue;
      std::string q = toks[i];
      std::size_t j = i;
      while (j + 2 < toks.size() && toks[j + 1] == "::") {
        q += "::" + toks[j + 2];
        j += 2;
      }
      if (q != toks[i]) out.push_back(q);
    }
    for (const auto& tk : toks) {
      if (tk == "::" || tk.empty()) continue;
      if (std::isalpha(static_cast<unsigned char>(tk[0])) || tk[0] == '_')
        out.push_back(tk);
    }
    return out;
  }

  std::string uniqueRecordSuffix(const std::string& name) const {
    std::string found;
    for (const auto& [path, rec] : prog_.records) {
      (void)rec;
      if (path == name) return path;
      if (path.size() > name.size() + 2 &&
          path.compare(path.size() - name.size(), name.size(), name) == 0 &&
          path.compare(path.size() - name.size() - 2, 2, "::") == 0) {
        if (!found.empty()) return {};  // ambiguous
        found = path;
      }
    }
    return found;
  }

  const Program& prog_;
};

// ---------------------------------------------------------------------------
// Body walker

struct Chain {
  std::vector<std::string> segs;  ///< collapsed segments, method last
  std::vector<std::string> seps;  ///< separator before segs[i+1]
  bool complexBase = false;       ///< base was `)`/`]` — unresolvable
  bool globalQualified = false;   ///< leading `::`
  [[nodiscard]] bool allScopeSeps() const {
    for (const auto& s : seps)
      if (s != "::") return false;
    return true;
  }
};

class BodyWalker {
 public:
  BodyWalker(const LexedFile& f, Program& prog, FuncDef& fn, const Config& cfg)
      : f_(f), t_(f.toks), prog_(prog), fn_(fn), cfg_(cfg), res_(prog) {
    for (const auto& [name, type] : fn_.params) locals_[name] = type;
    seedEntryHeld();
  }

  void run() {
    raii_.emplace_back();  // function scope
    i_ = fn_.bodyBegin;
    while (i_ < fn_.bodyEnd && i_ < t_.size()) step();
  }

 private:
  const LexedFile& f_;
  const std::vector<Tok>& t_;
  Program& prog_;
  FuncDef& fn_;
  const Config& cfg_;
  Resolver res_;
  std::size_t i_ = 0;

  std::vector<std::vector<int>> raii_;
  std::set<int> manual_;
  std::set<int> entry_;
  std::map<std::string, std::string> locals_;
  std::map<std::string, std::string> autoInit_;  ///< auto local -> init head

  [[nodiscard]] const Tok& tok(std::size_t k) const { return t_[k]; }
  [[nodiscard]] bool isP(std::size_t k, const char* s) const {
    return k < t_.size() && t_[k].kind == Tok::Kind::Punct && t_[k].text == s;
  }
  [[nodiscard]] bool isI(std::size_t k) const {
    return k < t_.size() && t_[k].kind == Tok::Kind::Ident;
  }

  [[nodiscard]] std::vector<int> heldNow() const {
    std::set<int> h = entry_;
    for (const auto& sc : raii_) h.insert(sc.begin(), sc.end());
    h.insert(manual_.begin(), manual_.end());
    return setToVec(h);
  }

  void seedEntryHeld() {
    std::vector<std::string> exprs = fn_.requiresExprs;
    auto it = prog_.declRequires.find(fn_.key);
    if (it != prog_.declRequires.end())
      exprs.insert(exprs.end(), it->second.begin(), it->second.end());
    for (const auto& e : exprs) {
      const int idx = resolveMutexText(e);
      if (idx >= 0) entry_.insert(idx);
    }
  }

  int resolveMutexText(const std::string& expr) {
    const LexedFile lf = lexSource("<expr>", expr);
    if (lf.toks.empty()) return -1;
    return resolveMutexToks(lf.toks, 0, lf.toks.size());
  }

  /// Resolve a mutex expression given as a token range [b, e).
  int resolveMutexToks(const std::vector<Tok>& v, std::size_t b,
                       std::size_t e) {
    // Split into segments on '.'/'->' (collapsing '::'-qualified names),
    // dropping leading '*' / '&' / 'this'.
    std::vector<std::string> segs;
    std::string cur;
    bool qualified = false;
    for (std::size_t k = b; k < e; ++k) {
      const Tok& tk = v[k];
      if (tk.kind == Tok::Kind::Punct &&
          (tk.text == "*" || tk.text == "&") && cur.empty() && segs.empty())
        continue;
      if (tk.kind == Tok::Kind::Punct && tk.text == "::") {
        cur += "::";
        qualified = true;
        continue;
      }
      if (tk.kind == Tok::Kind::Punct &&
          (tk.text == "." || tk.text == "->")) {
        if (!cur.empty()) segs.push_back(cur);
        cur.clear();
        continue;
      }
      if (tk.kind == Tok::Kind::Ident) {
        cur += tk.text;
        continue;
      }
      return -1;  // indexing/calls in the expression — give up
    }
    if (!cur.empty()) segs.push_back(cur);
    if (!segs.empty() && segs.front() == "this") segs.erase(segs.begin());
    if (segs.empty()) return -1;

    if (segs.size() == 1) {
      const std::string& s = segs[0];
      if (qualified) {
        if (const int idx = prog_.mutexIndex(s); idx >= 0) return idx;
        // `lockorder::x` style partial qualification.
        return res_.mutexBySuffix(lastSegment(s));
      }
      // Local / parameter of Mutex type: statically unknowable identity.
      if (auto it = locals_.find(s);
          it != locals_.end() && typeHasToken(it->second, "Mutex"))
        return -1;
      // Member of the enclosing record chain.
      std::string ctx = fn_.record;
      while (!ctx.empty()) {
        if (const int idx = prog_.mutexIndex(ctx + "::" + s); idx >= 0)
          return idx;
        ctx = parentScope(ctx);
      }
      return res_.mutexBySuffix(s);
    }

    // Multi-segment: resolve the base object's record, walk members.
    std::string rec = resolveBaseRecord(segs[0]);
    if (rec.empty()) return res_.mutexBySuffix(segs.back());
    for (std::size_t k = 1; k + 1 < segs.size(); ++k) {
      std::string owner;
      const MemberDecl* m = res_.findMember(rec, segs[k], &owner);
      if (m == nullptr) return res_.mutexBySuffix(segs.back());
      rec = res_.recordOfType(m->typeText, owner);
      if (rec.empty()) return res_.mutexBySuffix(segs.back());
    }
    std::string owner = rec;
    if (const MemberDecl* m = res_.findMember(rec, segs.back(), &owner);
        m != nullptr) {
      if (const int idx = prog_.mutexIndex(owner + "::" + segs.back());
          idx >= 0)
        return idx;
    }
    return res_.mutexBySuffix(segs.back());
  }

  static std::string lastSegment(const std::string& q) {
    const std::size_t pos = q.rfind("::");
    return pos == std::string::npos ? q : q.substr(pos + 2);
  }

  /// Type text of a base identifier (local, member, global), or "".
  std::string typeOfBase(const std::string& name, int depth = 0) {
    if (depth > 4) return {};
    if (name == "this") return fn_.record;
    if (auto it = locals_.find(name); it != locals_.end()) {
      if (it->second == "auto") {
        auto ai = autoInit_.find(name);
        if (ai != autoInit_.end()) return typeOfBase(ai->second, depth + 1);
        return {};
      }
      return it->second;
    }
    std::string owner;
    if (const MemberDecl* m = res_.findMember(fn_.record, name, &owner);
        m != nullptr)
      return m->typeText;
    for (const auto& [gname, gtype] : prog_.globals) {
      if (gname == name || lastSegment(gname) == name) return gtype;
    }
    // A call: use the (record-local, then unique) function's return type.
    std::string ctx = fn_.record;
    while (!ctx.empty()) {
      for (const auto& fd : prog_.funcs)
        if (fd.key == ctx + "::" + name) return fd.returnTypeText;
      ctx = parentScope(ctx);
    }
    return {};
  }

  std::string resolveBaseRecord(const std::string& base) {
    if (base == "this") return fn_.record;
    const std::string type = typeOfBase(base);
    if (!type.empty()) {
      const std::string rec = res_.recordOfType(type, fn_.record);
      if (!rec.empty()) return rec;
    }
    // Static access through a type name (Record::member).
    return res_.recordOfType(base, fn_.record);
  }

  // -- walking --------------------------------------------------------------
  void step() {
    const Tok& tk = t_[i_];
    if (tk.kind == Tok::Kind::Punct) {
      if (tk.text == "{") {
        raii_.emplace_back();
        ++i_;
        return;
      }
      if (tk.text == "}") {
        if (raii_.size() > 1) raii_.pop_back();
        ++i_;
        return;
      }
      ++i_;
      return;
    }
    if (tk.kind != Tok::Kind::Ident) {
      ++i_;
      return;
    }

    maybeLocalDecl();

    if (tk.text == "MutexLock" && isI(i_ + 1) &&
        (isP(i_ + 2, "(") || isP(i_ + 2, "{"))) {
      handleMutexLockDecl();
      return;
    }
    if (i_ + 1 < t_.size() && isP(i_ + 1, "(")) {
      handleCallish();
      return;
    }
    ++i_;
  }

  /// At a statement-start identifier, record `Type [*&] name [=({;]` local
  /// declarations for later receiver typing. Never consumes tokens.
  void maybeLocalDecl() {
    if (i_ > fn_.bodyBegin) {
      const Tok& prev = t_[i_ - 1];
      if (!(prev.kind == Tok::Kind::Punct &&
            (prev.text == ";" || prev.text == "{" || prev.text == "}")))
        return;
    }
    std::size_t k = i_;
    std::string type;
    if (isI(k) && t_[k].text == "const") {
      type = "const";
      ++k;
    }
    if (!isI(k)) return;
    static const std::set<std::string> kStmtKw = {
        "if",     "while",  "for",   "switch", "return", "break", "continue",
        "do",     "goto",   "case",  "else",   "throw",  "try",   "catch",
        "delete", "new",    "using", "static", "co_return", "co_await"};
    if (kStmtKw.count(t_[k].text) != 0) return;
    // Type: ident (:: ident)* (< ... >)?
    type += (type.empty() ? "" : " ") + t_[k].text;
    ++k;
    while (isP(k, "::") && isI(k + 1)) {
      type += " :: " + t_[k + 1].text;
      k += 2;
    }
    if (isP(k, "<")) {
      int depth = 0;
      while (k < t_.size()) {
        if (isP(k, "<")) ++depth;
        else if (isP(k, ">")) {
          --depth;
          type += " " + t_[k].text;
          ++k;
          if (depth == 0) break;
          continue;
        } else if (isP(k, "(") || isP(k, ";")) {
          return;  // not a simple template type
        }
        type += " " + t_[k].text;
        ++k;
      }
    }
    while (isP(k, "*") || isP(k, "&")) {
      type += " " + t_[k].text;
      ++k;
    }
    if (!isI(k)) return;
    const std::string name = t_[k].text;
    ++k;
    if (!(isP(k, "=") || isP(k, ";") || isP(k, "{") || isP(k, "("))) return;
    locals_[name] = type;
    if (typeHasToken(type, "auto") && isP(k, "=")) {
      // First identifier of the initializer, for auto resolution.
      std::size_t j = k + 1;
      while (j < t_.size() && !isI(j) &&
             !(t_[j].kind == Tok::Kind::Punct &&
               (t_[j].text == ";" || t_[j].text == "{")))
        ++j;
      if (isI(j)) autoInit_[name] = t_[j].text;
    }
  }

  void handleMutexLockDecl() {
    const int line = t_[i_].line;
    i_ += 2;  // MutexLock NAME
    const char* close = isP(i_, "(") ? ")" : "}";
    ++i_;
    const std::size_t exprB = i_;
    int depth = 1;
    while (i_ < t_.size() && depth > 0) {
      if (t_[i_].kind == Tok::Kind::Punct) {
        if (t_[i_].text == "(" || t_[i_].text == "{") ++depth;
        else if (t_[i_].text == ")" || t_[i_].text == "}") --depth;
      }
      if (depth > 0) ++i_;
    }
    const std::size_t exprE = i_;
    if (i_ < t_.size()) ++i_;  // close
    (void)close;
    const int idx = resolveMutexToks(t_, exprB, exprE);
    if (idx < 0) return;
    fn_.acquires.push_back({idx, heldNow(), line});
    raii_.back().push_back(idx);
  }

  Chain collectChain(std::size_t methodPos) const {
    Chain ch;
    ch.segs.push_back(t_[methodPos].text);
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(methodPos) - 1;
    while (k >= 0 && t_[k].kind == Tok::Kind::Punct &&
           (t_[k].text == "." || t_[k].text == "->" || t_[k].text == "::")) {
      if (k == 0 || t_[k - 1].kind != Tok::Kind::Ident) {
        if (t_[k].text == "::") ch.globalQualified = true;
        else ch.complexBase = true;
        break;
      }
      ch.segs.insert(ch.segs.begin(), t_[k - 1].text);
      ch.seps.insert(ch.seps.begin(), t_[k].text);
      k -= 2;
    }
    return ch;
  }

  /// cur() is an identifier followed by '(': method call, free call, or
  /// neither (keyword/macro). Records acquire/call/blocking events.
  void handleCallish() {
    const std::size_t methodPos = i_;
    const std::string& name = t_[methodPos].text;
    const int line = t_[methodPos].line;
    static const std::set<std::string> kNotCalls = {
        "if",    "while",  "for",       "switch",    "return", "catch",
        "sizeof", "alignof", "decltype", "co_await",  "co_return", "assert",
        "MQS_CHECK", "MQS_DCHECK", "MQS_LOG", "defined"};
    if (kNotCalls.count(name) != 0) {
      ++i_;
      return;
    }
    const Chain ch = collectChain(methodPos);
    const bool methodCall =
        !ch.seps.empty() &&
        (ch.seps.back() == "." || ch.seps.back() == "->");
    ++i_;  // move onto '(' — arg tokens walked by the main loop afterwards

    if (methodCall && (name == "lock" || name == "unlock") &&
        isP(i_, "(") && isP(i_ + 1, ")")) {
      // Receiver = chain minus the method.
      const int idx = resolveChainReceiverMutex(ch);
      if (idx >= 0) {
        if (name == "lock") {
          fn_.acquires.push_back({idx, heldNow(), line});
          manual_.insert(idx);
        } else {
          manual_.erase(idx);
        }
      }
      i_ += 2;
      return;
    }

    if (methodCall) {
      const std::string recvType = receiverTypeText(ch);
      const std::string recvName = typeNameForBlocking(recvType);
      if (name == "wait" && recvName == "CondVar") {
        // Argument is the mutex being waited on (and temporarily released).
        const int waited = firstArgMutex();
        BlockingEvent ev;
        ev.what = "CondVar::wait";
        ev.held = heldNow();
        ev.waitedMutexIdx = waited;
        ev.line = line;
        fn_.blocking.push_back(ev);
        return;
      }
      if (!recvName.empty() &&
          cfg_.blockingMethods.count(recvName + "::" + name) != 0) {
        fn_.blocking.push_back({recvName + "::" + name, heldNow(), -1, line});
        return;
      }
      // Method call on a known record: contributes callee's acquisitions.
      const std::string rec =
          recvType.empty() ? std::string()
                           : res_.recordOfType(recvType, fn_.record);
      if (!rec.empty() && !heldNow().empty())
        fn_.calls.push_back({rec + "::" + name, heldNow(), line});
      return;
    }

    // '::'-qualified or bare free call.
    if (ch.segs.size() > 1 || ch.globalQualified) {
      // Try joined suffixes of the qualified name against the blocking set.
      std::string suffix;
      for (std::size_t k = ch.segs.size(); k-- > 0;) {
        suffix = suffix.empty() ? ch.segs[k] : ch.segs[k] + "::" + suffix;
        if (cfg_.blockingNames.count(suffix) != 0) {
          fn_.blocking.push_back({suffix, heldNow(), -1, line});
          return;
        }
      }
      return;
    }
    if (cfg_.blockingNames.count(name) != 0) {
      fn_.blocking.push_back({name, heldNow(), -1, line});
      return;
    }
    // Bare call: same-record method (possibly an out-of-line *Locked
    // helper), else a namespace function we parsed.
    std::string ctx = fn_.record;
    while (!ctx.empty()) {
      const std::string key = ctx + "::" + name;
      if (funcKeyExists(key)) {
        if (!heldNow().empty()) fn_.calls.push_back({key, heldNow(), line});
        return;
      }
      ctx = parentScope(ctx);
    }
    if (const std::string key = uniqueFuncSuffix(name); !key.empty()) {
      if (!heldNow().empty()) fn_.calls.push_back({key, heldNow(), line});
    }
  }

  [[nodiscard]] bool funcKeyExists(const std::string& key) const {
    for (const auto& fd : prog_.funcs)
      if (fd.key == key) return true;
    return prog_.declRequires.count(key) != 0;
  }

  [[nodiscard]] std::string uniqueFuncSuffix(const std::string& name) const {
    std::string found;
    for (const auto& fd : prog_.funcs) {
      if (lastSegment(fd.key) != name) continue;
      if (!found.empty() && found != fd.key) return {};
      found = fd.key;
    }
    return found;
  }

  int resolveChainReceiverMutex(const Chain& ch) {
    if (ch.complexBase || ch.segs.size() < 2) return -1;
    // Rebuild receiver tokens (chain minus method) and reuse the resolver.
    std::vector<Tok> v;
    for (std::size_t k = 0; k + 1 < ch.segs.size(); ++k) {
      if (k > 0) v.push_back({Tok::Kind::Punct, ch.seps[k - 1], 0});
      v.push_back({Tok::Kind::Ident, ch.segs[k], 0});
    }
    return resolveMutexToks(v, 0, v.size());
  }

  [[nodiscard]] std::string receiverTypeText(const Chain& ch) {
    if (ch.complexBase || ch.segs.size() < 2) return {};
    std::string type = typeOfBase(ch.segs[0]);
    std::string rec =
        type.empty() ? std::string() : res_.recordOfType(type, fn_.record);
    for (std::size_t k = 1; k + 1 < ch.segs.size(); ++k) {
      std::string owner;
      const std::string scope = rec.empty() ? fn_.record : rec;
      const MemberDecl* m = res_.findMember(scope, ch.segs[k], &owner);
      if (m == nullptr) return {};
      type = m->typeText;
      rec = res_.recordOfType(type, owner);
    }
    return type;
  }

  /// Last plausible type name in a type text ("std :: future < X >" ->
  /// "future"; "CondVar" -> "CondVar").
  static std::string typeNameForBlocking(const std::string& typeText) {
    std::istringstream ss(typeText);
    std::string t, best;
    while (ss >> t) {
      if (t.empty()) continue;
      if (!(std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_'))
        continue;
      if (t == "const" || t == "std" || t == "mutable" || t == "typename")
        continue;
      best = t;
      if (t == "future" || t == "shared_future" || t == "CondVar" ||
          t == "BlockingQueue" || t == "thread" || t == "jthread")
        return t;
    }
    return best;
  }

  /// cur() is '(' of a call whose first argument names a mutex.
  int firstArgMutex() {
    if (!isP(i_, "(")) return -1;
    std::size_t b = i_ + 1, k = b;
    int depth = 1;
    while (k < t_.size() && depth > 0) {
      if (t_[k].kind == Tok::Kind::Punct) {
        if (t_[k].text == "(") ++depth;
        else if (t_[k].text == ")") --depth;
        else if (t_[k].text == "," && depth == 1) break;
      }
      if (depth > 0) ++k;
    }
    i_ = k;  // main loop continues from the arg end
    return resolveMutexToks(t_, b, k);
  }
};

// ---------------------------------------------------------------------------
// Summaries + edges

std::map<std::string, std::set<int>> computeSummaries(const Program& prog) {
  std::map<std::string, std::set<int>> sum;
  for (const auto& fn : prog.funcs) {
    auto& s = sum[fn.key];
    for (const auto& a : fn.acquires) s.insert(a.mutexIdx);
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (const auto& fn : prog.funcs) {
      auto& s = sum[fn.key];
      const std::size_t before = s.size();
      for (const auto& c : fn.calls) {
        auto it = sum.find(c.callee);
        if (it != sum.end()) s.insert(it->second.begin(), it->second.end());
      }
      if (s.size() != before) changed = true;
    }
  }
  return sum;
}

std::string siteString(const FuncDef& fn, int line) {
  return fn.file + ":" + std::to_string(line) + " (" + fn.key + ")";
}

void addEdge(std::map<std::pair<int, int>, std::vector<std::string>>& acc,
             int from, int to, const std::string& site) {
  auto& sites = acc[{from, to}];
  if (std::find(sites.begin(), sites.end(), site) == sites.end())
    sites.push_back(site);
}

std::map<std::pair<int, int>, std::vector<std::string>> edgesForFuncs(
    const std::map<std::string, std::set<int>>& sum,
    const std::vector<const FuncDef*>& funcs) {
  std::map<std::pair<int, int>, std::vector<std::string>> acc;
  for (const FuncDef* fn : funcs) {
    for (const auto& a : fn->acquires)
      for (int h : a.held)
        if (h != a.mutexIdx || true)  // keep self-edges: reentrancy
          addEdge(acc, h, a.mutexIdx, siteString(*fn, a.line));
    for (const auto& c : fn->calls) {
      auto it = sum.find(c.callee);
      if (it == sum.end()) continue;
      for (int h : c.held)
        for (int m : it->second)
          addEdge(acc, h, m, siteString(*fn, c.line));
    }
  }
  return acc;
}

std::vector<Edge> toEdgeVec(
    const std::map<std::pair<int, int>, std::vector<std::string>>& acc) {
  std::vector<Edge> out;
  for (const auto& [key, sites] : acc) {
    Edge e;
    e.from = key.first;
    e.to = key.second;
    e.sites = sites;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

void analyzeBodies(const std::vector<LexedFile>& files, Program& prog,
                   const Config& cfg) {
  // Resolve symbolic ranks now that every file (incl. lock_order.hpp) is in.
  for (auto& m : prog.mutexes) {
    if (m.rankName.empty()) continue;
    auto it = prog.rankValues.find(m.rankName);
    if (it != prog.rankValues.end()) m.rank = it->second;
  }
  std::map<std::string, const LexedFile*> byPath;
  for (const auto& f : files) byPath[f.path] = &f;
  for (auto& fn : prog.funcs) {
    if (!fn.hasBody) continue;
    auto it = byPath.find(fn.file);
    if (it == byPath.end()) continue;
    BodyWalker(*it->second, prog, fn, cfg).run();
  }
}

std::vector<Edge> lockGraph(const Program& prog) {
  const auto sum = computeSummaries(prog);
  std::vector<const FuncDef*> all;
  all.reserve(prog.funcs.size());
  for (const auto& fn : prog.funcs) all.push_back(&fn);
  return toEdgeVec(edgesForFuncs(sum, all));
}

// ---------------------------------------------------------------------------
// Checks

std::vector<Finding> checkLockGraph(const Program& prog,
                                    const std::vector<Edge>& edges) {
  std::vector<Finding> out;
  std::set<std::string> seen;
  auto emit = [&](Finding f) {
    if (seen.insert(f.id()).second) out.push_back(std::move(f));
  };
  auto siteFileLine = [](const std::string& site, std::string* file,
                         int* line) {
    const std::size_t colon = site.rfind(" (");
    std::string head =
        colon == std::string::npos ? site : site.substr(0, colon);
    const std::size_t c2 = head.rfind(':');
    if (c2 == std::string::npos) {
      *file = head;
      *line = 0;
      return;
    }
    *file = head.substr(0, c2);
    *line = std::atoi(head.c_str() + c2 + 1);
  };

  for (const auto& e : edges) {
    if (e.from < 0 || e.to < 0) continue;
    const MutexDecl& a = prog.mutexes[static_cast<std::size_t>(e.from)];
    const MutexDecl& b = prog.mutexes[static_cast<std::size_t>(e.to)];
    std::string file = a.file;
    int line = a.line;
    if (!e.sites.empty()) siteFileLine(e.sites[0], &file, &line);
    if (e.from == e.to) {
      Finding f;
      f.check = "lock-inversion";
      f.file = file;
      f.line = line;
      f.where = a.path + " -> " + a.path;
      f.detail = "reentrant acquisition of the same mutex";
      emit(std::move(f));
      continue;
    }
    if (a.rank > 0 && b.rank > 0 && b.rank <= a.rank) {
      Finding f;
      f.check = "lock-inversion";
      f.file = file;
      f.line = line;
      f.where = a.path + " -> " + b.path;
      f.detail = "acquires rank " + std::to_string(b.rank) + " (" + b.path +
                 ") while holding rank " + std::to_string(a.rank) + " (" +
                 a.path + ")";
      emit(std::move(f));
    }
  }

  // Cycles over the full per-mutex graph (catches unranked mutexes that the
  // rank comparison can't see). Tarjan SCC, deterministic order.
  const int n = static_cast<int>(prog.mutexes.size());
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (const auto& e : edges)
    if (e.from >= 0 && e.to >= 0 && e.from != e.to)
      adj[static_cast<std::size_t>(e.from)].push_back(e.to);

  std::vector<int> index(static_cast<std::size_t>(n), -1),
      low(static_cast<std::size_t>(n), 0);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> sccs;
  // Iterative Tarjan.
  struct Frame {
    int v;
    std::size_t child;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto v = static_cast<std::size_t>(fr.v);
      if (fr.child == 0) {
        index[v] = low[v] = counter++;
        stack.push_back(fr.v);
        onStack[v] = true;
      }
      bool descended = false;
      while (fr.child < adj[v].size()) {
        const int w = adj[v][fr.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (onStack[wu]) low[v] = std::min(low[v], index[wu]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        std::vector<int> scc;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          onStack[static_cast<std::size_t>(w)] = false;
          scc.push_back(w);
          if (w == fr.v) break;
        }
        if (scc.size() > 1) {
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      const int finished = fr.v;
      frames.pop_back();
      if (!frames.empty()) {
        const auto p = static_cast<std::size_t>(frames.back().v);
        low[p] = std::min(low[p], low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  for (const auto& scc : sccs) {
    std::string cyc;
    for (int v : scc) {
      if (!cyc.empty()) cyc += " -> ";
      cyc += prog.mutexes[static_cast<std::size_t>(v)].path;
    }
    cyc += " -> " + prog.mutexes[static_cast<std::size_t>(scc[0])].path;
    Finding f;
    f.check = "lock-cycle";
    f.file = prog.mutexes[static_cast<std::size_t>(scc[0])].file;
    f.line = prog.mutexes[static_cast<std::size_t>(scc[0])].line;
    f.where = "cycle";
    f.detail = cyc;
    emit(std::move(f));
  }
  return out;
}

std::vector<Finding> checkGuardedBy(const Program& prog, const Config& cfg) {
  std::vector<Finding> out;
  for (const auto& [path, rec] : prog.records) {
    if (!rec.ownsMutex()) continue;
    for (const auto& m : rec.members) {
      if (m.isGuarded || m.isConst || m.isAtomic || m.isStatic ||
          m.hasImmutableComment)
        continue;
      if (std::find(rec.mutexMembers.begin(), rec.mutexMembers.end(),
                    m.name) != rec.mutexMembers.end())
        continue;
      bool exempt = false;
      for (const auto& t : cfg.exemptMemberTypes)
        if (typeHasToken(m.typeText, t)) {
          exempt = true;
          break;
        }
      if (exempt) continue;
      if (cfg.memberAllowlist.count(path + "::" + m.name) != 0) continue;
      Finding f;
      f.check = "guarded-by-gap";
      f.file = rec.file;
      f.line = m.line;
      f.where = path + "::" + m.name;
      f.detail = "mutable member of a mutex-owning record has no GUARDED_BY, "
                 "const, atomic, or allowlist exemption (type: " +
                 m.typeText + ")";
      out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<Finding> checkBlocking(const Program& prog, const Config& cfg) {
  std::vector<Finding> out;
  std::set<std::string> seen;
  for (const auto& fn : prog.funcs) {
    for (const auto& b : fn.blocking) {
      const MutexDecl* worst = nullptr;
      for (int h : b.held) {
        if (h == b.waitedMutexIdx) continue;  // released for the wait
        const MutexDecl& m = prog.mutexes[static_cast<std::size_t>(h)];
        if (m.rank < cfg.blockingMinRank) continue;
        if (worst == nullptr || m.rank > worst->rank) worst = &m;
      }
      if (worst == nullptr) continue;
      Finding f;
      f.check = "blocking-under-lock";
      f.file = fn.file;
      f.line = b.line;
      f.where = fn.key;
      f.detail = "calls " + b.what + " while holding " + worst->path +
                 " (rank " + std::to_string(worst->rank) + ")";
      if (seen.insert(f.id()).second) out.push_back(std::move(f));
    }
  }
  return out;
}

std::vector<Finding> checkDesignTable(const Program& prog,
                                      const std::string& designText,
                                      const std::string& designPath) {
  std::vector<Finding> out;
  // Collect `| <rank> | `name` | ... |` rows inside section ## 9.
  std::map<std::string, int> tableRank;
  std::map<std::string, int> tableLine;
  std::istringstream ss(designText);
  std::string line;
  int lineNo = 0;
  bool inSection = false;
  while (std::getline(ss, line)) {
    ++lineNo;
    if (line.rfind("## ", 0) == 0) {
      inSection = line.rfind("## 9", 0) == 0;
      continue;
    }
    if (!inSection || line.empty() || line[0] != '|') continue;
    // Cells.
    std::vector<std::string> cells;
    std::string cell;
    for (std::size_t i = 1; i < line.size(); ++i) {
      if (line[i] == '|') {
        cells.push_back(trim(cell));
        cell.clear();
      } else {
        cell += line[i];
      }
    }
    if (cells.size() < 2) continue;
    char* end = nullptr;
    const long rank = std::strtol(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str() || rank <= 0) continue;  // header/separator
    // Name: backticked token in cell 1; strip `mqs::` and template args.
    std::string name = cells[1];
    const std::size_t b1 = name.find('`');
    const std::size_t b2 = name.rfind('`');
    if (b1 == std::string::npos || b2 <= b1) continue;
    name = name.substr(b1 + 1, b2 - b1 - 1);
    if (name.rfind("mqs::", 0) == 0) name = name.substr(5);
    std::string stripped;
    int angle = 0;
    for (char c : name) {
      if (c == '<') ++angle;
      else if (c == '>') --angle;
      else if (angle == 0) stripped += c;
    }
    tableRank[stripped] = static_cast<int>(rank);
    tableLine[stripped] = lineNo;
  }

  std::set<std::string> declaredRanked;
  for (const auto& m : prog.mutexes) {
    if (m.rank <= 0) continue;
    declaredRanked.insert(m.path);
    if (!m.nameLiteral.empty()) declaredRanked.insert(m.nameLiteral);
    // Match by declared path, falling back to the debug-name literal
    // (anonymous namespaces strip the logical scope from the path).
    auto it = tableRank.find(m.path);
    if (it == tableRank.end() && !m.nameLiteral.empty())
      it = tableRank.find(m.nameLiteral);
    if (it == tableRank.end()) {
      Finding f;
      f.check = "rank-table-mismatch";
      f.file = designPath;
      f.line = 0;
      f.where = m.path;
      f.detail = "ranked mutex (rank " + std::to_string(m.rank) +
                 ", declared at " + m.file + ") missing from the section 9 "
                 "rank table";
      out.push_back(std::move(f));
    } else if (it->second != m.rank) {
      Finding f;
      f.check = "rank-table-mismatch";
      f.file = designPath;
      f.line = tableLine[it->first];
      f.where = m.path;
      f.detail = "table says rank " + std::to_string(it->second) +
                 " but code declares rank " + std::to_string(m.rank);
      out.push_back(std::move(f));
    }
  }
  for (const auto& [name, rank] : tableRank) {
    if (declaredRanked.count(name) != 0) continue;
    Finding f;
    f.check = "rank-table-mismatch";
    f.file = designPath;
    f.line = tableLine[name];
    f.where = name;
    f.detail = "table row (rank " + std::to_string(rank) +
               ") has no matching ranked mutex in code";
    out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fragments, merge, JSON, baseline

std::string fragmentJson(const Program& prog, const std::string& tu,
                         const std::vector<const FuncDef*>& funcs) {
  const auto sum = computeSummaries(prog);
  const auto acc = edgesForFuncs(sum, funcs);
  std::ostringstream out;
  out << "{\n  \"tu\": \"" << jsonEscape(tu) << "\",\n  \"edges\": [";
  bool first = true;
  for (const auto& [key, sites] : acc) {
    if (key.first < 0 || key.second < 0) continue;
    for (const auto& site : sites) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\"from\": \""
          << jsonEscape(prog.mutexes[static_cast<std::size_t>(key.first)].path)
          << "\", \"to\": \""
          << jsonEscape(
                 prog.mutexes[static_cast<std::size_t>(key.second)].path)
          << "\", \"site\": \"" << jsonEscape(site) << "\"}";
    }
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::vector<Edge> mergeFragments(
    const Program& prog, const std::vector<std::string>& fragmentTexts) {
  std::map<std::pair<int, int>, std::vector<std::string>> acc;
  for (const auto& text : fragmentTexts) {
    // Same minimal scanner idea as compileCommandsFiles: collect the
    // from/to/site string values per object, flush on '}'.
    std::string from, to, site;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto parseString = [&](std::size_t& p) {
      std::string s;
      ++p;
      while (p < n && text[p] != '"') {
        if (text[p] == '\\' && p + 1 < n) {
          const char e = text[p + 1];
          s += (e == 'n' ? '\n' : e == 't' ? '\t' : e);
          p += 2;
        } else {
          s += text[p++];
        }
      }
      ++p;
      return s;
    };
    while (i < n) {
      if (text[i] == '"') {
        const std::string key = parseString(i);
        while (i < n && std::isspace(static_cast<unsigned char>(text[i])))
          ++i;
        if (i < n && text[i] == ':') {
          ++i;
          while (i < n && std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
          if (i < n && text[i] == '"') {
            const std::string val = parseString(i);
            if (key == "from") from = val;
            else if (key == "to") to = val;
            else if (key == "site") site = val;
          }
        }
      } else if (text[i] == '}') {
        const int f = prog.mutexIndex(from);
        const int t = prog.mutexIndex(to);
        if (f >= 0 && t >= 0) addEdge(acc, f, t, site);
        from.clear();
        to.clear();
        site.clear();
        ++i;
      } else {
        ++i;
      }
    }
  }
  return toEdgeVec(acc);
}

std::string lockGraphJson(const Program& prog, const std::vector<Edge>& edges,
                          const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"mutexes\": [";
  for (std::size_t i = 0; i < prog.mutexes.size(); ++i) {
    const MutexDecl& m = prog.mutexes[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"path\": \"" << jsonEscape(m.path) << "\", \"rank\": "
        << m.rank << ", \"file\": \"" << jsonEscape(m.file)
        << "\", \"line\": " << m.line << "}";
  }
  out << "\n  ],\n  \"edges\": [";
  bool first = true;
  for (const auto& e : edges) {
    if (e.from < 0 || e.to < 0) continue;
    const MutexDecl& a = prog.mutexes[static_cast<std::size_t>(e.from)];
    const MutexDecl& b = prog.mutexes[static_cast<std::size_t>(e.to)];
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"from\": \"" << jsonEscape(a.path)
        << "\", \"fromRank\": " << a.rank << ", \"to\": \""
        << jsonEscape(b.path) << "\", \"toRank\": " << b.rank
        << ", \"sites\": [";
    for (std::size_t s = 0; s < e.sites.size(); ++s) {
      if (s > 0) out << ", ";
      out << "\"" << jsonEscape(e.sites[s]) << "\"";
    }
    out << "]}";
  }
  out << "\n  ],\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"check\": \"" << jsonEscape(f.check) << "\", \"file\": \""
        << jsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"where\": \"" << jsonEscape(f.where) << "\", \"detail\": \""
        << jsonEscape(f.detail) << "\"}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::vector<Finding> applyBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline,
                                   std::vector<std::string>* staleEntries) {
  std::vector<Finding> fresh;
  std::set<std::string> hit;
  for (const auto& f : findings) {
    if (baseline.count(f.id()) != 0)
      hit.insert(f.id());
    else
      fresh.push_back(f);
  }
  if (staleEntries != nullptr) {
    for (const auto& b : baseline)
      if (hit.count(b) == 0) staleEntries->push_back(b);
  }
  return fresh;
}

std::set<std::string> loadBaseline(const std::string& path) {
  std::set<std::string> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return out;
}

}  // namespace mqs::analyze
