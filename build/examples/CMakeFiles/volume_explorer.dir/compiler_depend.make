# Empty compiler generated dependencies file for volume_explorer.
# This may be replaced when dependencies are built.
