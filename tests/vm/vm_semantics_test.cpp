#include "vm/vm_semantics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace mqs::vm {
namespace {

class VMSemanticsTest : public ::testing::Test {
 protected:
  VMSemanticsTest() {
    ds0_ = sem_.addDataset(index::ChunkLayout(8192, 8192, 146));
    ds1_ = sem_.addDataset(index::ChunkLayout(4096, 4096, 146));
  }

  VMPredicate make(Rect r, std::uint32_t zoom, VMOp op = VMOp::Subsample,
                   storage::DatasetId ds = 0) {
    return VMPredicate(ds, r, zoom, op);
  }

  VMSemantics sem_;
  storage::DatasetId ds0_ = 0, ds1_ = 0;
};

TEST_F(VMSemanticsTest, PredicateBasics) {
  const auto p = make(Rect::ofSize(0, 0, 1024, 1024), 4);
  EXPECT_EQ(p.outWidth(), 256);
  EXPECT_EQ(p.outHeight(), 256);
  EXPECT_EQ(p.outBytes(), 256u * 256 * 3);
  EXPECT_EQ(p.kind(), "vm");
}

TEST_F(VMSemanticsTest, PredicateRequiresDivisibleRegion) {
  EXPECT_THROW(make(Rect::ofSize(0, 0, 100, 100), 3), CheckFailure);
  EXPECT_THROW(make(Rect::ofSize(0, 0, 0, 0), 1), CheckFailure);
}

TEST_F(VMSemanticsTest, BoundingBoxSeparatesDatasets) {
  const auto a = VMPredicate(0, Rect::ofSize(0, 0, 64, 64), 1, VMOp::Subsample);
  const auto b = VMPredicate(1, Rect::ofSize(0, 0, 64, 64), 1, VMOp::Subsample);
  EXPECT_TRUE(Rect::intersection(a.boundingBox(), b.boundingBox()).empty());
}

TEST_F(VMSemanticsTest, IdenticalPredicatesOverlapOne) {
  const auto p = make(Rect::ofSize(0, 0, 512, 512), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(p, p), 1.0);
  EXPECT_TRUE(sem_.cmp(p, p));
}

TEST_F(VMSemanticsTest, Eq4HalfAreaSameZoom) {
  const auto cached = make(Rect::ofSize(0, 0, 512, 512), 4);
  const auto q = make(Rect::ofSize(256, 0, 512, 512), 4);
  // Intersection is 256x512 = half of q's area, same zoom.
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, q), 0.5);
}

TEST_F(VMSemanticsTest, Eq4ZoomRatioScalesIndex) {
  // Full areal coverage, I_S = 2, O_S = 4: index = I_S / O_S = 0.5.
  const auto cached = make(Rect::ofSize(0, 0, 512, 512), 2);
  const auto q = make(Rect::ofSize(0, 0, 512, 512), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, q), 0.5);
}

TEST_F(VMSemanticsTest, NonMultipleZoomIsZero) {
  const auto cached = make(Rect::ofSize(0, 0, 512, 512), 4);
  const auto q = make(Rect::ofSize(0, 0, 510, 510), 2);
  // O_S = 2 is not a multiple of I_S = 4 -> not projectable.
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, q), 0.0);
}

TEST_F(VMSemanticsTest, DirectionAsymmetry) {
  const auto hiRes = make(Rect::ofSize(0, 0, 512, 512), 2);
  const auto loRes = make(Rect::ofSize(0, 0, 512, 512), 4);
  EXPECT_GT(sem_.overlap(hiRes, loRes), 0.0);   // can project 2 -> 4
  EXPECT_DOUBLE_EQ(sem_.overlap(loRes, hiRes), 0.0);  // cannot invert
}

TEST_F(VMSemanticsTest, DifferentDatasetOrOpIsZero) {
  const auto a = make(Rect::ofSize(0, 0, 512, 512), 4);
  const auto otherDs =
      VMPredicate(1, Rect::ofSize(0, 0, 512, 512), 4, VMOp::Subsample);
  const auto otherOp = make(Rect::ofSize(0, 0, 512, 512), 4, VMOp::Average);
  EXPECT_DOUBLE_EQ(sem_.overlap(a, otherDs), 0.0);
  EXPECT_DOUBLE_EQ(sem_.overlap(a, otherOp), 0.0);
}

TEST_F(VMSemanticsTest, MisalignedOriginsAreZero) {
  // Origins differ by 1, which is not a multiple of I_S = 4: the sample
  // grids never coincide.
  const auto cached = make(Rect::ofSize(0, 0, 512, 512), 4);
  const auto q = make(Rect::ofSize(1, 0, 512, 512), 4);
  EXPECT_DOUBLE_EQ(sem_.overlap(cached, q), 0.0);
}

TEST_F(VMSemanticsTest, AlignmentModuloCachedZoomSuffices) {
  // Origins differ by 2 = I_S: alignable even though 2 < O_S = 4.
  const auto cached = make(Rect::ofSize(0, 0, 512, 512), 2);
  const auto q = make(Rect::ofSize(2, 0, 512, 512), 4);
  EXPECT_GT(sem_.overlap(cached, q), 0.0);
}

TEST_F(VMSemanticsTest, CoveredRegionShrinksToOutputGrid) {
  const auto cached = make(Rect::ofSize(0, 0, 514, 512), 2);
  const auto q = make(Rect::ofSize(0, 0, 512, 512), 4);
  // Intersection is 512x512 with x1 = 512 already aligned; but a cached
  // region ending at 514 must shrink down to 512 (multiple of O_S from 0).
  EXPECT_EQ(sem_.coveredRegion(cached, q), Rect::ofSize(0, 0, 512, 512));

  const auto cached2 = make(Rect::ofSize(2, 0, 510, 512), 2);
  const Rect cov = sem_.coveredRegion(cached2, q);
  // x0 = 2 aligns up to 4; x1 = 512 stays.
  EXPECT_EQ(cov, (Rect{4, 0, 512, 512}));
}

TEST_F(VMSemanticsTest, QoutsizeAndQinputsize) {
  const auto p = make(Rect::ofSize(0, 0, 1024, 1024), 4);
  EXPECT_EQ(sem_.qoutsize(p), 256u * 256 * 3);
  // qinputsize = whole chunks intersecting the window; region covers
  // ceil(1024/146) = 8 chunks per axis.
  const auto& layout = sem_.layout(0);
  EXPECT_EQ(sem_.qinputsize(p), layout.inputBytes(p.region()));
  EXPECT_GE(sem_.qinputsize(p), 1024u * 1024 * 3);
}

TEST_F(VMSemanticsTest, RemainderNoOverlapIsWholeQuery) {
  const auto cached = make(Rect::ofSize(0, 0, 128, 128), 4);
  const auto q = make(Rect::ofSize(4096, 4096, 128, 128), 4);
  const auto rem = sem_.remainder(cached, q);
  ASSERT_EQ(rem.size(), 1u);
  EXPECT_EQ(asVM(*rem[0]).region(), q.region());
}

TEST_F(VMSemanticsTest, RemainderPlusCoveredTilesQuery) {
  const auto cached = make(Rect::ofSize(128, 128, 256, 256), 4);
  const auto q = make(Rect::ofSize(0, 0, 512, 512), 4);
  const Rect covered = sem_.coveredRegion(cached, q);
  std::vector<Rect> parts{covered};
  for (const auto& r : sem_.remainder(cached, q)) {
    parts.push_back(asVM(*r).region());
  }
  EXPECT_TRUE(exactlyCovers(q.region(), parts));
}

TEST_F(VMSemanticsTest, RemainderPartsAreValidPredicates) {
  // Every remainder predicate must satisfy the divisibility invariant —
  // the constructor throws otherwise, so constructing them is the test.
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t zc = 1u << rng.uniformInt(0, 3);
    const std::uint32_t zq = zc << rng.uniformInt(0, 2);
    const std::int64_t grid = 32;
    auto snap = [&](std::int64_t v) { return (v / grid) * grid; };
    const Rect rc = Rect::ofSize(snap(rng.uniformInt(0, 2000)),
                                 snap(rng.uniformInt(0, 2000)),
                                 static_cast<std::int64_t>(zc) * rng.uniformInt(8, 60),
                                 static_cast<std::int64_t>(zc) * rng.uniformInt(8, 60));
    const Rect rq = Rect::ofSize(snap(rng.uniformInt(0, 2000)),
                                 snap(rng.uniformInt(0, 2000)),
                                 static_cast<std::int64_t>(zq) * rng.uniformInt(8, 60),
                                 static_cast<std::int64_t>(zq) * rng.uniformInt(8, 60));
    const auto cached = make(rc, zc);
    const auto q = make(rq, zq);
    const Rect covered = sem_.coveredRegion(cached, q);
    std::vector<Rect> parts;
    if (!covered.empty()) parts.push_back(covered);
    for (const auto& r : sem_.remainder(cached, q)) {
      parts.push_back(asVM(*r).region());
      EXPECT_EQ(asVM(*r).zoom(), zq);
      EXPECT_EQ(asVM(*r).op(), q.op());
    }
    EXPECT_TRUE(exactlyCovers(q.region(), parts))
        << "cached=" << rc.str() << "@" << zc << " q=" << rq.str() << "@" << zq;
  }
}

TEST_F(VMSemanticsTest, ReusedOutputBytesExact) {
  const auto cached = make(Rect::ofSize(0, 0, 256, 512), 4);
  const auto q = make(Rect::ofSize(0, 0, 512, 512), 4);
  // Covered: 256x512 input -> 64x128 output pixels -> *3 bytes.
  EXPECT_EQ(sem_.reusedOutputBytes(cached, q), 64u * 128 * 3);
}

TEST_F(VMSemanticsTest, OverlapInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t zc = 1u << rng.uniformInt(0, 4);
    const std::uint32_t zq = 1u << rng.uniformInt(0, 4);
    const std::int64_t grid = 16;
    auto snap = [&](std::int64_t v) { return (v / grid) * grid; };
    const VMPredicate cached =
        make(Rect::ofSize(snap(rng.uniformInt(0, 4000)), snap(rng.uniformInt(0, 4000)),
                          static_cast<std::int64_t>(zc) * 16,
                          static_cast<std::int64_t>(zc) * 16),
             zc);
    const VMPredicate q =
        make(Rect::ofSize(snap(rng.uniformInt(0, 4000)), snap(rng.uniformInt(0, 4000)),
                          static_cast<std::int64_t>(zq) * 16,
                          static_cast<std::int64_t>(zq) * 16),
             zq);
    const double ov = sem_.overlap(cached, q);
    EXPECT_GE(ov, 0.0);
    EXPECT_LE(ov, 1.0);
  }
}

TEST_F(VMSemanticsTest, PyramidLevelTilesTheDataset) {
  // 8192^2 dataset, zoom 4, 256^2 output tiles: 8192 / (256*4) = 8 per axis.
  const auto tiles = sem_.pyramidLevel(0, 4, 256, VMOp::Average);
  EXPECT_EQ(tiles.size(), 64u);
  std::vector<Rect> rects;
  for (const auto& t : tiles) {
    EXPECT_EQ(t.zoom(), 4u);
    EXPECT_EQ(t.outWidth(), 256);
    rects.push_back(t.region());
  }
  EXPECT_TRUE(exactlyCovers(Rect::ofSize(0, 0, 8192, 8192), rects));
}

TEST_F(VMSemanticsTest, PyramidTilesCoverAlignedQueries) {
  // Any aligned query at zoom >= the pyramid's projects from some tile.
  const auto tiles = sem_.pyramidLevel(0, 2, 512, VMOp::Subsample);
  const auto q = make(Rect::ofSize(1024, 2048, 512, 512), 4);
  double best = 0.0;
  for (const auto& t : tiles) {
    best = std::max(best, sem_.overlap(t, q));
  }
  EXPECT_GT(best, 0.0);
}

TEST_F(VMSemanticsTest, AsVMRejectsForeignPredicates) {
  class Foreign final : public query::Predicate {
   public:
    [[nodiscard]] query::PredicatePtr clone() const override {
      return std::make_unique<Foreign>();
    }
    [[nodiscard]] std::string_view kind() const override { return "foreign"; }
    [[nodiscard]] Rect boundingBox() const override { return {}; }
    [[nodiscard]] std::string describe() const override { return "foreign"; }
  };
  const Foreign f;
  EXPECT_THROW((void)asVM(f), CheckFailure);
  const auto p = make(Rect::ofSize(0, 0, 64, 64), 1);
  EXPECT_DOUBLE_EQ(sem_.overlap(f, p), 0.0);
}

}  // namespace
}  // namespace mqs::vm
