// Virtual Microscope query execution: clip, subsample / average, project.
//
// execute() walks the chunks intersecting the query region (retrieved via
// the Page Space Manager), clips each to the query window, and computes the
// output image at the requested magnification — the pipeline of §3. Chunk
// fetches are issued through a bounded readahead window so the decode of
// chunk i overlaps the device reads of chunks i+1..i+k (VM subsampling is
// almost pure I/O wait otherwise).
// project() re-renders a cached lower-zoom result into a higher-zoom query
// (or copies at equal zoom), used both for Data Store reuse and for
// assembling sub-query results into their parent's output.
#pragma once

#include "pagespace/readahead.hpp"
#include "query/executor.hpp"
#include "vm/vm_semantics.hpp"

namespace mqs::vm {

class VMExecutor final : public query::QueryExecutor {
 public:
  /// `intraQueryThreads` > 1 renders a query's horizontal bands in
  /// parallel (the bands share boundary chunks, which the Page Space
  /// Manager deduplicates). Effective thread count is
  /// queryServerThreads * intraQueryThreads; the paper's system is purely
  /// inter-query parallel, so the default is 1.
  /// `readaheadPages` is the per-query fetch pipeline depth (0 = fully
  /// synchronous fetches, as the paper's server behaves).
  explicit VMExecutor(
      const VMSemantics* semantics, int intraQueryThreads = 1,
      int readaheadPages = pagespace::kDefaultReadaheadPages);

  [[nodiscard]] std::vector<std::byte> execute(
      const query::Predicate& pred,
      pagespace::PageSpaceManager& ps) const override;

  void project(const query::Predicate& cached,
               std::span<const std::byte> cachedPayload,
               const query::Predicate& out,
               std::span<std::byte> outBuffer) const override;

 private:
  /// Compute `q` from raw data into `out` (exactly q.outBytes() bytes).
  /// Band workers call this with contiguous row slices of the final
  /// buffer, so parallel assembly needs no copying.
  void executeInto(const VMPredicate& q, pagespace::PageSpaceManager& ps,
                   std::span<std::byte> out) const;

  const VMSemantics* semantics_;
  int intraQueryThreads_;
  int readaheadPages_;
};

}  // namespace mqs::vm
