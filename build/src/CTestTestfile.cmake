# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("index")
subdirs("pagespace")
subdirs("datastore")
subdirs("query")
subdirs("sched")
subdirs("vm")
subdirs("vol")
subdirs("metrics")
subdirs("sim")
subdirs("server")
subdirs("net")
subdirs("driver")
