file(REMOVE_RECURSE
  "CMakeFiles/mqs_index.dir/chunk_layout.cpp.o"
  "CMakeFiles/mqs_index.dir/chunk_layout.cpp.o.d"
  "CMakeFiles/mqs_index.dir/rtree.cpp.o"
  "CMakeFiles/mqs_index.dir/rtree.cpp.o.d"
  "libmqs_index.a"
  "libmqs_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
