file(REMOVE_RECURSE
  "CMakeFiles/mqs_cli.dir/mqs_cli.cpp.o"
  "CMakeFiles/mqs_cli.dir/mqs_cli.cpp.o.d"
  "mqs"
  "mqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
