#include "storage/faulty_source.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "index/chunk_layout.hpp"
#include "storage/synthetic_source.hpp"

namespace mqs::storage {
namespace {

class FaultySourceTest : public ::testing::Test {
 protected:
  FaultySourceTest() : layout_(256, 256, 64), slide_(layout_, /*seed=*/9) {}

  /// Reads `page` once, returning the outcome as a small code so whole
  /// injection traces can be compared across source instances.
  static int readOutcome(const FaultySource& src, PageId page,
                         std::span<std::byte> buf) {
    try {
      src.readPage(page, buf);
      return 0;
    } catch (const TransientReadError&) {
      return 1;
    } catch (const PermanentReadError&) {
      return 2;
    }
  }

  index::ChunkLayout layout_;
  SyntheticSlideSource slide_;
};

TEST_F(FaultySourceTest, PassThroughWithEmptyPlan) {
  FaultySource src(slide_, FaultPlan{});
  std::vector<std::byte> got(layout_.chunkBytes(3));
  std::vector<std::byte> want(layout_.chunkBytes(3));
  src.readPage(3, got);
  slide_.readPage(3, want);
  EXPECT_EQ(got, want);
  EXPECT_EQ(src.pageCount(), slide_.pageCount());
  EXPECT_EQ(src.pageBytes(3), slide_.pageBytes(3));
  const auto s = src.stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.transientInjected, 0u);
  EXPECT_EQ(s.permanentInjected, 0u);
}

TEST_F(FaultySourceTest, SameSeedReplaysTheSameInjectionTrace) {
  FaultPlan plan;
  plan.seed = 42;
  plan.transientRate = 0.3;
  FaultySource a(slide_, plan);
  FaultySource b(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  for (int round = 0; round < 50; ++round) {
    const PageId page = static_cast<PageId>(round) % layout_.chunkCount();
    buf.resize(layout_.chunkBytes(page));
    EXPECT_EQ(readOutcome(a, page, buf), readOutcome(b, page, buf))
        << "trace diverged at round " << round;
  }
  EXPECT_EQ(a.stats().transientInjected, b.stats().transientInjected);
}

TEST_F(FaultySourceTest, DifferentSeedsGiveDifferentTraces) {
  FaultPlan planA;
  planA.transientRate = 0.5;
  planA.seed = 1;
  FaultPlan planB = planA;
  planB.seed = 2;
  FaultySource a(slide_, planA);
  FaultySource b(slide_, planB);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  int diverged = 0;
  for (int round = 0; round < 100; ++round) {
    if (readOutcome(a, 0, buf) != readOutcome(b, 0, buf)) ++diverged;
  }
  EXPECT_GT(diverged, 0);
}

TEST_F(FaultySourceTest, TransientRunsAreBounded) {
  FaultPlan plan;
  plan.seed = 7;
  plan.transientRate = 0.9;  // fail almost every fresh read
  plan.maxConsecutiveTransient = 3;
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  int consecutive = 0;
  int maxRun = 0;
  int successes = 0;
  for (int i = 0; i < 400; ++i) {
    if (readOutcome(src, 0, buf) == 1) {
      ++consecutive;
      maxRun = std::max(maxRun, consecutive);
    } else {
      consecutive = 0;
      ++successes;
    }
  }
  EXPECT_LE(maxRun, plan.maxConsecutiveTransient);
  // The bound guarantees progress: retry loops with > max attempts succeed.
  EXPECT_GT(successes, 0);
  EXPECT_GT(src.stats().transientInjected, 0u);
}

TEST_F(FaultySourceTest, PermanentPagesAlwaysFailOthersSucceed) {
  FaultPlan plan;
  plan.permanentPages = {2, 5};
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf;
  for (int attempt = 0; attempt < 5; ++attempt) {
    buf.resize(layout_.chunkBytes(2));
    EXPECT_THROW(src.readPage(2, buf), PermanentReadError);
    buf.resize(layout_.chunkBytes(5));
    EXPECT_THROW(src.readPage(5, buf), PermanentReadError);
  }
  buf.resize(layout_.chunkBytes(1));
  EXPECT_NO_THROW(src.readPage(1, buf));
  EXPECT_EQ(src.stats().permanentInjected, 10u);
}

TEST_F(FaultySourceTest, ClearPermanentFaultsRestoresReads) {
  FaultPlan plan;
  plan.permanentPages = {4};
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(4));
  EXPECT_THROW(src.readPage(4, buf), PermanentReadError);
  src.clearPermanentFaults();
  EXPECT_NO_THROW(src.readPage(4, buf));
  std::vector<std::byte> want(layout_.chunkBytes(4));
  slide_.readPage(4, want);
  EXPECT_EQ(buf, want);  // the device was replaced; bytes are pristine
}

TEST_F(FaultySourceTest, PermanentAndTransientAreDistinctTypes) {
  // Both derive from ReadError so callers can treat "device trouble"
  // uniformly, but the retry layer must be able to tell them apart.
  static_assert(std::is_base_of_v<ReadError, TransientReadError>);
  static_assert(std::is_base_of_v<ReadError, PermanentReadError>);
  static_assert(!std::is_base_of_v<TransientReadError, PermanentReadError>);
  FaultPlan plan;
  plan.permanentPages = {0};
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  EXPECT_THROW(src.readPage(0, buf), ReadError);
}

TEST_F(FaultySourceTest, BurstWindowsBoostTheFailureRate) {
  FaultPlan plan;
  plan.seed = 11;
  plan.transientRate = 0.0;  // quiet outside bursts
  plan.burstPeriod = 20;
  plan.burstLen = 10;
  plan.burstTransientRate = 1.0;
  plan.maxConsecutiveTransient = 1;
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (readOutcome(src, 0, buf) == 1) ++failures;
  }
  // Half of all global sequence numbers land in a burst window.
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 100);
}

TEST_F(FaultySourceTest, StatsCountEveryRead) {
  FaultPlan plan;
  plan.seed = 3;
  plan.transientRate = 0.4;
  plan.permanentPages = {1};
  FaultySource src(slide_, plan);
  std::vector<std::byte> buf(layout_.chunkBytes(0));
  const int kReads = 60;
  std::uint64_t failures = 0;
  for (int i = 0; i < kReads; ++i) {
    const PageId page = i % 2 == 0 ? 0 : 1;
    buf.resize(layout_.chunkBytes(page));
    if (readOutcome(src, page, buf) != 0) ++failures;
  }
  const auto s = src.stats();
  EXPECT_EQ(s.reads, static_cast<std::uint64_t>(kReads));
  EXPECT_EQ(s.transientInjected + s.permanentInjected, failures);
  EXPECT_EQ(s.permanentInjected, static_cast<std::uint64_t>(kReads) / 2);
}

}  // namespace
}  // namespace mqs::storage
