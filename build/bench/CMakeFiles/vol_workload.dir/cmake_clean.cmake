file(REMOVE_RECURSE
  "CMakeFiles/vol_workload.dir/vol_workload.cpp.o"
  "CMakeFiles/vol_workload.dir/vol_workload.cpp.o.d"
  "vol_workload"
  "vol_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vol_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
