file(REMOVE_RECURSE
  "CMakeFiles/vol_test.dir/vol/vol_test.cpp.o"
  "CMakeFiles/vol_test.dir/vol/vol_test.cpp.o.d"
  "vol_test"
  "vol_test.pdb"
  "vol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
