// Lifecycle-trace invariants: the span stream is a faithful, well-formed
// account of every query's life in BOTH engines.
//
// For each query:  spans are well-nested with monotonic timestamps; the
// top-level span durations sum to at most responseTime(); the IO_STALL
// total equals QueryRecord::ioStallTime exactly (the Page Space Manager
// derives both from the same clock reads); the depth-0 PROJECT span count
// equals reuseSources; the reconstructed plan shape equals planShape; the
// terminal span is DELIVER, carrying the failed flag iff the query failed.
//
// Plus Tracer-core semantics the overhead guard and collectors rely on:
// a disabled tracer buffers nothing, drain() is consuming and complete
// under concurrent writers, and QueryScope attribution nests correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "server/query_server.hpp"
#include "sim/sim_server.hpp"
#include "sim/simulator.hpp"
#include "storage/faulty_source.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

constexpr std::uint64_t kSeed = 913;

/// Overlap-rich browsing workload (same construction as the plan
/// equivalence test): aligned rects + revisited neighborhoods, so queries
/// take reuse paths (PROJECT / WAIT_SOURCE spans), not just raw computes.
driver::WorkloadConfig overlapWorkload() {
  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{1024, 1024, 96, kSeed}};
  wl.clientsPerDataset = {3};
  wl.queriesPerClient = 6;
  wl.outputSide = 64;
  wl.zoomLevels = {2, 4};
  wl.zoomWeights = {1, 1};
  wl.alignGrid = 8;
  wl.browseProbability = 0.7;
  wl.op = vm::VMOp::Subsample;
  wl.seed = 0xE0;
  return wl;
}

struct TracedRun {
  std::vector<metrics::QueryRecord> records;
  std::vector<trace::Event> events;
};

TracedRun runRealTraced(int threads) {
  vm::VMSemantics sem;
  const auto workloads =
      driver::WorkloadGenerator::generate(overlapWorkload(), sem);
  storage::SyntheticSlideSource slide(sem.layout(0), kSeed);
  vm::VMExecutor exec(&sem);
  server::ServerConfig cfg;
  cfg.threads = threads;
  cfg.policy = "FIFO";
  cfg.dsBytes = 2ULL << 20;
  cfg.psBytes = 1ULL << 20;
  cfg.maxReuseSources = 4;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(0, &slide);

  std::vector<std::future<server::QueryResult>> futures;
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      futures.push_back(server.submit(q.clone(), client.client));
    }
  }
  for (auto& f : futures) (void)f.get();
  server.shutdown();

  TracedRun run;
  run.records = server.collector().records();
  run.events = cfg.traceSink->drain();
  return run;
}

TracedRun runSimTraced(int threads) {
  vm::VMSemantics sem;
  const auto workloads =
      driver::WorkloadGenerator::generate(overlapWorkload(), sem);
  sim::Simulator sim;
  sim::SimConfig cfg;
  cfg.threads = threads;
  cfg.policy = "FIFO";
  cfg.dsBytes = 2ULL << 20;
  cfg.psBytes = 1ULL << 20;
  cfg.maxReuseSources = 4;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  sim::SimServer server(sim, &sem, cfg);
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      server.submit(q.clone(), client.client);
    }
  }
  sim.run();

  TracedRun run;
  run.records = server.collector().records();
  run.events = cfg.traceSink->drain();
  return run;
}

/// The per-query invariants shared by both engines. `requireReuse` asserts
/// the workload actually exercised the PROJECT/IO_STALL paths (on the
/// overlap workloads); small special-purpose rigs pass false.
void expectLifecycleInvariants(const TracedRun& run,
                               bool requireReuse = true) {
  ASSERT_FALSE(run.records.empty());
  ASSERT_FALSE(run.events.empty());
  bool sawReuse = false;
  bool sawStall = false;
  for (const auto& rec : run.records) {
    SCOPED_TRACE("query " + std::to_string(rec.queryId) + " " + rec.predicate);
    const auto qe = trace::eventsForQuery(run.events, rec.queryId);
    ASSERT_FALSE(qe.empty()) << "query left no trace";
    const auto tree = trace::buildSpanTree(qe);
    EXPECT_TRUE(tree.wellNested) << tree.error;
    EXPECT_TRUE(tree.monotonic) << tree.error;
    ASSERT_FALSE(tree.spans.empty());

    // Top-level spans are disjoint sub-intervals of [arrival, finish], so
    // their durations sum to at most the response time (tolerance covers
    // only floating-point accumulation, not clock skew: the tracer and the
    // record share one engine clock).
    double topSum = 0.0;
    for (const trace::Span& s : tree.spans) {
      if (s.level == 0) topSum += s.duration();
    }
    EXPECT_LE(topSum, rec.responseTime() + 1e-9);

    // The stall accounting derives record and span from the same clock
    // reads, so this equality is exact, not approximate.
    EXPECT_DOUBLE_EQ(trace::totalDuration(tree, trace::SpanKind::IoStall),
                     rec.ioStallTime);
    sawStall = sawStall || rec.ioStallTime > 0.0;

    // Terminal span: DELIVER, failed flag iff the record failed.
    const trace::Span& last = tree.spans.back();
    EXPECT_EQ(last.kind, trace::SpanKind::Deliver);
    EXPECT_EQ((last.flags & trace::kFlagFailed) != 0, rec.failed);

    if (rec.failed) continue;  // a failed plan executes a prefix of its steps

    int project0 = 0;
    for (const trace::Span& s : tree.spans) {
      if (s.kind == trace::SpanKind::Project && s.depth == 0) ++project0;
    }
    EXPECT_EQ(project0, static_cast<int>(rec.reuseSources));
    EXPECT_EQ(trace::planShapeOf(qe), rec.planShape);
    sawReuse = sawReuse || rec.reuseSources > 0;
  }
  // The workload is overlap-rich and larger than the page space by
  // construction; a run with no reuse or no stalls would leave the
  // PROJECT / IO_STALL invariants vacuous.
  if (requireReuse) {
    EXPECT_TRUE(sawReuse);
    EXPECT_TRUE(sawStall);
  }
}

TEST(TraceInvariants, RealEngineSingleThread) {
  expectLifecycleInvariants(runRealTraced(1));
}

TEST(TraceInvariants, RealEngineMultiThread) {
  expectLifecycleInvariants(runRealTraced(4));
}

TEST(TraceInvariants, SimEngineSingleThread) {
  expectLifecycleInvariants(runSimTraced(1));
}

TEST(TraceInvariants, SimEngineMultiSlot) {
  const auto run = runSimTraced(4);
  expectLifecycleInvariants(run);
  // The simulator has no failure path: no span may carry the failed flag.
  for (const trace::Event& e : run.events) {
    if (e.type != trace::EventType::Counter) {
      EXPECT_EQ(e.flags & trace::kFlagFailed, 0);
    }
  }
}

TEST(TraceInvariants, FailedQueryEndsInFailedDeliverSpan) {
  index::ChunkLayout layout(1024, 1024, 96);
  vm::VMSemantics sem;
  const auto dsid = sem.addDataset(layout);
  storage::SyntheticSlideSource slide(layout, kSeed);
  vm::VMExecutor exec(&sem);

  const vm::VMPredicate bad(dsid, Rect::ofSize(0, 0, 256, 256), 4,
                            vm::VMOp::Subsample);
  const vm::VMPredicate good(dsid, Rect::ofSize(512, 512, 256, 256), 4,
                             vm::VMOp::Subsample);
  storage::FaultPlan plan;
  const auto chunks = layout.chunksIntersecting(bad.region());
  ASSERT_FALSE(chunks.empty());
  plan.permanentPages = {chunks.front().id};
  storage::FaultySource faulty(slide, plan);

  server::ServerConfig cfg;
  cfg.threads = 2;
  cfg.policy = "CF";
  cfg.dsBytes = 16ULL << 20;
  cfg.psBytes = 8ULL << 20;
  cfg.ioRetryBackoffSec = 0.0;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(dsid, &faulty);

  auto doomed = server.submit(bad.clone(), 0);
  EXPECT_THROW((void)doomed.get(), server::QueryFailure);
  (void)server.execute(good.clone(), 1);
  server.shutdown();

  TracedRun run;
  run.records = server.collector().records();
  run.events = cfg.traceSink->drain();
  expectLifecycleInvariants(run, /*requireReuse=*/false);

  int failedSpans = 0;
  for (const auto& rec : run.records) {
    const auto tree =
        trace::buildSpanTree(trace::eventsForQuery(run.events, rec.queryId));
    ASSERT_FALSE(tree.spans.empty());
    if ((tree.spans.back().flags & trace::kFlagFailed) != 0) ++failedSpans;
  }
  EXPECT_EQ(failedSpans, 1);  // exactly the poisoned query, nothing else
}

TEST(TraceInvariants, CountersFlowFromBothSubstrates) {
  const auto run = runRealTraced(2);
  std::uint64_t psMiss = 0;
  std::uint64_t psHit = 0;
  std::uint64_t dsEvents = 0;
  for (const trace::Event& e : run.events) {
    if (e.type != trace::EventType::Counter) continue;
    switch (e.counterKind()) {
      case trace::CounterKind::PsMiss: psMiss += e.value; break;
      case trace::CounterKind::PsHit: psHit += e.value; break;
      case trace::CounterKind::DsHit:
      case trace::CounterKind::DsMiss:
      case trace::CounterKind::DsEvict: dsEvents += e.value; break;
      default: break;
    }
  }
  EXPECT_GT(psMiss, 0u);  // cold reads are inevitable
  EXPECT_GT(psHit, 0u);   // shared pages get re-touched
  EXPECT_GT(dsEvents, 0u);
}

// --- Tracer core semantics --------------------------------------------------

TEST(TracerCore, DisabledTracerBuffersNothing) {
  trace::Tracer tracer;
  tracer.setEnabled(false);
  EXPECT_EQ(tracer.beginSpan(1, trace::SpanKind::Compute),
            trace::Tracer::kDisabledTs);
  EXPECT_EQ(tracer.endSpan(1, trace::SpanKind::Compute),
            trace::Tracer::kDisabledTs);
  tracer.counter(trace::CounterKind::PsHit);
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(TracerCore, DrainIsConsumingAndCompleteUnderConcurrentWriters) {
  trace::Tracer tracer;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&tracer, &go] {
      while (!go.load(std::memory_order_acquire)) {}
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        // value carries the per-thread sequence number so the collector's
        // ordering guarantee (per-buffer emission order) is checkable.
        (void)tracer.beginSpan(/*queryId=*/i, trace::SpanKind::Compute, 0,
                               /*value=*/i);
      }
    });
  }
  go.store(true, std::memory_order_release);

  // Drain concurrently with the writers, then once more after they stop:
  // every event must be seen exactly once, in per-thread emission order.
  std::vector<trace::Event> all;
  for (int i = 0; i < 50; ++i) {
    const auto batch = tracer.drain();
    all.insert(all.end(), batch.begin(), batch.end());
  }
  for (auto& t : writers) t.join();
  const auto rest = tracer.drain();
  all.insert(all.end(), rest.begin(), rest.end());

  EXPECT_EQ(all.size(), kWriters * kPerWriter);
  std::map<std::uint32_t, std::uint64_t> nextPerTid;
  for (const trace::Event& e : all) {
    EXPECT_EQ(e.value, nextPerTid[e.tid]++) << "tid " << e.tid;
  }
  EXPECT_TRUE(tracer.drain().empty());  // consumed, not re-delivered
}

TEST(TracerCore, QueryScopeAttributionNests) {
  trace::Tracer tracer;
  EXPECT_FALSE(tracer.currentThreadQuery().has_value());
  {
    trace::Tracer::QueryScope outer(&tracer, 7);
    EXPECT_EQ(tracer.currentThreadQuery(), std::optional<std::uint64_t>(7));
    {
      trace::Tracer::QueryScope inner(&tracer, 9);
      EXPECT_EQ(tracer.currentThreadQuery(), std::optional<std::uint64_t>(9));
    }
    EXPECT_EQ(tracer.currentThreadQuery(), std::optional<std::uint64_t>(7));
  }
  EXPECT_FALSE(tracer.currentThreadQuery().has_value());
}

TEST(TracerCore, SpanTreeRejectsMalformedStreams) {
  const auto ev = [](trace::EventType type, trace::SpanKind kind, double ts) {
    trace::Event e;
    e.ts = ts;
    e.queryId = 1;
    e.type = type;
    e.kind = static_cast<std::uint8_t>(kind);
    return e;
  };
  using ET = trace::EventType;
  using SK = trace::SpanKind;

  // End without a matching begin.
  auto tree = trace::buildSpanTree({ev(ET::SpanEnd, SK::Compute, 1.0)});
  EXPECT_FALSE(tree.wellNested);

  // Crossed spans: A-begin, B-begin, A-end, B-end.
  tree = trace::buildSpanTree({ev(ET::SpanBegin, SK::Plan, 1.0),
                               ev(ET::SpanBegin, SK::Compute, 2.0),
                               ev(ET::SpanEnd, SK::Plan, 3.0),
                               ev(ET::SpanEnd, SK::Compute, 4.0)});
  EXPECT_FALSE(tree.wellNested);

  // Never-closed span.
  tree = trace::buildSpanTree({ev(ET::SpanBegin, SK::Deliver, 1.0)});
  EXPECT_FALSE(tree.wellNested);

  // Time going backwards.
  tree = trace::buildSpanTree({ev(ET::SpanBegin, SK::Compute, 2.0),
                               ev(ET::SpanEnd, SK::Compute, 1.0)});
  EXPECT_FALSE(tree.monotonic);

  // A correct stream stays clean.
  tree = trace::buildSpanTree({ev(ET::SpanBegin, SK::Plan, 1.0),
                               ev(ET::SpanEnd, SK::Plan, 2.0),
                               ev(ET::SpanBegin, SK::Compute, 2.0),
                               ev(ET::SpanEnd, SK::Compute, 3.0)});
  EXPECT_TRUE(tree.wellNested);
  EXPECT_TRUE(tree.monotonic);
  ASSERT_EQ(tree.spans.size(), 2u);
}

}  // namespace
}  // namespace mqs
