// Experiment runner for the discrete-event engine: builds a workload,
// stands up a SimServer, emulates the paper's clients (interactive or
// batch), runs to completion in virtual time, and returns all measurements.
#pragma once

#include <vector>

#include "datastore/data_store.hpp"
#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "pagespace/scan_registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/sim_server.hpp"
#include "trace/trace.hpp"

namespace mqs::driver {

struct SimRunResult {
  metrics::Summary summary;
  std::vector<metrics::QueryRecord> records;
  sim::SimServer::IoStats io;
  datastore::DataStore::Stats dsStats;
  /// Spill-tier counters (all zero when SimConfig::spillBytes == 0).
  datastore::SpillTier::Stats spillStats;
  pagespace::PageCacheCore::Stats psStats;
  /// Shared-scan registry counters (dynamic folding, DESIGN.md §14); all
  /// zero when SimConfig::foldScans is off.
  pagespace::ScanRegistry::Stats scanStats;
  sched::QueryScheduler::Stats schedStats;
  double simulatedSeconds = 0.0;  ///< virtual makespan of the run
  std::uint64_t events = 0;       ///< DES events processed
  /// Drained lifecycle trace in virtual time (empty unless
  /// SimConfig::traceSink is set).
  std::vector<trace::Event> traceEvents;
};

class SimExperiment {
 public:
  /// Interactive mode (§5, Figures 4-6): every client waits for the
  /// completion of a query before submitting the next one.
  static SimRunResult runInteractive(const WorkloadConfig& workload,
                                     const sim::SimConfig& server);

  /// Batch mode (§5, Figure 7): the whole workload is submitted at t=0 and
  /// the metric of interest is the total execution time.
  static SimRunResult runBatch(const WorkloadConfig& workload,
                               const sim::SimConfig& server);

  /// Open-loop mode (extension; the web-driven scenario of the paper's
  /// ref [11]): the interleaved workload arrives as a Poisson stream at
  /// `arrivalsPerSecond`, regardless of completions — response times under
  /// offered load, saturation visible as unbounded queueing.
  static SimRunResult runOpenLoop(const WorkloadConfig& workload,
                                  const sim::SimConfig& server,
                                  double arrivalsPerSecond);
};

}  // namespace mqs::driver
