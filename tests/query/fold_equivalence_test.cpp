// Fold-equivalence lockdown (DESIGN.md §14): dynamic query folding is a
// pure execution-sharing optimization — merging concurrent in-flight
// queries onto one shared scan must never change what any query returns,
// only how many times the shared region is scanned and decoded.
//
// Two venues, two kinds of proof:
//
//  * The simulator runs many "threads" on one OS thread in virtual time, so
//    a folding run is fully deterministic: we assert that 'F' steps appear
//    in the recorded plan shapes, that the trace-derived shape (depth-0
//    PROJECT/COMPUTE spans, trace::planShapeOf) matches the planner's
//    recorded shape for every query, and that folding-on reads strictly
//    fewer raw bytes than folding-off on a high-overlap batch.
//
//  * The threaded server really races: whether a particular pair of queries
//    folds depends on timing, so the hard assertion is byte-identity —
//    every result from a folding-on server and a folding-off server must
//    equal the independent reference rendering, across randomized
//    overlapping batches, both with a warm Data Store (cached sources
//    compose with folds) and cold (folding is the only sharing in play).
//    Trace-derived shapes must match the recorded shapes either way, 'F'
//    steps included whenever they occurred.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "driver/workload.hpp"
#include "metrics/metrics.hpp"
#include "server/query_server.hpp"
#include "sim/sim_server.hpp"
#include "sim/simulator.hpp"
#include "storage/synthetic_source.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"
#include "vm/image.hpp"
#include "vm/vm_executor.hpp"

namespace mqs {
namespace {

constexpr std::uint64_t kSeed = 4242;

/// Overlap-rich batch: browsing clients revisiting aligned neighborhoods,
/// so concurrently dispatched queries want the same regions.
driver::WorkloadConfig foldWorkload(std::uint64_t seed) {
  driver::WorkloadConfig wl;
  wl.datasets = {driver::DatasetSpec{1024, 1024, 96, kSeed}};
  wl.clientsPerDataset = {6};
  wl.queriesPerClient = 6;
  wl.outputSide = 64;
  wl.zoomLevels = {2, 4};
  wl.zoomWeights = {1, 1};
  wl.alignGrid = 8;
  wl.browseProbability = 0.85;
  wl.op = vm::VMOp::Subsample;
  wl.seed = seed;
  return wl;
}

bool shapeHasFold(const std::string& shape) {
  return shape.find('F') != std::string::npos;
}

// --- simulator: the deterministic venue ----------------------------------

struct SimRun {
  std::vector<metrics::QueryRecord> records;
  std::vector<trace::Event> events;
  std::uint64_t bytesRead = 0;
  pagespace::ScanRegistry::Stats scans;
};

SimRun runSim(bool foldScans, std::uint64_t seed) {
  vm::VMSemantics sem;
  const auto workloads =
      driver::WorkloadGenerator::generate(foldWorkload(seed), sem);
  sim::Simulator sim;
  sim::SimConfig cfg;
  cfg.threads = 4;
  cfg.policy = "FIFO";
  // The Data Store budget is below a single 64x64 result blob (12 KiB), so
  // every insert fails and every WaitAndProjectFromExecuting wait ends in
  // the raw-recompute fallback; the Page Space is below one scan's working
  // set, so those refetches really hit the device. Folding publishes the
  // scan payload independently of the Data Store, so with folding on the
  // same overlap is served without re-reading — the bytes-scanned win this
  // test pins down.
  cfg.dsBytes = 8ULL << 10;
  cfg.psBytes = 128ULL << 10;
  cfg.foldScans = foldScans;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  sim::SimServer server(sim, &sem, cfg);
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      server.submit(q.clone(), client.client);
    }
  }
  sim.run();
  SimRun run;
  run.records = server.collector().records();
  run.events = cfg.traceSink->drain();
  run.bytesRead = server.ioStats().bytesRead;
  run.scans = server.scanRegistry().stats();
  const auto byId = [](const metrics::QueryRecord& a,
                       const metrics::QueryRecord& b) {
    return a.queryId < b.queryId;
  };
  std::sort(run.records.begin(), run.records.end(), byId);
  return run;
}

TEST(FoldEquivalenceSimTest, FoldingSharesScansAndReducesBytesScanned) {
  const SimRun on = runSim(/*foldScans=*/true, 0xF01D);
  const SimRun off = runSim(/*foldScans=*/false, 0xF01D);

  // Conservation: folding changes how work is shared, never whether a
  // query completes — same queries, same predicates, same outputs owed.
  ASSERT_EQ(on.records.size(), off.records.size());
  for (std::size_t i = 0; i < on.records.size(); ++i) {
    ASSERT_EQ(on.records[i].queryId, off.records[i].queryId);
    EXPECT_EQ(on.records[i].predicate, off.records[i].predicate);
  }

  // Folding-on actually folded (deterministically, in virtual time): 'F'
  // steps in the recorded shapes, fold hits at the registry, and strictly
  // fewer raw bytes scanned. Folding-off must show none of it.
  EXPECT_TRUE(std::any_of(
      on.records.begin(), on.records.end(),
      [](const metrics::QueryRecord& r) { return shapeHasFold(r.planShape); }))
      << "no query folded on the high-overlap batch";
  EXPECT_GT(on.scans.foldHits, 0u);
  const auto sharedBytes = [](const SimRun& run) {
    std::uint64_t total = 0;
    for (const auto& e : run.events) {
      if (e.type == trace::EventType::Counter &&
          e.counterKind() == trace::CounterKind::ScanBytesShared) {
        total += e.value;
      }
    }
    return total;
  };
  EXPECT_GT(sharedBytes(on), 0u);
  EXPECT_EQ(sharedBytes(off), 0u);
  for (const auto& r : off.records) {
    EXPECT_FALSE(shapeHasFold(r.planShape)) << r.predicate;
  }
  EXPECT_EQ(off.scans.foldHits, 0u);
  EXPECT_LT(on.bytesRead, off.bytesRead)
      << "shared scans did not reduce raw bytes read";

  // Trace triangulation, both runs: the span stream reconstructs the
  // planner's recorded shape exactly — fold steps emit PROJECT spans with
  // the fold-source flag, so 'F' must round-trip through the trace too.
  for (const SimRun* run : {&on, &off}) {
    for (const auto& r : run->records) {
      const std::string traceShape =
          trace::planShapeOf(trace::eventsForQuery(run->events, r.queryId));
      EXPECT_EQ(traceShape, r.planShape)
          << "trace disagrees with planner for " << r.predicate;
    }
  }
}

TEST(FoldEquivalenceSimTest, FoldSubscribersNeverOutWaitTheirOwners) {
  // Every fold subscriber blocked on a strictly older execution, so the
  // run terminates (sim.run() returning is itself the no-deadlock proof)
  // and every blocked query still delivered its full output accounting.
  const SimRun on = runSim(/*foldScans=*/true, 0xF01D);
  for (const auto& r : on.records) {
    EXPECT_GE(r.finishTime, r.startTime);
    if (shapeHasFold(r.planShape)) {
      EXPECT_GT(r.bytesReused, 0u) << r.predicate;
      EXPECT_TRUE(r.reusedExecuting) << r.predicate;
    }
  }
}

// --- threaded server: the byte-identity venue -----------------------------

struct RealRun {
  std::vector<metrics::QueryRecord> records;
  std::vector<trace::Event> events;
  pagespace::ScanRegistry::Stats scans;
};

/// Runs the batch against a real server and checks every result against
/// the independent reference renderer (byte identity is asserted HERE, so
/// folding-on and folding-off are byte-identical by transitivity).
RealRun runReal(bool foldScans, bool warmDataStore, std::uint64_t seed) {
  vm::VMSemantics sem;
  const auto workloads =
      driver::WorkloadGenerator::generate(foldWorkload(seed), sem);
  storage::SyntheticSlideSource slide(sem.layout(0), kSeed);
  vm::VMExecutor exec(&sem);
  server::ServerConfig cfg;
  cfg.threads = 4;
  cfg.policy = "FIFO";
  cfg.dsBytes = warmDataStore ? (64ULL << 20) : (1ULL << 20);
  cfg.psBytes = 4ULL << 20;
  cfg.foldScans = foldScans;
  cfg.traceSink = std::make_shared<trace::Tracer>();
  server::QueryServer server(&sem, &exec, cfg);
  server.attach(0, &slide);

  if (warmDataStore) {
    // Pre-seed cached sources so ProjectFromCached steps compose with
    // FoldIntoScan steps in the same plans.
    for (const auto& client : workloads) {
      (void)server.execute(client.queries.front().clone(), client.client);
    }
  }

  std::vector<std::future<server::QueryResult>> futures;
  std::vector<const vm::VMPredicate*> queries;
  for (const auto& client : workloads) {
    for (const auto& q : client.queries) {
      queries.push_back(&q);
      futures.push_back(server.submit(q.clone(), client.client));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    const auto& q = *queries[i];
    const auto got =
        vm::ImageRGB::fromBytes(result.bytes, q.outWidth(), q.outHeight());
    EXPECT_EQ(maxAbsDiff(got, renderReference(q, kSeed)), 0)
        << "fold=" << foldScans << " warm=" << warmDataStore << " query " << i
        << ": " << q.describe();
  }
  server.shutdown();
  RealRun run;
  run.records = server.collector().records();
  run.events = cfg.traceSink->drain();
  run.scans = server.pageSpace().scanRegistry().stats();
  return run;
}

class FoldEquivalenceRealTest : public ::testing::TestWithParam<bool> {};

TEST_P(FoldEquivalenceRealTest, FoldingOnAndOffAreByteIdentical) {
  const bool warmDataStore = GetParam();
  // Randomized overlapping batches: distinct seeds reshuffle which queries
  // race, so fold interleavings vary run to run — byte identity may not.
  for (const std::uint64_t seed : {0xA1ULL, 0xB2ULL}) {
    const RealRun on = runReal(/*foldScans=*/true, warmDataStore, seed);
    const RealRun off = runReal(/*foldScans=*/false, warmDataStore, seed);

    // Whether any fold happened is timing-dependent; the plan shapes the
    // planner recorded and the shapes the trace reconstructs must agree
    // exactly either way — including any 'F' steps that did occur.
    for (const RealRun* run : {&on, &off}) {
      for (const auto& r : run->records) {
        const std::string traceShape =
            trace::planShapeOf(trace::eventsForQuery(run->events, r.queryId));
        EXPECT_EQ(traceShape, r.planShape)
            << "trace disagrees with planner for " << r.predicate;
      }
    }
    // A folding-off server must never register or join a scan.
    EXPECT_EQ(off.scans.scansRegistered, 0u);
    EXPECT_EQ(off.scans.foldHits, 0u);
    for (const auto& r : off.records) {
      EXPECT_FALSE(shapeHasFold(r.planShape)) << r.predicate;
    }
    // Folded queries must still account full reuse bytes for the step.
    for (const auto& r : on.records) {
      if (shapeHasFold(r.planShape)) {
        EXPECT_GT(r.bytesReused, 0u) << r.predicate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DataStoreTemperature, FoldEquivalenceRealTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& paramInfo) {
                           return paramInfo.param ? "warmDataStore"
                                                  : "coldDataStore";
                         });

}  // namespace
}  // namespace mqs
