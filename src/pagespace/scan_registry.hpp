// Shared-scan registry for dynamic query folding (DESIGN.md §14).
//
// The Page Space Manager already merges concurrent requests for the *same
// page* onto one device read. The ScanRegistry generalizes that one level
// up: a query about to compute a ComputeRemainder region from raw data
// first *registers* the scan here; queries planned while the scan is still
// running can fold into it (a FoldIntoScan plan step) instead of decoding
// the same pages again. When the owner finishes it publishes the scan's
// result bytes once and every subscriber projects its own output from that
// shared payload — the region is scanned and decoded exactly once.
//
// Lifecycle of one scan:
//
//   beginScan()   owner registers {pred, ownerNode, ownerSeq}; the scan is
//                 Running and visible to candidatesFor().
//   subscribe()   a later query joins while Running (its planner emitted a
//                 FoldIntoScan step). Subscribing after publish/fail finds
//                 nothing (the index entry is gone) and the subscriber
//                 recomputes its share independently — never blocks.
//   publish()     owner succeeded: the payload is copied for the
//                 subscribers (skipped entirely when nobody subscribed) and
//                 the done latch is released.
//   fail()        owner's scan threw: subscribers wake, observe Failed, and
//                 replan their covered parts from raw data independently —
//                 the failure contract is "fail or replan every subscriber,
//                 never hang one". The owner's own failure handling is
//                 untouched.
//
// Deadlock freedom: candidatesFor(subscriberSeq) only returns scans whose
// owner is *strictly older* by execution sequence, the same rule the
// scheduler applies to wait-on-executing sources — every fold wait points
// at a strictly older execution, so the wait graph stays acyclic no matter
// how scans and executing-source waits interleave.
//
// Concurrency: one mutex (rank kScanRegistry, a leaf) guards the index and
// per-scan bookkeeping; the done latch is released *after* unlocking, so a
// subscriber never wakes into the registry lock. The payload is an
// immutable shared_ptr — like pagespace::PagePtr, a subscriber holding it
// keeps the bytes alive with no further coordination.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"
#include "query/fold.hpp"

namespace mqs::pagespace {

class ScanRegistry {
 public:
  /// Terminal states a subscriber can observe after the done latch opens.
  /// (Running is never observable through a settled latch.)
  enum class ScanState : std::uint8_t { Running = 0, Published, Failed };

  /// One registered scan. Subscribers hold it by shared_ptr, so a scan
  /// outlives its registry index entry (and the registry itself, if a
  /// subscriber is slow). All fields except the latch are written before
  /// the latch opens and read only after it opens — the promise/future
  /// pair is the synchronization edge.
  struct Scan {
    query::ScanId id = 0;
    std::uint64_t ownerNode = 0;
    std::uint64_t ownerSeq = 0;
    query::PredicatePtr pred;

    /// Opened exactly once, by publish() or fail(), after the registry
    /// lock is released.
    std::shared_future<void> done;

    /// Valid after `done`: Published or Failed.
    ScanState state = ScanState::Running;
    /// Published only, and only when at least one query subscribed: the
    /// scan's result bytes (the owner's computed region at its zoom).
    std::shared_ptr<const std::vector<std::byte>> payload;
    /// Failed only: what the owner's scan threw.
    std::string error;

   private:
    friend class ScanRegistry;
    std::promise<void> donePromise_;
    int subscribers_ = 0;     ///< guarded by the registry mutex
    bool resolved_ = false;   ///< guarded by the registry mutex
  };
  using ScanPtr = std::shared_ptr<Scan>;

  /// Move-only RAII handle the scan owner holds while computing. A guard
  /// destroyed without publish()/fail() fails the scan (owner unwound —
  /// e.g. a deadline QueryFailure between registration and compute), so a
  /// subscriber can never be left waiting on an abandoned latch.
  class ScanGuard {
   public:
    ScanGuard() = default;
    ScanGuard(ScanGuard&& other) noexcept
        : registry_(other.registry_), scan_(std::move(other.scan_)) {
      other.registry_ = nullptr;
    }
    ScanGuard& operator=(ScanGuard&& other) noexcept {
      if (this != &other) {
        release();
        registry_ = other.registry_;
        scan_ = std::move(other.scan_);
        other.registry_ = nullptr;
      }
      return *this;
    }
    ScanGuard(const ScanGuard&) = delete;
    ScanGuard& operator=(const ScanGuard&) = delete;
    ~ScanGuard() { release(); }

    [[nodiscard]] bool active() const { return registry_ != nullptr; }
    [[nodiscard]] query::ScanId id() const { return scan_ ? scan_->id : 0; }

    /// Publish the scan's bytes to its subscribers and open the latch.
    /// Returns the number of subscribers served (0 = nobody folded in and
    /// the payload copy was skipped).
    int publish(std::span<const std::byte> bytes) {
      const int n = registry_ ? registry_->publish(*scan_, bytes) : 0;
      registry_ = nullptr;
      return n;
    }

    /// Fail the scan: subscribers wake, see Failed, and replan.
    void fail(std::string_view what) {
      if (registry_ != nullptr) registry_->fail(*scan_, what);
      registry_ = nullptr;
    }

   private:
    friend class ScanRegistry;
    ScanGuard(ScanRegistry* registry, ScanPtr scan)
        : registry_(registry), scan_(std::move(scan)) {}
    void release() {
      if (registry_ != nullptr) fail("scan owner unwound before publishing");
    }

    ScanRegistry* registry_ = nullptr;
    ScanPtr scan_;
  };

  ScanRegistry() = default;
  ScanRegistry(const ScanRegistry&) = delete;
  ScanRegistry& operator=(const ScanRegistry&) = delete;

  /// Register a scan over `pred` owned by the query at `ownerNode` with
  /// execution sequence `ownerSeq`. Visible to candidatesFor() until
  /// published or failed.
  [[nodiscard]] ScanGuard beginScan(const query::Predicate& pred,
                                    std::uint64_t ownerNode,
                                    std::uint64_t ownerSeq) EXCLUDES(mu_);

  /// Join a still-running scan. Returns nullptr when the scan already
  /// published or failed (its index entry is erased at resolution) — the
  /// caller then recomputes its covered parts independently. A non-null
  /// return counts as one fold hit.
  [[nodiscard]] ScanPtr subscribe(query::ScanId id) EXCLUDES(mu_);

  /// Snapshot the running scans a query with execution sequence
  /// `subscriberSeq` may fold into: owner strictly older (ownerSeq <
  /// subscriberSeq — the deadlock rule), in registration order, at most
  /// `max` entries. Predicates are cloned, so the snapshot stays valid
  /// however the scans resolve afterwards.
  [[nodiscard]] std::vector<query::FoldCandidate> candidatesFor(
      std::uint64_t subscriberSeq, std::size_t max) const EXCLUDES(mu_);

  struct Stats {
    std::uint64_t scansRegistered = 0;
    std::uint64_t published = 0;   ///< scans that completed
    std::uint64_t failed = 0;      ///< scans that failed or were abandoned
    std::uint64_t foldHits = 0;    ///< successful subscribe() calls
    /// Payload bytes subscribers received without re-scanning: for each
    /// publish with n subscribers, n * payload size.
    std::uint64_t bytesShared = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Number of scans currently Running (tests / introspection).
  [[nodiscard]] std::size_t activeScans() const EXCLUDES(mu_);

 private:
  int publish(Scan& scan, std::span<const std::byte> bytes) EXCLUDES(mu_);
  void fail(Scan& scan, std::string_view what) EXCLUDES(mu_);

  mutable Mutex mu_{lockorder::Rank::kScanRegistry, "ScanRegistry::mu_"};
  /// Running scans only, keyed by id (ordered: candidatesFor iterates in
  /// registration order). Resolution erases the entry, so subscribing to a
  /// settled scan cleanly finds nothing.
  std::map<query::ScanId, ScanPtr> running_ GUARDED_BY(mu_);
  std::uint64_t nextId_ GUARDED_BY(mu_) = 1;

  // Relaxed counters: stats() never contends with the scan paths.
  std::atomic<std::uint64_t> scansRegistered_{0};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> foldHits_{0};
  std::atomic<std::uint64_t> bytesShared_{0};
};

}  // namespace mqs::pagespace
