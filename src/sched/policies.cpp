#include <algorithm>
#include <cctype>

#include "common/check.hpp"
#include "sched/policy.hpp"

namespace mqs::sched {

namespace {

/// 1. First in First out — fairness; queries run in arrival order.
class FifoPolicy final : public RankingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "FIFO"; }
  [[nodiscard]] bool ranksDependOnGraph() const override { return false; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    return -static_cast<double>(g.arrivalSeq(n));
  }
};

/// 2. Most Useful First — how many bytes of q_i other *waiting* queries
/// could reuse if q_i ran next:  r_i = sum over e(i,k), s_k = WAITING of
/// w(i,k).
class MufPolicy final : public RankingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "MUF"; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double r = 0.0;
    for (const Edge& e : g.outEdges(n)) {
      if (g.state(e.peer) == QueryState::Waiting) r += e.weight;
    }
    return r;
  }
};

/// 3. Farthest First — prefer queries unlikely to block on someone else's
/// pending result:  r_i = - sum over e(k,i), s_k in {WAITING, EXECUTING}
/// of w(k,i).
class FfPolicy final : public RankingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "FF"; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double r = 0.0;
    for (const Edge& e : g.inEdges(n)) {
      const QueryState s = g.state(e.peer);
      if (s == QueryState::Waiting || s == QueryState::Executing) {
        r -= e.weight;
      }
    }
    return r;
  }
};

/// 4. Closest First — prefer queries whose dependencies are already (or
/// almost) materialized:  r_i = sum_{cached} w(j,i) + alpha *
/// sum_{executing} w(k,i), 0 < alpha < 1.
class CfPolicy final : public RankingPolicy {
 public:
  explicit CfPolicy(double alpha) : alpha_(alpha) {
    MQS_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "CF requires 0 < alpha < 1");
  }
  [[nodiscard]] std::string_view name() const override { return "CF"; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double r = 0.0;
    for (const Edge& e : g.inEdges(n)) {
      switch (g.state(e.peer)) {
        case QueryState::Cached: r += e.weight; break;
        case QueryState::Executing: r += alpha_ * e.weight; break;
        default: break;
      }
    }
    return r;
  }

 private:
  double alpha_;
};

/// 5. Closest and Non-Blocking First — like CF but *subtract* executing
/// dependencies to avoid interlocks:  r_i = sum_{cached} w(k,i) -
/// sum_{executing} w(j,i).
class CnbfPolicy final : public RankingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "CNBF"; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double r = 0.0;
    for (const Edge& e : g.inEdges(n)) {
      switch (g.state(e.peer)) {
        case QueryState::Cached: r += e.weight; break;
        case QueryState::Executing: r -= e.weight; break;
        default: break;
      }
    }
    return r;
  }
};

/// 6. Shortest Job First — qinputsize as a relative execution-time
/// estimate; shorter queries rank higher.
class SjfPolicy final : public RankingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "SJF"; }
  [[nodiscard]] bool ranksDependOnGraph() const override { return false; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    return -static_cast<double>(g.qinputsize(n));
  }
};

/// 7. COMBINED (extension; the paper's conclusion suggests "a combination
/// of SJF and the other ranking strategies"). Shortest *effective* job
/// first: rank by the input bytes that remain after discounting what
/// cached (and, at a discount, executing) results already cover.
///   r_i = -qinputsize(i) * (1 - min(1, sum_{cached} ov(j,i)
///                                       + alpha * sum_{executing} ov(k,i)))
class CombinedPolicy final : public RankingPolicy {
 public:
  explicit CombinedPolicy(double alpha) : alpha_(alpha) {
    MQS_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0,
                  "COMBINED requires 0 <= alpha <= 1");
  }
  [[nodiscard]] std::string_view name() const override { return "COMBINED"; }
  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double covered = 0.0;
    for (const Edge& e : g.inEdges(n)) {
      switch (g.state(e.peer)) {
        case QueryState::Cached: covered += e.overlap; break;
        case QueryState::Executing: covered += alpha_ * e.overlap; break;
        default: break;
      }
    }
    covered = std::min(covered, 1.0);
    return -static_cast<double>(g.qinputsize(n)) * (1.0 - covered);
  }

 private:
  double alpha_;
};

/// 8. ADAPTIVE (extension; the paper's future work asks for "the
/// development of a combined strategy and of the capability for
/// self-tuning" plus "the incorporation of low level metrics ... into the
/// query scheduling model"). Like COMBINED, but the weight given to reuse
/// coverage is learned online: an EMA of the overlap queries actually
/// achieved (is reuse paying off on this workload?) blended with the
/// current I/O congestion (reuse saves exactly the resource that is
/// scarce). With no feedback it degenerates to SJF; on reuse-rich,
/// I/O-bound workloads it approaches COMBINED.
class AdaptivePolicy final : public RankingPolicy {
 public:
  explicit AdaptivePolicy(double alpha) : alpha_(alpha) {
    MQS_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0,
                  "ADAPTIVE requires 0 <= alpha <= 1");
  }
  [[nodiscard]] std::string_view name() const override { return "ADAPTIVE"; }
  [[nodiscard]] bool ranksDependOnFeedback() const override { return true; }

  void onQueryOutcome(double achievedOverlap) override {
    overlapEma_ = (1.0 - kGain) * overlapEma_ +
                  kGain * std::clamp(achievedOverlap, 0.0, 1.0);
  }
  void onResourceSignal(double ioCongestion) override {
    ioCongestion_ = std::clamp(ioCongestion, 0.0, 1.0);
  }

  [[nodiscard]] double rank(const SchedulingGraph& g, NodeId n) const override {
    double covered = 0.0;
    for (const Edge& e : g.inEdges(n)) {
      switch (g.state(e.peer)) {
        case QueryState::Cached: covered += e.overlap; break;
        case QueryState::Executing: covered += alpha_ * e.overlap; break;
        default: break;
      }
    }
    covered = std::min(covered, 1.0);
    const double weight =
        std::min(1.0, 0.6 * overlapEma_ + 0.4 * ioCongestion_);
    return -static_cast<double>(g.qinputsize(n)) * (1.0 - weight * covered);
  }

  [[nodiscard]] double overlapEma() const { return overlapEma_; }
  [[nodiscard]] double ioCongestion() const { return ioCongestion_; }

 private:
  static constexpr double kGain = 0.1;
  double alpha_;
  double overlapEma_ = 0.0;
  double ioCongestion_ = 0.0;
};

}  // namespace

PolicyPtr makePolicy(std::string_view name, double alpha) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "FIFO") return std::make_unique<FifoPolicy>();
  if (upper == "MUF") return std::make_unique<MufPolicy>();
  if (upper == "FF") return std::make_unique<FfPolicy>();
  if (upper == "CF") return std::make_unique<CfPolicy>(alpha);
  if (upper == "CNBF") return std::make_unique<CnbfPolicy>();
  if (upper == "SJF") return std::make_unique<SjfPolicy>();
  if (upper == "COMBINED") return std::make_unique<CombinedPolicy>(alpha);
  if (upper == "ADAPTIVE") return std::make_unique<AdaptivePolicy>(alpha);
  std::string valid;
  for (const auto& p : allPolicyNames()) {
    if (!valid.empty()) valid += ", ";
    valid += p;
  }
  MQS_CHECK_MSG(false, "unknown ranking policy: '" + std::string(name) +
                           "' (valid: " + valid + "; case-insensitive)");
  return nullptr;  // unreachable
}

const std::vector<std::string>& paperPolicyNames() {
  static const std::vector<std::string> names = {"FIFO", "MUF",  "FF",
                                                 "CF",   "CNBF", "SJF"};
  return names;
}

const std::vector<std::string>& allPolicyNames() {
  static const std::vector<std::string> names = {
      "FIFO", "MUF", "FF", "CF", "CNBF", "SJF", "COMBINED", "ADAPTIVE"};
  return names;
}

}  // namespace mqs::sched
