#include "vol/vol_executor.hpp"

#include <cstdlib>

#include "common/check.hpp"
#include "vol/synthetic_volume.hpp"

namespace mqs::vol {

VolExecutor::VolExecutor(const VolSemantics* semantics, int readaheadPages)
    : semantics_(semantics), readaheadPages_(readaheadPages) {
  MQS_CHECK(semantics_ != nullptr);
  MQS_CHECK(readaheadPages_ >= 0);
}

std::vector<std::byte> VolExecutor::execute(
    const query::Predicate& pred, pagespace::PageSpaceManager& ps) const {
  const VolPredicate& q = asVol(pred);
  const VolumeLayout& layout = semantics_->layout(q.dataset());
  MQS_CHECK_MSG(layout.extent().contains(q.box()),
                "query box outside volume extent");

  const auto l = static_cast<std::int64_t>(q.lod());
  const std::int64_t outW = q.outWidth();
  const std::int64_t outH = q.outHeight();
  const Box3 box = q.box();

  std::vector<std::uint32_t> sums(
      static_cast<std::size_t>(outW * outH * q.outDepth()), 0);

  const std::vector<BrickRef> bricks = layout.bricksIntersecting(box);
  std::vector<storage::PageKey> keys;
  keys.reserve(bricks.size());
  for (const BrickRef& brick : bricks) {
    keys.push_back({q.dataset(), brick.id});
  }
  pagespace::ReadaheadStream stream(ps, std::move(keys), readaheadPages_);

  for (const BrickRef& brick : bricks) {
    const pagespace::PagePtr page = stream.next();
    const std::byte* data = page->data();
    const Box3 clip = Box3::intersection(brick.box, box);
    MQS_DCHECK(!clip.empty());
    const std::int64_t bw = brick.box.width();
    const std::int64_t bh = brick.box.height();
    for (std::int64_t z = clip.z0; z < clip.z1; ++z) {
      const std::int64_t vz = (z - box.z0) / l;
      for (std::int64_t y = clip.y0; y < clip.y1; ++y) {
        const std::int64_t vy = (y - box.y0) / l;
        const std::byte* row =
            data + ((z - brick.box.z0) * bh + (y - brick.box.y0)) * bw;
        std::uint32_t* outPlane = sums.data() + (vz * outH + vy) * outW;
        for (std::int64_t x = clip.x0; x < clip.x1; ++x) {
          outPlane[(x - box.x0) / l] += static_cast<std::uint32_t>(
              static_cast<std::uint8_t>(row[x - brick.box.x0]));
        }
      }
    }
  }

  const auto window = static_cast<std::uint32_t>(l * l * l);
  const std::uint32_t half = window / 2;
  std::vector<std::byte> out(sums.size());
  for (std::size_t i = 0; i < sums.size(); ++i) {
    out[i] = static_cast<std::byte>((sums[i] + half) / window);
  }
  return out;
}

void VolExecutor::project(const query::Predicate& cachedP,
                          std::span<const std::byte> cachedPayload,
                          const query::Predicate& outP,
                          std::span<std::byte> outBuffer) const {
  const VolPredicate& c = asVol(cachedP);
  const VolPredicate& q = asVol(outP);
  const Box3 covered = semantics_->coveredBox(c, q);
  MQS_CHECK_MSG(!covered.empty(), "project with zero overlap");
  MQS_CHECK(outBuffer.size() >= q.outBytes());
  MQS_CHECK(cachedPayload.size() >= c.outBytes());

  const auto il = static_cast<std::int64_t>(c.lod());
  const auto ol = static_cast<std::int64_t>(q.lod());
  const std::int64_t ratio = ol / il;
  const std::int64_t cw = c.outWidth();
  const std::int64_t ch = c.outHeight();
  const std::int64_t outW = q.outWidth();
  const std::int64_t outH = q.outHeight();

  const auto rcube = static_cast<std::uint32_t>(ratio * ratio * ratio);
  const std::uint32_t half = rcube / 2;

  auto cachedAt = [&](std::int64_t cx, std::int64_t cy, std::int64_t cz) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(
        cachedPayload[static_cast<std::size_t>((cz * ch + cy) * cw + cx)]));
  };

  for (std::int64_t z = covered.z0; z < covered.z1; z += ol) {
    const std::int64_t vz = (z - q.box().z0) / ol;
    const std::int64_t cz0 = (z - c.box().z0) / il;
    for (std::int64_t y = covered.y0; y < covered.y1; y += ol) {
      const std::int64_t vy = (y - q.box().y0) / ol;
      const std::int64_t cy0 = (y - c.box().y0) / il;
      for (std::int64_t x = covered.x0; x < covered.x1; x += ol) {
        const std::int64_t vx = (x - q.box().x0) / ol;
        const std::int64_t cx0 = (x - c.box().x0) / il;
        std::byte& out =
            outBuffer[static_cast<std::size_t>((vz * outH + vy) * outW + vx)];
        if (ratio == 1) {
          out = static_cast<std::byte>(cachedAt(cx0, cy0, cz0));
        } else {
          std::uint32_t sum = 0;
          for (std::int64_t dz = 0; dz < ratio; ++dz) {
            for (std::int64_t dy = 0; dy < ratio; ++dy) {
              for (std::int64_t dx = 0; dx < ratio; ++dx) {
                sum += cachedAt(cx0 + dx, cy0 + dy, cz0 + dz);
              }
            }
          }
          out = static_cast<std::byte>((sum + half) / rcube);
        }
      }
    }
  }
}

std::vector<std::uint8_t> renderReferenceVol(const VolPredicate& q,
                                             std::uint64_t seed) {
  const auto l = static_cast<std::int64_t>(q.lod());
  const auto window = static_cast<std::uint32_t>(l * l * l);
  const std::uint32_t half = window / 2;
  std::vector<std::uint8_t> out(q.outBytes());
  std::size_t i = 0;
  for (std::int64_t vz = 0; vz < q.outDepth(); ++vz) {
    for (std::int64_t vy = 0; vy < q.outHeight(); ++vy) {
      for (std::int64_t vx = 0; vx < q.outWidth(); ++vx) {
        std::uint32_t sum = 0;
        for (std::int64_t dz = 0; dz < l; ++dz) {
          for (std::int64_t dy = 0; dy < l; ++dy) {
            for (std::int64_t dx = 0; dx < l; ++dx) {
              sum += syntheticVoxel(seed, q.box().x0 + vx * l + dx,
                                    q.box().y0 + vy * l + dy,
                                    q.box().z0 + vz * l + dz);
            }
          }
        }
        out[i++] = static_cast<std::uint8_t>((sum + half) / window);
      }
    }
  }
  return out;
}

int maxAbsDiffVol(std::span<const std::uint8_t> a,
                  std::span<const std::byte> b) {
  MQS_CHECK(a.size() == b.size());
  int worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<int>(a[i]) -
                                     static_cast<int>(static_cast<std::uint8_t>(b[i]))));
  }
  return worst;
}

}  // namespace mqs::vol
