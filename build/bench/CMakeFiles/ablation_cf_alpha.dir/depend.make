# Empty dependencies file for ablation_cf_alpha.
# This may be replaced when dependencies are built.
