#include "vol/vol_semantics.hpp"

#include "common/check.hpp"

namespace mqs::vol {

storage::DatasetId VolSemantics::addDataset(VolumeLayout layout) {
  layouts_.push_back(layout);
  return static_cast<storage::DatasetId>(layouts_.size() - 1);
}

const VolumeLayout& VolSemantics::layout(storage::DatasetId dataset) const {
  MQS_CHECK_MSG(dataset < layouts_.size(), "unknown volume dataset");
  return layouts_[dataset];
}

bool VolSemantics::projectable(const VolPredicate& cached,
                               const VolPredicate& q) {
  if (cached.dataset() != q.dataset()) return false;
  if (q.lod() % cached.lod() != 0) return false;
  const auto il = static_cast<std::int64_t>(cached.lod());
  auto congruent = [il](std::int64_t a, std::int64_t b) {
    return ((a - b) % il) == 0;
  };
  return congruent(q.box().x0, cached.box().x0) &&
         congruent(q.box().y0, cached.box().y0) &&
         congruent(q.box().z0, cached.box().z0);
}

Box3 VolSemantics::coveredBox(const VolPredicate& cached,
                              const VolPredicate& q) const {
  if (!projectable(cached, q)) return Box3{};
  const Box3 inter = Box3::intersection(cached.box(), q.box());
  if (inter.empty()) return Box3{};
  const auto ol = static_cast<std::int64_t>(q.lod());
  auto up = [ol](std::int64_t v, std::int64_t origin) {
    return origin + (v - origin + ol - 1) / ol * ol;
  };
  auto down = [ol](std::int64_t v, std::int64_t origin) {
    return origin + (v - origin) / ol * ol;
  };
  const Box3 covered{up(inter.x0, q.box().x0),   up(inter.y0, q.box().y0),
                     up(inter.z0, q.box().z0),   down(inter.x1, q.box().x0),
                     down(inter.y1, q.box().y0), down(inter.z1, q.box().z0)};
  if (covered.empty()) return Box3{};
  return covered;
}

double VolSemantics::overlap(const query::Predicate& cachedP,
                             const query::Predicate& qP) const {
  if (cachedP.kind() != "vol" || qP.kind() != "vol") return 0.0;
  const VolPredicate& cached = asVol(cachedP);
  const VolPredicate& q = asVol(qP);
  const Box3 covered = coveredBox(cached, q);
  if (covered.empty()) return 0.0;
  return (static_cast<double>(covered.volume()) *
          static_cast<double>(cached.lod())) /
         (static_cast<double>(q.box().volume()) *
          static_cast<double>(q.lod()));
}

std::uint64_t VolSemantics::qoutsize(const query::Predicate& p) const {
  return asVol(p).outBytes();
}

std::uint64_t VolSemantics::qinputsize(const query::Predicate& p) const {
  const VolPredicate& q = asVol(p);
  return layout(q.dataset()).inputBytes(q.box());
}

Rect VolSemantics::coveredRegion(const query::Predicate& cached,
                                 const query::Predicate& q) const {
  return coveredBox(asVol(cached), asVol(q)).footprint();
}

std::uint64_t VolSemantics::reusedOutputBytes(const query::Predicate& cachedP,
                                              const query::Predicate& qP) const {
  const VolPredicate& q = asVol(qP);
  const Box3 covered = coveredBox(asVol(cachedP), q);
  const auto l = static_cast<std::int64_t>(q.lod());
  return static_cast<std::uint64_t>(covered.volume() / (l * l * l));
}

std::vector<query::PredicatePtr> VolSemantics::coveredParts(
    const query::Predicate& cachedP, const query::Predicate& qP) const {
  const VolPredicate& q = asVol(qP);
  const Box3 covered = coveredBox(asVol(cachedP), q);
  std::vector<query::PredicatePtr> out;
  if (covered.empty()) return out;
  // coveredBox shrinks to q's output grid, so it is a valid sub-query.
  out.push_back(
      std::make_unique<VolPredicate>(q.dataset(), covered, q.lod(), q.op()));
  return out;
}

std::vector<query::PredicatePtr> VolSemantics::remainder(
    const query::Predicate& cachedP, const query::Predicate& qP) const {
  const VolPredicate& q = asVol(qP);
  const Box3 covered = coveredBox(asVol(cachedP), q);
  std::vector<query::PredicatePtr> out;
  if (covered.empty()) {
    out.push_back(q.clone());
    return out;
  }
  for (const Box3& b : q.box().subtract(covered)) {
    // Remainder boxes sit on q's output grid, so dims divide by q.lod();
    // a Slice query's remainders keep the full one-slab depth.
    out.push_back(std::make_unique<VolPredicate>(q.dataset(), b, q.lod(),
                                                 q.op()));
  }
  return out;
}

}  // namespace mqs::vol
