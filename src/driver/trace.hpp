// Workload trace persistence.
//
// The paper's evaluation uses an emulator because "extensive real user
// traces are very difficult to acquire" (§5). This module makes workloads
// exchangeable: any generated (or captured) workload can be written to a
// plain-text trace and replayed bit-identically later, so experiments are
// shareable and real traces can be slotted in when available.
//
// Format (one query per line, '#' comments ignored):
//   client dataset x0 y0 width height zoom op
// with op in {subsample, average}.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "driver/workload.hpp"

namespace mqs::driver {

void writeTrace(std::ostream& os, const std::vector<ClientWorkload>& workloads);
std::vector<ClientWorkload> readTrace(std::istream& is);

/// File variants; save returns success, load throws CheckFailure on
/// malformed input or I/O failure.
bool saveTrace(const std::filesystem::path& path,
               const std::vector<ClientWorkload>& workloads);
std::vector<ClientWorkload> loadTrace(const std::filesystem::path& path);

}  // namespace mqs::driver
