#include "pagespace/page_space_manager.hpp"

#include <chrono>

#include "common/check.hpp"

namespace mqs::pagespace {

namespace {
thread_local std::uint64_t tlsDeviceBytes = 0;
thread_local double tlsStallSeconds = 0.0;

/// Adds wall time spent in a blocking wait to the thread's stall counter.
class StallTimer {
 public:
  StallTimer() : t0_(std::chrono::steady_clock::now()) {}
  ~StallTimer() {
    tlsStallSeconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};
}  // namespace

void PageSpaceManager::resetThreadCounters() {
  tlsDeviceBytes = 0;
  tlsStallSeconds = 0.0;
}
std::uint64_t PageSpaceManager::threadDeviceBytes() { return tlsDeviceBytes; }
double PageSpaceManager::threadStallSeconds() { return tlsStallSeconds; }

PageSpaceManager::PageSpaceManager(std::uint64_t capacityBytes, int ioThreads)
    : core_(capacityBytes) {
  MQS_CHECK(ioThreads >= 0);
  if (ioThreads > 0) {
    io_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(ioThreads));
  }
}

PageSpaceManager::~PageSpaceManager() {
  // Drain queued prefetches before members are torn down; the pool is the
  // last-declared member but the explicit shutdown keeps the ordering
  // obvious (and safe if members are ever reordered).
  if (io_) io_->shutdown();
}

void PageSpaceManager::attach(storage::DatasetId dataset,
                              const storage::DataSource* source) {
  MQS_CHECK(source != nullptr);
  sources_[dataset] = source;
}

const storage::DataSource* PageSpaceManager::sourceFor(
    storage::DatasetId dataset) const {
  auto it = sources_.find(dataset);
  MQS_CHECK_MSG(it != sources_.end(), "fetch from unattached dataset");
  return it->second;
}

std::uint64_t PageSpaceManager::consumeClaimLocked(const storage::PageKey& key,
                                                   bool served) {
  auto it = claims_.find(key);
  if (it == claims_.end()) return 0;
  Claim& c = it->second;
  const std::uint64_t credit = served ? c.creditBytes : 0;
  c.creditBytes = 0;
  if (c.issued) {
    // Attribute the issued read once: to a hit if a fetch consumed the
    // page, to waste if the prefetched copy was lost before use.
    if (served) {
      ++prefetchHits_;
    } else {
      ++prefetchWasted_;
    }
    c.issued = false;
  }
  if (--c.count <= 0) {
    if (c.pinned) core_.unpin(key);
    claims_.erase(it);
  }
  return credit;
}

void PageSpaceManager::performRead(const storage::PageKey& key,
                                   const storage::DataSource* source,
                                   std::promise<PagePtr>& promise,
                                   bool viaPrefetch) {
  PagePtr page;
  try {
    const std::size_t n = source->pageBytes(key.page);
    auto buffer = std::make_shared<std::vector<std::byte>>(n);
    source->readPage(key.page, *buffer);
    page = std::move(buffer);

    std::lock_guard lock(mu_);
    bytesRead_ += n;
    for (const auto& victim : core_.insert(key, n)) {
      resident_.erase(victim);
    }
    if (core_.contains(key)) {
      resident_[key] = page;
      // An outstanding claim pins the page so eviction pressure from other
      // queries cannot drop it before its claimant consumes it.
      if (auto it = claims_.find(key); it != claims_.end() && !it->second.pinned) {
        core_.pin(key);
        it->second.pinned = true;
      }
    }
    if (viaPrefetch) {
      // Charge the device bytes to whichever query consumes the page.
      if (auto it = claims_.find(key); it != claims_.end()) {
        it->second.creditBytes = n;
      }
    }
    inflight_.erase(key);
  } catch (...) {
    {
      std::lock_guard lock(mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    return;
  }
  promise.set_value(std::move(page));
}

PagePtr PageSpaceManager::fetch(const storage::PageKey& key) {
  std::shared_ptr<std::promise<PagePtr>> promise;
  std::shared_future<PagePtr> future;
  const storage::DataSource* source = nullptr;
  {
    std::lock_guard lock(mu_);
    if (core_.touch(key)) {
      auto it = resident_.find(key);
      MQS_DCHECK(it != resident_.end());
      tlsDeviceBytes += consumeClaimLocked(key, /*served=*/true);
      return it->second;
    }
    auto inIt = inflight_.find(key);
    if (inIt != inflight_.end()) {
      // Another thread (query or I/O pool) is already reading this page:
      // merge onto the one device read.
      ++merged_;
      future = inIt->second;
    } else {
      source = sourceFor(key.dataset);
      // A claim whose page is neither resident nor in flight is stale: the
      // prefetched copy was lost (uncacheable insert under pin pressure).
      // Settle one claim as wasted here, under the same lock, so claims
      // taken by prefetches racing with this read are left to their owners.
      (void)consumeClaimLocked(key, /*served=*/false);
      promise = std::make_shared<std::promise<PagePtr>>();
      future = promise->get_future().share();
      inflight_.emplace(key, future);
    }
  }

  if (source != nullptr) {
    // Demand miss: read on the calling thread (no context switch).
    const std::size_t n = source->pageBytes(key.page);
    {
      StallTimer stall;
      performRead(key, source, *promise, /*viaPrefetch=*/false);
    }
    PagePtr page = future.get();  // rethrows the source's exception
    tlsDeviceBytes += n;
    return page;
  }

  PagePtr page;
  {
    StallTimer stall;
    page = future.get();
  }
  std::uint64_t credit = 0;
  {
    std::lock_guard lock(mu_);
    credit = consumeClaimLocked(key, /*served=*/true);
  }
  tlsDeviceBytes += credit;
  return page;
}

void PageSpaceManager::prefetch(const storage::PageKey& key) {
  if (!io_) return;  // synchronous mode: readahead hints are ignored
  std::shared_ptr<std::promise<PagePtr>> promise;
  const storage::DataSource* source = nullptr;
  {
    std::lock_guard lock(mu_);
    Claim& c = claims_[key];
    ++c.count;
    // contains() instead of touch(): a hint must not distort hit/miss
    // stats, and the pin below protects the page regardless of LRU order.
    if (core_.contains(key)) {
      if (!c.pinned) {
        core_.pin(key);
        c.pinned = true;
      }
      return;
    }
    if (inflight_.contains(key)) {
      return;  // coalesce: the claim is pinned when the read lands
    }
    source = sourceFor(key.dataset);
    promise = std::make_shared<std::promise<PagePtr>>();
    inflight_.emplace(key, promise->get_future().share());
    ++prefetchIssued_;
    c.issued = true;
  }
  const bool queued = io_->submit([this, key, source, promise] {
    performRead(key, source, *promise, /*viaPrefetch=*/true);
  });
  if (!queued) {
    // Pool is shutting down: fail the read so no waiter hangs.
    {
      std::lock_guard lock(mu_);
      inflight_.erase(key);
    }
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("page space manager is shutting down")));
  }
}

void PageSpaceManager::releaseClaim(const storage::PageKey& key) {
  std::lock_guard lock(mu_);
  auto it = claims_.find(key);
  if (it == claims_.end()) return;
  Claim& c = it->second;
  if (--c.count <= 0) {
    if (c.issued) ++prefetchWasted_;  // issued read never consumed
    if (c.pinned) core_.unpin(key);
    claims_.erase(it);
  }
}

std::vector<PagePtr> PageSpaceManager::fetchBatch(
    std::span<const storage::PageKey> keys) {
  for (const auto& key : keys) prefetch(key);
  std::vector<PagePtr> out;
  out.reserve(keys.size());
  std::size_t done = 0;
  try {
    for (; done < keys.size(); ++done) {
      out.push_back(fetch(keys[done]));
    }
  } catch (...) {
    // The failing fetch did not consume its claim; release it and every
    // claim taken for keys we never reached.
    for (std::size_t j = done; j < keys.size(); ++j) {
      releaseClaim(keys[j]);
    }
    throw;
  }
  return out;
}

PageSpaceManager::Stats PageSpaceManager::stats() const {
  std::lock_guard lock(mu_);
  const auto& c = core_.stats();
  Stats s;
  s.hits = c.hits;
  // Core counts a merged fetch as a miss too; report device reads and
  // merges separately so hits + misses + merged == fetches. Prefetch-
  // issued reads never touch() the core, so they are not in c.misses.
  s.misses = c.misses - merged_;
  s.merged = merged_;
  s.bytesRead = bytesRead_;
  s.evictions = c.evictions;
  s.prefetchIssued = prefetchIssued_;
  s.prefetchHits = prefetchHits_;
  s.prefetchWasted = prefetchWasted_;
  return s;
}

std::uint64_t PageSpaceManager::capacityBytes() const {
  std::lock_guard lock(mu_);
  return core_.capacityBytes();
}

std::uint64_t PageSpaceManager::residentBytes() const {
  std::lock_guard lock(mu_);
  return core_.residentBytes();
}

std::size_t PageSpaceManager::inflightCount() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

std::size_t PageSpaceManager::claimCount() const {
  std::lock_guard lock(mu_);
  return claims_.size();
}

}  // namespace mqs::pagespace
