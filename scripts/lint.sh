#!/usr/bin/env bash
# Static-analysis gate: project lint rules (always) + clang-tidy (when the
# tool is installed). CI runs this as its own job; scripts/check.sh runs it
# before the build.
#
# Usage: scripts/lint.sh [--all] [--no-tidy]
#   --all      clang-tidy the whole tree (default: only files that differ
#              from the merge base with origin/main, falling back to HEAD)
#   --no-tidy  skip clang-tidy even if installed (custom rules still run)
#
# clang-tidy results are cached per (file content, .clang-tidy content,
# clang-tidy version) in .cache/clang-tidy/, so a warm run fits the ~5
# minute lint budget even with --all. The version is part of the key
# because a tool upgrade changes the finding set: stamps minted by an old
# clang-tidy must not vouch for files under the new one.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tidy=1
tidy_all=0
for arg in "$@"; do
  case "$arg" in
    --all) tidy_all=1 ;;
    --no-tidy) run_tidy=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "== custom lint rules =="
python3 scripts/lint_rules.py --repo .

if [ "$run_tidy" = 0 ]; then
  echo "== clang-tidy skipped (--no-tidy) =="
  echo "== lint OK =="
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy not installed; skipping (custom rules passed) =="
  echo "== lint OK =="
  exit 0
fi

# clang-tidy needs a compilation database.
if [ ! -f build/compile_commands.json ]; then
  echo "== generating compile_commands.json =="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [ "$tidy_all" = 1 ]; then
  files=$(git ls-files 'src/**/*.cpp' 'tests/**/*.cpp' 'bench/**/*.cpp')
else
  base=$(git merge-base HEAD origin/main 2>/dev/null || echo HEAD)
  files=$(git diff --name-only "$base" -- 'src/**/*.cpp' 'tests/**/*.cpp' \
            'bench/**/*.cpp' | sort -u)
  if [ -z "$files" ]; then
    echo "== clang-tidy: no changed sources vs $base =="
    echo "== lint OK =="
    exit 0
  fi
fi

cache_dir=.cache/clang-tidy
mkdir -p "$cache_dir"
# Key = config + tool version; `clang-tidy --version` covers both the
# release and the distro patch level.
config_hash=$( (sha256sum .clang-tidy; clang-tidy --version) | sha256sum \
              | cut -d' ' -f1)

echo "== clang-tidy ($(echo "$files" | wc -w) file(s)) =="
status=0
for f in $files; do
  [ -f "$f" ] || continue
  key=$(cat "$f" | sha256sum | cut -d' ' -f1)
  stamp="$cache_dir/${config_hash:0:16}-${key:0:32}.ok"
  if [ -f "$stamp" ]; then
    continue
  fi
  echo "--- $f ---"
  if clang-tidy -p build --quiet "$f"; then
    touch "$stamp"
  else
    status=1
  fi
done

if [ "$status" != 0 ]; then
  echo "== lint FAILED (clang-tidy) ==" >&2
  exit 1
fi
echo "== lint OK =="
