#include "sim/sim_server.hpp"

#include <gtest/gtest.h>

#include "driver/sim_experiment.hpp"
#include "vm/vm_predicate.hpp"

namespace mqs::sim {
namespace {

using vm::VMOp;
using vm::VMPredicate;

class SimServerTest : public ::testing::Test {
 protected:
  SimServerTest() { dsid_ = sem_.addDataset(index::ChunkLayout(2048, 2048, 128)); }

  query::PredicatePtr pred(Rect r, std::uint32_t zoom,
                           VMOp op = VMOp::Subsample) {
    return std::make_unique<VMPredicate>(dsid_, r, zoom, op);
  }

  SimConfig smallConfig() {
    SimConfig cfg;
    cfg.threads = 2;
    cfg.cpus = 4;
    cfg.dsBytes = 8ULL << 20;
    cfg.psBytes = 4ULL << 20;
    return cfg;
  }

  vm::VMSemantics sem_;
  storage::DatasetId dsid_ = 0;
};

TEST_F(SimServerTest, SingleQueryColdRunReadsItsInput) {
  Simulator sim;
  SimServer srv(sim, &sem_, smallConfig());
  const auto p = pred(Rect::ofSize(0, 0, 512, 512), 4);
  const auto inputBytes = sem_.qinputsize(*p);
  srv.submit(p->clone(), 0);
  sim.run();

  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 1u);
  const auto& r = recs[0];
  EXPECT_DOUBLE_EQ(r.overlapUsed, 0.0);
  EXPECT_EQ(r.bytesFromDisk, inputBytes);
  EXPECT_GT(r.execTime(), 0.0);
  EXPECT_GE(r.waitTime(), 0.0);
  EXPECT_EQ(srv.ioStats().pageReads, 16u);  // 4x4 chunks of 128x128
}

TEST_F(SimServerTest, IdenticalRepeatIsFullReuse) {
  Simulator sim;
  SimServer srv(sim, &sem_, smallConfig());
  const auto p = pred(Rect::ofSize(0, 0, 512, 512), 4);
  srv.submit(p->clone(), 0);
  sim.run();
  srv.submit(p->clone(), 0);
  sim.run();

  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[1].overlapUsed, 1.0);
  EXPECT_EQ(recs[1].bytesFromDisk, 0u);
  EXPECT_LT(recs[1].execTime(), recs[0].execTime());
  EXPECT_EQ(recs[1].bytesReused, recs[1].outputBytes);
}

TEST_F(SimServerTest, CachingDisabledMeansNoReuse) {
  Simulator sim;
  auto cfg = smallConfig();
  cfg.dataStoreEnabled = false;
  SimServer srv(sim, &sem_, cfg);
  const auto p = pred(Rect::ofSize(0, 0, 512, 512), 4);
  srv.submit(p->clone(), 0);
  sim.run();
  srv.submit(p->clone(), 0);
  sim.run();
  const auto recs = srv.collector().records();
  EXPECT_DOUBLE_EQ(recs[1].overlapUsed, 0.0);
  // The Page Space still helps: second run reads nothing from disk.
  EXPECT_EQ(recs[1].bytesFromDisk, 0u);
  EXPECT_GT(srv.ioStats().pageHits, 0u);
}

TEST_F(SimServerTest, PartialOverlapProducesRemainderWork) {
  Simulator sim;
  SimServer srv(sim, &sem_, smallConfig());
  srv.submit(pred(Rect::ofSize(0, 0, 512, 512), 4), 0);
  sim.run();
  // Shifted by half: overlap 0.5, remainder must hit the disk.
  srv.submit(pred(Rect::ofSize(256, 0, 512, 512), 4), 0);
  sim.run();
  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[1].overlapUsed, 0.5);
  EXPECT_GT(recs[1].bytesFromDisk, 0u);
  EXPECT_LT(recs[1].bytesFromDisk, recs[0].bytesFromDisk);
  EXPECT_EQ(recs[1].bytesReused, recs[1].outputBytes / 2);
}

TEST_F(SimServerTest, LowerZoomResultServesHigherZoomQuery) {
  Simulator sim;
  SimServer srv(sim, &sem_, smallConfig());
  srv.submit(pred(Rect::ofSize(0, 0, 512, 512), 2), 0);
  sim.run();
  srv.submit(pred(Rect::ofSize(0, 0, 512, 512), 4), 0);
  sim.run();
  const auto recs = srv.collector().records();
  EXPECT_DOUBLE_EQ(recs[1].overlapUsed, 0.5);  // Eq. 4: I_S/O_S
  EXPECT_EQ(recs[1].bytesFromDisk, 0u);        // full areal coverage
}

TEST_F(SimServerTest, BlocksOnExecutingSourceWhenProfitable) {
  Simulator sim;
  auto cfg = smallConfig();
  cfg.threads = 2;
  SimServer srv(sim, &sem_, cfg);
  // Submit a producer and an identical consumer back to back; with two
  // threads the consumer starts while the producer still executes and
  // should elect to wait for its result.
  srv.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4), 0);
  srv.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4), 1);
  sim.run();
  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 2u);
  const auto& consumer = recs[0].client == 1 ? recs[0] : recs[1];
  EXPECT_TRUE(consumer.reusedExecuting);
  EXPECT_GT(consumer.blockedTime, 0.0);
  EXPECT_DOUBLE_EQ(consumer.overlapUsed, 1.0);
  EXPECT_EQ(consumer.bytesFromDisk, 0u);
}

TEST_F(SimServerTest, WaitOnExecutingCanBeDisabled) {
  Simulator sim;
  auto cfg = smallConfig();
  cfg.allowWaitOnExecuting = false;
  SimServer srv(sim, &sem_, cfg);
  srv.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4), 0);
  srv.submit(pred(Rect::ofSize(0, 0, 1024, 1024), 4), 1);
  sim.run();
  for (const auto& r : srv.collector().records()) {
    EXPECT_FALSE(r.reusedExecuting);
  }
  // Both read from disk, but the pages merge/hit in the Page Space.
  EXPECT_GT(srv.ioStats().pageHits + srv.ioStats().pageMerges, 0u);
}

TEST_F(SimServerTest, ThreadLimitCapsConcurrency) {
  Simulator sim;
  auto cfg = smallConfig();
  cfg.threads = 1;
  SimServer srv(sim, &sem_, cfg);
  // Two disjoint queries: with one thread, strictly sequential.
  srv.submit(pred(Rect::ofSize(0, 0, 512, 512), 4), 0);
  srv.submit(pred(Rect::ofSize(1024, 1024, 512, 512), 4), 1);
  sim.run();
  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 2u);
  const auto& first = recs[0];
  const auto& second = recs[1];
  EXPECT_GE(second.startTime, first.finishTime);
  EXPECT_GT(second.waitTime(), 0.0);
}

TEST_F(SimServerTest, MoreThreadsOverlapDisjointWorkOnADiskFarm) {
  auto runWith = [&](int threads) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.threads = threads;
    cfg.diskFarm.disks = 4;  // parallel devices, so concurrency pays off
    SimServer srv(sim, &sem, cfg);
    for (int i = 0; i < 4; ++i) {
      srv.submit(std::make_unique<VMPredicate>(
                     0, Rect::ofSize(i * 512, 0, 512, 512), 4,
                     VMOp::Subsample),
                 i);
    }
    sim.run();
    return sim.now();
  };
  EXPECT_LT(runWith(4), runWith(1));
}

TEST_F(SimServerTest, SingleDiskLosesEfficiencyUnderHighConcurrency) {
  // The k-stream seek model: interleaving many query streams on one disk
  // breaks sequential runs, so aggregate throughput drops (Figure 4's
  // degradation past the optimum thread count).
  auto makespanWith = [&](int threads) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(4096, 4096, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.threads = threads;
    cfg.diskFarm.disks = 1;
    cfg.dataStoreEnabled = false;  // isolate the I/O effect
    SimServer srv(sim, &sem, cfg);
    for (int i = 0; i < 16; ++i) {
      srv.submit(std::make_unique<VMPredicate>(
                     0, Rect::ofSize((i % 4) * 1024, (i / 4) * 1024, 512, 512),
                     4, VMOp::Subsample),
                 i);
    }
    sim.run();
    return sim.now();
  };
  EXPECT_GT(makespanWith(16), makespanWith(1));
}

TEST_F(SimServerTest, EvictionSwapsNodesOutOfTheGraph) {
  Simulator sim;
  auto cfg = smallConfig();
  // Data store fits one 128x128 output blob (49152 B) but not two; page
  // space tiny so reuse loss is visible in disk bytes.
  cfg.dsBytes = 60 * 1024;
  cfg.psBytes = 1;  // effectively disabled
  cfg.cacheSubqueryResults = false;
  SimServer srv(sim, &sem_, cfg);

  const auto a = pred(Rect::ofSize(0, 0, 512, 512), 4);
  const auto b = pred(Rect::ofSize(1024, 0, 512, 512), 4);
  srv.submit(a->clone(), 0);
  sim.run();
  srv.submit(b->clone(), 0);  // evicts a's blob
  sim.run();
  EXPECT_GE(srv.dataStore().stats().evictions, 1u);
  // Re-running a finds no cached result anymore.
  srv.submit(a->clone(), 0);
  sim.run();
  const auto recs = srv.collector().records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_DOUBLE_EQ(recs[2].overlapUsed, 0.0);
  EXPECT_GT(recs[2].bytesFromDisk, 0u);
}

TEST_F(SimServerTest, PrefetchRestoresSequentialityUnderElevator) {
  auto runWith = [&](int prefetch) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(4096, 4096, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.threads = 4;
    cfg.ioModel = "elevator";
    cfg.prefetchPages = prefetch;
    cfg.dataStoreEnabled = false;  // isolate the I/O effect
    SimServer srv(sim, &sem, cfg);
    for (int i = 0; i < 8; ++i) {
      srv.submit(std::make_unique<VMPredicate>(
                     0, Rect::ofSize((i % 4) * 1024, (i / 4) * 2048, 1024,
                                     1024),
                     4, VMOp::Subsample),
                 i);
    }
    sim.run();
    return std::pair{sim.now(), srv.ioStats()};
  };
  const auto [slowTime, slowIo] = runWith(0);
  const auto [fastTime, fastIo] = runWith(4);
  EXPECT_LT(fastTime, slowTime);
  EXPECT_GT(fastIo.sequentialReads, slowIo.sequentialReads);
  // Prefetch may re-read a few pages evicted before their demand access,
  // but must stay close to the demand-only byte volume.
  EXPECT_LT(static_cast<double>(fastIo.bytesRead),
            1.05 * static_cast<double>(slowIo.bytesRead));
}

TEST_F(SimServerTest, PositionalModelsCompleteAllQueriesIdentically) {
  for (const char* model : {"kstream", "fifo", "elevator"}) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.ioModel = model;
    SimServer srv(sim, &sem, cfg);
    for (int i = 0; i < 6; ++i) {
      srv.submit(std::make_unique<VMPredicate>(
                     0, Rect::ofSize((i % 3) * 512, 0, 512, 512), 4,
                     VMOp::Subsample),
                 i);
    }
    sim.run();
    // Same work gets done; only timing differs across disk models.
    EXPECT_EQ(srv.collector().count(), 6u) << model;
    EXPECT_EQ(srv.ioStats().bytesRead, srv.ioStats().bytesRead) << model;
  }
}

TEST_F(SimServerTest, UnknownIoModelRejected) {
  Simulator sim;
  auto cfg = smallConfig();
  cfg.ioModel = "quantum";
  EXPECT_THROW(SimServer(sim, &sem_, cfg), CheckFailure);
}

TEST_F(SimServerTest, NestedReuseDepthZeroDisablesSubqueryLookups) {
  auto diskBytesWith = [&](int depth) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.maxNestedReuseDepth = depth;
    cfg.maxReuseSources = 1;  // single-source: only a *nested* lookup of the
                              // remainder can reach the second strip
    cfg.psBytes = 1;  // no page cache: raw remainders must hit the disk
    SimServer srv(sim, &sem, cfg);
    // Two separate cached strips, then one query overlapping both: the
    // second strip is only reusable through a *nested* lookup of a
    // remainder part.
    srv.submit(std::make_unique<VMPredicate>(
                   0, Rect::ofSize(0, 0, 512, 512), 4, VMOp::Subsample),
               0);
    sim.run();
    srv.submit(std::make_unique<VMPredicate>(
                   0, Rect::ofSize(512, 0, 512, 512), 4, VMOp::Subsample),
               0);
    sim.run();
    srv.submit(std::make_unique<VMPredicate>(
                   0, Rect::ofSize(0, 0, 1024, 512), 4, VMOp::Subsample),
               0);
    sim.run();
    return srv.collector().records()[2].bytesFromDisk;
  };
  EXPECT_GT(diskBytesWith(0), 0u);   // remainder must hit the disk
  EXPECT_EQ(diskBytesWith(2), 0u);   // nested lookup covers it
}

TEST_F(SimServerTest, DeterministicRuns) {
  auto runOnce = [&] {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    SimServer srv(sim, &sem, smallConfig());
    for (int i = 0; i < 6; ++i) {
      srv.submit(std::make_unique<VMPredicate>(
                     0, Rect::ofSize((i % 3) * 256, 0, 512, 512), 4,
                     VMOp::Subsample),
                 i);
    }
    sim.run();
    std::vector<double> times;
    for (const auto& r : srv.collector().records()) {
      times.push_back(r.finishTime);
    }
    return times;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST_F(SimServerTest, CpuPoolBoundsComputeThroughput) {
  // CPU-bound configuration: 1 CPU, free I/O — the makespan can never be
  // smaller than the serial CPU demand, and adding threads cannot beat the
  // CPU pool.
  auto runWith = [&](int threads, int cpus) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    auto cfg = smallConfig();
    cfg.threads = threads;
    cfg.cpus = cpus;
    cfg.dataStoreEnabled = false;
    cfg.diskFarm.disk.bytesPerSecond = 1e15;  // I/O effectively free
    cfg.diskFarm.disk.seekOverheadSec = 0;
    cfg.diskFarm.disk.sequentialOverheadSec = 0;
    cfg.hostOverheadPerPageSec = 0;
    SimServer srv(sim, &sem, cfg);
    std::uint64_t bytes = 0;
    for (int i = 0; i < 4; ++i) {
      const auto r = Rect::ofSize((i % 2) * 1024, (i / 2) * 1024, 1024, 1024);
      bytes += static_cast<std::uint64_t>(r.area()) * 3;
      srv.submit(std::make_unique<VMPredicate>(0, r, 4, VMOp::Average), i);
    }
    sim.run();
    return std::pair{sim.now(),
                     static_cast<double>(bytes) * cfg.cpuPerByteAverage};
  };
  const auto [oneCore, cpuDemand] = runWith(4, 1);
  EXPECT_GE(oneCore, cpuDemand * 0.999);  // conservation of CPU work
  const auto [fourCores, demand2] = runWith(4, 4);
  (void)demand2;
  EXPECT_LT(fourCores, oneCore);  // more processors genuinely help
}

TEST_F(SimServerTest, AveragingCostsMoreCpuThanSubsampling) {
  auto runOp = [&](VMOp op) {
    vm::VMSemantics sem;
    (void)sem.addDataset(index::ChunkLayout(2048, 2048, 128));
    Simulator sim;
    SimServer srv(sim, &sem, smallConfig());
    srv.submit(std::make_unique<VMPredicate>(
                   0, Rect::ofSize(0, 0, 1024, 1024), 4, op),
               0);
    sim.run();
    return srv.collector().records()[0].execTime();
  };
  EXPECT_GT(runOp(VMOp::Average), runOp(VMOp::Subsample));
}

}  // namespace
}  // namespace mqs::sim
