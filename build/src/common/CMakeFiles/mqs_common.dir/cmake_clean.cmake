file(REMOVE_RECURSE
  "CMakeFiles/mqs_common.dir/bytes.cpp.o"
  "CMakeFiles/mqs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/mqs_common.dir/geometry.cpp.o"
  "CMakeFiles/mqs_common.dir/geometry.cpp.o.d"
  "CMakeFiles/mqs_common.dir/logging.cpp.o"
  "CMakeFiles/mqs_common.dir/logging.cpp.o.d"
  "CMakeFiles/mqs_common.dir/options.cpp.o"
  "CMakeFiles/mqs_common.dir/options.cpp.o.d"
  "CMakeFiles/mqs_common.dir/stats.cpp.o"
  "CMakeFiles/mqs_common.dir/stats.cpp.o.d"
  "CMakeFiles/mqs_common.dir/table.cpp.o"
  "CMakeFiles/mqs_common.dir/table.cpp.o.d"
  "CMakeFiles/mqs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mqs_common.dir/thread_pool.cpp.o.d"
  "libmqs_common.a"
  "libmqs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
