// Real-execution interface: how a query object computes bytes.
//
// execute() materializes a result from raw data, pulling pages through the
// Page Space Manager (the only legal path to data sources). project() is
// Eq. 3: transform a cached intermediate result I (described by `cached`)
// into the portion of `out`'s result it covers, writing into the caller's
// output buffer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pagespace/page_space_manager.hpp"
#include "query/predicate.hpp"

namespace mqs::query {

class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// Compute the full result of `pred` from raw data. The returned buffer
  /// has qoutsize(pred) bytes.
  [[nodiscard]] virtual std::vector<std::byte> execute(
      const Predicate& pred, pagespace::PageSpaceManager& ps) const = 0;

  /// Project the cached result (`cached`, `cachedPayload`) into the output
  /// buffer of `out` (sized qoutsize(out)), filling exactly the covered
  /// region. Requires overlap(cached, out) > 0.
  virtual void project(const Predicate& cached,
                       std::span<const std::byte> cachedPayload,
                       const Predicate& out,
                       std::span<std::byte> outBuffer) const = 0;
};

}  // namespace mqs::query
