// Declaration extraction for mqs-analyze: records (with data members and
// their GUARDED_BY / const / atomic flags), Mutex declarations with their
// lockorder::Rank, the Rank enum's numeric values, and function
// definitions with REQUIRES/ACQUIRE annotations, parameter types, and body
// token ranges for the hold-set walk in checks.cpp.
//
// This is a pattern parser, not a compiler: it leans on the lock idioms
// scripts/lint_rules.py already enforces (all locking through the
// annotated wrappers, every Mutex ranked in its initializer). Constructs
// it cannot classify are skipped leniently — the analysis core treats
// unresolved sites as coverage holes, not as proofs.
#include <algorithm>
#include <cassert>

#include "analyzer.hpp"

namespace mqs::analyze {

namespace {

const std::set<std::string> kAttrMacros = {
    "CAPABILITY", "SCOPED_CAPABILITY", "MQS_THREAD_ANNOTATION", "alignas",
    "final", "MQS_NODISCARD"};

const std::set<std::string> kQualifierToks = {"mutable",  "static", "constexpr",
                                              "inline",   "volatile",
                                              "explicit", "virtual"};

bool containsToken(const std::string& joined, const std::string& tok) {
  std::size_t pos = 0;
  while ((pos = joined.find(tok, pos)) != std::string::npos) {
    const bool leftOk =
        pos == 0 || !(isalnum(static_cast<unsigned char>(joined[pos - 1])) ||
                      joined[pos - 1] == '_');
    const std::size_t end = pos + tok.size();
    const bool rightOk =
        end >= joined.size() ||
        !(isalnum(static_cast<unsigned char>(joined[end])) ||
          joined[end] == '_');
    if (leftOk && rightOk) return true;
    pos = end;
  }
  return false;
}

bool commentSaysImmutable(const LexedFile& f, int line) {
  // Accept the phrase on the member's own line (trailing comment) or
  // anywhere in the contiguous doc-comment block immediately above it.
  auto matches = [&](int l) {
    auto it = f.comments.find(l);
    if (it == f.comments.end()) return false;
    std::string low = it->second;
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return low.find("immutable after construction") != std::string::npos ||
           low.find("set once before") != std::string::npos;
  };
  if (matches(line)) return true;
  for (int l = line - 1; l >= 1 && f.comments.count(l) != 0U; --l)
    if (matches(l)) return true;
  return false;
}

class Parser {
 public:
  Parser(const LexedFile& f, Program& prog) : f_(f), t_(f.toks), prog_(prog) {}

  void run() {
    while (i_ < t_.size()) parseDeclaration();
    // Unbalanced braces (harmless for extraction) leave stale scopes.
    scopes_.clear();
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kRecord, kBlock } kind;
    std::string name;       // namespace segment or record name
    std::string recPath;    // full record path for kRecord
  };

  const LexedFile& f_;
  const std::vector<Tok>& t_;
  Program& prog_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;

  // -- token helpers --------------------------------------------------------
  [[nodiscard]] bool eof() const { return i_ >= t_.size(); }
  [[nodiscard]] const Tok& cur() const { return t_[i_]; }
  [[nodiscard]] bool isIdent(const char* s) const {
    return !eof() && cur().kind == Tok::Kind::Ident && cur().text == s;
  }
  [[nodiscard]] bool isPunct(const char* s) const {
    return !eof() && cur().kind == Tok::Kind::Punct && cur().text == s;
  }
  [[nodiscard]] bool peekPunct(std::size_t k, const char* s) const {
    return i_ + k < t_.size() && t_[i_ + k].kind == Tok::Kind::Punct &&
           t_[i_ + k].text == s;
  }

  void skipBalanced(const char* open, const char* close) {
    // cur() is `open`; advances past the matching `close`.
    int depth = 0;
    while (!eof()) {
      if (isPunct(open)) ++depth;
      else if (isPunct(close)) {
        --depth;
        if (depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  void skipAngles() {
    // cur() is '<'; template argument lists (parens skipped wholesale).
    int depth = 0;
    while (!eof()) {
      if (isPunct("<")) ++depth;
      else if (isPunct(">")) {
        --depth;
        if (depth <= 0) {
          ++i_;
          return;
        }
      } else if (isPunct("(")) {
        skipBalanced("(", ")");
        continue;
      } else if (isPunct(";")) {
        return;  // never a template after all; bail out
      }
      ++i_;
    }
  }

  void skipToSemicolon() {
    while (!eof() && !isPunct(";")) {
      if (isPunct("{")) {
        skipBalanced("{", "}");
        continue;
      }
      if (isPunct("(")) {
        skipBalanced("(", ")");
        continue;
      }
      ++i_;
    }
    if (!eof()) ++i_;
  }

  void skipAttr() {
    // cur() is '[' of '[['; skip to matching ']]'.
    int depth = 0;
    while (!eof()) {
      if (isPunct("[")) ++depth;
      else if (isPunct("]")) {
        --depth;
        if (depth == 0) {
          ++i_;
          return;
        }
      }
      ++i_;
    }
  }

  [[nodiscard]] std::string nsPath() const {
    std::string out;
    for (const auto& s : scopes_) {
      if (s.kind != Scope::kNamespace || s.name.empty() || s.name == "mqs")
        continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  [[nodiscard]] std::string scopePath() const {
    // Namespaces (minus the project root) + records.
    std::string out;
    for (const auto& s : scopes_) {
      if (s.kind == Scope::kBlock) continue;
      if (s.name.empty() || s.name == "mqs") continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  [[nodiscard]] RecordDecl* innermostRecord() {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it)
      if (it->kind == Scope::kRecord) {
        auto found = prog_.records.find(it->recPath);
        return found == prog_.records.end() ? nullptr : &found->second;
      }
    return nullptr;
  }

  // -- declarations ---------------------------------------------------------
  void parseDeclaration() {
    if (eof()) return;
    if (isPunct(";") || isPunct(",")) {
      ++i_;
      return;
    }
    if (isPunct("}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
      // `};` of a record consumed by the caller loop via the ';' branch.
      return;
    }
    if (isPunct("{")) {  // stray block (extern "C", etc.)
      scopes_.push_back({Scope::kBlock, "", ""});
      ++i_;
      return;
    }
    if (isPunct("[") && peekPunct(1, "[")) {
      skipAttr();
      return;
    }
    if (cur().kind != Tok::Kind::Ident) {
      ++i_;
      return;
    }
    const std::string& kw = cur().text;
    if (kw == "template") {
      ++i_;
      if (isPunct("<")) skipAngles();
      return;  // the templated declaration parses on the next iteration
    }
    if (kw == "namespace") {
      parseNamespace();
      return;
    }
    if (kw == "using" || kw == "typedef" || kw == "static_assert" ||
        kw == "friend" || kw == "asm") {
      skipToSemicolon();
      return;
    }
    if (kw == "extern") {
      // `extern "C" {` opens a transparent scope; otherwise a plain decl.
      if (i_ + 2 < t_.size() && t_[i_ + 1].kind == Tok::Kind::String &&
          t_[i_ + 2].kind == Tok::Kind::Punct && t_[i_ + 2].text == "{") {
        scopes_.push_back({Scope::kNamespace, "", ""});
        i_ += 3;
        return;
      }
      ++i_;
      return;
    }
    if (kw == "enum") {
      parseEnum();
      return;
    }
    if (kw == "class" || kw == "struct" || kw == "union") {
      parseRecord();
      return;
    }
    if ((kw == "public" || kw == "private" || kw == "protected") &&
        peekPunct(1, ":")) {
      i_ += 2;
      return;
    }
    parseMemberOrFunction();
  }

  void parseNamespace() {
    ++i_;  // 'namespace'
    std::vector<std::string> segs;
    while (!eof()) {
      if (cur().kind == Tok::Kind::Ident) {
        segs.push_back(cur().text);
        ++i_;
        if (isPunct("::")) {
          ++i_;
          continue;
        }
      }
      break;
    }
    if (isPunct("=")) {  // namespace alias
      skipToSemicolon();
      return;
    }
    if (isPunct("{")) {
      ++i_;
      if (segs.empty()) segs.push_back("");  // anonymous
      for (const auto& s : segs)
        scopes_.push_back({Scope::kNamespace, s, ""});
      // Matching '}' pops only one scope per parseDeclaration call; inject
      // block scopes so nesting depth matches the single closing brace.
      for (std::size_t k = 1; k < segs.size(); ++k)
        scopes_.pop_back();  // collapse A::B::C to one scope frame
      if (segs.size() > 1) {
        std::string joined;
        for (const auto& s : segs) {
          if (!joined.empty()) joined += "::";
          if (s != "mqs") joined += s;
        }
        scopes_.back().name = joined;
      }
    }
  }

  void parseEnum() {
    ++i_;  // 'enum'
    if (isIdent("class") || isIdent("struct")) ++i_;
    std::string name;
    if (!eof() && cur().kind == Tok::Kind::Ident) {
      name = cur().text;
      ++i_;
    }
    if (isPunct(":")) {  // underlying type
      ++i_;
      while (!eof() && !isPunct("{") && !isPunct(";")) ++i_;
    }
    if (isPunct(";")) {
      ++i_;
      return;  // forward declaration
    }
    if (!isPunct("{")) return;
    ++i_;
    // Enumerators; capture numeric values for the lock-rank enum.
    long next = 0;
    while (!eof() && !isPunct("}")) {
      if (cur().kind == Tok::Kind::Ident) {
        const std::string ename = cur().text;
        ++i_;
        long value = next;
        if (isPunct("=")) {
          ++i_;
          if (!eof() && cur().kind == Tok::Kind::Number) {
            value = std::strtol(cur().text.c_str(), nullptr, 0);
            ++i_;
          } else {
            while (!eof() && !isPunct(",") && !isPunct("}")) ++i_;
          }
        }
        if (name == "Rank")
          prog_.rankValues[ename] = static_cast<int>(value);
        next = value + 1;
      }
      if (isPunct(",")) ++i_;
      else if (!isPunct("}")) ++i_;
    }
    if (!eof()) ++i_;  // '}'
    if (isPunct(";")) ++i_;
  }

  void parseRecord() {
    const int line = cur().line;
    ++i_;  // class/struct/union
    std::string name;
    while (!eof()) {
      if (isPunct("[") && peekPunct(1, "[")) {
        skipAttr();
        continue;
      }
      if (cur().kind == Tok::Kind::Ident) {
        if (kAttrMacros.count(cur().text) != 0) {
          ++i_;
          if (isPunct("(")) skipBalanced("(", ")");
          continue;
        }
        name = cur().text;
        ++i_;
        if (isPunct("<")) skipAngles();  // specialization
        continue;  // keep scanning: `struct alignas(64) Foo` etc.
      }
      break;
    }
    if (isPunct(":")) {  // base clause
      while (!eof() && !isPunct("{") && !isPunct(";")) {
        if (isPunct("<")) {
          skipAngles();
          continue;
        }
        ++i_;
      }
    }
    if (isPunct(";")) {
      ++i_;
      return;  // forward declaration
    }
    if (!isPunct("{")) return;  // `struct X x;` style; nothing to extract
    ++i_;
    if (name.empty()) name = "<anon>";
    std::string path = scopePath();
    path = path.empty() ? name : path + "::" + name;
    if (prog_.records.find(path) == prog_.records.end()) {
      RecordDecl rec;
      rec.path = path;
      rec.file = f_.path;
      rec.line = line;
      prog_.records.emplace(path, std::move(rec));
    }
    scopes_.push_back({Scope::kRecord, name, path});
  }

  // One member / variable / function declaration in a record or namespace.
  void parseMemberOrFunction() {
    std::vector<Tok> head;
    const std::size_t start = i_;
    bool sawOperator = false;
    int angle = 0;
    while (!eof()) {
      if (isPunct("[") && peekPunct(1, "[")) {
        skipAttr();
        continue;
      }
      if (cur().kind == Tok::Kind::Ident) {
        const std::string& s = cur().text;
        if (s == "GUARDED_BY" || s == "PT_GUARDED_BY") {
          emitMember(head, /*guarded=*/true);
          return;
        }
        if (s == "operator") sawOperator = true;
        if (s == "decltype" && peekPunct(1, "(")) {
          head.push_back(cur());
          ++i_;
          skipBalanced("(", ")");
          continue;
        }
      }
      if (isPunct("<") && !head.empty() &&
          (head.back().kind == Tok::Kind::Ident || head.back().text == ">")) {
        ++angle;
        head.push_back(cur());
        ++i_;
        continue;
      }
      if (isPunct(">") && angle > 0) {
        --angle;
        head.push_back(cur());
        ++i_;
        continue;
      }
      if (isPunct("(") && angle > 0) {  // fn type inside template args
        const std::size_t from = i_;
        skipBalanced("(", ")");
        for (std::size_t k = from; k < i_; ++k) head.push_back(t_[k]);
        continue;
      }
      if (isPunct("(") && angle == 0) {
        if (sawOperator) {
          parseOperatorFunction(head);
          return;
        }
        if (!head.empty() && head.back().kind == Tok::Kind::Ident) {
          parseFunction(head);
          return;
        }
        // Unclassifiable `(…` (macro call at decl scope, etc.): skip stmt.
        skipToSemicolon();
        return;
      }
      if (angle == 0 && (isPunct(";") || isPunct("=") || isPunct("{"))) {
        if (isPunct("=") && sawOperator) {  // `operator=` before its '('
          head.push_back(cur());
          ++i_;
          continue;
        }
        emitMember(head, /*guarded=*/false);
        return;
      }
      if (isPunct("}")) return;  // malformed; let the main loop close scope
      head.push_back(cur());
      ++i_;
      if (i_ - start > 4096) {  // safety valve
        skipToSemicolon();
        return;
      }
    }
  }

  // cur() is '(' of an operator's parameter list, or the '(' of
  // `operator()`. Treated as a function named "operator".
  void parseOperatorFunction(const std::vector<Tok>& head) {
    if (peekPunct(1, ")") && peekPunct(2, "(")) i_ += 2;  // operator()
    std::vector<Tok> h = head;
    h.push_back({Tok::Kind::Ident, "operator", eof() ? 0 : cur().line});
    parseFunction(h);
  }

  // cur() is the '(' opening the parameter list; head ends with the name.
  void parseFunction(const std::vector<Tok>& head) {
    FuncDef fn;
    fn.file = f_.path;
    fn.line = cur().line;

    // Name (+ optional A::B:: qualifier, + leading '~' for dtors).
    std::size_t k = head.size();
    std::string name = head[k - 1].text;
    --k;
    if (k > 0 && head[k - 1].text == "~") {
      name = "~" + name;
      --k;
    }
    std::vector<std::string> quals;
    while (k >= 2 && head[k - 1].text == "::" &&
           head[k - 2].kind == Tok::Kind::Ident) {
      quals.insert(quals.begin(), head[k - 2].text);
      k -= 2;
    }
    for (std::size_t j = 0; j < k; ++j) {
      if (!fn.returnTypeText.empty()) fn.returnTypeText += ' ';
      fn.returnTypeText += head[j].text;
    }

    // Enclosing record: innermost record scope, or resolve the qualifier
    // against known records (out-of-class definitions).
    if (RecordDecl* rec = innermostRecord(); rec != nullptr) {
      fn.record = rec->path;
      if (!quals.empty()) {
        std::string q = rec->path;
        for (const auto& s : quals) q += "::" + s;
        if (prog_.records.count(q) != 0) fn.record = q;
      }
    } else if (!quals.empty()) {
      std::string q;
      for (const auto& s : quals) {
        if (!q.empty()) q += "::";
        q += s;
      }
      const std::string ns = nsPath();
      if (!ns.empty() && prog_.records.count(ns + "::" + q) != 0)
        fn.record = ns + "::" + q;
      else if (prog_.records.count(q) != 0)
        fn.record = q;
      else {
        // Suffix match (qualifier written relative to a using/namespace).
        for (const auto& [path, recDecl] : prog_.records) {
          (void)recDecl;
          if (path.size() >= q.size() &&
              path.compare(path.size() - q.size(), q.size(), q) == 0 &&
              (path.size() == q.size() ||
               path[path.size() - q.size() - 1] == ':')) {
            fn.record = path;
            break;
          }
        }
        if (fn.record.empty()) fn.record = q;  // best effort
      }
    }
    if (!fn.record.empty())
      fn.key = fn.record + "::" + name;
    else {
      const std::string ns = nsPath();
      fn.key = ns.empty() ? name : ns + "::" + name;
    }

    parseParams(fn);
    parseFunctionTail(fn);
  }

  void parseParams(FuncDef& fn) {
    // cur() is '('; collect (type, name) per top-level comma group.
    ++i_;
    int depth = 1;
    std::vector<Tok> group;
    auto flush = [&] {
      // name = trailing ident (ignoring a default value after '=').
      std::vector<Tok> g;
      for (const auto& tk : group) {
        if (tk.kind == Tok::Kind::Punct && tk.text == "=") break;
        g.push_back(tk);
      }
      if (g.size() < 2 || g.back().kind != Tok::Kind::Ident) return;
      std::string pname = g.back().text;
      std::string ptype;
      for (std::size_t j = 0; j + 1 < g.size(); ++j) {
        if (!ptype.empty()) ptype += ' ';
        ptype += g[j].text;
      }
      fn.params.emplace_back(pname, ptype);
    };
    while (!eof() && depth > 0) {
      if (isPunct("(")) ++depth;
      else if (isPunct(")")) {
        --depth;
        if (depth == 0) {
          flush();
          ++i_;
          break;
        }
      } else if (isPunct(",") && depth == 1) {
        flush();
        group.clear();
        ++i_;
        continue;
      }
      group.push_back(cur());
      ++i_;
    }
  }

  void captureAnnotationArgs(std::vector<std::string>& out) {
    // cur() is '(' after REQUIRES/ACQUIRE; split top-level commas.
    ++i_;
    int depth = 1;
    std::string expr;
    while (!eof() && depth > 0) {
      if (isPunct("(")) ++depth;
      else if (isPunct(")")) {
        --depth;
        if (depth == 0) {
          if (!expr.empty()) out.push_back(expr);
          ++i_;
          return;
        }
      } else if (isPunct(",") && depth == 1) {
        if (!expr.empty()) out.push_back(expr);
        expr.clear();
        ++i_;
        continue;
      }
      if (!expr.empty() && cur().kind == Tok::Kind::Ident &&
          expr.back() != ':' && expr.back() != '.' && expr.back() != '>')
        expr += ' ';
      expr += cur().text;
      ++i_;
    }
  }

  void parseFunctionTail(FuncDef& fn) {
    while (!eof()) {
      if (cur().kind == Tok::Kind::Ident) {
        const std::string& s = cur().text;
        if (s == "const" || s == "override" || s == "final" ||
            s == "mutable" || s == "try") {
          ++i_;
          continue;
        }
        if (s == "noexcept") {
          ++i_;
          if (isPunct("(")) skipBalanced("(", ")");
          continue;
        }
        if (s == "REQUIRES") {
          ++i_;
          if (isPunct("(")) captureAnnotationArgs(fn.requiresExprs);
          continue;
        }
        if (s == "ACQUIRE") {
          ++i_;
          if (isPunct("(")) captureAnnotationArgs(fn.acquireExprs);
          continue;
        }
        if (s == "EXCLUDES" || s == "RELEASE" ||
            s == "NO_THREAD_SAFETY_ANALYSIS" || s == "MQS_THREAD_ANNOTATION") {
          ++i_;
          if (isPunct("(")) skipBalanced("(", ")");
          continue;
        }
        // Unknown ident (trailing return type piece, attribute macro).
        ++i_;
        continue;
      }
      if (isPunct("[") && peekPunct(1, "[")) {
        skipAttr();
        continue;
      }
      if (isPunct("&")) {
        ++i_;
        continue;
      }
      if (isPunct("->")) {  // trailing return type
        ++i_;
        while (!eof() && !isPunct("{") && !isPunct(";") && !isPunct("=")) {
          if (isPunct("<")) {
            skipAngles();
            continue;
          }
          if (isPunct("(")) {
            skipBalanced("(", ")");
            continue;
          }
          ++i_;
        }
        continue;
      }
      if (isPunct("=")) {  // = default / = delete / = 0
        skipToSemicolon();
        recordDeclOnly(fn);
        return;
      }
      if (isPunct(";")) {
        ++i_;
        recordDeclOnly(fn);
        return;
      }
      if (isPunct(":")) {  // constructor initializer list
        ++i_;
        while (!eof() && !isPunct("{")) {
          if (isPunct("(")) {
            skipBalanced("(", ")");
            continue;
          }
          if (isPunct("<")) {
            skipAngles();
            continue;
          }
          if (isPunct("{")) break;
          // idents, '::', ',', '...' of the init list — but a '{' directly
          // after an ident is a brace-init group, not the body.
          if (cur().kind == Tok::Kind::Ident && peekPunct(1, "{")) {
            ++i_;
            skipBalanced("{", "}");
            continue;
          }
          ++i_;
        }
        continue;
      }
      if (isPunct("{")) {  // the body
        fn.hasBody = true;
        fn.bodyBegin = i_ + 1;
        std::size_t j = i_;
        int depth = 0;
        while (j < t_.size()) {
          if (t_[j].kind == Tok::Kind::Punct) {
            if (t_[j].text == "{") ++depth;
            else if (t_[j].text == "}") {
              --depth;
              if (depth == 0) break;
            }
          }
          ++j;
        }
        fn.bodyEnd = j;  // index of the matching '}'
        i_ = j < t_.size() ? j + 1 : j;
        prog_.funcs.push_back(std::move(fn));
        return;
      }
      ++i_;  // lenient
    }
  }

  void recordDeclOnly(const FuncDef& fn) {
    if (fn.requiresExprs.empty() && fn.acquireExprs.empty()) return;
    auto& slot = prog_.declRequires[fn.key];
    for (const auto& e : fn.requiresExprs) slot.push_back(e);
    for (const auto& e : fn.acquireExprs) slot.push_back(e);
  }

  // head holds the tokens of a data-member / variable declaration up to the
  // name (cur() is the stop token: ';', '=', '{', or an annotation macro).
  void emitMember(std::vector<Tok>& head, bool guarded) {
    // Capture the brace/equals initializer (rank extraction) and advance
    // past the statement.
    std::string initText;
    std::string nameLiteral;
    bool sawGuardMacro = guarded;
    while (!eof() && !isPunct(";")) {
      if (cur().kind == Tok::Kind::Ident &&
          (cur().text == "GUARDED_BY" || cur().text == "PT_GUARDED_BY")) {
        sawGuardMacro = true;
        ++i_;
        if (isPunct("(")) skipBalanced("(", ")");
        continue;
      }
      if (isPunct("{") || isPunct("(")) {
        const char* open = isPunct("{") ? "{" : "(";
        const char* close = isPunct("{") ? "}" : ")";
        const std::size_t from = i_;
        skipBalanced(open, close);
        for (std::size_t j = from; j < i_ && j < t_.size(); ++j) {
          if (t_[j].kind == Tok::Kind::String && nameLiteral.empty())
            nameLiteral = t_[j].text;
          if (!initText.empty()) initText += ' ';
          initText += t_[j].text.empty() ? "?" : t_[j].text;
        }
        continue;
      }
      if (isPunct("=")) {
        ++i_;
        while (!eof() && !isPunct(";")) {
          if (isPunct("{")) {
            skipBalanced("{", "}");
            continue;
          }
          if (isPunct("(")) {
            skipBalanced("(", ")");
            continue;
          }
          if (!initText.empty()) initText += ' ';
          initText += cur().text;
          ++i_;
        }
        break;
      }
      ++i_;
    }
    if (!eof()) ++i_;  // ';'

    if (head.empty() || head.back().kind != Tok::Kind::Ident) return;
    MemberDecl m;
    m.name = head.back().text;
    m.line = head.back().line;
    m.isGuarded = sawGuardMacro;

    bool isRef = false;
    std::ptrdiff_t lastStar = -1, lastConst = -1;
    bool sawConst = false, sawConstexpr = false;
    for (std::size_t j = 0; j + 1 < head.size(); ++j) {
      const Tok& tk = head[j];
      if (tk.kind == Tok::Kind::Ident) {
        if (tk.text == "static") m.isStatic = true;
        if (tk.text == "constexpr") sawConstexpr = true;
        if (tk.text == "const") {
          sawConst = true;
          lastConst = static_cast<std::ptrdiff_t>(j);
        }
        if (tk.text == "atomic") m.isAtomic = true;
        if (kQualifierToks.count(tk.text) != 0) continue;
      }
      if (tk.kind == Tok::Kind::Punct) {
        if (tk.text == "*") lastStar = static_cast<std::ptrdiff_t>(j);
        if (tk.text == "&") isRef = true;
      }
      if (!m.typeText.empty()) m.typeText += ' ';
      m.typeText += tk.text;
    }
    if (m.typeText.empty()) return;  // stray token, not a declaration
    m.isConst = sawConstexpr || isRef ||
                (sawConst && (lastStar < 0 || lastConst > lastStar));
    m.hasImmutableComment = commentSaysImmutable(f_, m.line);

    // A `Mutex&` member is an alias to someone else's mutex (MutexLock's
    // own member, for instance), not a declaration.
    const bool isMutex = containsToken(m.typeText, "Mutex") &&
                         !containsToken(m.typeText, "MutexLock") && !isRef;

    RecordDecl* rec = innermostRecord();
    const bool inRecord =
        rec != nullptr && !scopes_.empty() &&
        scopes_.back().kind == Scope::kRecord;
    if (inRecord) {
      rec->members.push_back(m);
      if (isMutex) rec->mutexMembers.push_back(m.name);
    } else {
      const std::string ns = nsPath();
      const std::string qual = ns.empty() ? m.name : ns + "::" + m.name;
      prog_.globals[qual] = m.typeText;
    }

    if (isMutex) {
      MutexDecl md;
      md.path = inRecord ? rec->path + "::" + m.name
                         : (nsPath().empty() ? m.name
                                             : nsPath() + "::" + m.name);
      md.nameLiteral = nameLiteral;
      md.file = f_.path;
      md.line = m.line;
      // Rank from the initializer: `lockorder::Rank::kX` / `Rank::kX`.
      const std::size_t pos = initText.find("Rank");
      if (pos != std::string::npos) {
        // Tokens are space-joined; the enumerator is the next token that
        // starts with 'k' ("Rank :: kSpillTier").
        std::size_t p = initText.find(" k", pos + 4);
        if (p != std::string::npos) {
          ++p;
          std::size_t e = p;
          while (e < initText.size() &&
                 (isalnum(static_cast<unsigned char>(initText[e])) ||
                  initText[e] == '_'))
            ++e;
          md.rankName = initText.substr(p, e - p);
        }
      }
      if (prog_.mutexIndex(md.path) < 0) prog_.mutexes.push_back(md);
    }
  }
};

}  // namespace

void parseFile(const LexedFile& file, Program& prog) {
  Parser(file, prog).run();
}

}  // namespace mqs::analyze
